#!/usr/bin/env python3
"""CI throughput gate: compare a fresh fixed-seed smoke-run digest against
the committed BENCH_evals.json baseline and fail on a >2x regression in
evaluation throughput or simulator speed.

Usage: bench_gate.py BENCH_evals.json target/BENCH_evals.json

Both files are `metaopt trace-report --bench-json` output. The 2x margin
absorbs runner-to-runner noise; a real pathology (accidentally quadratic
pass, validation left on in the hot path) shows up as 10x+.
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip())
        return 2
    with open(sys.argv[1]) as f:
        base = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)
    failed = False
    # warm_evals_per_sec only means something when the run used a persistent
    # fitness cache and it was warm; the cold smoke digest carries 0. Gate it
    # only when both sides actually measured it (older digests lack the key).
    keys = ["evals_per_sec", "sim_cycles_per_sec"]
    if base.get("warm_evals_per_sec", 0) > 0 and fresh.get("warm_evals_per_sec", 0) > 0:
        keys.append("warm_evals_per_sec")
    for key in keys:
        b, got = base[key], fresh[key]
        ratio = got / b if b else float("inf")
        print(f"{key}: baseline {b:.1f}, fresh {got:.1f} ({ratio:.2f}x)")
        if got * 2 < b:
            print(f"FAIL: {key} regressed more than 2x against BENCH_evals.json")
            failed = True
    # Latency keys gate in the other direction: a regression is the fresh
    # value growing, not shrinking. The histogram quantiles are log2-bucket
    # upper bounds (quantized up to 2x), so use a 4x margin: 2x quantization
    # plus the same 2x runner-noise allowance as the throughput keys.
    for key in ["eval_p50_ms", "eval_p99_ms"]:
        if key not in base or key not in fresh:
            continue  # older digests lack the latency keys
        b, got = base[key], fresh[key]
        ratio = got / b if b else float("inf")
        print(f"{key}: baseline {b:.3f}ms, fresh {got:.3f}ms ({ratio:.2f}x)")
        if b > 0 and got > b * 4:
            print(f"FAIL: {key} regressed more than 4x against BENCH_evals.json")
            failed = True
    print(
        "cache_hit_rate: baseline {:.3f}, fresh {:.3f}".format(
            base["cache_hit_rate"], fresh["cache_hit_rate"]
        )
    )
    if "warm_evals" in fresh:
        print(f"warm_evals: fresh {fresh['warm_evals']}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
