#!/usr/bin/env python3
"""CI throughput gate: compare a fresh fixed-seed smoke-run digest against
the committed BENCH_evals.json baseline and fail on a >2x regression in
evaluation throughput or simulator speed.

Usage: bench_gate.py BENCH_evals.json target/BENCH_evals.json

Both files are `metaopt trace-report --bench-json` output. The 2x margin
absorbs runner-to-runner noise; a real pathology (accidentally quadratic
pass, validation left on in the hot path) shows up as 10x+.
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip())
        return 2
    with open(sys.argv[1]) as f:
        base = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)
    failed = False
    # A baseline of 0 (or a missing key) is ungateable: there is no floor to
    # regress from, so dividing by it would be meaningless. Skip such keys
    # with a note instead of failing or printing an infinite ratio — e.g.
    # the committed digest carries `warm_evals_per_sec: 0` whenever the
    # smoke run was cold.
    for key in ["evals_per_sec", "sim_cycles_per_sec", "warm_evals_per_sec"]:
        b, got = base.get(key), fresh.get(key)
        if b is None or got is None:
            side = "baseline" if b is None else "fresh"
            print(f"{key}: SKIP ({side} digest lacks the key)")
            continue
        if b <= 0:
            print(f"{key}: SKIP (baseline {b} is ungateable; fresh measured {got:.1f})")
            continue
        if key == "warm_evals_per_sec" and got <= 0:
            # 0 means "the fresh run never hit a warm cache", not "the warm
            # path got infinitely slower".
            print(f"{key}: SKIP (fresh run measured no warm evaluations)")
            continue
        ratio = got / b
        print(f"{key}: baseline {b:.1f}, fresh {got:.1f} ({ratio:.2f}x)")
        if got * 2 < b:
            print(f"FAIL: {key} regressed more than 2x against BENCH_evals.json")
            failed = True
    # Latency keys gate in the other direction: a regression is the fresh
    # value growing, not shrinking. The histogram quantiles are log2-bucket
    # upper bounds (quantized up to 2x), so use a 4x margin: 2x quantization
    # plus the same 2x runner-noise allowance as the throughput keys.
    for key in ["eval_p50_ms", "eval_p99_ms"]:
        if key not in base or key not in fresh:
            print(f"{key}: SKIP (older digest lacks the latency key)")
            continue
        b, got = base[key], fresh[key]
        if b <= 0:
            print(f"{key}: SKIP (baseline {b} is ungateable; fresh measured {got:.3f}ms)")
            continue
        ratio = got / b
        print(f"{key}: baseline {b:.3f}ms, fresh {got:.3f}ms ({ratio:.2f}x)")
        if got > b * 4:
            print(f"FAIL: {key} regressed more than 4x against BENCH_evals.json")
            failed = True
    print(
        "cache_hit_rate: baseline {:.3f}, fresh {:.3f}".format(
            base["cache_hit_rate"], fresh["cache_hit_rate"]
        )
    )
    if "warm_evals" in fresh:
        print(f"warm_evals: fresh {fresh['warm_evals']}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
