#!/usr/bin/env python3
"""Unit tests for bench_gate.py, invoked from CI as `python3 ci/test_bench_gate.py`.

The gate runs as a subprocess against temp digest files, exactly as CI
invokes it, so the exit-code contract is what's under test.
"""
import json
import os
import subprocess
import sys
import tempfile
import unittest

GATE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench_gate.py")


def digest(**kv):
    base = {
        "evals_per_sec": 100.0,
        "sim_cycles_per_sec": 5e7,
        "warm_evals_per_sec": 0,
        "eval_p50_ms": 30.0,
        "eval_p99_ms": 40.0,
        "cache_hit_rate": 0.5,
    }
    base.update(kv)
    return base


def run_gate(base, fresh):
    with tempfile.TemporaryDirectory() as d:
        bp = os.path.join(d, "base.json")
        fp = os.path.join(d, "fresh.json")
        with open(bp, "w") as f:
            json.dump(base, f)
        with open(fp, "w") as f:
            json.dump(fresh, f)
        proc = subprocess.run(
            [sys.executable, GATE, bp, fp], capture_output=True, text=True
        )
    return proc.returncode, proc.stdout


class BenchGate(unittest.TestCase):
    def test_improvement_passes(self):
        # The tiered-backend shape: throughput up, latency down. Faster
        # must never trip the gate's inversion (latency) checks.
        code, out = run_gate(
            digest(),
            digest(evals_per_sec=220.0, sim_cycles_per_sec=1.2e8, eval_p50_ms=15.0),
        )
        self.assertEqual(code, 0, out)
        self.assertNotIn("FAIL", out)

    def test_zero_warm_baseline_skips_with_note(self):
        # The committed digest carries warm_evals_per_sec: 0 for cold smoke
        # runs; a 0 baseline is ungateable, not an infinite improvement.
        code, out = run_gate(digest(warm_evals_per_sec=0), digest(warm_evals_per_sec=50.0))
        self.assertEqual(code, 0, out)
        self.assertIn("warm_evals_per_sec: SKIP", out)
        self.assertIn("ungateable", out)

    def test_zero_throughput_baseline_skips_with_note(self):
        code, out = run_gate(digest(sim_cycles_per_sec=0), digest())
        self.assertEqual(code, 0, out)
        self.assertIn("sim_cycles_per_sec: SKIP", out)

    def test_cold_fresh_run_does_not_fail_warm_gate(self):
        # A warm baseline with a cold fresh run means "unmeasured", not a
        # regression.
        code, out = run_gate(digest(warm_evals_per_sec=80.0), digest(warm_evals_per_sec=0))
        self.assertEqual(code, 0, out)
        self.assertIn("no warm evaluations", out)

    def test_throughput_regression_fails(self):
        code, out = run_gate(digest(), digest(evals_per_sec=40.0))
        self.assertEqual(code, 1, out)
        self.assertIn("FAIL: evals_per_sec", out)

    def test_latency_regression_fails(self):
        code, out = run_gate(digest(), digest(eval_p99_ms=200.0))
        self.assertEqual(code, 1, out)
        self.assertIn("FAIL: eval_p99_ms", out)

    def test_missing_keys_skip(self):
        base = digest()
        del base["eval_p50_ms"]
        del base["eval_p99_ms"]
        del base["warm_evals_per_sec"]
        code, out = run_gate(base, digest())
        self.assertEqual(code, 0, out)
        self.assertIn("eval_p50_ms: SKIP", out)
        self.assertIn("warm_evals_per_sec: SKIP", out)


if __name__ == "__main__":
    unittest.main()
