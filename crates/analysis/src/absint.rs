//! Abstract interpretation over post-pass IR: interval + constant +
//! initialization-state domains.
//!
//! [`analyze_function`] runs a forward value analysis to fixpoint over a
//! function's CFG — the same optimistic worklist discipline as
//! [`metaopt_ir::dataflow::solve`], lifted from bit-vectors to a per-slot
//! value lattice — and then makes one reporting sweep over the stable
//! states, flagging statically-provable faults:
//!
//! * **out-of-bounds memory accesses** whose whole address interval misses
//!   `[0, mem_size - width]`,
//! * **uninitialized reads** of registers with no definition on *any* path,
//! * **division by a provably-zero divisor** (the IR defines `x/0 = 0`, so
//!   this is suspicious rather than faulting), and
//! * **provable signed overflow** (arithmetic is wrapping, likewise).
//!
//! Soundness stance (DESIGN.md §13): a finding is `Error` severity only
//! when it is provable on **all** values along **all** CFG paths reaching
//! an **unpredicated** instruction — exactly the cases where the reference
//! tiers (interpreter and simulator) would fault on any execution reaching
//! the instruction. Everything weaker (predicated, partial, or
//! defined-but-suspicious) is a `Warning`, and warnings never fail a
//! check, so the analysis cannot reject a compile the reference tier
//! accepts on semantic grounds.

use crate::diagnostics::{Diagnostic, Severity};
use metaopt_ir::{BlockId, Function, Inst, Opcode, RegClass, VReg, Width};
use metaopt_sim::MachineConfig;

/// How register slots are named and initialized at function entry.
#[derive(Clone, Copy, Debug)]
pub enum AbsForm<'a> {
    /// Virtual-register form (before register allocation): slots are vregs,
    /// parameters enter holding unknown values, everything else is
    /// uninitialized (and reads as 0, matching the interpreter's zeroed
    /// frames).
    Virtual,
    /// Machine-register form (after register allocation): slots are the
    /// machine's physical register files, all of which start zeroed.
    Machine(&'a MachineConfig),
}

/// One abstract register slot: initialization bits plus a value interval.
///
/// The interval is always a sound over-approximation of the runtime value
/// (uninitialized registers read as 0 in both reference tiers, so entry
/// intervals are `[0, 0]`, not bottom). `must_uninit` means no definition
/// precedes on *any* path; `maybe_uninit` means one is missing on *some*
/// path. Predicated definitions count as assignments, mirroring the
/// `DefBeforeUse` discipline, so this analysis never rejects more than the
/// structural checker.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct AbsVal {
    maybe_uninit: bool,
    must_uninit: bool,
    lo: i64,
    hi: i64,
}

const TOP: (i64, i64) = (i64::MIN, i64::MAX);

impl AbsVal {
    fn uninit() -> AbsVal {
        // Uninitialized slots read as 0 in the interpreter and simulator.
        AbsVal {
            maybe_uninit: true,
            must_uninit: true,
            lo: 0,
            hi: 0,
        }
    }

    fn init(lo: i64, hi: i64) -> AbsVal {
        AbsVal {
            maybe_uninit: false,
            must_uninit: false,
            lo,
            hi,
        }
    }

    fn top() -> AbsVal {
        AbsVal::init(TOP.0, TOP.1)
    }

    fn join(self, other: AbsVal) -> AbsVal {
        AbsVal {
            maybe_uninit: self.maybe_uninit || other.maybe_uninit,
            must_uninit: self.must_uninit && other.must_uninit,
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Standard interval widening against the previous state: any bound
    /// that moved jumps straight to its extreme, guaranteeing termination.
    fn widen(self, previous: AbsVal) -> AbsVal {
        AbsVal {
            lo: if self.lo < previous.lo {
                i64::MIN
            } else {
                self.lo
            },
            hi: if self.hi > previous.hi {
                i64::MAX
            } else {
                self.hi
            },
            ..self
        }
    }
}

/// Per-program-point abstract state: one slot array per register class.
#[derive(Clone, PartialEq, Eq, Debug)]
struct State {
    ints: Vec<AbsVal>,
    floats: Vec<AbsVal>,
    preds: Vec<AbsVal>,
}

impl State {
    fn entry(func: &Function, form: AbsForm<'_>) -> State {
        match form {
            AbsForm::Virtual => {
                let n = func.num_vregs();
                let mut s = State {
                    ints: vec![AbsVal::uninit(); n],
                    floats: vec![AbsVal::uninit(); n],
                    preds: vec![AbsVal::uninit(); n],
                };
                for &p in &func.params {
                    let v = match func.class_of(p) {
                        RegClass::Pred => AbsVal::init(0, 1),
                        _ => AbsVal::top(),
                    };
                    *s.slot_mut(func.class_of(p), p.index()).expect("param slot") = v;
                }
                s
            }
            AbsForm::Machine(cfg) => State {
                // Physical registers start zeroed: everything is
                // initialized and holds 0.
                ints: vec![AbsVal::init(0, 0); cfg.gpr],
                floats: vec![AbsVal::init(0, 0); cfg.fpr],
                preds: vec![AbsVal::init(0, 0); cfg.pred],
            },
        }
    }

    fn file(&self, class: RegClass) -> &[AbsVal] {
        match class {
            RegClass::Int => &self.ints,
            RegClass::Float => &self.floats,
            RegClass::Pred => &self.preds,
        }
    }

    fn slot(&self, class: RegClass, ix: usize) -> AbsVal {
        // Out-of-range indices mean broken machine code; the machine
        // verifier owns that report, so the value analysis degrades to ⊤.
        self.file(class)
            .get(ix)
            .copied()
            .unwrap_or_else(AbsVal::top)
    }

    fn slot_mut(&mut self, class: RegClass, ix: usize) -> Option<&mut AbsVal> {
        match class {
            RegClass::Int => self.ints.get_mut(ix),
            RegClass::Float => self.floats.get_mut(ix),
            RegClass::Pred => self.preds.get_mut(ix),
        }
    }

    fn join_from(&mut self, other: &State) -> bool {
        let mut changed = false;
        for (mine, theirs) in [
            (&mut self.ints, &other.ints),
            (&mut self.floats, &other.floats),
            (&mut self.preds, &other.preds),
        ] {
            for (a, b) in mine.iter_mut().zip(theirs) {
                let joined = a.join(*b);
                if joined != *a {
                    *a = joined;
                    changed = true;
                }
            }
        }
        changed
    }

    fn widen_from(&mut self, previous: &State) {
        for (mine, prev) in [
            (&mut self.ints, &previous.ints),
            (&mut self.floats, &previous.floats),
            (&mut self.preds, &previous.preds),
        ] {
            for (a, p) in mine.iter_mut().zip(prev) {
                *a = a.widen(*p);
            }
        }
    }
}

/// Register classes of an instruction's `args`, resolving the
/// variable-arity cases (`Ret`/`Call` pass integers).
fn arg_class(inst: &Inst, ix: usize) -> RegClass {
    match inst.op.arg_classes() {
        Some(cs) => cs[ix],
        None => RegClass::Int,
    }
}

/// Exact `i128` result range clamped back into the `i64` interval domain:
/// `None` means the range escapes `i64` somewhere (the op may wrap) and the
/// result must go to ⊤.
fn fit(lo: i128, hi: i128) -> Option<(i64, i64)> {
    if lo >= i64::MIN as i128 && hi <= i64::MAX as i128 {
        Some((lo as i64, hi as i64))
    } else {
        None
    }
}

/// Does the exact result range lie *entirely* outside `i64`? Then every
/// concrete execution of the op wraps — worth a warning even though
/// wrapping is defined behaviour.
fn definitely_overflows(lo: i128, hi: i128) -> bool {
    hi < i64::MIN as i128 || lo > i64::MAX as i128
}

fn corners(av: AbsVal, bv: AbsVal, f: impl Fn(i128, i128) -> i128) -> (i128, i128) {
    let mut lo = i128::MAX;
    let mut hi = i128::MIN;
    for a in [av.lo as i128, av.hi as i128] {
        for b in [bv.lo as i128, bv.hi as i128] {
            let v = f(a, b);
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    (lo, hi)
}

/// The abstract result written to `inst.dst`, plus the exact pre-wrap
/// range when one was computed (for overflow reporting).
fn eval_value(inst: &Inst, state: &State) -> (AbsVal, Option<(i128, i128)>) {
    use Opcode::*;
    let arg = |ix: usize| state.slot(arg_class(inst, ix), inst.args[ix].index());
    let imm = AbsVal::init(inst.imm, inst.imm);
    let from_exact = |(lo, hi): (i128, i128)| {
        let v = match fit(lo, hi) {
            Some((l, h)) => AbsVal::init(l, h),
            None => AbsVal::top(),
        };
        (v, Some((lo, hi)))
    };
    let bool_val = |known: Option<bool>| match known {
        Some(true) => AbsVal::init(1, 1),
        Some(false) => AbsVal::init(0, 0),
        None => AbsVal::init(0, 1),
    };
    match inst.op {
        Add => from_exact(corners(arg(0), arg(1), |a, b| a + b)),
        AddI => from_exact(corners(arg(0), imm, |a, b| a + b)),
        Sub => from_exact(corners(arg(0), arg(1), |a, b| a - b)),
        Mul => from_exact(corners(arg(0), arg(1), |a, b| a * b)),
        MulI => from_exact(corners(arg(0), imm, |a, b| a * b)),
        Neg => from_exact(corners(arg(0), imm, |a, _| -a)),
        Abs => {
            let a = arg(0);
            let (lo, hi) = corners(a, imm, |x, _| x.abs());
            let lo = if a.lo <= 0 && a.hi >= 0 { 0 } else { lo };
            from_exact((lo.min(hi), hi))
        }
        Div | Rem => {
            let b = arg(1);
            if b.lo == b.hi && b.lo != 0 && b.lo != -1 {
                let c = b.lo as i128;
                let a = arg(0);
                let (lo, hi) = if inst.op == Div {
                    corners(a, b, |x, _| x / c)
                } else {
                    corners(a, b, |x, _| x % c)
                };
                // x % c additionally never exceeds |c| - 1 in magnitude.
                from_exact((lo, hi))
            } else {
                (AbsVal::top(), None)
            }
        }
        And => {
            let (a, b) = (arg(0), arg(1));
            if a.lo >= 0 || b.lo >= 0 {
                let hi = match (a.lo >= 0, b.lo >= 0) {
                    (true, true) => a.hi.min(b.hi),
                    (true, false) => a.hi,
                    (false, true) => b.hi,
                    (false, false) => unreachable!(),
                };
                (AbsVal::init(0, hi), None)
            } else {
                (AbsVal::top(), None)
            }
        }
        AndI => {
            if inst.imm >= 0 {
                (AbsVal::init(0, inst.imm), None)
            } else {
                (AbsVal::top(), None)
            }
        }
        Or | Xor | Shl | Shr => (AbsVal::top(), None),
        ShlI => {
            let s = (inst.imm & 63) as u32;
            from_exact(corners(arg(0), imm, |a, _| a << s))
        }
        ShrI => {
            let s = (inst.imm & 63) as u32;
            from_exact(corners(arg(0), imm, |a, _| a >> s))
        }
        MovI => (imm, None),
        Mov => (arg(0), None),
        Min => {
            let (a, b) = (arg(0), arg(1));
            (AbsVal::init(a.lo.min(b.lo), a.hi.min(b.hi)), None)
        }
        Max => {
            let (a, b) = (arg(0), arg(1));
            (AbsVal::init(a.lo.max(b.lo), a.hi.max(b.hi)), None)
        }
        Sel => (arg(1).join(arg(2)), None),
        CmpEq => {
            let (a, b) = (arg(0), arg(1));
            let known = if a.lo == a.hi && a == b {
                Some(true)
            } else if a.hi < b.lo || b.hi < a.lo {
                Some(false)
            } else {
                None
            };
            (bool_val(known), None)
        }
        CmpNe => {
            let (a, b) = (arg(0), arg(1));
            let known = if a.hi < b.lo || b.hi < a.lo {
                Some(true)
            } else if a.lo == a.hi && a == b {
                Some(false)
            } else {
                None
            };
            (bool_val(known), None)
        }
        CmpLt => cmp_interval(arg(0), arg(1), false),
        CmpLe => cmp_interval(arg(0), arg(1), true),
        CmpEqI => {
            let a = arg(0);
            let known = if a.lo == a.hi && a.lo == inst.imm {
                Some(true)
            } else if inst.imm < a.lo || inst.imm > a.hi {
                Some(false)
            } else {
                None
            };
            (bool_val(known), None)
        }
        CmpLtI => cmp_interval(arg(0), imm, false),
        CmpGtI => cmp_interval(imm, arg(0), false),
        PAnd => {
            let (a, b) = (arg(0), arg(1));
            (
                AbsVal::init(a.lo.min(b.lo).min(1), a.hi.min(b.hi).clamp(0, 1)),
                None,
            )
        }
        POr => {
            let (a, b) = (arg(0), arg(1));
            (
                AbsVal::init(a.lo.max(b.lo).clamp(0, 1), a.hi.max(b.hi).clamp(0, 1)),
                None,
            )
        }
        PNot => {
            let a = arg(0);
            (
                AbsVal::init(1 - a.hi.clamp(0, 1), 1 - a.lo.clamp(0, 1)),
                None,
            )
        }
        PMovI => (bool_val(Some(inst.imm != 0)), None),
        PMov => (arg(0), None),
        P2I => (arg(0), None),
        I2P => {
            let a = arg(0);
            let known = if a.lo == 0 && a.hi == 0 {
                Some(false)
            } else if a.lo > 0 || a.hi < 0 {
                Some(true)
            } else {
                None
            };
            (bool_val(known), None)
        }
        FCmpEq | FCmpLt | FCmpLe => (AbsVal::init(0, 1), None),
        // Loads recover width information: B1 zero-extends, B4 sign-extends.
        Ld(Width::B1) => (AbsVal::init(0, 255), None),
        Ld(Width::B4) => (AbsVal::init(i32::MIN as i64, i32::MAX as i64), None),
        // Everything else producing a value is unknown.
        _ => (AbsVal::top(), None),
    }
}

fn cmp_interval(a: AbsVal, b: AbsVal, or_equal: bool) -> (AbsVal, Option<(i128, i128)>) {
    // a < b (or a <= b): decided when the intervals are disjoint.
    let yes = if or_equal { a.hi <= b.lo } else { a.hi < b.lo };
    let no = if or_equal { a.lo > b.hi } else { a.lo >= b.hi };
    let v = if yes {
        AbsVal::init(1, 1)
    } else if no {
        AbsVal::init(0, 0)
    } else {
        AbsVal::init(0, 1)
    };
    (v, None)
}

/// Apply one instruction's effect on the abstract state.
fn transfer(inst: &Inst, state: &mut State) {
    let Some(class) = inst.op.dst_class() else {
        return;
    };
    let Some(dst) = inst.dst else { return };
    let (mut value, _) = eval_value(inst, state);
    if class == RegClass::Float {
        // Float values are tracked for initialization only.
        value.lo = TOP.0;
        value.hi = TOP.1;
    }
    if let Some(slot) = state.slot_mut(class, dst.index()) {
        if inst.pred.is_some() {
            // A predicated definition may not execute: the old value
            // survives on the guard-false path. It still counts as an
            // assignment for must-uninit (the DefBeforeUse discipline).
            let mut joined = slot.join(value);
            joined.must_uninit = false;
            *slot = joined;
        } else {
            *slot = value;
        }
    }
}

/// The address interval of a memory instruction, in exact `i128` space.
fn addr_range(inst: &Inst, state: &State) -> (i128, i128) {
    let base = state.slot(RegClass::Int, inst.args[0].index());
    (
        base.lo as i128 + inst.imm as i128,
        base.hi as i128 + inst.imm as i128,
    )
}

fn severity_for(inst: &Inst) -> Severity {
    if inst.pred.is_none() {
        Severity::Error
    } else {
        Severity::Warning
    }
}

/// Reporting sweep over one instruction given the stable pre-state.
fn check_inst(
    inst: &Inst,
    state: &State,
    func: &Function,
    pass: &str,
    mem_size: usize,
    loc: (BlockId, usize),
    diags: &mut Vec<Diagnostic>,
) {
    let diag = |sev: Severity, msg: String| {
        Diagnostic::new(sev, pass, &func.name, msg).at_inst(loc.0, loc.1)
    };

    // Uninitialized reads: operands and the guard itself.
    let mut report_uninit = |class: RegClass, r: VReg, what: &str, sev: Severity| {
        let v = state.slot(class, r.index());
        if v.must_uninit {
            diags.push(diag(
                sev,
                format!("absint: {what} reads {r} with no definition on any path"),
            ));
        }
    };
    for (ix, &a) in inst.args.iter().enumerate() {
        report_uninit(arg_class(inst, ix), a, "operand", severity_for(inst));
    }
    if let Some(p) = inst.pred {
        // The guard is read unconditionally.
        report_uninit(RegClass::Pred, p, "guard", Severity::Error);
    }

    // Provable out-of-bounds accesses.
    let width = match inst.op {
        Opcode::Ld(w) | Opcode::St(w) => Some(w.bytes() as i128),
        Opcode::FLd | Opcode::FSt => Some(8),
        _ => None,
    };
    if let Some(w) = width {
        let (lo, hi) = addr_range(inst, state);
        let limit = mem_size as i128 - w;
        if hi < 0 || lo > limit {
            diags.push(diag(
                severity_for(inst),
                format!(
                    "absint: {} address is provably out of bounds \
                     (addr in [{lo}, {hi}], memory is {mem_size} bytes)",
                    inst.op
                ),
            ));
        }
    }

    // Division by a provably-zero divisor: defined (yields 0) but almost
    // certainly not what the program meant.
    if matches!(inst.op, Opcode::Div | Opcode::Rem) {
        let b = state.slot(RegClass::Int, inst.args[1].index());
        if b.lo == 0 && b.hi == 0 && !b.must_uninit {
            diags.push(diag(
                Severity::Warning,
                format!(
                    "absint: {} divisor is provably zero (defined to yield 0)",
                    inst.op
                ),
            ));
        }
    }

    // Provable wrapping: the exact result range misses i64 entirely.
    if let (_, Some((lo, hi))) = eval_value(inst, state) {
        if definitely_overflows(lo, hi) {
            diags.push(diag(
                Severity::Warning,
                format!("absint: {} provably overflows i64 (wraps)", inst.op),
            ));
        }
    }
}

/// Block visits before interval widening kicks in: small enough to converge
/// fast, large enough to let short counted loops settle exactly.
const WIDEN_AFTER: u32 = 4;

/// Run the abstract interpreter over `func` and report findings attributed
/// to `pass`. `mem_size` is the byte size of the memory image the function
/// will run against (post-regalloc: globals + spill area).
pub fn analyze_function(
    func: &Function,
    form: AbsForm<'_>,
    mem_size: usize,
    pass: &str,
) -> Vec<Diagnostic> {
    let nb = func.blocks.len();
    let mut entry: Vec<Option<State>> = vec![None; nb];
    let mut visits = vec![0u32; nb];
    entry[func.entry.index()] = Some(State::entry(func, form));

    // Deduplicating worklist seeded in reverse postorder, exactly like
    // `dataflow::solve`; value states replace bit-vectors.
    let mut worklist: std::collections::VecDeque<usize> =
        func.reverse_postorder().iter().map(|b| b.index()).collect();
    let mut queued = vec![false; nb];
    for &b in &worklist {
        queued[b] = true;
    }

    while let Some(bi) = worklist.pop_front() {
        queued[bi] = false;
        let Some(mut state) = entry[bi].clone() else {
            continue; // not yet reached from the entry
        };
        for inst in &func.blocks[bi].insts {
            transfer(inst, &mut state);
        }
        for succ in func.blocks[bi].successors() {
            let si = succ.index();
            let changed = match &mut entry[si] {
                Some(existing) => {
                    let mut joined = existing.clone();
                    let c = joined.join_from(&state);
                    if c {
                        visits[si] += 1;
                        if visits[si] > WIDEN_AFTER {
                            joined.widen_from(existing);
                        }
                        *existing = joined;
                    }
                    c
                }
                slot @ None => {
                    *slot = Some(state.clone());
                    true
                }
            };
            if changed && !queued[si] {
                queued[si] = true;
                worklist.push_back(si);
            }
        }
    }

    // Single reporting sweep over the stable states: each finding is
    // emitted exactly once, in program order.
    let mut diags = Vec::new();
    for (bi, e) in entry.iter().enumerate() {
        let Some(s) = e else { continue };
        let mut state = s.clone();
        for (ii, inst) in func.blocks[bi].insts.iter().enumerate() {
            check_inst(
                inst,
                &state,
                func,
                pass,
                mem_size,
                (BlockId(bi as u32), ii),
                &mut diags,
            );
            transfer(inst, &mut state);
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_ir::builder::FunctionBuilder;

    fn analyze(func: &Function, mem: usize) -> Vec<Diagnostic> {
        analyze_function(func, AbsForm::Virtual, mem, "test")
    }

    #[test]
    fn clean_straightline_code_has_no_findings() {
        let mut fb = FunctionBuilder::new("ok");
        let a = fb.movi(2);
        let b = fb.movi(40);
        let c = fb.add(a, b);
        fb.ret(Some(c));
        let f = fb.finish();
        assert!(analyze(&f, 64).is_empty());
    }

    #[test]
    fn constant_oob_store_is_an_error() {
        let mut fb = FunctionBuilder::new("oob");
        let base = fb.movi(1 << 20);
        let v = fb.movi(7);
        fb.st8(base, v, 0);
        fb.ret(Some(v));
        let f = fb.finish();
        let diags = analyze(&f, 4096);
        assert!(
            diags
                .iter()
                .any(|d| d.severity == Severity::Error && d.message.contains("out of bounds")),
            "{diags:?}"
        );
    }

    #[test]
    fn negative_address_is_an_error_and_predication_demotes_it() {
        let mut fb = FunctionBuilder::new("neg");
        let base = fb.movi(-64);
        let v = fb.ld8(base, 0);
        fb.ret(Some(v));
        let mut f = fb.finish();
        let diags = analyze(&f, 4096);
        assert!(
            diags.iter().any(|d| d.severity == Severity::Error),
            "{diags:?}"
        );

        // Guard the load: the fault is no longer provable to execute.
        let p = f.new_vreg(RegClass::Pred);
        let pm = Inst::new(Opcode::PMovI).dst(p).imm(0);
        let lix = f.blocks[0]
            .insts
            .iter()
            .position(|i| i.op.is_load())
            .unwrap();
        f.blocks[0].insts[lix].pred = Some(p);
        f.blocks[0].insts.insert(0, pm);
        let diags = analyze(&f, 4096);
        assert!(
            diags.iter().all(|d| d.severity <= Severity::Warning),
            "{diags:?}"
        );
        assert!(diags.iter().any(|d| d.message.contains("out of bounds")));
    }

    #[test]
    fn in_bounds_loop_indexing_is_clean() {
        // for (i = 0; i < 8; i++) xs[i] += 1  over a 64-byte array at 0.
        let mut fb = FunctionBuilder::new("loopy");
        let hdr = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        let i = fb.movi(0);
        fb.br(hdr);
        fb.switch_to(hdr);
        let p = fb.cmp_lti(i, 8);
        fb.branch(p, body, exit);
        fb.switch_to(body);
        let addr = fb.muli(i, 8);
        let v = fb.ld8(addr, 0);
        let v2 = fb.addi(v, 1);
        fb.st8(addr, v2, 0);
        let inext = fb.addi(i, 1);
        fb.push(Inst::new(Opcode::Mov).dst(i).args(&[inext]));
        fb.br(hdr);
        fb.switch_to(exit);
        fb.ret(Some(i));
        let f = fb.finish();
        let diags = analyze(&f, 64);
        assert!(
            diags.iter().all(|d| d.severity < Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn provable_div_by_zero_warns() {
        let mut fb = FunctionBuilder::new("divz");
        let a = fb.movi(10);
        let z = fb.movi(0);
        let d = fb.div(a, z);
        fb.ret(Some(d));
        let diags = analyze(&fb.finish(), 64);
        assert!(
            diags
                .iter()
                .any(|d| d.severity == Severity::Warning && d.message.contains("zero")),
            "{diags:?}"
        );
        assert!(diags.iter().all(|d| d.severity < Severity::Error));
    }

    #[test]
    fn provable_overflow_warns() {
        let mut fb = FunctionBuilder::new("wrap");
        let a = fb.movi(i64::MAX);
        let b = fb.addi(a, 1);
        fb.ret(Some(b));
        let diags = analyze(&fb.finish(), 64);
        assert!(
            diags
                .iter()
                .any(|d| d.severity == Severity::Warning && d.message.contains("overflow")),
            "{diags:?}"
        );
    }

    #[test]
    fn machine_form_registers_start_initialized() {
        let cfg = MachineConfig::table3();
        let mut fb = FunctionBuilder::new("mf");
        let a = fb.movi(1);
        fb.ret(Some(a));
        let f = fb.finish();
        assert!(analyze_function(&f, AbsForm::Machine(&cfg), 4096, "t").is_empty());
    }

    #[test]
    fn widening_terminates_on_unbounded_loops() {
        // while (i >= 0) i++  — the interval must widen rather than loop.
        let mut fb = FunctionBuilder::new("diverge");
        let hdr = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        let i = fb.movi(0);
        fb.br(hdr);
        fb.switch_to(hdr);
        let p = fb.cmp_lti(i, i64::MAX);
        fb.branch(p, body, exit);
        fb.switch_to(body);
        let inext = fb.addi(i, 1);
        fb.push(Inst::new(Opcode::Mov).dst(i).args(&[inext]));
        fb.br(hdr);
        fb.switch_to(exit);
        fb.ret(Some(i));
        let _ = analyze(&fb.finish(), 64); // must terminate
    }
}
