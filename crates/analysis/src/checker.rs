//! Inter-pass IR invariant checking.
//!
//! [`check_program`] runs the full battery — structural verification,
//! CFG reachability, def-before-use, and predicate consistency — over a
//! program snapshot and attributes every finding to the pass whose output
//! was checked. The compiler driver calls [`enforce`] at each pass
//! boundary when IR checking is enabled, so a buggy pass is caught at the
//! first boundary after it runs, by name, instead of surfacing later as a
//! miscompile or simulator divergence.

use crate::diagnostics::{first_error, render_lines, Diagnostic, Severity};
use crate::instances::{DefBeforeUse, PredicatedDefs};
use metaopt_ir::util::BitSet;
use metaopt_ir::verify::{verify_program, CfgForm};
use metaopt_ir::{BlockId, Function, Program, RegClass};
use std::fmt;

/// A failed [`enforce`] call: the first offending pass plus everything the
/// checker found.
#[derive(Clone, Debug)]
pub struct CheckFailure {
    /// Name of the pass whose output failed the check.
    pub pass: String,
    /// The pipeline plan that ordered the passes, when known. Ablation
    /// sweeps and plan genomes run many plans over one benchmark; the plan
    /// string pins the failure to the right one.
    pub plan: Option<String>,
    /// All diagnostics from the failing checkpoint.
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckFailure {
    /// Attach the pipeline plan to the failure and every diagnostic in it.
    pub fn with_plan(mut self, plan: impl Into<String>) -> Self {
        let plan = plan.into();
        for d in &mut self.diagnostics {
            d.plan = Some(plan.clone());
        }
        self.plan = Some(plan);
        self
    }
}

impl fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ir invariants violated after pass '{}'", self.pass)?;
        if let Some(plan) = &self.plan {
            write!(f, " (plan {plan})")?;
        }
        write!(f, ":\n{}", render_lines(&self.diagnostics))
    }
}

impl std::error::Error for CheckFailure {}

/// Run every invariant check over `prog` as it stands after `pass`,
/// under the CFG discipline `form`. Returns all findings in discovery
/// order.
pub fn check_program(prog: &Program, form: CfgForm, pass: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Structural verifier first: block shape, operand classes, branch
    // targets, call signatures. A structural break makes the dataflow
    // checks unreliable, so report it and stop.
    if let Err(e) = verify_program(prog, form) {
        diags.push(Diagnostic::new(
            Severity::Error,
            pass,
            "<program>",
            e.message,
        ));
        return diags;
    }

    for func in &prog.funcs {
        run_function_checks(func, pass, &mut diags);
    }
    diags
}

/// [`check_program`] for a single function (cross-function call checks are
/// skipped): the compiler driver uses this between passes, which operate on
/// one fully-inlined function.
pub fn check_function(func: &Function, form: CfgForm, pass: &str) -> Vec<Diagnostic> {
    if let Err(e) = metaopt_ir::verify::verify_function(func, form) {
        return vec![Diagnostic::new(
            Severity::Error,
            pass,
            &func.name,
            e.message,
        )];
    }
    let mut diags = Vec::new();
    run_function_checks(func, pass, &mut diags);
    diags
}

/// [`check_function`], failing fast like [`enforce`].
pub fn enforce_function(func: &Function, form: CfgForm, pass: &str) -> Result<(), CheckFailure> {
    let diags = check_function(func, form, pass);
    if first_error(&diags).is_some() {
        Err(CheckFailure {
            pass: pass.to_string(),
            plan: None,
            diagnostics: diags,
        })
    } else {
        Ok(())
    }
}

/// The checks that stay valid once a function is in **machine-register
/// form** (after register allocation): shape-only structural verification
/// plus CFG reachability.
///
/// Post-allocation, operand indices are physical registers whose class is
/// implied by the consuming opcode — the same index names a GPR, an FPR, or
/// a predicate register depending on position — so the class-sensitive
/// checks (full verification, def-before-use over vregs, predicate
/// consistency) would report false violations and are skipped.
pub fn check_machine_function(func: &Function, form: CfgForm, pass: &str) -> Vec<Diagnostic> {
    if let Err(e) = metaopt_ir::verify::verify_function_shape(func, form) {
        return vec![Diagnostic::new(
            Severity::Error,
            pass,
            &func.name,
            e.message,
        )];
    }
    let mut diags = Vec::new();
    check_reachability(func, pass, &mut diags);
    diags
}

/// [`check_machine_function`], failing fast like [`enforce`].
pub fn enforce_machine_function(
    func: &Function,
    form: CfgForm,
    pass: &str,
) -> Result<(), CheckFailure> {
    let diags = check_machine_function(func, form, pass);
    if first_error(&diags).is_some() {
        Err(CheckFailure {
            pass: pass.to_string(),
            plan: None,
            diagnostics: diags,
        })
    } else {
        Ok(())
    }
}

fn run_function_checks(func: &Function, pass: &str, diags: &mut Vec<Diagnostic>) {
    check_reachability(func, pass, diags);
    check_def_before_use(func, pass, diags);
    check_predicate_consistency(func, pass, diags);
}

/// [`check_program`], failing fast: `Err` carries the pass name and the
/// diagnostics when any error-severity finding exists.
pub fn enforce(prog: &Program, form: CfgForm, pass: &str) -> Result<(), CheckFailure> {
    let diags = check_program(prog, form, pass);
    if first_error(&diags).is_some() {
        Err(CheckFailure {
            pass: pass.to_string(),
            plan: None,
            diagnostics: diags,
        })
    } else {
        Ok(())
    }
}

/// Every block must be reachable from the entry. Passes that rewrite
/// control flow (unrolling, hyperblock formation) must either keep their
/// byproduct blocks wired in or delete them.
fn check_reachability(func: &Function, pass: &str, diags: &mut Vec<Diagnostic>) {
    let mut reachable = BitSet::new(func.blocks.len());
    for b in func.reverse_postorder() {
        reachable.insert(b.index());
    }
    for bi in 0..func.blocks.len() {
        if !reachable.contains(bi) {
            diags.push(
                Diagnostic::new(
                    Severity::Error,
                    pass,
                    &func.name,
                    "block unreachable from entry",
                )
                .at_block(BlockId(bi as u32)),
            );
        }
    }
}

/// No path from entry may reach a read of a register with no prior def.
/// Predicated defs count as assignments: if-converted code assigns under
/// complementary predicates, which this path-insensitive check cannot see
/// through (the structural verifier owns guard well-formedness).
fn check_def_before_use(func: &Function, pass: &str, diags: &mut Vec<Diagnostic>) {
    let dbu = DefBeforeUse::compute(func, PredicatedDefs::CountAsAssign);
    diags.extend(dbu.check(func, pass));
}

/// Predicate registers must be produced only by predicate-producing
/// opcodes: an Int- or Float-producing instruction writing a Pred-class
/// register means a pass rewired a destination without fixing classes.
fn check_predicate_consistency(func: &Function, pass: &str, diags: &mut Vec<Diagnostic>) {
    for (bi, block) in func.blocks.iter().enumerate() {
        for (ii, inst) in block.insts.iter().enumerate() {
            if let Some(d) = inst.dst {
                if func.class_of(d) == RegClass::Pred && inst.op.dst_class() != Some(RegClass::Pred)
                {
                    diags.push(
                        Diagnostic::new(
                            Severity::Error,
                            pass,
                            &func.name,
                            format!("{} written by non-predicate op {}", d, inst.op),
                        )
                        .at_inst(BlockId(bi as u32), ii),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_ir::builder::FunctionBuilder;

    fn clean_program() -> Program {
        let mut fb = FunctionBuilder::new("main");
        let a = fb.movi(2);
        let b = fb.movi(40);
        let c = fb.add(a, b);
        fb.ret(Some(c));
        let mut prog = Program::new();
        prog.add_function(fb.finish());
        prog
    }

    #[test]
    fn clean_program_has_no_findings() {
        let prog = clean_program();
        assert!(check_program(&prog, CfgForm::Canonical, "opt").is_empty());
        assert!(enforce(&prog, CfgForm::Canonical, "opt").is_ok());
    }

    #[test]
    fn unreachable_block_is_reported() {
        let mut fb = FunctionBuilder::new("orphan");
        let dead = fb.new_block();
        let a = fb.movi(1);
        fb.ret(Some(a));
        fb.switch_to(dead);
        fb.ret(None);
        let mut prog = Program::new();
        prog.add_function(fb.finish());
        let diags = check_program(&prog, CfgForm::Canonical, "unroll");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("unreachable"));
        assert_eq!(diags[0].block, Some(dead));
        let err = enforce(&prog, CfgForm::Canonical, "unroll").unwrap_err();
        assert_eq!(err.pass, "unroll");
        assert!(err.to_string().contains("after pass 'unroll'"));
    }

    #[test]
    fn structural_break_short_circuits() {
        let mut prog = clean_program();
        prog.funcs[0].blocks[0].insts.pop(); // drop the terminator
        let diags = check_program(&prog, CfgForm::Canonical, "schedule");
        assert_eq!(diags.len(), 1);
        assert!(
            diags[0].message.contains("must end with br/ret"),
            "{diags:?}"
        );
    }
}
