//! Structured diagnostics with human-readable and JSON rendering.
//!
//! Every check in this crate reports through [`Diagnostic`] rather than
//! bare strings, so callers can attribute a finding to the pass that
//! produced the broken IR, filter by severity, and emit machine-readable
//! output for tooling.

use metaopt_ir::BlockId;
use std::fmt;

/// How bad a finding is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Informational note; never fails a check.
    Info,
    /// Suspicious but not invariant-breaking.
    Warning,
    /// An IR invariant is violated; the producing pass is buggy.
    Error,
}

impl Severity {
    /// Lowercase label used in both output formats.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding, attributed to the pass whose output was being checked.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Finding severity.
    pub severity: Severity,
    /// The pass after which the check ran (e.g. `"hyperblock"`), or a
    /// checker-chosen tag such as `"input"` for pre-pipeline IR.
    pub pass: String,
    /// Function the finding is in.
    pub function: String,
    /// Block the finding is in, when attributable to one.
    pub block: Option<BlockId>,
    /// Instruction index within the block, when attributable to one.
    pub inst: Option<usize>,
    /// The pipeline plan under which the finding was produced, when known.
    /// Lets ablation sweeps and plan genomes attribute bad IR to the plan
    /// that ordered the passes, not just the pass that ran last.
    pub plan: Option<String>,
    /// What is wrong.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic with no location.
    pub fn new(
        severity: Severity,
        pass: impl Into<String>,
        function: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity,
            pass: pass.into(),
            function: function.into(),
            block: None,
            inst: None,
            plan: None,
            message: message.into(),
        }
    }

    /// Attach a block location.
    pub fn at_block(mut self, b: BlockId) -> Self {
        self.block = Some(b);
        self
    }

    /// Attach an instruction location (implies a block).
    pub fn at_inst(mut self, b: BlockId, i: usize) -> Self {
        self.block = Some(b);
        self.inst = Some(i);
        self
    }

    /// Attach the pipeline plan that produced the IR being checked.
    pub fn with_plan(mut self, plan: impl Into<String>) -> Self {
        self.plan = Some(plan.into());
        self
    }

    /// One-line human-readable rendering:
    /// `error[hyperblock] main b2[3]: use of v7 before definition`.
    pub fn render(&self) -> String {
        let mut loc = self.function.clone();
        if let Some(b) = self.block {
            loc.push_str(&format!(" {b}"));
            if let Some(i) = self.inst {
                loc.push_str(&format!("[{i}]"));
            }
        }
        let origin = match &self.plan {
            Some(plan) => format!("{}@{plan}", self.pass),
            None => self.pass.clone(),
        };
        format!("{}[{}] {}: {}", self.severity, origin, loc, self.message)
    }

    /// Machine-readable rendering as one JSON object.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            format!("\"severity\":\"{}\"", self.severity),
            format!("\"pass\":{}", json_string(&self.pass)),
            format!("\"function\":{}", json_string(&self.function)),
        ];
        if let Some(b) = self.block {
            fields.push(format!("\"block\":{}", b.index()));
        }
        if let Some(i) = self.inst {
            fields.push(format!("\"inst\":{i}"));
        }
        if let Some(plan) = &self.plan {
            fields.push(format!("\"plan\":{}", json_string(plan)));
        }
        fields.push(format!("\"message\":{}", json_string(&self.message)));
        format!("{{{}}}", fields.join(","))
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Render a batch of diagnostics as a JSON array (one object per finding).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!("[{}]", items.join(","))
}

/// Render a batch of diagnostics as human-readable lines.
pub fn render_lines(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(Diagnostic::render)
        .collect::<Vec<_>>()
        .join("\n")
}

/// The first error-severity diagnostic, if any — the checker's pass/fail bit.
pub fn first_error(diags: &[Diagnostic]) -> Option<&Diagnostic> {
    diags.iter().find(|d| d.severity == Severity::Error)
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_human_readable_with_location() {
        let d = Diagnostic::new(Severity::Error, "regalloc", "main", "spill slot clobbered")
            .at_inst(BlockId(2), 5);
        assert_eq!(
            d.render(),
            "error[regalloc] main b2[5]: spill slot clobbered"
        );
        let d2 = Diagnostic::new(Severity::Info, "lint", "f", "note");
        assert_eq!(d2.render(), "info[lint] f: note");
    }

    #[test]
    fn renders_json_with_escaping() {
        let d = Diagnostic::new(Severity::Warning, "p", "f", "uses \"quotes\"\nand newline")
            .at_block(BlockId(1));
        let j = d.to_json();
        assert_eq!(
            j,
            "{\"severity\":\"warning\",\"pass\":\"p\",\"function\":\"f\",\"block\":1,\
             \"message\":\"uses \\\"quotes\\\"\\nand newline\"}"
        );
        let arr = render_json(&[d.clone(), d]);
        assert!(arr.starts_with('[') && arr.ends_with(']'));
        assert_eq!(arr.matches("\"pass\"").count(), 2);
    }

    #[test]
    fn plan_attribution_shows_in_both_renderings() {
        let d = Diagnostic::new(Severity::Error, "schedule", "main", "broken bundle")
            .with_plan("regalloc,schedule");
        assert_eq!(
            d.render(),
            "error[schedule@regalloc,schedule] main: broken bundle"
        );
        assert!(d.to_json().contains("\"plan\":\"regalloc,schedule\""));
        // Without a plan the JSON shape is unchanged (no "plan" key).
        let bare = Diagnostic::new(Severity::Error, "schedule", "main", "broken bundle");
        assert!(!bare.to_json().contains("\"plan\""));
    }

    #[test]
    fn json_round_trips_through_the_trace_parser() {
        // Dogfood the hand-rolled metaopt-trace JSON parser: everything
        // render_json emits must parse, and every field must come back with
        // its value intact (including escapes and optional fields).
        let diags = vec![
            Diagnostic::new(Severity::Warning, "p", "f", "uses \"quotes\"\nand newline")
                .at_block(BlockId(1)),
            Diagnostic::new(Severity::Error, "regalloc", "main", "tab\there")
                .at_inst(BlockId(2), 5)
                .with_plan("prefetch,regalloc,schedule"),
            Diagnostic::new(Severity::Info, "absint", "f", "control \u{1} char"),
        ];
        let v = metaopt_trace::json::parse(&render_json(&diags)).expect("parses");
        let arr = v.as_arr().expect("is an array");
        assert_eq!(arr.len(), diags.len());
        for (obj, d) in arr.iter().zip(&diags) {
            assert_eq!(
                obj.get("severity").and_then(|s| s.as_str()),
                Some(d.severity.label())
            );
            assert_eq!(obj.get("pass").and_then(|s| s.as_str()), Some(&d.pass[..]));
            assert_eq!(
                obj.get("function").and_then(|s| s.as_str()),
                Some(&d.function[..])
            );
            assert_eq!(
                obj.get("message").and_then(|s| s.as_str()),
                Some(&d.message[..])
            );
            assert_eq!(
                obj.get("block").and_then(|b| b.as_u64()),
                d.block.map(|b| b.index() as u64)
            );
            assert_eq!(
                obj.get("inst").and_then(|i| i.as_u64()),
                d.inst.map(|i| i as u64)
            );
            assert_eq!(obj.get("plan").and_then(|p| p.as_str()), d.plan.as_deref());
        }
        // The empty batch is the empty array.
        assert_eq!(render_json(&[]), "[]");
        assert!(metaopt_trace::json::parse("[]").is_ok());
    }

    #[test]
    fn first_error_skips_lower_severities() {
        let diags = vec![
            Diagnostic::new(Severity::Info, "a", "f", "i"),
            Diagnostic::new(Severity::Warning, "b", "f", "w"),
            Diagnostic::new(Severity::Error, "c", "f", "e"),
        ];
        assert_eq!(first_error(&diags).unwrap().pass, "c");
        assert!(first_error(&diags[..2]).is_none());
    }

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}
