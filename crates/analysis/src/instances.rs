//! Classical dataflow analyses instantiated over the generic worklist
//! solver in [`metaopt_ir::dataflow`].
//!
//! All three follow the IR's predication semantics: a *predicated*
//! definition may not execute, so it never kills (reaching definitions,
//! available expressions) and never definitely assigns (def-before-use)
//! unless the caller opts into counting it.

use crate::diagnostics::{Diagnostic, Severity};
use metaopt_ir::dataflow::{solve, Direction, GenKill, Join};
use metaopt_ir::util::BitSet;
use metaopt_ir::{BlockId, Function, Inst, Opcode, VReg};

// ---------------------------------------------------------------- reaching

/// One definition site in a function.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DefSite {
    /// The implicit definition of a parameter at function entry.
    Param(VReg),
    /// `blocks[block].insts[inst]` defines `vreg` (possibly under a guard).
    Inst {
        /// Block containing the defining instruction.
        block: BlockId,
        /// Index of the defining instruction within the block.
        inst: usize,
        /// The register defined.
        vreg: VReg,
    },
}

impl DefSite {
    /// The register this site defines.
    pub fn vreg(&self) -> VReg {
        match *self {
            DefSite::Param(v) => v,
            DefSite::Inst { vreg, .. } => vreg,
        }
    }
}

/// Reaching definitions: which definition sites may reach each block
/// boundary. Forward-may; a predicated def reaches onward but does not
/// kill other defs of the same register.
#[derive(Clone, Debug)]
pub struct ReachingDefs {
    /// All definition sites, parameters first.
    pub sites: Vec<DefSite>,
    /// Sites (by index into `sites`) that may reach each block's entry.
    pub entry: Vec<BitSet>,
    /// Sites that may reach each block's exit.
    pub exit: Vec<BitSet>,
}

impl ReachingDefs {
    /// Compute reaching definitions for `func`.
    pub fn compute(func: &Function) -> Self {
        let nb = func.blocks.len();
        let mut sites: Vec<DefSite> = func.params.iter().map(|&p| DefSite::Param(p)).collect();
        for (bi, block) in func.blocks.iter().enumerate() {
            for (ii, inst) in block.insts.iter().enumerate() {
                if let Some(d) = inst.dst {
                    sites.push(DefSite::Inst {
                        block: BlockId(bi as u32),
                        inst: ii,
                        vreg: d,
                    });
                }
            }
        }
        // sites_of[v]: site indices defining vreg v.
        let mut sites_of: Vec<Vec<usize>> = vec![Vec::new(); func.num_vregs()];
        for (si, s) in sites.iter().enumerate() {
            sites_of[s.vreg().index()].push(si);
        }

        let ns = sites.len();
        let mut problem = GenKill::new(Direction::Forward, Join::May, nb, ns);
        for &p in &func.params {
            // Parameters reach from the boundary; an unpredicated redefinition
            // kills them like any other site.
            let si = sites_of[p.index()][0];
            problem.boundary.insert(si);
        }
        let mut site_idx = func.params.len();
        for (bi, block) in func.blocks.iter().enumerate() {
            for inst in &block.insts {
                if let Some(d) = inst.dst {
                    let si = site_idx;
                    site_idx += 1;
                    if inst.pred.is_none() {
                        for &other in &sites_of[d.index()] {
                            if other != si {
                                problem.kill[bi].insert(other);
                                problem.gen[bi].remove(other);
                            }
                        }
                    }
                    problem.gen[bi].insert(si);
                    problem.kill[bi].remove(si);
                }
            }
        }

        let sol = solve(func, &problem);
        ReachingDefs {
            sites,
            entry: sol.entry,
            exit: sol.exit,
        }
    }

    /// Sites defining `v` that may reach the entry of `b`.
    pub fn reaching_defs_of(&self, b: BlockId, v: VReg) -> Vec<&DefSite> {
        self.entry[b.index()]
            .iter()
            .map(|si| &self.sites[si])
            .filter(|s| s.vreg() == v)
            .collect()
    }
}

// ---------------------------------------------------------- def-before-use

/// How def-before-use treats predicated definitions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PredicatedDefs {
    /// A predicated def counts as an assignment. Right for if-converted
    /// code, where complementary predicates cover all paths.
    CountAsAssign,
    /// Only unpredicated defs count ("definite assignment" proper).
    Strict,
}

/// Definite-assignment analysis: forward-must over the vreg domain.
///
/// `entry[b]` holds the registers assigned on *every* path from the
/// function entry to the top of `b`; parameters are assigned at the
/// boundary.
#[derive(Clone, Debug)]
pub struct DefBeforeUse {
    /// Registers definitely assigned at each block's entry.
    pub entry: Vec<BitSet>,
    /// Registers definitely assigned at each block's exit.
    pub exit: Vec<BitSet>,
    mode: PredicatedDefs,
}

impl DefBeforeUse {
    /// Compute definite assignment for `func`.
    pub fn compute(func: &Function, mode: PredicatedDefs) -> Self {
        let nb = func.blocks.len();
        let nv = func.num_vregs();
        let mut problem = GenKill::new(Direction::Forward, Join::Must, nb, nv);
        for &p in &func.params {
            problem.boundary.insert(p.index());
        }
        for (bi, block) in func.blocks.iter().enumerate() {
            for inst in &block.insts {
                if let Some(d) = inst.dst {
                    if inst.pred.is_none() || mode == PredicatedDefs::CountAsAssign {
                        problem.gen[bi].insert(d.index());
                    }
                }
            }
        }
        let sol = solve(func, &problem);
        DefBeforeUse {
            entry: sol.entry,
            exit: sol.exit,
            mode,
        }
    }

    /// Report every read of a register that is not assigned on some path
    /// from entry, attributing findings to `pass`.
    ///
    /// Blocks unreachable from the entry are skipped: no path reaches them,
    /// so no read in them can observe an unassigned register at run time
    /// (reachability itself is a separate check).
    pub fn check(&self, func: &Function, pass: &str) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let reachable: BitSet = {
            let mut r = BitSet::new(func.blocks.len());
            for b in func.reverse_postorder() {
                r.insert(b.index());
            }
            r
        };
        for (bi, block) in func.blocks.iter().enumerate() {
            if !reachable.contains(bi) {
                continue;
            }
            let mut assigned = self.entry[bi].clone();
            for (ii, inst) in block.insts.iter().enumerate() {
                for r in inst.reads() {
                    if !assigned.contains(r.index()) {
                        diags.push(
                            Diagnostic::new(
                                Severity::Error,
                                pass,
                                &func.name,
                                format!("use of {r} before definition"),
                            )
                            .at_inst(BlockId(bi as u32), ii),
                        );
                    }
                }
                if let Some(d) = inst.dst {
                    if inst.pred.is_none() || self.mode == PredicatedDefs::CountAsAssign {
                        assigned.insert(d.index());
                    }
                }
            }
        }
        diags
    }
}

// ------------------------------------------------------- available exprs

/// A pure computation's identity: opcode, operands, and immediates.
/// Two instructions with equal keys compute the same value from the same
/// inputs (the IR has no hidden state on these opcodes).
#[derive(Clone, PartialEq, Debug)]
pub struct ExprKey {
    /// The computing opcode.
    pub op: Opcode,
    /// Register operands.
    pub args: Vec<VReg>,
    /// Integer immediate.
    pub imm: i64,
    /// Float immediate, compared bitwise.
    pub fimm_bits: u64,
}

impl ExprKey {
    /// The key of `inst`, if it is a pure, unpredicated, register-producing
    /// computation (no memory, control, or call effects).
    pub fn of(inst: &Inst) -> Option<ExprKey> {
        if inst.pred.is_some()
            || inst.dst.is_none()
            || inst.op.is_control()
            || inst.op.is_mem()
            // Constants are excluded: "availability" of a constant is
            // trivially true and only bloats the domain.
            || matches!(inst.op, Opcode::MovI | Opcode::PMovI | Opcode::FMovI)
        {
            return None;
        }
        Some(ExprKey {
            op: inst.op,
            args: inst.args.clone(),
            imm: inst.imm,
            fimm_bits: inst.fimm.to_bits(),
        })
    }
}

/// Available expressions: forward-must over the distinct [`ExprKey`]s of a
/// function. An expression is available at a point when it was computed on
/// every path to it and no operand has been redefined since.
#[derive(Clone, Debug)]
pub struct AvailableExprs {
    /// The function's distinct pure expressions.
    pub exprs: Vec<ExprKey>,
    /// Expressions (by index into `exprs`) available at each block's entry.
    pub entry: Vec<BitSet>,
    /// Expressions available at each block's exit.
    pub exit: Vec<BitSet>,
}

impl AvailableExprs {
    /// Compute available expressions for `func`.
    pub fn compute(func: &Function) -> Self {
        // Number the distinct expressions.
        let mut exprs: Vec<ExprKey> = Vec::new();
        let mut key_of_inst: Vec<Vec<Option<usize>>> = Vec::with_capacity(func.blocks.len());
        for block in &func.blocks {
            let mut row = Vec::with_capacity(block.insts.len());
            for inst in &block.insts {
                row.push(ExprKey::of(inst).map(|k| {
                    exprs.iter().position(|e| *e == k).unwrap_or_else(|| {
                        exprs.push(k);
                        exprs.len() - 1
                    })
                }));
            }
            key_of_inst.push(row);
        }
        let ne = exprs.len();
        // users[v]: expressions with v as an operand.
        let mut users: Vec<Vec<usize>> = vec![Vec::new(); func.num_vregs()];
        for (ei, e) in exprs.iter().enumerate() {
            for a in &e.args {
                users[a.index()].push(ei);
            }
        }

        let nb = func.blocks.len();
        let mut problem = GenKill::new(Direction::Forward, Join::Must, nb, ne);
        for (bi, block) in func.blocks.iter().enumerate() {
            for (ii, inst) in block.insts.iter().enumerate() {
                let computed = key_of_inst[bi][ii];
                if let Some(ei) = computed {
                    problem.gen[bi].insert(ei);
                    problem.kill[bi].remove(ei);
                }
                if let Some(d) = inst.dst {
                    // Any def (even predicated: it *may* execute) invalidates
                    // expressions reading the overwritten register.
                    for &ei in &users[d.index()] {
                        problem.gen[bi].remove(ei);
                        problem.kill[bi].insert(ei);
                    }
                }
            }
        }

        let sol = solve(func, &problem);
        AvailableExprs {
            exprs,
            entry: sol.entry,
            exit: sol.exit,
        }
    }

    /// Is `key` available on entry to `b`?
    pub fn available_in(&self, b: BlockId, key: &ExprKey) -> bool {
        self.exprs
            .iter()
            .position(|e| e == key)
            .is_some_and(|ei| self.entry[b.index()].contains(ei))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_ir::builder::FunctionBuilder;
    use metaopt_ir::types::RegClass;

    /// entry(b0) → hdr(b1) → body(b2) → hdr, hdr → exit(b3).
    /// `acc`/`i` are loop-carried mutable cells, `t = x + y` is computed in
    /// entry and recomputed (same operands) in the body.
    fn loop_function() -> (Function, VReg, VReg, VReg, VReg) {
        let mut fb = FunctionBuilder::new("loopy");
        let n = fb.param(RegClass::Int);
        let x = fb.param(RegClass::Int);
        let hdr = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        let t = fb.add(x, n);
        let i = fb.new_vreg(RegClass::Int);
        let z = fb.movi(0);
        fb.push(Inst::new(Opcode::Mov).dst(i).args(&[z]));
        fb.br(hdr);
        fb.switch_to(hdr);
        let p = fb.cmp_lt(i, n);
        fb.branch(p, body, exit);
        fb.switch_to(body);
        let t2 = fb.add(x, n);
        let i2 = fb.add(i, t2);
        fb.push(Inst::new(Opcode::Mov).dst(i).args(&[i2]));
        fb.br(hdr);
        fb.switch_to(exit);
        fb.ret(Some(t));
        (fb.finish(), n, x, t, i)
    }

    #[test]
    fn reaching_defs_flow_around_the_loop() {
        let (f, n, _x, _t, i) = loop_function();
        let rd = ReachingDefs::compute(&f);
        let hdr = BlockId(1);
        // Two defs of `i` (entry Mov and body Mov) both reach the header.
        assert_eq!(rd.reaching_defs_of(hdr, i).len(), 2);
        // The parameter def of `n` reaches everywhere (never redefined).
        for b in 0..f.blocks.len() {
            let reaching = rd.reaching_defs_of(BlockId(b as u32), n);
            assert_eq!(reaching.len(), 1, "param n at block {b}");
            assert!(matches!(reaching[0], DefSite::Param(_)));
        }
    }

    #[test]
    fn predicated_def_reaches_without_killing() {
        let mut fb = FunctionBuilder::new("p");
        let a = fb.param(RegClass::Int);
        let b1 = fb.new_block();
        let v = fb.movi(1);
        let p = fb.cmp_lti(a, 0);
        fb.push(Inst::new(Opcode::MovI).dst(v).imm(2).guarded(p));
        fb.br(b1);
        fb.switch_to(b1);
        fb.ret(Some(v));
        let f = fb.finish();
        let rd = ReachingDefs::compute(&f);
        // Both the plain def and the predicated overwrite reach b1.
        assert_eq!(rd.reaching_defs_of(BlockId(1), v).len(), 2);
    }

    #[test]
    fn def_before_use_clean_on_loop() {
        let (f, ..) = loop_function();
        let dbu = DefBeforeUse::compute(&f, PredicatedDefs::Strict);
        assert!(dbu.check(&f, "test").is_empty());
    }

    #[test]
    fn def_before_use_catches_one_armed_assignment() {
        // v assigned only on the true edge of a diamond, used at the join.
        let mut fb = FunctionBuilder::new("onearm");
        let a = fb.param(RegClass::Int);
        let t = fb.new_block();
        let e = fb.new_block();
        let j = fb.new_block();
        let v = fb.new_vreg(RegClass::Int);
        let p = fb.cmp_lti(a, 0);
        fb.branch(p, t, e);
        fb.switch_to(t);
        let one = fb.movi(1);
        fb.push(Inst::new(Opcode::Mov).dst(v).args(&[one]));
        fb.br(j);
        fb.switch_to(e);
        fb.br(j);
        fb.switch_to(j);
        fb.ret(Some(v));
        let f = fb.finish();
        let dbu = DefBeforeUse::compute(&f, PredicatedDefs::Strict);
        let diags = dbu.check(&f, "frontend");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].pass, "frontend");
        assert_eq!(diags[0].block, Some(BlockId(3)));
        assert!(diags[0].message.contains("before definition"));
    }

    #[test]
    fn predicated_assign_mode_accepts_if_converted_pattern() {
        // v = 1 (if p); v = 2 (if !p); use v — fine when predicated defs
        // count, an error under the strict rule.
        let mut fb = FunctionBuilder::new("ifconv");
        let a = fb.param(RegClass::Int);
        let v = fb.new_vreg(RegClass::Int);
        let p = fb.cmp_lti(a, 0);
        let np = fb.new_vreg(RegClass::Pred);
        fb.push(Inst::new(Opcode::PNot).dst(np).args(&[p]));
        fb.push(Inst::new(Opcode::MovI).dst(v).imm(1).guarded(p));
        fb.push(Inst::new(Opcode::MovI).dst(v).imm(2).guarded(np));
        fb.ret(Some(v));
        let f = fb.finish();
        let lax = DefBeforeUse::compute(&f, PredicatedDefs::CountAsAssign);
        assert!(lax.check(&f, "hyperblock").is_empty());
        let strict = DefBeforeUse::compute(&f, PredicatedDefs::Strict);
        assert_eq!(strict.check(&f, "hyperblock").len(), 1);
    }

    #[test]
    fn available_exprs_must_join_at_loop_header() {
        let (f, n, x, ..) = loop_function();
        let av = AvailableExprs::compute(&f);
        let key = ExprKey {
            op: Opcode::Add,
            args: vec![x, n],
            imm: 0,
            fimm_bits: 0.0f64.to_bits(),
        };
        // x + n is computed in the entry block and rematerialized in the
        // body; neither operand is ever redefined, so it is available at
        // the header and the exit despite the loop.
        assert!(av.available_in(BlockId(1), &key), "header");
        assert!(av.available_in(BlockId(3), &key), "exit");
    }

    #[test]
    fn redefining_an_operand_kills_availability() {
        let mut fb = FunctionBuilder::new("kill");
        let a = fb.param(RegClass::Int);
        let b1 = fb.new_block();
        let cell = fb.new_vreg(RegClass::Int);
        fb.push(Inst::new(Opcode::Mov).dst(cell).args(&[a]));
        let s = fb.add(cell, a);
        fb.push(Inst::new(Opcode::Mov).dst(cell).args(&[s]));
        fb.br(b1);
        fb.switch_to(b1);
        fb.ret(Some(cell));
        let f = fb.finish();
        let av = AvailableExprs::compute(&f);
        let key = ExprKey {
            op: Opcode::Add,
            args: vec![cell, a],
            imm: 0,
            fimm_bits: 0.0f64.to_bits(),
        };
        assert!(
            !av.available_in(BlockId(1), &key),
            "cell was redefined after cell + a"
        );
    }

    #[test]
    fn constants_are_not_tracked_as_expressions() {
        let mut fb = FunctionBuilder::new("c");
        let a = fb.movi(7);
        fb.ret(Some(a));
        let f = fb.finish();
        let av = AvailableExprs::compute(&f);
        assert!(av.exprs.is_empty());
    }
}
