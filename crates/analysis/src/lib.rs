#![warn(missing_docs)]
//! # metaopt-analysis
//!
//! Static analysis layer for the Meta Optimization reproduction: dataflow
//! analyses, structured [`diagnostics`], and the inter-pass invariant
//! [`checker`] the compiler driver runs between passes when IR checking is
//! enabled.
//!
//! The generic worklist solver itself lives in [`metaopt_ir::dataflow`]
//! (liveness in `metaopt-ir` is an instance of it and the IR crate cannot
//! depend on this one); this crate re-exports it and adds the classical
//! [`instances`] — reaching definitions, def-before-use, and available
//! expressions — plus everything built on top of them.
//!
//! On top of the structural checker sit two semantic tiers (DESIGN.md §13):
//! [`absint`], an abstract interpreter over intervals and initialization
//! state that flags statically-provable faults in post-pass IR, and
//! [`validate`], per-pass translation validators that prove an optimization
//! pass preserved the meaning of its input where that is decidable.

pub mod absint;
pub mod checker;
pub mod diagnostics;
pub mod instances;
pub mod validate;

pub use absint::{analyze_function, AbsForm};
pub use checker::{
    check_function, check_machine_function, check_program, enforce, enforce_function,
    enforce_machine_function, CheckFailure,
};
pub use diagnostics::{first_error, render_json, render_lines, Diagnostic, Severity};
pub use instances::{AvailableExprs, DefBeforeUse, DefSite, ExprKey, PredicatedDefs, ReachingDefs};
/// The generic worklist dataflow solver these analyses are instances of.
pub use metaopt_ir::dataflow;
pub use validate::{
    validate_hyperblock, validate_prefetch, validate_regalloc, validate_schedule, validate_unroll,
};
