//! Per-pass translation validation: prove that a pass's output means the
//! same thing as its input, where that is decidable.
//!
//! Each validator takes the IR **before** and **after** one pass and either
//! reconstructs a semantic correspondence or reports `Error` diagnostics
//! pinned to the offending block/instruction:
//!
//! * [`validate_regalloc`] — rebuilds the virtual→physical location map
//!   (register or spill slot) instruction by instruction from the rewrite
//!   shapes, and cross-checks it against an independently computed
//!   interference relation.
//! * [`validate_schedule`] — matches every bundled instruction back to the
//!   machine-form IR, recomputes data/memory dependences, and requires the
//!   bundle order to respect them and the machine's issue-width limits.
//! * [`validate_unroll`] — re-derives the counted-loop trip count from
//!   first principles and checks the replicated body is exact and the
//!   factor divides the trip count.
//! * [`validate_prefetch`] — checks the output is the input with only
//!   non-binding `Prefetch` instructions inserted.
//! * [`validate_hyperblock`] — best-effort checks on if-converted code:
//!   opaque-call preservation and predicate coverage of multiply-defined
//!   cells.
//!
//! Soundness stance (DESIGN.md §13): validators must **never** reject a
//! compile the reference tiers accept. Every `Error` here corresponds to a
//! broken correspondence that would be a real miscompile; anything
//! heuristic or undecidable is reported as `Warning` (which never fails a
//! check) or not at all.

use crate::diagnostics::{Diagnostic, Severity};
use metaopt_ir::liveness::Liveness;
use metaopt_ir::util::BitSet;
use metaopt_ir::{BlockId, Function, Inst, Opcode, RegClass, VReg, Width};
use metaopt_sim::machine::{unit_of, UnitKind};
use metaopt_sim::{MachineConfig, MachineProgram};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Register allocation
// ---------------------------------------------------------------------------

// The allocator's register-file reservations (kept in lockstep with
// `metaopt_compiler::regalloc`): int r0 is the zero/spill-base register and
// r1–r3 are spill temps, floats reserve f0–f2, predicates p0–p3. Allocated
// vregs always land at or above `FIRST_*`.
const INT_TEMPS: [u32; 3] = [1, 2, 3];
const FLOAT_TEMPS: [u32; 3] = [0, 1, 2];
const PRED_TEMPS: [u32; 4] = [0, 1, 2, 3];

fn first_alloc(class: RegClass) -> u32 {
    match class {
        RegClass::Int => 4,
        RegClass::Float => 3,
        RegClass::Pred => 4,
    }
}

fn file_size(class: RegClass, m: &MachineConfig) -> u32 {
    match class {
        RegClass::Int => m.gpr as u32,
        RegClass::Float => m.fpr as u32,
        RegClass::Pred => m.pred as u32,
    }
}

/// Where a virtual register lives after allocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Loc {
    Phys(u32),
    Slot(i64),
}

fn class_of_operand(inst: &Inst, ix: usize) -> RegClass {
    match inst.op.arg_classes() {
        Some(cs) => cs[ix],
        None => RegClass::Int, // Ret value
    }
}

/// Walking state over one block's post-allocation instruction stream.
struct PostCursor<'a> {
    insts: &'a [Inst],
    ix: usize,
}

impl<'a> PostCursor<'a> {
    fn peek(&self, ahead: usize) -> Option<&'a Inst> {
        self.insts.get(self.ix + ahead)
    }
    fn take(&mut self) -> Option<&'a Inst> {
        let i = self.insts.get(self.ix);
        self.ix += 1;
        i
    }
}

/// Match the integer half of a spill reload: `Ld.8 r<temp> <- [r0 + slot]`,
/// unpredicated, temp one of the reserved r1–r3. All spill traffic is
/// addressed off the hard-wired zero register r0, which rewritten code can
/// never name otherwise (assignments start at r4, temps at r1), so this
/// shape is unambiguous. Returns `(temp, slot)`.
fn int_reload(inst: &Inst, spill_base: i64) -> Option<(u32, i64)> {
    let t = inst.dst?.0;
    (inst.op == Opcode::Ld(Width::B8)
        && INT_TEMPS.contains(&t)
        && inst.args.len() == 1
        && inst.args[0] == VReg(0)
        && inst.imm >= spill_base
        && inst.pred.is_none())
    .then_some((t, inst.imm))
}

/// Match a float spill reload into one of the non-reserved float temps
/// (f2 is the spilled-destination temp and never holds a reloaded operand).
fn float_reload(inst: &Inst, spill_base: i64) -> Option<(u32, i64)> {
    let t = inst.dst?.0;
    (inst.op == Opcode::FLd
        && FLOAT_TEMPS[..FLOAT_TEMPS.len() - 1].contains(&t)
        && inst.args.len() == 1
        && inst.args[0] == VReg(0)
        && inst.imm >= spill_base
        && inst.pred.is_none())
    .then_some((t, inst.imm))
}

/// Match the `I2P` half of a predicate spill reload pair following `ld`:
/// `I2P p<temp> <- r<ld temp>`, unpredicated, temp one of p0–p2 (p3 is the
/// spilled-destination temp; a rewritten core `I2P` writes either p3 or an
/// allocated register, so the pair cannot be confused with one).
fn pred_reload_cvt(inst: &Inst, ld_temp: u32) -> Option<u32> {
    let t = inst.dst?.0;
    (inst.op == Opcode::I2P
        && PRED_TEMPS[..PRED_TEMPS.len() - 1].contains(&t)
        && inst.args.len() == 1
        && inst.args[0] == VReg(ld_temp)
        && inst.pred.is_none())
    .then_some(t)
}

/// Validate that `post` is `pre` rewritten by the register allocator:
/// every instruction maps back with a consistent virtual→physical (or
/// spill-slot) assignment, spill code has the exact reserved-temp shapes,
/// and no two interfering virtual registers share a physical register or
/// slot. `base_mem_size` is the pre-allocation memory image size (globals),
/// `mem_size` the post-allocation size (globals + spill area).
pub fn validate_regalloc(
    pre: &Function,
    post: &Function,
    machine: &MachineConfig,
    base_mem_size: usize,
    mem_size: usize,
    pass: &str,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let spill_base = ((base_mem_size + 7) & !7) as i64;
    if pre.blocks.len() != post.blocks.len() {
        diags.push(Diagnostic::new(
            Severity::Error,
            pass,
            &pre.name,
            format!(
                "regalloc changed the block count ({} -> {})",
                pre.blocks.len(),
                post.blocks.len()
            ),
        ));
        return diags;
    }

    // vreg -> location, built up as the walk discovers each vreg.
    let mut loc: Vec<Option<Loc>> = vec![None; pre.num_vregs()];
    let mut bind = |diags: &mut Vec<Diagnostic>, v: VReg, l: Loc, at: (usize, usize)| match loc
        .get(v.index())
        .copied()
        .flatten()
    {
        None => {
            if let Some(slot) = loc.get_mut(v.index()) {
                *slot = Some(l);
            }
        }
        Some(prev) if prev == l => {}
        Some(prev) => diags.push(
            Diagnostic::new(
                Severity::Error,
                pass,
                &pre.name,
                format!("{v} mapped to two locations: {prev:?} and {l:?}"),
            )
            .at_inst(BlockId(at.0 as u32), at.1),
        ),
    };

    'blocks: for bi in 0..pre.blocks.len() {
        let mut cur = PostCursor {
            insts: &post.blocks[bi].insts,
            ix: 0,
        };
        for (ii, p) in pre.blocks[bi].insts.iter().enumerate() {
            let here = (bi, ii);
            let err = |diags: &mut Vec<Diagnostic>, msg: String| {
                diags.push(
                    Diagnostic::new(Severity::Error, pass, &pre.name, msg)
                        .at_inst(BlockId(bi as u32), ii),
                );
            };
            // Collect the contiguous spill-reload group preceding the core
            // instruction: int reloads, float reloads, and Ld+I2P predicate
            // pairs. Which operand each reload serves is decided below by
            // inspecting which temp each core operand names — allocated
            // registers never alias the reserved temps, so the attribution
            // is unambiguous.
            let mut reloads_int: Vec<(u32, i64, bool)> = Vec::new(); // (temp, slot, used)
            let mut reloads_float: Vec<(u32, i64, bool)> = Vec::new();
            let mut reloads_pred: Vec<(u32, i64, bool)> = Vec::new();
            let mut ld_temps: Vec<u32> = Vec::new(); // r-temps written by any reload Ld
            while let Some(i0) = cur.peek(0) {
                if let Some((t, slot)) = float_reload(i0, spill_base) {
                    if reloads_float.iter().any(|e| e.0 == t) {
                        err(&mut diags, format!("temp f{t} reloaded twice"));
                    }
                    reloads_float.push((t, slot, false));
                    cur.take();
                } else if let Some((lt, slot)) = int_reload(i0, spill_base) {
                    if ld_temps.contains(&lt) {
                        err(
                            &mut diags,
                            format!("temp r{lt} clobbered by a second reload"),
                        );
                    }
                    ld_temps.push(lt);
                    if let Some(pt) = cur.peek(1).and_then(|i1| pred_reload_cvt(i1, lt)) {
                        if reloads_pred.iter().any(|e| e.0 == pt) {
                            err(&mut diags, format!("temp p{pt} reloaded twice"));
                        }
                        reloads_pred.push((pt, slot, false));
                        cur.take();
                        cur.take();
                    } else {
                        reloads_int.push((lt, slot, false));
                        cur.take();
                    }
                } else {
                    break;
                }
            }

            // The rewritten core instruction.
            let Some(core) = cur.take() else {
                err(
                    &mut diags,
                    format!("{} missing from post-allocation stream", p.op),
                );
                continue 'blocks;
            };
            if core.op != p.op
                || core.imm != p.imm
                || core.fimm.to_bits() != p.fimm.to_bits()
                || core.target != p.target
                || core.args.len() != p.args.len()
            {
                err(
                    &mut diags,
                    format!("instruction shape changed: {} became {}", p.op, core.op),
                );
                continue 'blocks;
            }

            // Guard correspondence: a temp guard must name a predicate
            // reload, anything else must be an allocated register.
            match (p.pred, core.pred) {
                (None, None) => {}
                (Some(gv), Some(got)) => {
                    if got.0 < first_alloc(RegClass::Pred) {
                        match reloads_pred.iter_mut().find(|e| e.0 == got.0) {
                            Some(e) => {
                                e.2 = true;
                                bind(&mut diags, gv, Loc::Slot(e.1), here);
                            }
                            None => err(
                                &mut diags,
                                format!("guard reads temp p{} with no reload", got.0),
                            ),
                        }
                    } else {
                        check_phys(&mut diags, pass, pre, here, RegClass::Pred, got, machine);
                        bind(&mut diags, gv, Loc::Phys(got.0), here);
                    }
                }
                _ => err(&mut diags, "guard added or removed by regalloc".into()),
            }

            // Operand correspondence, same rule per operand class.
            for (ai, &av) in p.args.iter().enumerate() {
                let class = class_of_operand(p, ai);
                let got = core.args[ai];
                if got.0 < first_alloc(class) {
                    let pool = match class {
                        RegClass::Int => &mut reloads_int,
                        RegClass::Float => &mut reloads_float,
                        RegClass::Pred => &mut reloads_pred,
                    };
                    match pool.iter_mut().find(|e| e.0 == got.0) {
                        Some(e) => {
                            e.2 = true;
                            bind(&mut diags, av, Loc::Slot(e.1), here);
                        }
                        None => err(
                            &mut diags,
                            format!("operand {ai} reads temp {got} with no reload"),
                        ),
                    }
                } else {
                    check_phys(&mut diags, pass, pre, here, class, got, machine);
                    bind(&mut diags, av, Loc::Phys(got.0), here);
                }
            }

            // Destination: either an allocated physical register, or the
            // reserved last temp followed by the exact store-back shape.
            if let Some(dv) = p.dst {
                let class = p.op.dst_class().expect("dst implies class");
                let Some(got) = core.dst else {
                    err(&mut diags, "destination dropped by regalloc".into());
                    continue;
                };
                let spill_dst = match class {
                    RegClass::Int => (got == VReg(INT_TEMPS[2])).then(|| match cur.peek(0) {
                        Some(st)
                            if st.op == Opcode::St(Width::B8)
                                && st.args.len() == 2
                                && st.args[0] == VReg(0)
                                && st.args[1] == got
                                && st.imm >= spill_base
                                && st.pred == core.pred =>
                        {
                            Some(st.imm)
                        }
                        _ => None,
                    }),
                    RegClass::Float => (got == VReg(FLOAT_TEMPS[2])).then(|| match cur.peek(0) {
                        Some(st)
                            if st.op == Opcode::FSt
                                && st.args.len() == 2
                                && st.args[0] == VReg(0)
                                && st.args[1] == got
                                && st.imm >= spill_base
                                && st.pred == core.pred =>
                        {
                            Some(st.imm)
                        }
                        _ => None,
                    }),
                    RegClass::Pred => {
                        (got == VReg(PRED_TEMPS[3])).then(|| match (cur.peek(0), cur.peek(1)) {
                            (Some(cvt), Some(st))
                                if cvt.op == Opcode::P2I
                                    && cvt.dst == Some(VReg(INT_TEMPS[2]))
                                    && cvt.args.len() == 1
                                    && cvt.args[0] == got
                                    && cvt.pred == core.pred
                                    && st.op == Opcode::St(Width::B8)
                                    && st.args.len() == 2
                                    && st.args[0] == VReg(0)
                                    && st.args[1] == VReg(INT_TEMPS[2])
                                    && st.imm >= spill_base
                                    && st.pred == core.pred =>
                            {
                                Some(st.imm)
                            }
                            _ => None,
                        })
                    }
                };
                match spill_dst {
                    Some(Some(slot)) => {
                        // Consume the store-back sequence.
                        cur.take();
                        if class == RegClass::Pred {
                            cur.take();
                        }
                        bind(&mut diags, dv, Loc::Slot(slot), here);
                    }
                    Some(None) => {
                        err(
                            &mut diags,
                            "destination in reserved spill temp without a store-back".into(),
                        );
                    }
                    None => {
                        check_phys(&mut diags, pass, pre, here, class, got, machine);
                        bind(&mut diags, dv, Loc::Phys(got.0), here);
                    }
                }
            } else if core.dst.is_some() {
                err(&mut diags, "destination invented by regalloc".into());
            }

            // Every reload in the group must have fed this instruction.
            for (kind, pool) in [
                ("r", &reloads_int),
                ("f", &reloads_float),
                ("p", &reloads_pred),
            ] {
                for e in pool {
                    if !e.2 {
                        err(
                            &mut diags,
                            format!("reload into {kind}{} not consumed by the instruction", e.0),
                        );
                    }
                }
            }
        }
        if cur.ix != post.blocks[bi].insts.len() {
            diags.push(
                Diagnostic::new(
                    Severity::Error,
                    pass,
                    &pre.name,
                    format!(
                        "{} unexplained instructions after rewriting",
                        post.blocks[bi].insts.len() - cur.ix
                    ),
                )
                .at_block(BlockId(bi as u32)),
            );
        }
    }

    // Location sanity: slots live in the spill area, aligned.
    for (v, l) in loc.iter().enumerate() {
        if let Some(Loc::Slot(s)) = l {
            if *s < spill_base || (*s - spill_base) % 8 != 0 || *s + 8 > mem_size as i64 {
                diags.push(Diagnostic::new(
                    Severity::Error,
                    pass,
                    &pre.name,
                    format!(
                        "v{v} spill slot {s} outside the spill area [{spill_base}, {mem_size})"
                    ),
                ));
            }
        }
    }

    // Interference cross-check against independently computed liveness:
    // two same-class vregs whose pre-allocation live ranges overlap must
    // not share a physical register or a spill slot.
    let live = Liveness::compute(pre);
    let nb = pre.blocks.len();
    let mut range: Vec<BitSet> = vec![BitSet::new(nb); pre.num_vregs()];
    for bi in 0..nb {
        for v in live.live_in[bi].iter() {
            range[v].insert(bi);
        }
        for v in live.live_out[bi].iter() {
            range[v].insert(bi);
        }
        for inst in &pre.blocks[bi].insts {
            for r in inst.reads() {
                range[r.index()].insert(bi);
            }
            if let Some(d) = inst.dst {
                range[d.index()].insert(bi);
            }
        }
    }
    let placed: Vec<(usize, Loc)> = loc
        .iter()
        .enumerate()
        .filter_map(|(v, l)| l.map(|l| (v, l)))
        .collect();
    for (i, &(v, lv)) in placed.iter().enumerate() {
        for &(w, lw) in &placed[i + 1..] {
            if lv == lw && pre.vreg_class[v] == pre.vreg_class[w] && range[v].intersects(&range[w])
            {
                diags.push(Diagnostic::new(
                    Severity::Error,
                    pass,
                    &pre.name,
                    format!("interfering v{v} and v{w} share {lv:?}"),
                ));
            }
        }
    }

    diags
}

fn check_phys(
    diags: &mut Vec<Diagnostic>,
    pass: &str,
    pre: &Function,
    at: (usize, usize),
    class: RegClass,
    r: VReg,
    machine: &MachineConfig,
) {
    if r.0 < first_alloc(class) || r.0 >= file_size(class, machine) {
        diags.push(
            Diagnostic::new(
                Severity::Error,
                pass,
                &pre.name,
                format!(
                    "{r} outside the allocatable {class:?} range [{}, {})",
                    first_alloc(class),
                    file_size(class, machine)
                ),
            )
            .at_inst(BlockId(at.0 as u32), at.1),
        );
    }
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

/// Operand identity for dependence analysis: (class, physical index).
type Reg = (RegClass, u32);

fn reads_of(inst: &Inst) -> Vec<Reg> {
    let mut out = Vec::new();
    if let Some(classes) = inst.op.arg_classes() {
        for (a, c) in inst.args.iter().zip(classes) {
            out.push((*c, a.0));
        }
    } else {
        for a in &inst.args {
            out.push((RegClass::Int, a.0)); // Ret value
        }
    }
    if let Some(p) = inst.pred {
        out.push((RegClass::Pred, p.0));
    }
    out
}

fn write_of(inst: &Inst) -> Option<Reg> {
    match (inst.op.dst_class(), inst.dst) {
        (Some(c), Some(d)) => Some((c, d.0)),
        _ => None,
    }
}

/// Validate a schedule: `code` must contain exactly the instructions of the
/// machine-form `func`, every data/memory dependence must issue in a
/// strictly earlier bundle than its dependent, nothing may move across a
/// control instruction, and no bundle may exceed the machine's functional
/// units. Latency is deliberately *not* a correctness obligation — the
/// simulator's register-ready interlocks stall short schedules rather than
/// executing them wrongly.
pub fn validate_schedule(
    func: &Function,
    code: &MachineProgram,
    machine: &MachineConfig,
    pass: &str,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if code.entry != func.entry.index() {
        diags.push(Diagnostic::new(
            Severity::Error,
            pass,
            &func.name,
            format!(
                "entry moved: block {} became {}",
                func.entry.index(),
                code.entry
            ),
        ));
    }
    if code.blocks.len() != func.blocks.len() {
        diags.push(Diagnostic::new(
            Severity::Error,
            pass,
            &func.name,
            format!(
                "schedule changed the block count ({} -> {})",
                func.blocks.len(),
                code.blocks.len()
            ),
        ));
        return diags;
    }

    for bi in 0..func.blocks.len() {
        let pre = &func.blocks[bi].insts;
        let bundles = &code.blocks[bi];
        let n = pre.len();

        // Match every bundled instruction back to the earliest unmatched
        // identical IR instruction. Identical instructions are
        // interchangeable, so if any consistent matching exists, the
        // order-preserving one does.
        let mut bundle_of: Vec<Option<usize>> = vec![None; n];
        let mut extra = 0usize;
        for (bx, bundle) in bundles.iter().enumerate() {
            for inst in &bundle.insts {
                match (0..n).find(|&i| bundle_of[i].is_none() && &pre[i] == inst) {
                    Some(i) => bundle_of[i] = Some(bx),
                    None => extra += 1,
                }
            }
        }
        let missing = bundle_of.iter().filter(|b| b.is_none()).count();
        if extra > 0 || missing > 0 {
            diags.push(
                Diagnostic::new(
                    Severity::Error,
                    pass,
                    &func.name,
                    format!(
                        "schedule is not a permutation of the IR \
                         ({missing} instructions missing, {extra} unexplained)"
                    ),
                )
                .at_block(BlockId(bi as u32)),
            );
            continue;
        }
        let bundle_of: Vec<usize> = bundle_of.into_iter().map(|b| b.unwrap()).collect();

        // Nothing moves across a control instruction: every instruction
        // before a control instruction (in IR order) must issue strictly
        // before it, everything after strictly after.
        let mut max_seen: Option<usize> = None;
        let mut floor: Option<usize> = None;
        let mut segments: Vec<(usize, usize)> = Vec::new(); // IR index ranges
        let mut seg_start = 0usize;
        for (i, inst) in pre.iter().enumerate() {
            if let (Some(f), true) = (floor, bundle_of[i] <= floor.unwrap_or(0)) {
                diags.push(
                    Diagnostic::new(
                        Severity::Error,
                        pass,
                        &func.name,
                        format!(
                            "{} hoisted above a control instruction (bundle {} <= {f})",
                            inst.op, bundle_of[i]
                        ),
                    )
                    .at_inst(BlockId(bi as u32), i),
                );
            }
            if inst.op.is_control() {
                if let Some(m) = max_seen {
                    if bundle_of[i] <= m {
                        diags.push(
                            Diagnostic::new(
                                Severity::Error,
                                pass,
                                &func.name,
                                format!(
                                    "{} issued in bundle {} before its segment finished (bundle {m})",
                                    inst.op, bundle_of[i]
                                ),
                            )
                            .at_inst(BlockId(bi as u32), i),
                        );
                    }
                }
                floor = Some(bundle_of[i]);
                if seg_start < i {
                    segments.push((seg_start, i));
                }
                seg_start = i + 1;
            }
            max_seen = Some(max_seen.map_or(bundle_of[i], |m| m.max(bundle_of[i])));
        }
        if seg_start < n {
            segments.push((seg_start, n));
        }

        // Within each straight-line segment, recompute the dependence
        // edges (the same RAW/WAR/WAW + memory-ordering rules the
        // scheduler uses) and require each edge to issue in a strictly
        // earlier bundle.
        for &(lo, hi) in &segments {
            let mut last_write: HashMap<Reg, usize> = HashMap::new();
            let mut readers: HashMap<Reg, Vec<usize>> = HashMap::new();
            let mut last_store: Option<usize> = None;
            let mut loads_since_store: Vec<usize> = Vec::new();
            let check_edge = |diags: &mut Vec<Diagnostic>, from: usize, to: usize, why: &str| {
                if bundle_of[from] >= bundle_of[to] {
                    diags.push(
                        Diagnostic::new(
                            Severity::Error,
                            pass,
                            &func.name,
                            format!(
                                "{} dependence violated: {} (bundle {}) must precede {} (bundle {})",
                                why, pre[from].op, bundle_of[from], pre[to].op, bundle_of[to]
                            ),
                        )
                        .at_inst(BlockId(bi as u32), to),
                    );
                }
            };
            for (i, inst) in pre.iter().enumerate().take(hi).skip(lo) {
                for r in reads_of(inst) {
                    if let Some(&w) = last_write.get(&r) {
                        check_edge(&mut diags, w, i, "read-after-write");
                    }
                    readers.entry(r).or_default().push(i);
                }
                if let Some(w) = write_of(inst) {
                    if let Some(rs) = readers.get(&w) {
                        for &r in rs {
                            if r != i {
                                check_edge(&mut diags, r, i, "write-after-read");
                            }
                        }
                    }
                    if let Some(&pw) = last_write.get(&w) {
                        check_edge(&mut diags, pw, i, "write-after-write");
                    }
                    last_write.insert(w, i);
                    readers.remove(&w);
                }
                let store_like = inst.op.is_store() || inst.op == Opcode::UnsafeCall;
                if store_like {
                    if let Some(s) = last_store {
                        check_edge(&mut diags, s, i, "store ordering");
                    }
                    for &l in &loads_since_store.clone() {
                        check_edge(&mut diags, l, i, "load-store ordering");
                    }
                    last_store = Some(i);
                    loads_since_store.clear();
                } else if inst.op.is_load() {
                    if let Some(s) = last_store {
                        check_edge(&mut diags, s, i, "store-load ordering");
                    }
                    loads_since_store.push(i);
                }
            }
        }

        // Issue-width limits per bundle.
        for (bx, bundle) in bundles.iter().enumerate() {
            let mut units = [0usize; 4];
            for inst in &bundle.insts {
                let u = match unit_of(inst.op) {
                    UnitKind::Int => 0,
                    UnitKind::Float => 1,
                    UnitKind::Mem => 2,
                    UnitKind::Branch => 3,
                };
                units[u] += 1;
            }
            let caps = [
                machine.int_units,
                machine.fp_units,
                machine.mem_units,
                machine.branch_units,
            ];
            let names = ["int", "float", "mem", "branch"];
            for u in 0..4 {
                if units[u] > caps[u] {
                    diags.push(
                        Diagnostic::new(
                            Severity::Error,
                            pass,
                            &func.name,
                            format!(
                                "bundle {bx} uses {} {} units, machine has {}",
                                units[u], names[u], caps[u]
                            ),
                        )
                        .at_block(BlockId(bi as u32)),
                    );
                }
            }
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// Unrolling
// ---------------------------------------------------------------------------

/// Re-derive the counted-loop facts for a two-block loop whose body is
/// `body_ix`, without trusting the unroller: returns the trip count when
/// the header matches the canonical `CmpLtI cell, bound; CBr body; Br exit`
/// idiom with a provable constant init and positive constant step that
/// divide evenly. `body` supplies the (pre-unroll) body instructions.
fn derive_trip(pre: &Function, body_ix: usize, body: &[Inst]) -> Option<i64> {
    let header_ix = body.last()?.target?.index();
    let h = &pre.blocks.get(header_ix)?.insts;
    if h.len() < 3 {
        return None;
    }
    let (cbr, br) = (&h[h.len() - 2], &h[h.len() - 1]);
    if cbr.op != Opcode::CBr
        || br.op != Opcode::Br
        || cbr.target.map(|t| t.index()) != Some(body_ix)
    {
        return None;
    }
    let cmp = &h[h.len() - 3];
    if cmp.op != Opcode::CmpLtI || cmp.dst != Some(cbr.args[0]) || cmp.pred.is_some() {
        return None;
    }
    let cell = cmp.args[0].0;
    let bound = cmp.imm;

    // Step: the cell is updated exactly once in the body, by `AddI cell, c`
    // or the `t = AddI(cell, c); Mov cell, t` idiom.
    let mut step = None;
    let mut defs = 0;
    for inst in body {
        if inst.dst.map(|d| d.0) == Some(cell) {
            defs += 1;
            match inst.op {
                Opcode::AddI if inst.args[0].0 == cell && inst.pred.is_none() => {
                    step = Some(inst.imm);
                }
                Opcode::Mov if inst.pred.is_none() => {
                    let src = inst.args[0].0;
                    step = body.iter().find_map(|s| {
                        (s.dst.map(|d| d.0) == Some(src)
                            && s.op == Opcode::AddI
                            && s.args[0].0 == cell
                            && s.pred.is_none())
                        .then_some(s.imm)
                    });
                }
                _ => return None,
            }
        }
    }
    let step = (defs == 1).then_some(step).flatten()?;
    if step <= 0 {
        return None;
    }

    // Init: exactly one out-of-loop definition, a provable constant.
    let mut def_count: HashMap<u32, u32> = HashMap::new();
    let mut movi: HashMap<u32, i64> = HashMap::new();
    for b in &pre.blocks {
        for inst in &b.insts {
            if let Some(d) = inst.dst {
                *def_count.entry(d.0).or_insert(0) += 1;
                if inst.op == Opcode::MovI && inst.pred.is_none() {
                    movi.insert(d.0, inst.imm);
                }
            }
        }
    }
    let const_of = |r: u32| -> Option<i64> {
        (def_count.get(&r) == Some(&1))
            .then(|| movi.get(&r).copied())
            .flatten()
    };
    let mut init = None;
    let mut outside_defs = 0;
    for (bi, b) in pre.blocks.iter().enumerate() {
        if bi == header_ix || bi == body_ix {
            continue;
        }
        for inst in &b.insts {
            if inst.dst.map(|d| d.0) != Some(cell) {
                continue;
            }
            outside_defs += 1;
            init = match inst.op {
                Opcode::MovI if inst.pred.is_none() => Some(inst.imm),
                Opcode::Mov if inst.pred.is_none() => const_of(inst.args[0].0),
                _ => None,
            };
        }
    }
    let init = (outside_defs == 1).then_some(init).flatten()?;
    if init >= bound {
        return None;
    }
    let span = bound - init;
    if span % step != 0 {
        return None;
    }
    Some(span / step)
}

/// Validate loop unrolling: every changed block must be a counted-loop body
/// replicated verbatim by a factor that divides the independently re-derived
/// trip count; headers and everything else must be untouched.
pub fn validate_unroll(pre: &Function, post: &Function, pass: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if pre.blocks.len() != post.blocks.len() {
        diags.push(Diagnostic::new(
            Severity::Error,
            pass,
            &pre.name,
            format!(
                "unroll changed the block count ({} -> {})",
                pre.blocks.len(),
                post.blocks.len()
            ),
        ));
        return diags;
    }
    for bi in 0..pre.blocks.len() {
        let a = &pre.blocks[bi].insts;
        let b = &post.blocks[bi].insts;
        if a == b {
            continue;
        }
        let err = |diags: &mut Vec<Diagnostic>, msg: String| {
            diags.push(
                Diagnostic::new(Severity::Error, pass, &pre.name, msg).at_block(BlockId(bi as u32)),
            );
        };
        if a.is_empty() || a.last().map(|i| i.op) != Some(Opcode::Br) {
            err(
                &mut diags,
                "changed block is not a loop body (no trailing Br)".into(),
            );
            continue;
        }
        let straight = &a[..a.len() - 1];
        let factor = [2usize, 4, 8]
            .into_iter()
            .find(|k| b.len() == straight.len() * k + 1);
        let Some(k) = factor else {
            err(
                &mut diags,
                format!(
                    "changed block size {} is not a 2/4/8-fold replication of {}",
                    b.len(),
                    a.len()
                ),
            );
            continue;
        };
        let replicated = b[..b.len() - 1]
            .chunks(straight.len())
            .all(|chunk| chunk == straight)
            && b.last() == a.last();
        if !replicated {
            err(
                &mut diags,
                format!("unrolled body is not {k} verbatim copies of the original"),
            );
            continue;
        }
        match derive_trip(pre, bi, a) {
            Some(trip) if trip % k as i64 == 0 => {}
            Some(trip) => err(
                &mut diags,
                format!("unroll factor {k} does not divide the trip count {trip}"),
            ),
            None => err(
                &mut diags,
                format!("unrolled a loop whose trip count is not provably a multiple of {k}"),
            ),
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// Prefetching
// ---------------------------------------------------------------------------

/// Validate prefetch insertion: the output must be the input with zero or
/// more non-binding `Prefetch` instructions inserted (no dst, no guard, one
/// address operand) and nothing else touched.
pub fn validate_prefetch(pre: &Function, post: &Function, pass: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if pre.blocks.len() != post.blocks.len() {
        diags.push(Diagnostic::new(
            Severity::Error,
            pass,
            &pre.name,
            format!(
                "prefetch changed the block count ({} -> {})",
                pre.blocks.len(),
                post.blocks.len()
            ),
        ));
        return diags;
    }
    for bi in 0..pre.blocks.len() {
        let a = &pre.blocks[bi].insts;
        let b = &post.blocks[bi].insts;
        let mut ai = 0usize;
        for (ii, inst) in b.iter().enumerate() {
            if ai < a.len() && inst == &a[ai] {
                ai += 1;
            } else if inst.op == Opcode::Prefetch {
                if inst.args.len() != 1 || inst.dst.is_some() || inst.pred.is_some() {
                    diags.push(
                        Diagnostic::new(
                            Severity::Error,
                            pass,
                            &pre.name,
                            "malformed inserted prefetch (needs 1 address operand, no dst, no guard)"
                                .to_string(),
                        )
                        .at_inst(BlockId(bi as u32), ii),
                    );
                }
            } else {
                diags.push(
                    Diagnostic::new(
                        Severity::Error,
                        pass,
                        &pre.name,
                        format!(
                            "prefetch pass altered {} (only Prefetch insertion is allowed)",
                            inst.op
                        ),
                    )
                    .at_inst(BlockId(bi as u32), ii),
                );
                return diags;
            }
        }
        if ai != a.len() {
            diags.push(
                Diagnostic::new(
                    Severity::Error,
                    pass,
                    &pre.name,
                    format!("prefetch pass dropped {} instructions", a.len() - ai),
                )
                .at_block(BlockId(bi as u32)),
            );
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// Hyperblock formation
// ---------------------------------------------------------------------------

/// Opaque calls reachable from the entry. Counting only reachable blocks
/// makes the count invariant under the pass's unreachable-block pruning.
fn reachable_unsafe_calls(func: &Function) -> usize {
    func.reverse_postorder()
        .iter()
        .map(|b| {
            func.block(*b)
                .insts
                .iter()
                .filter(|i| i.op == Opcode::UnsafeCall)
                .count()
        })
        .sum()
}

/// Validate hyperblock formation, best-effort. If-conversion is validated
/// structurally by the checker (`CfgForm::Hyperblock`); here we prove the
/// two semantic obligations that are cheaply decidable:
///
/// * **opaque-call preservation** (`Error`): `UnsafeCall` sites are
///   observable side effects and may be neither duplicated, dropped, nor
///   predicated, so their reachable static count must be exactly preserved.
/// * **predicate coverage** (`Warning`): a register whose only definitions
///   anywhere are predicated definitions inside one block should be covered
///   by complementary guards (`p` / `PNot p`); a gap means some path reads
///   a value no definition produced. Guard expressions the check cannot
///   resolve are skipped — coverage is undecidable in general, hence
///   warning severity.
pub fn validate_hyperblock(pre: &Function, post: &Function, pass: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let (before, after) = (reachable_unsafe_calls(pre), reachable_unsafe_calls(post));
    if before != after {
        diags.push(Diagnostic::new(
            Severity::Error,
            pass,
            &pre.name,
            format!("hyperblock changed the reachable UnsafeCall count ({before} -> {after})"),
        ));
    }
    for d in post
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter(|i| i.op == Opcode::UnsafeCall && i.pred.is_some())
    {
        diags.push(Diagnostic::new(
            Severity::Error,
            pass,
            &pre.name,
            format!("{} may not be predicated (opaque side effects)", d.op),
        ));
    }

    // Predicate coverage of block-local predicated cells.
    for (bi, block) in post.blocks.iter().enumerate() {
        // Defs of each vreg across the whole function.
        let mut defs_elsewhere = vec![0u32; post.num_vregs()];
        for (obi, ob) in post.blocks.iter().enumerate() {
            if obi == bi {
                continue;
            }
            for inst in &ob.insts {
                if let Some(d) = inst.dst {
                    defs_elsewhere[d.index()] += 1;
                }
            }
        }
        // Guard producers within the block: g -> PNot operand.
        let mut not_of: HashMap<u32, u32> = HashMap::new();
        for inst in &block.insts {
            if inst.op == Opcode::PNot {
                if let Some(d) = inst.dst {
                    not_of.insert(d.0, inst.args[0].0);
                }
            }
        }
        // Per-vreg guard sets for vregs defined only under guards here.
        let mut guards: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut unpredicated: Vec<bool> = vec![false; post.num_vregs()];
        for inst in &block.insts {
            if let Some(d) = inst.dst {
                match inst.pred {
                    None => unpredicated[d.index()] = true,
                    Some(g) => guards.entry(d.0).or_default().push(g.0),
                }
            }
        }
        for (v, gs) in &guards {
            let vi = *v as usize;
            if unpredicated[vi] || defs_elsewhere[vi] > 0 || post.params.contains(&VReg(*v)) {
                continue;
            }
            if gs.len() < 2 {
                continue; // a single guarded def of a local is a frontend
                          // pattern the coverage argument does not apply to
            }
            // Covered if some pair of guards is complementary via PNot.
            let complementary = gs.iter().any(|&g| {
                gs.iter()
                    .any(|&h| not_of.get(&h) == Some(&g) || not_of.get(&g) == Some(&h))
            });
            if !complementary {
                diags.push(
                    Diagnostic::new(
                        Severity::Warning,
                        pass,
                        &pre.name,
                        format!(
                            "v{v} has only predicated definitions with no complementary \
                             guard pair; some path may read an undefined value"
                        ),
                    )
                    .at_block(BlockId(bi as u32)),
                );
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::first_error;
    use metaopt_ir::builder::FunctionBuilder;
    use metaopt_sim::Bundle;

    fn table3() -> MachineConfig {
        MachineConfig::table3()
    }

    // -------- prefetch --------

    fn two_load_func() -> Function {
        let mut fb = FunctionBuilder::new("f");
        let base = fb.movi(0);
        let a = fb.ld8(base, 0);
        let b = fb.ld8(base, 8);
        let s = fb.add(a, b);
        fb.ret(Some(s));
        fb.finish()
    }

    #[test]
    fn prefetch_insertion_is_accepted() {
        let pre = two_load_func();
        let mut post = pre.clone();
        let addr = post.blocks[0].insts[1].args[0];
        post.blocks[0]
            .insts
            .insert(1, Inst::new(Opcode::Prefetch).args(&[addr]).imm(64));
        assert!(first_error(&validate_prefetch(&pre, &post, "prefetch")).is_none());
        // Identity is accepted too.
        assert!(validate_prefetch(&pre, &pre, "prefetch").is_empty());
    }

    #[test]
    fn prefetch_rewriting_other_code_is_rejected() {
        let pre = two_load_func();
        let mut post = pre.clone();
        post.blocks[0].insts[0].imm = 99; // mutated a MovI
        let diags = validate_prefetch(&pre, &post, "prefetch");
        assert!(first_error(&diags).is_some(), "{diags:?}");

        let mut dropped = pre.clone();
        dropped.blocks[0].insts.remove(2);
        assert!(first_error(&validate_prefetch(&pre, &dropped, "prefetch")).is_some());
    }

    // -------- unroll --------

    /// `for (i = 0; i < 8; i++) s += i` in the canonical two-block shape.
    fn counted_loop() -> Function {
        let mut fb = FunctionBuilder::new("loop");
        let hdr = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        let i = fb.movi(0);
        let s = fb.movi(0);
        fb.br(hdr);
        fb.switch_to(hdr);
        let p = fb.cmp_lti(i, 8);
        fb.branch(p, body, exit);
        fb.switch_to(body);
        let s2 = fb.add(s, i);
        fb.push(Inst::new(Opcode::Mov).dst(s).args(&[s2]));
        let i2 = fb.addi(i, 1);
        fb.push(Inst::new(Opcode::Mov).dst(i).args(&[i2]));
        fb.br(hdr);
        fb.switch_to(exit);
        fb.ret(Some(s));
        fb.finish()
    }

    fn unroll_by(f: &Function, body_ix: usize, k: usize) -> Function {
        let mut post = f.clone();
        let body = post.blocks[body_ix].insts.clone();
        let straight = &body[..body.len() - 1];
        let mut insts = Vec::new();
        for _ in 0..k {
            insts.extend_from_slice(straight);
        }
        insts.push(body.last().unwrap().clone());
        post.blocks[body_ix].insts = insts;
        post
    }

    #[test]
    fn exact_unrolling_is_accepted() {
        let pre = counted_loop();
        for k in [2, 4, 8] {
            let post = unroll_by(&pre, 2, k);
            let diags = validate_unroll(&pre, &post, "unroll");
            assert!(first_error(&diags).is_none(), "k={k}: {diags:?}");
        }
        assert!(validate_unroll(&pre, &pre, "unroll").is_empty());
    }

    #[test]
    fn non_dividing_factor_is_rejected() {
        // Trip count 8 but header claims bound 9 after the "unroll": mutate
        // the header bound so trip becomes 9, indivisible by 2.
        let mut pre = counted_loop();
        let hlen = pre.blocks[1].insts.len();
        pre.blocks[1].insts[hlen - 3].imm = 9;
        let post = unroll_by(&pre, 2, 2);
        let diags = validate_unroll(&pre, &post, "unroll");
        assert!(first_error(&diags).is_some(), "{diags:?}");
    }

    #[test]
    fn mangled_replication_is_rejected() {
        let pre = counted_loop();
        let mut post = unroll_by(&pre, 2, 2);
        // Corrupt one instruction of the second copy.
        let n = post.blocks[2].insts.len();
        post.blocks[2].insts[n - 2].imm = 5;
        let diags = validate_unroll(&pre, &post, "unroll");
        assert!(first_error(&diags).is_some(), "{diags:?}");
    }

    // -------- schedule --------

    fn machine_form_block() -> Function {
        // Machine-register form by construction: r4..r7, dependence chain
        // plus an independent pair.
        let mut f = Function::new("mf");
        f.blocks[0].insts = vec![
            Inst::new(Opcode::MovI).dst(VReg(4)).imm(1),
            Inst::new(Opcode::MovI).dst(VReg(5)).imm(2),
            Inst::new(Opcode::Add)
                .dst(VReg(6))
                .args(&[VReg(4), VReg(5)]),
            Inst::new(Opcode::Ret).args(&[VReg(6)]),
        ];
        f
    }

    fn bundles_of(groups: Vec<Vec<Inst>>) -> MachineProgram {
        MachineProgram {
            blocks: vec![groups.into_iter().map(|insts| Bundle { insts }).collect()],
            entry: 0,
        }
    }

    #[test]
    fn legal_schedule_is_accepted() {
        let f = machine_form_block();
        let i = &f.blocks[0].insts;
        let code = bundles_of(vec![
            vec![i[0].clone(), i[1].clone()],
            vec![i[2].clone()],
            vec![i[3].clone()],
        ]);
        let diags = validate_schedule(&f, &code, &table3(), "schedule");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn raw_violation_is_rejected() {
        let f = machine_form_block();
        let i = &f.blocks[0].insts;
        // Add issued in the same bundle as the MovIs it reads.
        let code = bundles_of(vec![
            vec![i[0].clone(), i[1].clone(), i[2].clone()],
            vec![i[3].clone()],
        ]);
        let diags = validate_schedule(&f, &code, &table3(), "schedule");
        assert!(
            diags.iter().any(|d| d.message.contains("read-after-write")),
            "{diags:?}"
        );
    }

    #[test]
    fn hoisting_past_a_branch_is_rejected() {
        let f = machine_form_block();
        let i = &f.blocks[0].insts;
        // Ret before the Add completes its segment.
        let code = bundles_of(vec![
            vec![i[0].clone(), i[1].clone()],
            vec![i[3].clone()],
            vec![i[2].clone()],
        ]);
        let diags = validate_schedule(&f, &code, &table3(), "schedule");
        assert!(first_error(&diags).is_some(), "{diags:?}");
    }

    #[test]
    fn dropped_and_invented_instructions_are_rejected() {
        let f = machine_form_block();
        let i = &f.blocks[0].insts;
        let code = bundles_of(vec![vec![i[0].clone()], vec![i[3].clone()]]);
        let diags = validate_schedule(&f, &code, &table3(), "schedule");
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("not a permutation")),
            "{diags:?}"
        );
    }

    #[test]
    fn store_load_reorder_is_rejected() {
        let mut f = Function::new("mem");
        f.blocks[0].insts = vec![
            Inst::new(Opcode::MovI).dst(VReg(4)).imm(0),
            Inst::new(Opcode::St(Width::B8)).args(&[VReg(4), VReg(4)]),
            Inst::new(Opcode::Ld(Width::B8))
                .dst(VReg(5))
                .args(&[VReg(4)]),
            Inst::new(Opcode::Ret).args(&[VReg(5)]),
        ];
        let i = &f.blocks[0].insts;
        // Load issued before the store it must observe.
        let code = bundles_of(vec![
            vec![i[0].clone()],
            vec![i[2].clone()],
            vec![i[1].clone()],
            vec![i[3].clone()],
        ]);
        let diags = validate_schedule(&f, &code, &table3(), "schedule");
        assert!(
            diags.iter().any(|d| d.message.contains("store-load")),
            "{diags:?}"
        );
    }

    #[test]
    fn overfilled_bundle_is_rejected() {
        let mut f = Function::new("wide");
        let mut insts: Vec<Inst> = (0..6)
            .map(|k| Inst::new(Opcode::MovI).dst(VReg(4 + k)).imm(k as i64))
            .collect();
        insts.push(Inst::new(Opcode::Ret));
        f.blocks[0].insts = insts;
        let i = &f.blocks[0].insts;
        // 6 MovIs in one bundle exceeds table3's 4 int units.
        let code = bundles_of(vec![i[..6].to_vec(), vec![i[6].clone()]]);
        let diags = validate_schedule(&f, &code, &table3(), "schedule");
        assert!(
            diags.iter().any(|d| d.message.contains("int units")),
            "{diags:?}"
        );
    }

    // -------- regalloc --------

    /// A virtual function plus its correct hand-allocated form with v10
    /// spilled to the first slot.
    fn regalloc_pair() -> (Function, Function, usize) {
        let mut fb = FunctionBuilder::new("ra");
        let a = fb.movi(7); // -> r4
        let b = fb.movi(5); // -> spilled
        let c = fb.add(a, b); // -> r5
        fb.ret(Some(c));
        let pre = fb.finish();
        let base = 64usize; // globals
        let spill_base = 64i64;
        let mut post = pre.clone();
        post.blocks[0].insts = vec![
            Inst::new(Opcode::MovI).dst(VReg(4)).imm(7),
            // b spilled: compute into reserved temp r3, store back.
            Inst::new(Opcode::MovI).dst(VReg(3)).imm(5),
            Inst::new(Opcode::St(Width::B8))
                .args(&[VReg(0), VReg(3)])
                .imm(spill_base),
            // c = a + b: reload b into r1.
            Inst::new(Opcode::Ld(Width::B8))
                .dst(VReg(1))
                .args(&[VReg(0)])
                .imm(spill_base),
            Inst::new(Opcode::Add)
                .dst(VReg(5))
                .args(&[VReg(4), VReg(1)]),
            Inst::new(Opcode::Ret).args(&[VReg(5)]),
        ];
        (pre, post, base)
    }

    #[test]
    fn correct_spill_code_is_accepted() {
        let (pre, post, base) = regalloc_pair();
        let diags = validate_regalloc(&pre, &post, &table3(), base, base + 8, "regalloc");
        assert!(first_error(&diags).is_none(), "{diags:?}");
    }

    #[test]
    fn dropped_reload_is_rejected() {
        let (pre, mut post, base) = regalloc_pair();
        // Drop the reload: Add now reads a stale temp.
        post.blocks[0].insts.remove(3);
        let diags = validate_regalloc(&pre, &post, &table3(), base, base + 8, "regalloc");
        assert!(first_error(&diags).is_some(), "{diags:?}");
    }

    #[test]
    fn dropped_store_back_is_rejected() {
        let (pre, mut post, base) = regalloc_pair();
        post.blocks[0].insts.remove(2);
        let diags = validate_regalloc(&pre, &post, &table3(), base, base + 8, "regalloc");
        assert!(first_error(&diags).is_some(), "{diags:?}");
    }

    #[test]
    fn interfering_vregs_sharing_a_register_is_rejected() {
        // a and b are simultaneously live but both mapped to r4.
        let mut fb = FunctionBuilder::new("clash");
        let a = fb.movi(1);
        let b = fb.movi(2);
        let c = fb.add(a, b);
        fb.ret(Some(c));
        let pre = fb.finish();
        let mut post = pre.clone();
        post.blocks[0].insts = vec![
            Inst::new(Opcode::MovI).dst(VReg(4)).imm(1),
            Inst::new(Opcode::MovI).dst(VReg(4)).imm(2),
            Inst::new(Opcode::Add)
                .dst(VReg(5))
                .args(&[VReg(4), VReg(4)]),
            Inst::new(Opcode::Ret).args(&[VReg(5)]),
        ];
        let diags = validate_regalloc(&pre, &post, &table3(), 0, 0, "regalloc");
        assert!(
            diags.iter().any(|d| d.message.contains("share")),
            "{diags:?}"
        );
    }

    #[test]
    fn reserved_register_as_operand_is_rejected() {
        let mut fb = FunctionBuilder::new("resv");
        let a = fb.movi(1);
        let b = fb.mov(a);
        fb.ret(Some(b));
        let pre = fb.finish();
        let mut post = pre.clone();
        // a "allocated" to the reserved spill temp r2.
        post.blocks[0].insts = vec![
            Inst::new(Opcode::MovI).dst(VReg(2)).imm(1),
            Inst::new(Opcode::Mov).dst(VReg(4)).args(&[VReg(2)]),
            Inst::new(Opcode::Ret).args(&[VReg(4)]),
        ];
        let diags = validate_regalloc(&pre, &post, &table3(), 0, 0, "regalloc");
        assert!(
            diags.iter().any(|d| d.message.contains("allocatable")),
            "{diags:?}"
        );
    }

    #[test]
    fn real_allocator_output_is_accepted_under_pressure() {
        // Differential: run the actual allocator on a high-pressure function
        // with a tiny register file and validate its output.
        let mut fb = FunctionBuilder::new("pressure");
        let mut vals = Vec::new();
        for k in 0..12 {
            vals.push(fb.movi(k));
        }
        let mut acc = vals[0];
        for v in &vals[1..] {
            acc = fb.add(acc, *v);
        }
        fb.ret(Some(acc));
        let pre = fb.finish();
        let mut machine = table3();
        machine.gpr = 8; // force spills
        let mut post = pre.clone();
        let profile = metaopt_ir::profile::FuncProfile::default();
        let ra =
            metaopt_compiler_shim::allocate(&mut post, &machine, &profile, 64).expect("allocates");
        let diags = validate_regalloc(&pre, &post, &machine, 64, ra, "regalloc");
        assert!(first_error(&diags).is_none(), "{diags:?}");
    }

    /// Minimal local re-implementation hook: the analysis crate cannot
    /// depend on the compiler crate (which depends on it), so the
    /// allocator-differential test lives in `metaopt-core`'s integration
    /// tests. This shim only keeps the test above honest by delegating to a
    /// verbatim-shape allocator for the no-float no-pred straight-line case.
    mod metaopt_compiler_shim {
        use super::*;

        /// Allocate with the same reservations/spill ABI as the real
        /// allocator, greedy in vreg order (priority order is irrelevant to
        /// validity).
        pub fn allocate(
            func: &mut Function,
            machine: &MachineConfig,
            _profile: &metaopt_ir::profile::FuncProfile,
            globals: usize,
        ) -> Result<usize, String> {
            let nv = func.num_vregs();
            let live = Liveness::compute(func);
            let nb = func.blocks.len();
            let mut range: Vec<BitSet> = vec![BitSet::new(nb); nv];
            for bi in 0..nb {
                for v in live.live_in[bi].iter() {
                    range[v].insert(bi);
                }
                for v in live.live_out[bi].iter() {
                    range[v].insert(bi);
                }
                for inst in &func.blocks[bi].insts {
                    for r in inst.reads() {
                        range[r.index()].insert(bi);
                    }
                    if let Some(d) = inst.dst {
                        range[d.index()].insert(bi);
                    }
                }
            }
            let mut assignment: Vec<Option<u32>> = vec![None; nv];
            let mut spilled = vec![false; nv];
            let first = first_alloc(RegClass::Int);
            let count = machine.gpr as u32;
            for v in 0..nv {
                if range[v].is_empty() || func.vreg_class[v] != RegClass::Int {
                    continue;
                }
                let mut taken = vec![false; count.saturating_sub(first) as usize];
                for w in 0..nv {
                    if w != v && func.vreg_class[w] == RegClass::Int {
                        if let Some(c) = assignment[w] {
                            if range[v].intersects(&range[w]) {
                                taken[(c - first) as usize] = true;
                            }
                        }
                    }
                }
                match taken.iter().position(|t| !t) {
                    Some(c) => assignment[v] = Some(first + c as u32),
                    None => spilled[v] = true,
                }
            }
            let mut slot_of: Vec<Option<usize>> = vec![None; nv];
            let mut next = 0usize;
            for (v, s) in slot_of.iter_mut().enumerate() {
                if spilled[v] {
                    *s = Some(next);
                    next += 1;
                }
            }
            let spill_base = ((globals + 7) & !7) as i64;
            for bi in 0..nb {
                let old = std::mem::take(&mut func.blocks[bi].insts);
                let mut new = Vec::new();
                for mut inst in old {
                    let mut int_t = 0usize;
                    for ai in 0..inst.args.len() {
                        let v = inst.args[ai].index();
                        if spilled[v] {
                            let slot = spill_base + slot_of[v].unwrap() as i64 * 8;
                            let t = INT_TEMPS[int_t];
                            int_t += 1;
                            new.push(
                                Inst::new(Opcode::Ld(Width::B8))
                                    .dst(VReg(t))
                                    .args(&[VReg(0)])
                                    .imm(slot),
                            );
                            inst.args[ai] = VReg(t);
                        } else {
                            inst.args[ai] = VReg(assignment[v].expect("allocated"));
                        }
                    }
                    let mut post: Vec<Inst> = Vec::new();
                    if let Some(d) = inst.dst {
                        let v = d.index();
                        if spilled[v] {
                            let slot = spill_base + slot_of[v].unwrap() as i64 * 8;
                            let t = INT_TEMPS[2];
                            inst.dst = Some(VReg(t));
                            let mut st = Inst::new(Opcode::St(Width::B8))
                                .args(&[VReg(0), VReg(t)])
                                .imm(slot);
                            st.pred = inst.pred;
                            post.push(st);
                        } else {
                            inst.dst = Some(VReg(assignment[v].expect("allocated")));
                        }
                    }
                    new.push(inst);
                    new.extend(post);
                }
                func.blocks[bi].insts = new;
            }
            Ok(spill_base as usize + next * 8)
        }
    }

    // -------- hyperblock --------

    #[test]
    fn unsafe_call_count_change_is_rejected() {
        let mut fb = FunctionBuilder::new("h");
        let a = fb.movi(1);
        let r = fb.unsafe_call(0, a);
        fb.ret(Some(r));
        let pre = fb.finish();
        let mut post = pre.clone();
        post.blocks[0].insts.retain(|i| i.op != Opcode::UnsafeCall);
        post.blocks[0]
            .insts
            .insert(1, Inst::new(Opcode::MovI).dst(VReg(1)).imm(0));
        let diags = validate_hyperblock(&pre, &post, "hyperblock");
        assert!(first_error(&diags).is_some(), "{diags:?}");
        assert!(validate_hyperblock(&pre, &pre, "hyperblock").is_empty());
    }

    #[test]
    fn uncovered_predicated_cell_warns() {
        let mut fb = FunctionBuilder::new("cov");
        let x = fb.param(RegClass::Int);
        let p = fb.cmp_lti(x, 0);
        let q = fb.cmp_lti(x, 10); // NOT complementary to p
        let cell = fb.new_vreg(RegClass::Int);
        fb.push(Inst::new(Opcode::MovI).dst(cell).imm(1).guarded(p));
        fb.push(Inst::new(Opcode::MovI).dst(cell).imm(2).guarded(q));
        fb.ret(Some(cell));
        let f = fb.finish();
        let diags = validate_hyperblock(&f, &f, "hyperblock");
        assert!(
            diags
                .iter()
                .any(|d| d.severity == Severity::Warning && d.message.contains("complementary")),
            "{diags:?}"
        );

        // The canonical if-converted shape (p / PNot p) is clean.
        let mut fb = FunctionBuilder::new("ok");
        let x = fb.param(RegClass::Int);
        let p = fb.cmp_lti(x, 0);
        let np = fb.new_vreg(RegClass::Pred);
        fb.push(Inst::new(Opcode::PNot).dst(np).args(&[p]));
        let cell = fb.new_vreg(RegClass::Int);
        fb.push(Inst::new(Opcode::MovI).dst(cell).imm(1).guarded(p));
        fb.push(Inst::new(Opcode::MovI).dst(cell).imm(2).guarded(np));
        fb.ret(Some(cell));
        let f = fb.finish();
        let diags = validate_hyperblock(&f, &f, "hyperblock");
        assert!(diags.is_empty(), "{diags:?}");
    }
}
