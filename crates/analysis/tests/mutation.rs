//! Mutation tests for the inter-pass invariant checker: run a small
//! pipeline in which exactly one pass is deliberately broken, and assert
//! the checker fires at that pass's boundary and attributes the failure
//! to it by name.

use metaopt_analysis::{check_program, enforce, render_json, Severity};
use metaopt_ir::builder::FunctionBuilder;
use metaopt_ir::inst::{Inst, Opcode};
use metaopt_ir::types::RegClass;
use metaopt_ir::verify::CfgForm;
use metaopt_ir::Program;

/// A named compiler pass over a whole program.
type PassFn = fn(&mut Program);

/// A diamond with a loop: enough CFG structure for every check to bite.
fn test_program() -> Program {
    let mut fb = FunctionBuilder::new("main");
    let hdr = fb.new_block();
    let body = fb.new_block();
    let exit = fb.new_block();
    let n = fb.movi(10);
    let i = fb.new_vreg(RegClass::Int);
    let z = fb.movi(0);
    fb.push(Inst::new(Opcode::Mov).dst(i).args(&[z]));
    fb.br(hdr);
    fb.switch_to(hdr);
    let p = fb.cmp_lt(i, n);
    fb.branch(p, body, exit);
    fb.switch_to(body);
    let i2 = fb.addi(i, 1);
    fb.push(Inst::new(Opcode::Mov).dst(i).args(&[i2]));
    fb.br(hdr);
    fb.switch_to(exit);
    fb.ret(Some(i));
    let mut prog = Program::new();
    prog.add_function(fb.finish());
    prog
}

/// Named passes; exactly one is broken. The driver mirrors what the real
/// compiler does with checking enabled: enforce() after every pass.
fn run_pipeline(prog: &mut Program, passes: &[(&str, PassFn)]) -> Result<(), (String, String)> {
    for (name, pass) in passes {
        pass(prog);
        enforce(prog, CfgForm::Canonical, name).map_err(|e| (e.pass.clone(), e.to_string()))?;
    }
    Ok(())
}

fn identity(_: &mut Program) {}

/// A "dead code elimination" that deletes a live def: removes the
/// `Mov i <- z` initialization while `i` stays used in the loop.
fn broken_dce(prog: &mut Program) {
    let entry = prog.funcs[0].entry.index();
    let insts = &mut prog.funcs[0].blocks[entry].insts;
    let pos = insts
        .iter()
        .position(|inst| inst.op == Opcode::Mov)
        .expect("init mov present");
    insts.remove(pos);
}

/// An "unroller" that clones the loop body but forgets to wire it in.
fn broken_unroll(prog: &mut Program) {
    let body = prog.funcs[0].blocks[2].clone();
    prog.funcs[0].blocks.push(body);
}

/// A "scheduler" that drops a block terminator.
fn broken_schedule(prog: &mut Program) {
    let entry = prog.funcs[0].entry.index();
    prog.funcs[0].blocks[entry].insts.pop();
}

#[test]
fn clean_pipeline_passes_every_boundary() {
    let mut prog = test_program();
    let passes: &[(&str, PassFn)] = &[
        ("inline", identity),
        ("opt", identity),
        ("schedule", identity),
    ];
    assert!(run_pipeline(&mut prog, passes).is_ok());
}

#[test]
fn deleted_def_is_attributed_to_the_broken_pass() {
    let mut prog = test_program();
    let passes: &[(&str, PassFn)] = &[
        ("inline", identity),
        ("dce", broken_dce),
        ("schedule", identity),
    ];
    let (pass, msg) = run_pipeline(&mut prog, passes).unwrap_err();
    assert_eq!(pass, "dce", "failure must name the broken pass");
    assert!(msg.contains("use of"), "{msg}");
    assert!(msg.contains("before definition"), "{msg}");
}

#[test]
fn orphaned_block_is_attributed_to_the_broken_pass() {
    let mut prog = test_program();
    let passes: &[(&str, PassFn)] = &[
        ("inline", identity),
        ("unroll", broken_unroll),
        ("schedule", identity),
    ];
    let (pass, msg) = run_pipeline(&mut prog, passes).unwrap_err();
    assert_eq!(pass, "unroll");
    assert!(msg.contains("unreachable"), "{msg}");
}

#[test]
fn structural_break_is_attributed_to_the_broken_pass() {
    let mut prog = test_program();
    let passes: &[(&str, PassFn)] = &[("opt", identity), ("schedule", broken_schedule)];
    let (pass, msg) = run_pipeline(&mut prog, passes).unwrap_err();
    assert_eq!(pass, "schedule");
    assert!(msg.contains("must end with br/ret"), "{msg}");
}

#[test]
fn predicate_inconsistency_is_caught() {
    let mut prog = test_program();
    // A "pass" rewires an Add to write the Pred register used by the CBr.
    let f = &mut prog.funcs[0];
    let pred_reg = f.blocks[1]
        .insts
        .iter()
        .find(|i| i.op == Opcode::CmpLt)
        .and_then(|i| i.dst)
        .unwrap();
    let entry = f.entry.index();
    let int_arg = f.blocks[entry].insts[0].dst.unwrap();
    f.blocks[entry].insts.insert(
        2,
        Inst::new(Opcode::Add)
            .dst(pred_reg)
            .args(&[int_arg, int_arg]),
    );
    let diags = check_program(&prog, CfgForm::Canonical, "regalloc");
    // The structural verifier already rejects the class mismatch; whichever
    // layer reports it, the finding must be an error attributed to regalloc.
    let err = diags
        .iter()
        .find(|d| d.severity == Severity::Error)
        .unwrap();
    assert_eq!(err.pass, "regalloc");

    // Bypass structure: give the Add a fresh Int dst but retype the vreg's
    // class table entry the way a buggy regalloc rewrite would.
    let mut prog2 = test_program();
    let f2 = &mut prog2.funcs[0];
    let entry2 = f2.entry.index();
    let int_arg2 = f2.blocks[entry2].insts[0].dst.unwrap();
    f2.vreg_class[int_arg2.index()] = RegClass::Pred;
    let diags2 = check_program(&prog2, CfgForm::Canonical, "regalloc");
    let err2 = diags2
        .iter()
        .find(|d| d.severity == Severity::Error)
        .expect("retyped vreg must be caught");
    assert_eq!(err2.pass, "regalloc");
}

#[test]
fn hyperblock_form_accepts_predicated_side_exits() {
    // After if-conversion: a predicated CBr mid-block with computation
    // after it is legal in Hyperblock form and the checker stays quiet.
    let mut fb = FunctionBuilder::new("hb");
    let a = fb.param(RegClass::Int);
    let side = fb.new_block();
    let p = fb.cmp_lti(a, 0);
    fb.cbr(p, side);
    let b = fb.addi(a, 1);
    fb.ret(Some(b));
    fb.switch_to(side);
    fb.ret(Some(a));
    let mut prog = Program::new();
    prog.add_function(fb.finish());
    assert!(enforce(&prog, CfgForm::Hyperblock, "hyperblock").is_ok());
    // The same IR is illegal under the canonical discipline.
    assert!(enforce(&prog, CfgForm::Canonical, "opt").is_err());
}

#[test]
fn diagnostics_render_as_json() {
    let mut prog = test_program();
    broken_dce(&mut prog);
    let diags = check_program(&prog, CfgForm::Canonical, "dce");
    assert!(!diags.is_empty());
    let json = render_json(&diags);
    assert!(json.starts_with('['), "{json}");
    assert!(json.contains("\"severity\":\"error\""), "{json}");
    assert!(json.contains("\"pass\":\"dce\""), "{json}");
    assert!(json.contains("\"block\":"), "{json}");
}
