//! Criterion micro-benchmarks of the GP engine's genetic operators and an
//! ablation of depth-fair vs naive node selection.

use criterion::{criterion_group, criterion_main, Criterion};
use metaopt_gp::gen::random_expr;
use metaopt_gp::ops::{crossover, mutate, pick_node_depth_fair};
use metaopt_gp::{Env, FeatureSet, Kind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn features() -> FeatureSet {
    let mut fs = FeatureSet::new();
    for i in 0..8 {
        fs.add_real(format!("r{i}x"));
    }
    for i in 0..3 {
        fs.add_bool(format!("b{i}x"));
    }
    fs
}

fn bench_ops(c: &mut Criterion) {
    let fs = features();
    let mut rng = StdRng::seed_from_u64(42);
    let pop: Vec<_> = (0..64)
        .map(|_| random_expr(&mut rng, &fs, Kind::Real, 3, 8))
        .collect();

    c.bench_function("gp/crossover", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 63;
            crossover(&mut rng, &pop[i], &pop[i + 1], 12)
        })
    });

    c.bench_function("gp/mutate", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 64;
            mutate(&mut rng, &pop[i], &fs, 12)
        })
    });

    let reals = vec![1.5; 8];
    let bools = vec![true; 3];
    c.bench_function("gp/eval", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 64;
            pop[i].eval_real(&Env {
                reals: &reals,
                bools: &bools,
            })
        })
    });

    c.bench_function("gp/pick-depth-fair", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 64;
            pick_node_depth_fair(&mut rng, &pop[i], None)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_ops
}
criterion_main!(benches);
