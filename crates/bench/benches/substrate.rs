//! Criterion micro-benchmarks of the substrate: interpreter throughput,
//! compilation pipeline latency, and cycle-simulator throughput — the three
//! costs that bound a GP fitness evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use metaopt_compiler::{compile, prepare, Passes};
use metaopt_ir::interp::{run, RunConfig};
use metaopt_sim::simulate;
use metaopt_suite::{by_name, DataSet};

fn bench_interp(c: &mut Criterion) {
    let b = by_name("rawcaudio").expect("registered");
    let prog = b.program();
    let mem = b.memory(&prog, DataSet::Train);
    c.bench_function("interp/rawcaudio", |bench| {
        bench.iter(|| {
            let cfg = RunConfig {
                memory: Some(mem.clone()),
                ..Default::default()
            };
            run(&prog, &cfg).expect("runs")
        })
    });
}

fn bench_compile(c: &mut Criterion) {
    let b = by_name("rawcaudio").expect("registered");
    let prog = b.program();
    let prepared = prepare(&prog).expect("inlines");
    let mem = b.memory(&prepared, DataSet::Train);
    let profile = run(
        &prepared,
        &RunConfig {
            memory: Some(mem.clone()),
            profile: true,
            ..Default::default()
        },
    )
    .expect("profiles")
    .profile
    .expect("requested");
    let machine = metaopt_sim::MachineConfig::table3();

    c.bench_function("compile/rawcaudio-baseline", |bench| {
        bench.iter(|| {
            compile(&prepared, &profile.funcs[0], &machine, &Passes::baseline()).expect("compiles")
        })
    });

    let compiled =
        compile(&prepared, &profile.funcs[0], &machine, &Passes::baseline()).expect("compiles");
    c.bench_function("simulate/rawcaudio", |bench| {
        bench.iter(|| {
            let mut m = mem.clone();
            m.resize(compiled.mem_size.max(m.len()), 0);
            simulate(&compiled.code, &machine, m).expect("simulates")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_interp, bench_compile
}
criterion_main!(benches);
