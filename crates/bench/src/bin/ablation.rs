//! Ablations of the GP design choices called out in DESIGN.md: parsimony
//! pressure strength, tournament size (selection pressure), dynamic subset
//! selection, and mutation rate. Each variant runs the same hyperblock
//! specialization problem.

use metaopt::experiment::specialize;
use metaopt_bench::{harness_params, header};
use metaopt_gp::GpParams;

fn run(label: &str, params: &GpParams, bench: &metaopt_suite::Benchmark) {
    let cfg = metaopt::study::hyperblock();
    let r = specialize(&cfg, bench, params);
    println!(
        "{label:<34} train {:.3}  winner size {:>3}  evals {:>5}",
        r.train_speedup,
        r.best.size(),
        r.evaluations
    );
}

fn main() {
    header(
        "Ablation",
        "GP design choices on the g721decode specialization",
    );
    let base = harness_params();
    let bench = metaopt_suite::by_name("g721decode").expect("registered");

    run("baseline (paper Table 2 shape)", &base, &bench);

    let mut p = base.clone();
    p.fitness_epsilon = 0.0;
    run("parsimony: exact ties only", &p, &bench);
    let mut p = base.clone();
    p.fitness_epsilon = 5e-3;
    run("parsimony: strong (eps 5e-3)", &p, &bench);

    let mut p = base.clone();
    p.tournament = 2;
    run("tournament size 2 (low pressure)", &p, &bench);
    let mut p = base.clone();
    p.tournament = 15;
    run("tournament size 15 (high pressure)", &p, &bench);

    let mut p = base.clone();
    p.elitism = false;
    run("no elitism", &p, &bench);

    let mut p = base.clone();
    p.mutation_rate = 0.0;
    run("no mutation", &p, &bench);
    let mut p = base.clone();
    p.mutation_rate = 0.5;
    run("heavy mutation (50%)", &p, &bench);

    // DSS vs full evaluation on a multi-benchmark run: same search, count
    // the uncached evaluations DSS saves (the paper's motivation for it).
    println!("\nDSS cost ablation (4-benchmark general-purpose training):");
    let cfg = metaopt::study::hyperblock();
    let benches: Vec<_> = ["rawdaudio", "rawcaudio", "g721encode", "g721decode"]
        .iter()
        .map(|n| metaopt_suite::by_name(n).unwrap())
        .collect();
    for (label, subset) in [("full evaluation", None), ("DSS subset of 2", Some(2))] {
        let mut p = base.clone();
        p.subset_size = subset;
        let r = metaopt::experiment::train_general(&cfg, &benches, &p);
        println!(
            "  {label:<18} mean train {:.3}  uncached evals {:>6}",
            r.mean_train, r.evaluations
        );
    }
}
