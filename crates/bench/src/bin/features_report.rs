//! Feature-importance report (the paper's §9 future work: "techniques that
//! aid in extracting features that best reflect program variability").
//! Counts which features the evolved winners actually consult across a set
//! of specialization runs.

use metaopt::experiment::specialize;
use metaopt_bench::{harness_params, header};
use metaopt_gp::expr::display_named;
use std::collections::BTreeMap;

fn main() {
    header(
        "Features",
        "Which hyperblock features do evolved winners consult?",
    );
    let cfg = metaopt::study::hyperblock();
    let params = harness_params();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut winners = 0usize;
    for b in metaopt_suite::hyperblock_training_set().into_iter().take(6) {
        let r = specialize(&cfg, &b, &params);
        let text = display_named(&metaopt_gp::simplify::simplify(&r.best), &cfg.features);
        println!("{:<14} {}", b.name, text);
        winners += 1;
        for name in cfg
            .features
            .real_names()
            .iter()
            .chain(cfg.features.bool_names())
        {
            if text.contains(name.as_str()) {
                *counts.entry(name.clone()).or_insert(0) += 1;
            }
        }
    }
    println!("\nfeature usage across {winners} winners:");
    let mut by_count: Vec<_> = counts.into_iter().collect();
    by_count.sort_by_key(|e| std::cmp::Reverse(e.1));
    for (name, n) in by_count {
        println!("  {name:<24} {n}");
    }
}
