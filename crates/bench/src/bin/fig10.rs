//! Figure 10: register-allocation evolution — gradual fitness improvement
//! (contrast with hyperblock formation's fast early plateau, Fig. 5).

use metaopt::experiment::specialize;
use metaopt_bench::{harness_params, header};

fn main() {
    header(
        "Figure 10",
        "Register-allocation evolution: gradual improvement per generation",
    );
    let cfg = metaopt::study::regalloc();
    let params = harness_params();
    for name in ["g721encode", "mpeg2dec"] {
        let b = metaopt_suite::by_name(name).expect("registered");
        let r = specialize(&cfg, &b, &params);
        print!("{name:<14}");
        for g in &r.log {
            print!(" {:.4}", g.best_fitness);
        }
        println!();
    }
}
