//! Figure 11: general-purpose register-allocation priority on its training
//! set.

use metaopt::experiment::train_general;
use metaopt_bench::{harness_params, header, save_winner, speedup_row};

fn main() {
    header(
        "Figure 11",
        "General-purpose regalloc priority on its training set (paper: ~1.03/1.03)",
    );
    let cfg = metaopt::study::regalloc();
    let r = train_general(
        &cfg,
        &metaopt_suite::regalloc_training_set(),
        &harness_params(),
    );
    for (name, t, n) in &r.per_bench {
        speedup_row(name, *t, *n);
    }
    speedup_row("Average", r.mean_train, r.mean_novel);
    save_winner("regalloc", &r.best);
}
