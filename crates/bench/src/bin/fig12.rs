//! Figure 12: cross-validation of the general-purpose register-allocation
//! priority function.

use metaopt::experiment::{cross_validate, train_general};
use metaopt_bench::{harness_params, header, load_winner, mean, save_winner, speedup_row};

fn main() {
    header(
        "Figure 12",
        "Regalloc cross-validation (paper: ~1.03 avg, a couple below 1.0)",
    );
    let cfg = metaopt::study::regalloc();
    let winner = load_winner("regalloc", &cfg.features).unwrap_or_else(|| {
        eprintln!("(no cached winner from fig11 — running the DSS training first)");
        let r = train_general(
            &cfg,
            &metaopt_suite::regalloc_training_set(),
            &harness_params(),
        );
        save_winner("regalloc", &r.best);
        r.best
    });
    let cv = cross_validate(&cfg, &winner, &metaopt_suite::regalloc_test_set());
    let mut vals = Vec::new();
    for (name, t, n) in &cv.per_bench {
        speedup_row(name, *t, *n);
        vals.push(*t);
    }
    speedup_row(
        "Average",
        mean(&vals),
        mean(&cv.per_bench.iter().map(|x| x.2).collect::<Vec<_>>()),
    );
}
