//! Figure 13: prefetching specialization on the SPECfp-like training
//! kernels. Also reports the paper's observation that simply shutting off
//! prefetching gets within a few percent of the specialized functions.

use metaopt::experiment::specialize;
use metaopt_bench::{harness_params, header, mean, speedup_row};
use metaopt_suite::DataSet;

fn main() {
    header(
        "Figure 13",
        "Prefetching specialization (paper: large gains; no-prefetch within 7%)",
    );
    let cfg = metaopt::study::prefetch();
    let params = harness_params();
    let never = metaopt_gp::parse::parse_expr("(bconst false)", &cfg.features).expect("parses");
    let mut trains = Vec::new();
    let mut novels = Vec::new();
    let mut nevers = Vec::new();
    for b in metaopt_suite::prefetch_training_set() {
        let r = specialize(&cfg, &b, &params);
        let pb = metaopt::PreparedBench::new(&cfg, &b);
        let off = pb.speedup(&cfg, &never, DataSet::Train);
        println!(
            "{:<14} train {:>6.3} novel {:>6.3}   (no-prefetch {:>6.3})",
            r.name, r.train_speedup, r.novel_speedup, off
        );
        trains.push(r.train_speedup);
        novels.push(r.novel_speedup);
        nevers.push(off);
    }
    speedup_row("Average", mean(&trains), mean(&novels));
    println!("no-prefetch average: {:.3}", mean(&nevers));
}
