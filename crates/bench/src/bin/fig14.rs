//! Figure 14: prefetching evolution — the baseline expression is weeded out
//! quickly; fitness plateaus early.

use metaopt::experiment::specialize;
use metaopt_bench::{harness_params, header};

fn main() {
    header(
        "Figure 14",
        "Prefetching evolution: baseline weeded out quickly, early plateau",
    );
    let cfg = metaopt::study::prefetch();
    let params = harness_params();
    for name in ["101.tomcatv", "146.wave5"] {
        let b = metaopt_suite::by_name(name).expect("registered");
        let r = specialize(&cfg, &b, &params);
        print!("{name:<14}");
        for g in &r.log {
            print!(" {:.3}", g.best_fitness);
        }
        println!();
    }
}
