//! Figure 15: general-purpose prefetching confidence function trained with
//! DSS over the SPECfp-like suite.

use metaopt::experiment::train_general;
use metaopt_bench::{harness_params, header, save_winner, speedup_row};
use metaopt_gp::expr::display_named;

fn main() {
    header(
        "Figure 15",
        "General-purpose prefetch confidence on its training set (paper: 1.31/1.36)",
    );
    let cfg = metaopt::study::prefetch();
    let r = train_general(
        &cfg,
        &metaopt_suite::prefetch_training_set(),
        &harness_params(),
    );
    for (name, t, n) in &r.per_bench {
        speedup_row(name, *t, *n);
    }
    speedup_row("Average", r.mean_train, r.mean_novel);
    save_winner("prefetch", &r.best);
    println!("\nwinner: {}", display_named(&r.best, &cfg.features));
}
