//! Figure 16: cross-validation of the prefetch confidence function on
//! SPEC2000-like kernels, on two target architectures. Reproduces the
//! paper's caveat: the training set taught "rarely prefetch", but several
//! streaming SPEC2000 kernels *want* aggressive prefetching.

use metaopt::experiment::{cross_validate, train_general};
use metaopt_bench::{harness_params, header, load_winner, mean, save_winner, speedup_row};

fn main() {
    header(
        "Figure 16",
        "Prefetch cross-validation on SPEC2000, two architectures (mixed results)",
    );
    let mut cfg = metaopt::study::prefetch();
    let winner = load_winner("prefetch", &cfg.features).unwrap_or_else(|| {
        eprintln!("(no cached winner from fig15 — running the DSS training first)");
        let r = train_general(
            &cfg,
            &metaopt_suite::prefetch_training_set(),
            &harness_params(),
        );
        save_winner("prefetch", &r.best);
        r.best
    });
    for (label, machine) in [
        (
            "architecture A (Itanium-like)",
            metaopt_sim::MachineConfig::itanium_like(),
        ),
        (
            "architecture B (bigger caches)",
            metaopt_sim::MachineConfig::itanium_bigcache(),
        ),
    ] {
        println!("--- {label} ---");
        cfg.machine = machine;
        let cv = cross_validate(&cfg, &winner, &metaopt_suite::prefetch_test_set());
        let mut vals = Vec::new();
        for (name, t, n) in &cv.per_bench {
            speedup_row(name, *t, *n);
            vals.push(*t);
        }
        speedup_row(
            "Average",
            mean(&vals),
            mean(&cv.per_bench.iter().map(|x| x.2).collect::<Vec<_>>()),
        );
    }
    println!("\n(below-1.0 rows are the paper's point: the training set lacked");
    println!(" streaming workloads, so the evolved function under-prefetches there)");
}
