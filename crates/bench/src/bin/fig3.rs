//! Figure 3: control flow vs. predicated execution — shows a MiniC
//! if-then-else before and after if-conversion.

use metaopt_compiler::hyperblock::{form_hyperblocks, BaselineEq1};
use metaopt_ir::interp::{run, RunConfig};
use metaopt_sim::MachineConfig;

const SRC: &str = r#"
    global int inp[64];
    global int out[64];
    global int dataseed;
    fn main() -> int {
        let s = 0;
        for (let i = 0; i < 64; i = i + 1) { inp[i] = (i * 2654435761 + dataseed) % 97; }
        for (let i = 0; i < 64; i = i + 1) {
            let v = inp[i];
            if (v % 2 == 0) { out[i] = v * 3; } else { out[i] = v - 1; }
            s = s + out[i];
        }
        return s;
    }
"#;

fn main() {
    metaopt_bench::header("Figure 3", "Control flow v. predicated execution");
    let prog = metaopt_lang::compile(SRC).expect("compiles");
    let prepared = metaopt_compiler::prepare(&prog).expect("prepares");
    let profile = run(
        &prepared,
        &RunConfig {
            profile: true,
            ..Default::default()
        },
    )
    .expect("runs")
    .profile
    .expect("requested");

    println!("--- (a) control flow (canonical IR) ---");
    print!("{}", prepared.funcs[0]);

    let mut converted = prepared.funcs[0].clone();
    let r = form_hyperblocks(
        &mut converted,
        &profile.funcs[0],
        &MachineConfig::table3(),
        &BaselineEq1,
    );
    println!(
        "\n--- (b) predicated hyperblock ({} region(s) if-converted) ---",
        r.regions_converted
    );
    print!("{converted}");
}
