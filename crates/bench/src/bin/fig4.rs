//! Figure 4: hyperblock specialization — per-benchmark speedups when a
//! priority function is evolved for that one benchmark, on the train and
//! novel data sets.

use metaopt::experiment::specialize;
use metaopt_bench::{harness_params, header, mean, speedup_row};

fn main() {
    header(
        "Figure 4",
        "Hyperblock specialization (paper: avg 1.23 novel / 1.54 train)",
    );
    let cfg = metaopt::study::hyperblock();
    let params = harness_params();
    let mut trains = Vec::new();
    let mut novels = Vec::new();
    for b in metaopt_suite::hyperblock_training_set() {
        let r = specialize(&cfg, &b, &params);
        speedup_row(&r.name, r.train_speedup, r.novel_speedup);
        trains.push(r.train_speedup);
        novels.push(r.novel_speedup);
    }
    speedup_row("Average", mean(&trains), mean(&novels));
}
