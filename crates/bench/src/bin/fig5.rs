//! Figure 5: hyperblock-formation evolution — best fitness over the
//! generations for several specialization runs.

use metaopt::experiment::specialize;
use metaopt_bench::{harness_params, header};

fn main() {
    header(
        "Figure 5",
        "Hyperblock evolution: best fitness per generation (fast early gains)",
    );
    let cfg = metaopt::study::hyperblock();
    let params = harness_params();
    for name in ["rawdaudio", "g721encode", "129.compress"] {
        let b = metaopt_suite::by_name(name).expect("registered");
        let r = specialize(&cfg, &b, &params);
        print!("{name:<14}");
        for g in &r.log {
            print!(" {:.3}", g.best_fitness);
        }
        println!();
    }
    println!("\n(each column is one generation; values are speedup over the baseline)");
}
