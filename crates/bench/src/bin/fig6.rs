//! Figure 6: training one general-purpose hyperblock priority function over
//! the whole training suite with dynamic subset selection.

use metaopt::experiment::train_general;
use metaopt_bench::{harness_params, header, save_winner, speedup_row};

fn main() {
    header(
        "Figure 6",
        "General-purpose hyperblock priority on its training set (paper: 1.44/1.25)",
    );
    let cfg = metaopt::study::hyperblock();
    let benches = metaopt_suite::hyperblock_training_set();
    let r = train_general(&cfg, &benches, &harness_params());
    for (name, t, n) in &r.per_bench {
        speedup_row(name, *t, *n);
    }
    speedup_row("Average", r.mean_train, r.mean_novel);
    save_winner("hyperblock", &r.best);
    println!(
        "\nwinner cached for fig7/fig8: {}",
        metaopt_bench::cache_path("hyperblock").display()
    );
}
