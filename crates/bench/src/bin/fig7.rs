//! Figure 7: cross-validation of the general-purpose hyperblock priority
//! function on the unrelated test set.

use metaopt::experiment::{cross_validate, train_general};
use metaopt_bench::{harness_params, header, load_winner, mean, save_winner, speedup_row};

fn main() {
    header(
        "Figure 7",
        "Cross-validation on the unrelated test set (paper: avg 1.09, a few below 1.0)",
    );
    let cfg = metaopt::study::hyperblock();
    let winner = load_winner("hyperblock", &cfg.features).unwrap_or_else(|| {
        eprintln!("(no cached winner from fig6 — running the DSS training first)");
        let r = train_general(
            &cfg,
            &metaopt_suite::hyperblock_training_set(),
            &harness_params(),
        );
        save_winner("hyperblock", &r.best);
        r.best
    });
    let cv = cross_validate(&cfg, &winner, &metaopt_suite::hyperblock_test_set());
    let mut vals = Vec::new();
    for (name, t, n) in &cv.per_bench {
        speedup_row(name, *t, *n);
        vals.push(*t);
    }
    speedup_row(
        "Average",
        mean(&vals),
        mean(&cv.per_bench.iter().map(|x| x.2).collect::<Vec<_>>()),
    );
}
