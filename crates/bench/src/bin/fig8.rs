//! Figure 8: the best general-purpose hyperblock priority function found.

use metaopt::experiment::train_general;
use metaopt_bench::{harness_params, header, load_winner, save_winner};
use metaopt_gp::expr::display_named;

fn main() {
    header(
        "Figure 8",
        "Best evolved general-purpose hyperblock priority function",
    );
    let cfg = metaopt::study::hyperblock();
    let winner = load_winner("hyperblock", &cfg.features).unwrap_or_else(|| {
        eprintln!("(no cached winner from fig6 — running the DSS training first)");
        let r = train_general(
            &cfg,
            &metaopt_suite::hyperblock_training_set(),
            &harness_params(),
        );
        save_winner("hyperblock", &r.best);
        r.best
    });
    println!("raw:        {}", display_named(&winner, &cfg.features));
    let simplified = metaopt_gp::simplify::simplify(&winner);
    println!("simplified: {}", display_named(&simplified, &cfg.features));
    println!(
        "\nsize: {} -> {} nodes after intron removal (paper §5.4.3)",
        winner.size(),
        simplified.size()
    );
    println!("(compare with the paper's Eq. 1 seed:)");
    println!("{}", display_named(&cfg.baseline_seed, &cfg.features));
}
