//! Figure 9: register-allocation specialization speedups.

use metaopt::experiment::specialize;
use metaopt_bench::{harness_params, header, mean, speedup_row};

fn main() {
    header(
        "Figure 9",
        "Register-allocation specialization (paper: small gains, <= ~1.11)",
    );
    let cfg = metaopt::study::regalloc();
    let params = harness_params();
    let mut trains = Vec::new();
    let mut novels = Vec::new();
    for b in metaopt_suite::regalloc_training_set() {
        let r = specialize(&cfg, &b, &params);
        speedup_row(&r.name, r.train_speedup, r.novel_speedup);
        trains.push(r.train_speedup);
        novels.push(r.novel_speedup);
    }
    speedup_row("Average", mean(&trains), mean(&novels));
}
