//! Phase-ordering as a workload: sweep pipeline plans over representative
//! benchmarks and report cycles per plan, then break one baseline
//! compilation down into per-pass wall time and counter deltas.

use metaopt::experiment::{default_ablation_plans, try_ablate};
use metaopt::study;
use metaopt::PreparedBench;
use metaopt_bench::header;

fn main() {
    header(
        "Phases",
        "Pipeline-plan ablation (cycles per plan) and per-pass instrumentation",
    );
    let cfg = study::hyperblock();
    let plans = default_ablation_plans();
    for name in ["rawdaudio", "unepic", "g721encode"] {
        let bench = metaopt_suite::by_name(name).expect("registered");
        match try_ablate(&cfg, &bench, &plans) {
            Ok(r) => {
                println!("{}:", r.bench);
                for line in r.table().lines() {
                    println!("  {line}");
                }
            }
            Err(e) => println!("{name}: preparation failed: {e}"),
        }
        println!();
    }

    // One compilation under the canonical plan, decomposed pass by pass.
    let cfg = cfg.with_plan(metaopt_compiler::PipelinePlan::baseline());
    let bench = metaopt_suite::by_name("rawdaudio").expect("registered");
    let pb = PreparedBench::new(&cfg, &bench);
    println!("per-pass breakdown (rawdaudio, plan {}):", cfg.plan);
    for line in pb.baseline_stats.per_pass_table().lines() {
        println!("  {line}");
    }
}
