//! Parameter sweep: prefetch distance (iterations ahead) on a streaming
//! kernel vs an L1-resident kernel — the timeliness/pollution trade-off the
//! simulator models and the paper's pass exposes as a fixed policy knob.

use metaopt::study;
use metaopt::PreparedBench;
use metaopt_compiler::compile;
use metaopt_ir::interp::{run, RunConfig};
use metaopt_sim::simulate;
use metaopt_suite::DataSet;

fn main() {
    metaopt_bench::header(
        "Sweep",
        "Prefetch distance (iterations ahead): streaming vs resident kernels",
    );
    let cfg = study::prefetch();
    println!(
        "{:<14} {}",
        "bench",
        (0..7).map(|k| format!("{:>9}", 1 << k)).collect::<String>()
    );
    for name in ["171.swim", "101.tomcatv"] {
        let b = metaopt_suite::by_name(name).expect("registered");
        let pb = PreparedBench::new(&cfg, &b);
        let prog = b.program();
        let prepared = metaopt_compiler::prepare(&prog).expect("prepares");
        let mem0 = b.memory(&prepared, DataSet::Train);
        let profile = run(
            &prepared,
            &RunConfig {
                memory: Some(mem0.clone()),
                profile: true,
                ..Default::default()
            },
        )
        .expect("profiles")
        .profile
        .expect("requested");
        print!("{name:<14}");
        for k in 0..7 {
            let dist = 1i64 << k;
            let passes = metaopt_compiler::Passes {
                prefetch_iters_ahead: dist,
                ..cfg.baseline_passes()
            };
            let compiled =
                compile(&prepared, &profile.funcs[0], &cfg.machine, &passes).expect("compiles");
            let mut mem = mem0.clone();
            mem.resize(compiled.mem_size.max(mem.len()), 0);
            let r = simulate(&compiled.code, &cfg.machine, mem).expect("simulates");
            print!("{:>9}", r.cycles);
        }
        println!(
            "   (baseline dist 8: {})",
            pb.baseline_cycles(DataSet::Train)
        );
    }
    println!("\n(columns: prefetch distance 1,2,4,...,64 iterations ahead; cells: cycles)");
}
