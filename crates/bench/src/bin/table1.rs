//! Table 1: the GP primitive set.

fn main() {
    metaopt_bench::header(
        "Table 1",
        "GP primitives (exactly the paper's set + protected div)",
    );
    println!("{:<38} Representation", "Real-valued function");
    for (desc, rep) in [
        ("Real1 + Real2", "(add Real1 Real2)"),
        ("Real1 - Real2", "(sub Real1 Real2)"),
        ("Real1 * Real2", "(mul Real1 Real2)"),
        ("Real1 / Real2 (protected)", "(div Real1 Real2)"),
        ("sqrt(|Real1|)", "(sqrt Real1)"),
        ("Real1 if Bool1 else Real2", "(tern Bool1 Real1 Real2)"),
        (
            "Real1*Real2 if Bool1 else Real2",
            "(cmul Bool1 Real1 Real2)",
        ),
        ("real constant K", "(rconst K)"),
    ] {
        println!("{desc:<38} {rep}");
    }
    println!();
    println!("{:<38} Representation", "Boolean-valued function");
    for (desc, rep) in [
        ("Bool1 and Bool2", "(and Bool1 Bool2)"),
        ("Bool1 or Bool2", "(or Bool1 Bool2)"),
        ("not Bool1", "(not Bool1)"),
        ("Real1 < Real2", "(lt Real1 Real2)"),
        ("Real1 > Real2", "(gt Real1 Real2)"),
        ("Real1 = Real2", "(eq Real1 Real2)"),
        ("Boolean constant", "(bconst {true, false})"),
        ("Boolean feature of arg", "(barg arg)"),
    ] {
        println!("{desc:<38} {rep}");
    }
    // Demonstrate that each primitive parses and evaluates.
    let mut fs = metaopt_gp::FeatureSet::new();
    fs.add_real("x");
    fs.add_bool("p");
    let e = metaopt_gp::parse::parse_expr(
        "(tern (and (lt x 2.0) (barg p)) (sqrt (mul x x)) (div 1.0 x))",
        &fs,
    )
    .expect("all primitives parse");
    println!("\nround-trip check: {e}");
}
