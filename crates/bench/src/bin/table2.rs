//! Table 2: GP parameters.

use metaopt_gp::GpParams;

fn main() {
    metaopt_bench::header(
        "Table 2",
        "GP parameters (paper defaults; harness scale in brackets)",
    );
    let paper = GpParams::paper();
    let quick = metaopt_bench::harness_params();
    println!("{:<28} {:>10} {:>12}", "Parameter", "Paper", "[harness]");
    println!(
        "{:<28} {:>10} {:>12}",
        "Population size", paper.population, quick.population
    );
    println!(
        "{:<28} {:>10} {:>12}",
        "Number of generations", paper.generations, quick.generations
    );
    println!(
        "{:<28} {:>9}% {:>11}%",
        "Generational replacement",
        (paper.replace_frac * 100.0) as u32,
        (quick.replace_frac * 100.0) as u32
    );
    println!(
        "{:<28} {:>9}% {:>11}%",
        "Mutation rate",
        (paper.mutation_rate * 100.0) as u32,
        (quick.mutation_rate * 100.0) as u32
    );
    println!(
        "{:<28} {:>10} {:>12}",
        "Tournament size", paper.tournament, quick.tournament
    );
    println!("{:<28} {:>10} {:>12}", "Elitism (survivors)", 1, 1);
    println!("\nFitness: average speedup over the baseline on the suite of benchmarks.");
}
