//! Table 3: the EPIC architecture the hyperblock/regalloc studies target.

use metaopt_sim::MachineConfig;

fn main() {
    metaopt_bench::header(
        "Table 3",
        "Architectural characteristics (approximates Intel Itanium)",
    );
    let m = MachineConfig::table3();
    println!(
        "Registers        {} general-purpose, {} floating-point, {} predicate",
        m.gpr, m.fpr, m.pred
    );
    println!(
        "Integer units    {} fully-pipelined, 1-cycle latency (multiply 3, divide 8)",
        m.int_units
    );
    println!(
        "FP units         {} fully-pipelined, 3-cycle latency (divide/sqrt 8)",
        m.fp_units
    );
    println!(
        "Memory units     {}; L1 {} cy, L2 {} cy, beyond {} cy; stores buffered (1 cy)",
        m.mem_units, m.cache.l1_latency, m.cache.l2_latency, m.cache.miss_latency
    );
    println!(
        "Branch unit      {}; 2-bit predictor, {}-cycle misprediction penalty",
        m.branch_units, m.mispredict_penalty
    );
    println!(
        "Caches           L1 {} KiB/{}-way, L2 {} KiB/{}-way, {} B lines",
        m.cache.l1_bytes / 1024,
        m.cache.l1_assoc,
        m.cache.l2_bytes / 1024,
        m.cache.l2_assoc,
        m.cache.line_bytes
    );
    println!(
        "\nRegalloc study machine: {} GPR / {} FPR (paper §6.1)",
        MachineConfig::regalloc_stress().gpr,
        MachineConfig::regalloc_stress().fpr
    );
    let it = MachineConfig::itanium_like();
    println!(
        "Prefetch study machine: Itanium-like, L1 {} KiB, L2 {} KiB, prefetch queue {} cy",
        it.cache.l1_bytes / 1024,
        it.cache.l2_bytes / 1024,
        it.prefetch_queue_cycles
    );
}
