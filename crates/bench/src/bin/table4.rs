//! Table 4: hyperblock-selection features.

fn main() {
    metaopt_bench::header(
        "Table 4",
        "Hyperblock selection features (+ min/mean/max/std aggregates)",
    );
    let (reals, bools) = metaopt_compiler::hyperblock::feature_names();
    println!("Real-valued ({}):", reals.len());
    for f in &reals {
        println!("  {f}");
    }
    println!("Boolean ({}):", bools.len());
    for f in &bools {
        println!("  {f}");
    }
    println!("\nRegister-allocation features:");
    let (r2, b2) = metaopt_compiler::regalloc::feature_names();
    println!("  reals: {}", r2.join(", "));
    println!("  bools: {}", b2.join(", "));
    println!("Prefetch-confidence features:");
    let (r3, b3) = metaopt_compiler::prefetch::feature_names();
    println!("  reals: {}", r3.join(", "));
    println!("  bools: {}", b3.join(", "));
}
