//! Table 5: the benchmark suite.

fn main() {
    metaopt_bench::header(
        "Table 5",
        "Benchmarks (MiniC stand-ins for the paper's suite)",
    );
    println!(
        "{:<14} {:<12} {:<10} Description",
        "Benchmark", "Suite", "Category"
    );
    for b in metaopt_suite::all_benchmarks() {
        println!(
            "{:<14} {:<12} {:<10} {}",
            b.name,
            b.suite,
            match b.category {
                metaopt_suite::Category::IntMedia => "int/media",
                metaopt_suite::Category::Fp => "fp",
            },
            b.description
        );
    }
    println!(
        "\nTotal: {} benchmarks",
        metaopt_suite::all_benchmarks().len()
    );
}
