#![warn(missing_docs)]
//! # metaopt-bench
//!
//! The reproduction harness: one binary per table and figure of the paper's
//! evaluation (run e.g. `cargo run --release -p metaopt-bench --bin fig4`),
//! plus Criterion micro-benchmarks of the substrate (`cargo bench`).
//!
//! Every figure binary prints the same rows/series the paper reports. GP
//! scale defaults to a laptop-friendly configuration; set the environment
//! variables `METAOPT_POP`, `METAOPT_GENS`, `METAOPT_SEED` and
//! `METAOPT_THREADS` to change it (`METAOPT_PAPER=1` selects the paper's
//! full Table 2 parameters — expect very long runtimes, as in the paper's
//! "about one day per benchmark").

use metaopt_gp::GpParams;

/// GP parameters for the figure harness: [`GpParams::quick`]-based defaults
/// overridable through the environment (see crate docs).
pub fn harness_params() -> GpParams {
    let mut p = if std::env::var("METAOPT_PAPER").is_ok_and(|v| v == "1") {
        GpParams::paper()
    } else {
        let mut q = GpParams::quick();
        q.population = 24;
        q.generations = 8;
        q
    };
    if let Ok(v) = std::env::var("METAOPT_POP") {
        if let Ok(n) = v.parse() {
            p.population = n;
        }
    }
    if let Ok(v) = std::env::var("METAOPT_GENS") {
        if let Ok(n) = v.parse() {
            p.generations = n;
        }
    }
    if let Ok(v) = std::env::var("METAOPT_SEED") {
        if let Ok(n) = v.parse() {
            p.seed = n;
        }
    }
    if let Ok(v) = std::env::var("METAOPT_THREADS") {
        if let Ok(n) = v.parse() {
            p.threads = n;
        }
    }
    p
}

/// Print a figure header in a uniform style.
pub fn header(id: &str, caption: &str) {
    println!("==============================================================");
    println!("{id}: {caption}");
    println!("==============================================================");
}

/// Print one speedup bar-pair row (the paper's dark/light bars).
pub fn speedup_row(name: &str, train: f64, novel: f64) {
    println!(
        "{name:<14} train {train:>6.3}  {}  novel {novel:>6.3}  {}",
        bar(train),
        bar(novel)
    );
}

/// A crude text bar for a speedup value (1.0 = baseline).
pub fn bar(speedup: f64) -> String {
    let over = ((speedup - 1.0) * 100.0).round() as i64;
    if over >= 0 {
        format!("|{}", "#".repeat((over as usize).min(60)))
    } else {
        format!("-{}", "~".repeat(((-over) as usize).min(60)))
    }
}

/// Geometric-style arithmetic mean used by the paper's "Average" bars.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        1.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Location of cached winner expressions (so `fig7` can reuse `fig6`'s
/// evolved priority function instead of re-running the search).
pub fn cache_path(study: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("target").join("metaopt_cache");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!("{study}_winner.sexpr"))
}

/// Persist a winner expression for a later figure binary.
pub fn save_winner(study: &str, expr: &metaopt_gp::Expr) {
    let _ = std::fs::write(cache_path(study), expr.to_string());
}

/// Load a previously saved winner, if any.
pub fn load_winner(study: &str, features: &metaopt_gp::FeatureSet) -> Option<metaopt_gp::Expr> {
    let text = std::fs::read_to_string(cache_path(study)).ok()?;
    metaopt_gp::parse::parse_expr(text.trim(), features).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_overrides_apply() {
        // Serialize env manipulation within this test only.
        std::env::set_var("METAOPT_POP", "17");
        std::env::set_var("METAOPT_GENS", "3");
        let p = harness_params();
        assert_eq!(p.population, 17);
        assert_eq!(p.generations, 3);
        std::env::remove_var("METAOPT_POP");
        std::env::remove_var("METAOPT_GENS");
    }

    #[test]
    fn bars_render() {
        assert!(bar(1.10).contains("##"));
        assert!(bar(0.95).contains("~"));
        assert_eq!(bar(1.0), "|");
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 1.0);
        assert!((mean(&[1.0, 2.0]) - 1.5).abs() < 1e-12);
    }
}
