//! Hyperblock formation by if-conversion (paper case study I).
//!
//! Reimplements the decision structure of Trimaran/IMPACT's hyperblock
//! selector (Mahlke; Park–Schlansker): enumerate the control paths through
//! an acyclic single-entry region, score each path with a **priority
//! function** over the paper's Table 4 features, and merge paths in priority
//! order until the machine's estimated resources are consumed. The priority
//! function is pluggable ([`RealPriority`]); [`BaselineEq1`] is the paper's
//! Eq. 1.
//!
//! Regions are if-then-else diamonds and if-then triangles, processed
//! innermost-first to a fixpoint so nested conditionals collapse into large
//! multi-path hyperblocks (merged guards are combined with predicate ANDs,
//! and previously-formed side exits are preserved). A path is eligible for
//! inclusion only if its priority is positive; a region is converted only
//! when at least two paths are included — this gives the evolved priority
//! functions full control over both *whether* and *what* to predicate.
//!
//! **Precondition** (guaranteed by the MiniC frontend and preserved by every
//! pass here): values that flow between blocks are multiply-defined cells
//! with a definition on every path or a dominating definition; expression
//! temporaries never cross block boundaries. This is what makes plain
//! guard-predication (without phi insertion) semantics-preserving.

use crate::pass::{Pass, PassCtx};
use crate::{CompileError, RealPriority};
use metaopt_ir::profile::{BranchStats, FuncProfile};
use metaopt_ir::verify::CfgForm;
use metaopt_ir::{BlockId, Function, Inst, Opcode, RegClass, VReg};
use metaopt_sim::machine::latency_of;
use metaopt_sim::MachineConfig;

/// Real-valued path features (paper Table 4 + min/mean/max/std aggregates
/// over the region's paths, §5.3). Index order is the public contract for
/// priority functions.
pub const REAL_FEATURES: &[&str] = &[
    "dep_height",
    "num_ops",
    "exec_ratio",
    "num_branches",
    "predictability",
    "predict_product",
    "dep_height_min",
    "dep_height_mean",
    "dep_height_max",
    "dep_height_std",
    "num_ops_min",
    "num_ops_mean",
    "num_ops_max",
    "num_ops_std",
    "exec_ratio_min",
    "exec_ratio_mean",
    "exec_ratio_max",
    "exec_ratio_std",
    "num_branches_min",
    "num_branches_mean",
    "num_branches_max",
    "num_branches_std",
    "predictability_min",
    "predictability_mean",
    "predictability_max",
    "predictability_std",
    "predict_product_mean",
    "num_paths",
];

/// Boolean path features (hazards, §5.1).
pub const BOOL_FEATURES: &[&str] = &["mem_hazard", "has_unsafe_jsr", "has_pointer_deref"];

/// The feature names (reals, bools) in index order.
pub fn feature_names() -> (Vec<&'static str>, Vec<&'static str>) {
    (REAL_FEATURES.to_vec(), BOOL_FEATURES.to_vec())
}

/// Per-path feature record.
#[derive(Clone, Debug, Default)]
pub struct PathFeatures {
    /// Real features, ordered as [`REAL_FEATURES`].
    pub reals: Vec<f64>,
    /// Boolean features, ordered as [`BOOL_FEATURES`].
    pub bools: Vec<bool>,
}

/// The paper's Eq. 1 (IMPACT's shipped heuristic):
/// `priority_i = exec_ratio_i · h_i · (2.1 − d_ratio_i − o_ratio_i)` with
/// `h_i = 0.25` for paths containing hazards, 1 otherwise.
pub struct BaselineEq1;

impl RealPriority for BaselineEq1 {
    fn score(&self, reals: &[f64], bools: &[bool]) -> f64 {
        let dep_height = reals[0];
        let num_ops = reals[1];
        let exec_ratio = reals[2];
        let dep_height_max = reals[8].max(1e-9);
        let num_ops_max = reals[12].max(1e-9);
        let hazard = bools[0] || bools[1] || bools[2];
        let h = if hazard { 0.25 } else { 1.0 };
        let d_ratio = dep_height / dep_height_max;
        let o_ratio = num_ops / num_ops_max;
        exec_ratio * h * (2.1 - d_ratio - o_ratio)
    }
}

/// Outcome of the pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HyperblockResult {
    /// Regions if-converted.
    pub regions_converted: u64,
    /// Paths merged across all regions.
    pub paths_merged: u64,
}

/// One candidate path through a region.
pub struct PathInfo {
    /// Conditional blocks along the path (possibly empty for the
    /// fall-through side of a triangle).
    pub blocks: Vec<BlockId>,
    /// Latency-weighted dependence height.
    pub dep_height: f64,
    /// Instruction count.
    pub num_ops: f64,
    /// Execution ratio from the profile.
    pub exec_ratio: f64,
    /// Branches (explicit plus absorbed guards).
    pub num_branches: f64,
    /// 2-bit-predictor accuracy of the region's branch.
    pub predictability: f64,
    /// Contains a store or opaque call.
    pub mem_hazard: bool,
    /// Contains an opaque call.
    pub has_unsafe_jsr: bool,
    /// Contains an indirect (pointer-chasing) load.
    pub has_pointer_deref: bool,
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Dependence height of a straight-line instruction sequence: longest
/// latency-weighted chain through register dependences.
fn dep_height(insts: &[Inst]) -> f64 {
    use std::collections::HashMap;
    let mut ready: HashMap<(RegClass, u32), u64> = HashMap::new();
    let mut height = 0u64;
    for inst in insts {
        let mut start = 0u64;
        if let Some(classes) = inst.op.arg_classes() {
            for (a, c) in inst.args.iter().zip(classes) {
                start = start.max(ready.get(&(*c, a.0)).copied().unwrap_or(0));
            }
        }
        if let Some(p) = inst.pred {
            start = start.max(ready.get(&(RegClass::Pred, p.0)).copied().unwrap_or(0));
        }
        let fin = start + latency_of(inst.op);
        if let (Some(c), Some(d)) = (inst.op.dst_class(), inst.dst) {
            ready.insert((c, d.0), fin);
        }
        height = height.max(fin);
    }
    height as f64
}

/// Registers anywhere in the function that are defined by a load; used to
/// spot indirect ("pointer-chasing") loads, the paper's pointer-deref
/// hazard.
fn load_defined(func: &Function) -> Vec<bool> {
    let mut out = vec![false; func.num_vregs()];
    for b in &func.blocks {
        for inst in &b.insts {
            if inst.op.is_load() {
                if let Some(d) = inst.dst {
                    out[d.index()] = true;
                }
            }
        }
    }
    out
}

fn path_info(
    func: &Function,
    blocks: &[BlockId],
    exec_ratio: f64,
    stats: BranchStats,
    loaded: &[bool],
) -> PathInfo {
    let mut insts: Vec<Inst> = Vec::new();
    for &b in blocks {
        // Exclude the trailing unconditional branch from path cost.
        let bb = func.block(b);
        let end = bb.insts.len().saturating_sub(1);
        insts.extend(bb.insts[..end].iter().cloned());
    }
    // Branches absorbed into this path by earlier merges show up as guard
    // predicates; count distinct guards plus any remaining explicit CBrs.
    let mut guards: Vec<u32> = Vec::new();
    for i in &insts {
        if let Some(g) = i.pred {
            if !guards.contains(&g.0) {
                guards.push(g.0);
            }
        }
    }
    let num_branches =
        insts.iter().filter(|i| i.op == Opcode::CBr).count() as f64 + guards.len() as f64;
    let mem_hazard = insts.iter().any(|i| i.is_hazard());
    let has_unsafe_jsr = insts.iter().any(|i| i.op == Opcode::UnsafeCall);
    let has_pointer_deref = insts
        .iter()
        .any(|i| i.op.is_load() && i.args.first().is_some_and(|a| loaded[a.index()]));
    PathInfo {
        blocks: blocks.to_vec(),
        dep_height: dep_height(&insts),
        num_ops: insts.len() as f64,
        exec_ratio,
        num_branches,
        predictability: stats.predictability(),
        mem_hazard,
        has_unsafe_jsr,
        has_pointer_deref,
    }
}

/// Build the full feature vectors for every path in a region (the paper
/// extracts aggregates "of all path-specific characteristics" to give the
/// greedy local heuristic some global information).
pub fn features_of_region(paths: &[PathInfo]) -> Vec<PathFeatures> {
    let dh: Vec<f64> = paths.iter().map(|p| p.dep_height).collect();
    let no: Vec<f64> = paths.iter().map(|p| p.num_ops).collect();
    let er: Vec<f64> = paths.iter().map(|p| p.exec_ratio).collect();
    let nb: Vec<f64> = paths.iter().map(|p| p.num_branches).collect();
    let pr: Vec<f64> = paths.iter().map(|p| p.predictability).collect();
    let pp: Vec<f64> = paths
        .iter()
        .map(|p| p.predictability * p.exec_ratio)
        .collect();
    let minmax = |xs: &[f64]| {
        (
            xs.iter().copied().fold(f64::INFINITY, f64::min),
            xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        )
    };
    let (dh_min, dh_max) = minmax(&dh);
    let (no_min, no_max) = minmax(&no);
    let (er_min, er_max) = minmax(&er);
    let (nb_min, nb_max) = minmax(&nb);
    let (pr_min, pr_max) = minmax(&pr);
    let num_paths = paths.len() as f64 + paths.iter().map(|p| p.num_branches).sum::<f64>();
    paths
        .iter()
        .enumerate()
        .map(|(i, p)| PathFeatures {
            reals: vec![
                p.dep_height,
                p.num_ops,
                p.exec_ratio,
                p.num_branches,
                p.predictability,
                pp[i],
                dh_min,
                mean(&dh),
                dh_max,
                std_dev(&dh),
                no_min,
                mean(&no),
                no_max,
                std_dev(&no),
                er_min,
                mean(&er),
                er_max,
                std_dev(&er),
                nb_min,
                mean(&nb),
                nb_max,
                std_dev(&nb),
                pr_min,
                mean(&pr),
                pr_max,
                std_dev(&pr),
                mean(&pp),
                num_paths,
            ],
            bools: vec![p.mem_hazard, p.has_unsafe_jsr, p.has_pointer_deref],
        })
        .collect()
}

/// Aggregate branch statistics for a block's (single) conditional branch.
/// Keyed by block only so it survives instruction-index shifts caused by
/// earlier passes.
fn branch_stats_of(profile: &FuncProfile, b: BlockId) -> BranchStats {
    let mut agg = BranchStats::default();
    for ((bb, _), s) in &profile.branches {
        if *bb == b {
            agg.executed += s.executed;
            agg.taken += s.taken;
            agg.correct += s.correct;
        }
    }
    agg
}

/// A matched region: entry block `a` ending with `CBr p -> t; Br f`, with a
/// join `j` and the conditional path blocks on each side.
struct Region {
    a: BlockId,
    taken_path: Vec<BlockId>, // blocks predicated under p
    fall_path: Vec<BlockId>,  // blocks predicated under !p
    join: BlockId,
}

/// Try to match a diamond or triangle rooted at `a`.
fn match_region(func: &Function, a: BlockId, preds: &[Vec<BlockId>]) -> Option<Region> {
    let insts = &func.block(a).insts;
    let n = insts.len();
    if n < 2 {
        return None;
    }
    let (cbr, br) = (&insts[n - 2], &insts[n - 1]);
    if cbr.op != Opcode::CBr || br.op != Opcode::Br || cbr.pred.is_some() {
        return None;
    }
    // Exactly one CBr in the tail (our canonical frontend shape).
    if insts[..n - 2].iter().any(|i| i.op == Opcode::CBr) {
        return None;
    }
    let t = cbr.target?;
    let f = br.target?;
    if t == f || t == a || f == a {
        return None;
    }
    // Follow a chain of straight-line blocks starting at `start` (whose
    // only predecessor must be `from`): each block contains no control flow
    // except a trailing unconditional `Br`. Returns the chain and the block
    // it finally joins (the first block with other predecessors or any
    // non-straight shape).
    let straight_chain = |from: BlockId, start: BlockId| -> Option<(Vec<BlockId>, BlockId)> {
        let mut chain = Vec::new();
        let mut prev = from;
        let mut cur = start;
        loop {
            if chain.len() > 8 {
                return None;
            }
            if preds[cur.index()].len() != 1 || preds[cur.index()][0] != prev {
                return Some((chain, cur));
            }
            let insts = &func.block(cur).insts;
            let last = insts.last()?;
            if last.op != Opcode::Br || insts[..insts.len() - 1].iter().any(|i| i.op.is_control()) {
                return Some((chain, cur));
            }
            chain.push(cur);
            prev = cur;
            cur = last.target?;
            if cur == a {
                return None; // loop backedge, not a hammock
            }
        }
    };
    // Diamond: a -> t-chain -> j and a -> f-chain -> j.
    if let (Some((ct, jt)), Some((cf, jf))) = (straight_chain(a, t), straight_chain(a, f)) {
        if jt == jf && jt != a && !ct.is_empty() && !cf.is_empty() {
            return Some(Region {
                a,
                taken_path: ct,
                fall_path: cf,
                join: jt,
            });
        }
        // Triangle (then on taken side): a -> t-chain -> f.
        if !ct.is_empty() && jt == f {
            return Some(Region {
                a,
                taken_path: ct,
                fall_path: vec![],
                join: f,
            });
        }
        // Triangle (then on fall-through side): a -> f-chain -> t.
        if !cf.is_empty() && jf == t {
            return Some(Region {
                a,
                taken_path: vec![],
                fall_path: cf,
                join: t,
            });
        }
    }
    None
}

/// Cap on merged block size (instructions) to keep schedules sane.
const MAX_MERGED_INSTS: usize = 512;

/// Run hyperblock formation over `func` using `priority`; `profile` supplies
/// execution ratios and branch predictability. Returns conversion counts.
/// The function is left in **hyperblock form** (predicated side exits).
pub fn form_hyperblocks(
    func: &mut Function,
    profile: &FuncProfile,
    machine: &MachineConfig,
    priority: &dyn RealPriority,
) -> HyperblockResult {
    let mut result = HyperblockResult::default();
    loop {
        let mut changed = false;
        let preds = func.predecessors();
        let loaded = load_defined(func);
        let blocks: Vec<BlockId> = (0..func.blocks.len() as u32).map(BlockId).collect();
        for a in blocks {
            let Some(region) = match_region(func, a, &preds) else {
                continue;
            };
            let stats = branch_stats_of(profile, a);
            let taken_ratio = stats.taken_ratio();
            let p_taken = path_info(func, &region.taken_path, taken_ratio, stats, &loaded);
            let p_fall = path_info(func, &region.fall_path, 1.0 - taken_ratio, stats, &loaded);
            let total_ops = p_taken.num_ops + p_fall.num_ops;
            if total_ops as usize + func.block(a).insts.len() > MAX_MERGED_INSTS {
                continue;
            }
            let paths = [p_taken, p_fall];
            let feats = features_of_region(&paths);
            let scores: Vec<f64> = feats
                .iter()
                .map(|f| priority.score(&f.reals, &f.bools))
                .collect();
            // Select paths in priority order while the estimated resources
            // last (IMPACT §5.2); only positive-priority paths are eligible.
            let mut order: Vec<usize> = (0..paths.len()).collect();
            order.sort_by(|&x, &y| {
                scores[y]
                    .partial_cmp(&scores[x])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            // Architecture-fixed resource budget (IMPACT "stops merging
            // paths when it has consumed the target architecture's
            // estimated resources"): the compute slots available inside a
            // misprediction shadow. Instructions already predicated into
            // `a` by earlier merges count against it, which is what stops
            // deep else-if chains from collapsing into one giant block.
            let compute_slots = (machine.int_units + machine.fp_units + machine.mem_units) as f64;
            let budget = compute_slots * (machine.mispredict_penalty + 2) as f64;
            let mut cumulative = func
                .block(a)
                .insts
                .iter()
                .filter(|i| i.pred.is_some())
                .count() as f64;
            // Mahlke's relative selection threshold: paths scoring far
            // below the region's best path are not worth predicating in.
            let best_score = order.first().map(|&i| scores[i]).unwrap_or(0.0).max(0.0);
            let mut selected = Vec::new();
            for &i in &order {
                if scores[i] <= 0.0 || scores[i] < 0.10 * best_score {
                    continue;
                }
                if cumulative + paths[i].num_ops <= budget {
                    cumulative += paths[i].num_ops;
                    selected.push(i);
                }
            }
            if selected.len() < 2 {
                continue;
            }
            // Convert.
            if_convert(func, &region);
            result.regions_converted += 1;
            result.paths_merged += selected.len() as u64;
            changed = true;
            break; // predecessor lists are stale; recompute
        }
        if !changed {
            break;
        }
    }
    result
}

/// Predicate `inst` under `guard`, combining with any existing guard via a
/// freshly inserted `PAnd` (whose own result is only meaningful when the
/// outer guard is true — exactly the nullification semantics we need).
fn guard_inst(func: &mut Function, out: &mut Vec<Inst>, inst: &Inst, guard: VReg) {
    match inst.pred {
        None => {
            let mut ni = inst.clone();
            ni.pred = Some(guard);
            out.push(ni);
        }
        Some(g) => {
            let combined = func.new_vreg(RegClass::Pred);
            out.push(Inst::new(Opcode::PAnd).dst(combined).args(&[guard, g]));
            let mut ni = inst.clone();
            ni.pred = Some(combined);
            out.push(ni);
        }
    }
}

/// Perform the if-conversion for a matched region.
fn if_convert(func: &mut Function, region: &Region) {
    let insts = &func.block(region.a).insts;
    let n = insts.len();
    let cbr = insts[n - 2].clone();
    debug_assert_eq!(cbr.op, Opcode::CBr);
    let p = cbr.args[0];

    // Drop the region's CBr + Br from `a`.
    let mut merged: Vec<Inst> = func.block(region.a).insts[..n - 2].to_vec();

    // !p for the fall-through side.
    let np = func.new_vreg(RegClass::Pred);
    merged.push(Inst::new(Opcode::PNot).dst(np).args(&[p]));

    let absorb = |func: &mut Function, merged: &mut Vec<Inst>, path: &[BlockId], g: VReg| {
        for &b in path {
            let body: Vec<Inst> = {
                let bb = func.block(b);
                bb.insts[..bb.insts.len() - 1].to_vec() // drop trailing Br
            };
            for inst in &body {
                guard_inst(func, merged, inst, g);
            }
            // Stub out the absorbed block (now unreachable).
            func.block_mut(b).insts = vec![Inst::new(Opcode::Ret)];
        }
    };
    absorb(func, &mut merged, &region.taken_path, p);
    absorb(func, &mut merged, &region.fall_path, np);

    merged.push(Inst::new(Opcode::Br).target(region.join));
    func.block_mut(region.a).insts = merged;
}

/// [`form_hyperblocks`] as a plan-schedulable [`Pass`]. Owns the
/// form-transition and profile-remap logic that if-conversion causes: the
/// CFG discipline loosens to [`CfgForm::Hyperblock`], absorbed blocks are
/// pruned, and the block profile is renumbered to match so downstream
/// passes (e.g. the allocator's block weights) stay aligned.
pub struct HyperblockPass;

impl Pass for HyperblockPass {
    fn name(&self) -> &'static str {
        "hyperblock"
    }

    fn run(&self, func: &mut Function, ctx: &mut PassCtx<'_>) -> Result<(), CompileError> {
        let r = form_hyperblocks(func, &ctx.profile, ctx.machine, ctx.config.hyperblock);
        ctx.stats.counters.hyperblocks += r.regions_converted;
        ctx.stats.counters.paths_merged += r.paths_merged;
        ctx.form = CfgForm::Hyperblock;
        // If-conversion tombstones the absorbed blocks; delete them and
        // renumber the profile to match.
        let map = func.prune_unreachable_blocks();
        if map.iter().any(|m| m.is_none()) {
            ctx.profile = std::borrow::Cow::Owned(ctx.profile.remap_blocks(&map));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_ir::interp::{run, RunConfig};
    use metaopt_ir::verify::{verify_function, CfgForm};

    /// Benchmark with an unpredictable branch in a hot loop — the canonical
    /// case where predication wins (paper Fig. 3).
    const UNPREDICTABLE: &str = r#"
        global int xs[256];
        global int seed;
        fn main() -> int {
            seed = 12345;
            for (let i = 0; i < 256; i = i + 1) {
                seed = (seed * 1103515245 + 12345) % 2147483648;
                xs[i] = seed % 997;
            }
            let s = 0;
            for (let r = 0; r < 20; r = r + 1) {
                for (let i = 0; i < 256; i = i + 1) {
                    if (xs[i] % 2 == 0) { s = s + xs[i] * 3; } else { s = s - xs[i] * 2; }
                }
            }
            return s;
        }
    "#;

    fn prepared_with_profile(src: &str) -> (metaopt_ir::Program, FuncProfile) {
        let prog = metaopt_lang::compile(src).unwrap();
        let prepared = crate::prepare(&prog).unwrap();
        let prof = run(
            &prepared,
            &RunConfig {
                profile: true,
                ..Default::default()
            },
        )
        .unwrap()
        .profile
        .unwrap();
        (prepared, prof.funcs[0].clone())
    }

    #[test]
    fn baseline_converts_the_diamond_and_preserves_semantics() {
        let (prepared, prof) = prepared_with_profile(UNPREDICTABLE);
        let want = run(&prepared, &RunConfig::default()).unwrap().ret;
        let mut func = prepared.funcs[0].clone();
        let r = form_hyperblocks(&mut func, &prof, &MachineConfig::table3(), &BaselineEq1);
        assert!(r.regions_converted >= 1, "{r:?}");
        verify_function(&func, CfgForm::Hyperblock).unwrap();
        let mut p2 = prepared.clone();
        p2.funcs[0] = func;
        let got = run(&p2, &RunConfig::default()).unwrap().ret;
        assert_eq!(got, want);
    }

    #[test]
    fn negative_priority_disables_conversion() {
        let (prepared, prof) = prepared_with_profile(UNPREDICTABLE);
        let mut func = prepared.funcs[0].clone();
        let never = |_: &[f64], _: &[bool]| -1.0;
        let r = form_hyperblocks(&mut func, &prof, &MachineConfig::table3(), &never);
        assert_eq!(r.regions_converted, 0);
    }

    #[test]
    fn arbitrary_priority_functions_preserve_semantics() {
        // The GP explores wild functions; none may change program results.
        let (prepared, prof) = prepared_with_profile(UNPREDICTABLE);
        let want = run(&prepared, &RunConfig::default()).unwrap().ret;
        type PriorityFn = Box<dyn Fn(&[f64], &[bool]) -> f64 + Sync>;
        let weird_fns: Vec<PriorityFn> = vec![
            Box::new(|r: &[f64], _: &[bool]| r[1] - r[0]),
            Box::new(|r: &[f64], b: &[bool]| if b[0] { 100.0 } else { r[2] * 50.0 }),
            Box::new(|_: &[f64], _: &[bool]| 1e9),
            Box::new(|r: &[f64], _: &[bool]| (r[27] - 2.0) * 7.3),
        ];
        for f in &weird_fns {
            let mut func = prepared.funcs[0].clone();
            let fr = |r: &[f64], b: &[bool]| f(r, b);
            form_hyperblocks(&mut func, &prof, &MachineConfig::table3(), &fr);
            verify_function(&func, CfgForm::Hyperblock).unwrap();
            let mut p2 = prepared.clone();
            p2.funcs[0] = func;
            assert_eq!(run(&p2, &RunConfig::default()).unwrap().ret, want);
        }
    }

    #[test]
    fn nested_diamonds_collapse() {
        let src = r#"
            global int xs[128];
            fn main() -> int {
                for (let i = 0; i < 128; i = i + 1) { xs[i] = (i * 37 + 11) % 101; }
                let s = 0;
                for (let i = 0; i < 128; i = i + 1) {
                    let v = xs[i];
                    if (v % 2 == 0) {
                        if (v % 3 == 0) { s = s + 2 * v; } else { s = s + v; }
                    } else {
                        s = s - 1;
                    }
                }
                return s;
            }
        "#;
        let (prepared, prof) = prepared_with_profile(src);
        let want = run(&prepared, &RunConfig::default()).unwrap().ret;
        let mut func = prepared.funcs[0].clone();
        let always = |_: &[f64], _: &[bool]| 10.0;
        let r = form_hyperblocks(&mut func, &prof, &MachineConfig::table3(), &always);
        assert!(
            r.regions_converted >= 2,
            "inner and outer should both convert: {r:?}"
        );
        verify_function(&func, CfgForm::Hyperblock).unwrap();
        let mut p2 = prepared.clone();
        p2.funcs[0] = func;
        assert_eq!(run(&p2, &RunConfig::default()).unwrap().ret, want);
    }

    #[test]
    fn triangles_convert() {
        let src = r#"
            global int xs[64];
            fn main() -> int {
                for (let i = 0; i < 64; i = i + 1) { xs[i] = (i * 53) % 31; }
                let s = 0;
                for (let i = 0; i < 64; i = i + 1) {
                    if (xs[i] % 2 == 0) { s = s + xs[i]; }
                }
                return s;
            }
        "#;
        let (prepared, prof) = prepared_with_profile(src);
        let want = run(&prepared, &RunConfig::default()).unwrap().ret;
        let mut func = prepared.funcs[0].clone();
        let always = |_: &[f64], _: &[bool]| 5.0;
        let r = form_hyperblocks(&mut func, &prof, &MachineConfig::table3(), &always);
        assert!(r.regions_converted >= 1, "{r:?}");
        let mut p2 = prepared.clone();
        p2.funcs[0] = func;
        assert_eq!(run(&p2, &RunConfig::default()).unwrap().ret, want);
    }

    #[test]
    fn eq1_baseline_scores_sensibly() {
        // Hot, short, hazard-free paths score high.
        let mut reals = vec![0.0; REAL_FEATURES.len()];
        reals[0] = 2.0; // dep_height
        reals[1] = 4.0; // num_ops
        reals[2] = 0.9; // exec_ratio
        reals[8] = 4.0; // dep_height_max
        reals[12] = 8.0; // num_ops_max
        let hot = BaselineEq1.score(&reals, &[false, false, false]);
        let hazardous = BaselineEq1.score(&reals, &[true, false, false]);
        assert!(hot > 0.0);
        assert!((hazardous - hot * 0.25).abs() < 1e-12);
        reals[2] = 0.1;
        let cold = BaselineEq1.score(&reals, &[false, false, false]);
        assert!(cold < hot);
    }

    #[test]
    fn feature_vector_matches_declared_names() {
        let (prepared, prof) = prepared_with_profile(UNPREDICTABLE);
        let func = &prepared.funcs[0];
        let loaded = load_defined(func);
        // Find any diamond and check the feature vector shape.
        let preds = func.predecessors();
        let mut found = false;
        for a in (0..func.blocks.len() as u32).map(BlockId) {
            if let Some(region) = match_region(func, a, &preds) {
                let stats = branch_stats_of(&prof, a);
                let p1 = path_info(func, &region.taken_path, 0.5, stats, &loaded);
                let p2 = path_info(func, &region.fall_path, 0.5, stats, &loaded);
                let feats = features_of_region(&[p1, p2]);
                assert_eq!(feats[0].reals.len(), REAL_FEATURES.len());
                assert_eq!(feats[0].bools.len(), BOOL_FEATURES.len());
                found = true;
                break;
            }
        }
        assert!(found, "test program must contain a diamond");
    }
}
