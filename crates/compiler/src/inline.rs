//! Mandatory full inlining.
//!
//! The target machine (like the paper's simulated EPIC machine code) has no
//! calling convention; the suite's call graphs are acyclic, so every user
//! call is inlined into the entry function. Opaque `UnsafeCall`s are *not*
//! calls in this sense — they are hazards executed by the machine directly.

use crate::{CompileError, CompileErrorKind};
use metaopt_ir::{BlockId, Function, Inst, Opcode, Program, VReg};

/// Inline every `Call` reachable from the entry function; returns a program
/// containing exactly one function.
///
/// # Errors
/// Fails on recursion (depth limit) or a missing entry function.
pub fn inline_program(prog: &Program) -> Result<Program, CompileError> {
    if prog.funcs.is_empty() {
        return Err(CompileError::new(
            CompileErrorKind::Inline,
            "program has no functions",
        ));
    }
    let entry = prog.entry_func();
    let mut main = prog.func(entry).clone();
    main.name = "main".into();
    if !main.params.is_empty() {
        return Err(CompileError::new(
            CompileErrorKind::Inline,
            "entry function must not take parameters",
        ));
    }

    let mut rounds = 0;
    while inline_one(&mut main, prog)? {
        rounds += 1;
        if rounds > 10_000 {
            return Err(CompileError::new(
                CompileErrorKind::Inline,
                "inlining did not terminate (recursive call graph?)",
            ));
        }
    }

    let mut out = Program::new();
    out.globals = prog.globals.clone();
    out.add_function(main);
    Ok(out)
}

/// Find the first `Call` in `func` and inline it. Returns whether a call was
/// inlined.
fn inline_one(func: &mut Function, prog: &Program) -> Result<bool, CompileError> {
    let mut site: Option<(usize, usize)> = None;
    'search: for (bi, b) in func.blocks.iter().enumerate() {
        for (ii, inst) in b.insts.iter().enumerate() {
            if inst.op == Opcode::Call {
                site = Some((bi, ii));
                break 'search;
            }
        }
    }
    let Some((bi, ii)) = site else {
        return Ok(false);
    };

    let call = func.blocks[bi].insts[ii].clone();
    let callee_id = call.imm as usize;
    if callee_id >= prog.funcs.len() {
        return Err(CompileError::new(
            CompileErrorKind::Inline,
            format!("call to out-of-range function {callee_id}"),
        ));
    }
    let callee = &prog.funcs[callee_id];

    // Split the call block: [pre | call | post] -> pre + inlined body + cont.
    let post: Vec<Inst> = func.blocks[bi].insts.split_off(ii + 1);
    func.blocks[bi].insts.pop(); // remove the call

    // Continuation block receives the instructions after the call.
    let cont = func.new_block();
    func.blocks[cont.index()].insts = post;

    // Remap callee registers into the caller's space.
    let vreg_map: Vec<VReg> = callee
        .vreg_class
        .iter()
        .map(|c| func.new_vreg(*c))
        .collect();
    // Remap callee blocks.
    let block_map: Vec<BlockId> = callee.blocks.iter().map(|_| func.new_block()).collect();

    // Bind parameters.
    for (p, a) in callee.params.iter().zip(&call.args) {
        let op = match callee.class_of(*p) {
            metaopt_ir::RegClass::Int => Opcode::Mov,
            metaopt_ir::RegClass::Float => Opcode::FMov,
            metaopt_ir::RegClass::Pred => Opcode::PMov,
        };
        func.blocks[bi]
            .insts
            .push(Inst::new(op).dst(vreg_map[p.index()]).args(&[*a]));
    }
    // Jump into the inlined entry.
    func.blocks[bi]
        .insts
        .push(Inst::new(Opcode::Br).target(block_map[callee.entry.index()]));

    // Copy the body.
    for (cbi, cblock) in callee.blocks.iter().enumerate() {
        let nb = block_map[cbi];
        for inst in &cblock.insts {
            let mut ni = inst.clone();
            ni.args = ni.args.iter().map(|r| vreg_map[r.index()]).collect();
            ni.dst = ni.dst.map(|r| vreg_map[r.index()]);
            ni.pred = ni.pred.map(|r| vreg_map[r.index()]);
            ni.target = ni.target.map(|t| block_map[t.index()]);
            if ni.op == Opcode::Ret {
                // Return becomes: move the value into the call's dst, then
                // branch to the continuation.
                if let (Some(d), Some(v)) = (call.dst, ni.args.first().copied()) {
                    func.blocks[nb.index()]
                        .insts
                        .push(Inst::new(Opcode::Mov).dst(d).args(&[v]));
                } else if let Some(d) = call.dst {
                    func.blocks[nb.index()]
                        .insts
                        .push(Inst::new(Opcode::MovI).dst(d).imm(0));
                }
                func.blocks[nb.index()]
                    .insts
                    .push(Inst::new(Opcode::Br).target(cont));
            } else {
                func.blocks[nb.index()].insts.push(ni);
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_ir::interp::{run, RunConfig};
    use metaopt_lang::compile as mc;

    fn check_same_result(src: &str) {
        let prog = mc(src).unwrap();
        let inlined = inline_program(&prog).unwrap();
        assert_eq!(inlined.funcs.len(), 1);
        assert!(
            !inlined.funcs[0]
                .blocks
                .iter()
                .flat_map(|b| &b.insts)
                .any(|i| i.op == Opcode::Call),
            "no calls remain"
        );
        metaopt_ir::verify::verify_program(&inlined, metaopt_ir::verify::CfgForm::Canonical)
            .unwrap();
        let a = run(&prog, &RunConfig::default()).unwrap();
        let b = run(&inlined, &RunConfig::default()).unwrap();
        assert_eq!(a.ret, b.ret);
        assert_eq!(a.memory, b.memory);
    }

    #[test]
    fn inlines_simple_call() {
        check_same_result(
            r#"
            fn sq(x: int) -> int { return x * x; }
            fn main() -> int { return sq(6) + sq(4); }
        "#,
        );
    }

    #[test]
    fn inlines_nested_calls() {
        check_same_result(
            r#"
            fn a(x: int) -> int { return x + 1; }
            fn b(x: int) -> int { return a(x) * 2; }
            fn c(x: int) -> int { return b(x) + a(x); }
            fn main() -> int { return c(10); }
        "#,
        );
    }

    #[test]
    fn inlines_calls_in_loops_and_branches() {
        check_same_result(
            r#"
            global int data[16] = { 5, 3, 8, 1, 9, 2, 7, 4, 6, 0, 5, 3, 8, 1, 9, 2 };
            fn clamp(x: int, lo: int, hi: int) -> int {
                if (x < lo) { return lo; }
                if (x > hi) { return hi; }
                return x;
            }
            fn main() -> int {
                let s = 0;
                for (let i = 0; i < 16; i = i + 1) {
                    s = s + clamp(data[i], 2, 7);
                }
                return s;
            }
        "#,
        );
    }

    #[test]
    fn void_calls_inline() {
        check_same_result(
            r#"
            global int acc;
            fn bump(v: int) { acc = acc + v; }
            fn main() -> int { bump(3); bump(4); return acc; }
        "#,
        );
    }

    #[test]
    fn rejects_recursion() {
        let prog = mc(r#"
            fn f(x: int) -> int { return f(x - 1); }
            fn main() -> int { return f(3); }
        "#)
        .unwrap();
        assert!(inline_program(&prog).is_err());
    }
}
