#![warn(missing_docs)]
//! # metaopt-compiler
//!
//! The optimizing compiler of the *Meta Optimization* (PLDI 2003)
//! reproduction: a from-scratch reimplementation of the Trimaran pipeline
//! pieces whose **priority functions** the paper evolves.
//!
//! The pipeline has two halves:
//!
//! * **Preparation** ([`prepare`]) runs once per program, independent of any
//!   priority function: [`inline`] (mandatory full inlining — the machine
//!   has no call support, matching how the suite kernels are written)
//!   followed by the [`opt`] scalar cleanups (constant folding and
//!   dead-code elimination).
//! * **Compilation** ([`compile`]) is driven by a declarative
//!   [`PipelinePlan`]: an ordered pass list in the
//!   textual syntax `unroll(N),prefetch,hyperblock,regalloc,schedule`,
//!   executed by the [`PassManager`]. The shipped
//!   configuration [`Passes::baseline`] runs the plan
//!   `prefetch,hyperblock,regalloc,schedule` (the [`plan::BASELINE_PLAN`]
//!   constant — a unit test keeps this doc and the code in sync), where
//!
//!   * [`unroll`] — optional counted-loop unrolling (not part of the
//!     paper-calibrated study pipelines; enable via plan syntax),
//!   * [`prefetch`] — Mowry-style software data prefetching with a pluggable
//!     **Boolean** confidence function (paper case study III),
//!   * [`hyperblock`] — if-conversion driven by a pluggable path **priority
//!     function** (paper case study I, Trimaran/IMPACT algorithm, Eq. 1
//!     baseline),
//!   * [`regalloc`] — Chow–Hennessy priority-based coloring with a pluggable
//!     per-block **savings function** (paper case study II, Eq. 2 baseline),
//!   * [`schedule`] — latency-weighted-depth list scheduling into VLIW
//!     bundles for the `metaopt-sim` machine.
//!
//! The pass manager applies the `metaopt-analysis` inter-pass invariant
//! checker uniformly after every IR-mutating pass (when
//! [`Passes::check_ir`] is set) and records per-pass wall time and counter
//! deltas into [`CompileStats::per_pass`], so any pass order the plan
//! grammar admits — the phase-ordering search space — is checked and
//! instrumented identically.
//!
//! On top of the structural checks sits **semantic validation**
//! ([`Passes::validate`], DESIGN.md §13): at [`ValidationLevel::Fast`] the
//! per-pass translation validators from `metaopt-analysis` prove each
//! optimization preserved the meaning of its input where decidable;
//! [`ValidationLevel::Full`] additionally abstract-interprets the post-pass
//! IR to flag statically-provable faults. Validation findings ride along in
//! [`Compiled::validation`]; an error-severity finding aborts compilation
//! with [`CompileErrorKind::Validation`] and per-pass, per-plan blame.
//!
//! Every pass keeps program semantics: the test suite differentially checks
//! compiled results against the IR interpreter for arbitrary priority
//! functions, which is what lets the genetic search explore the heuristic
//! space safely (only performance varies, never correctness).

pub mod hyperblock;
pub mod inline;
pub mod opt;
pub mod pass;
pub mod plan;
pub mod plan_ops;
pub mod prefetch;
pub mod regalloc;
pub mod schedule;
pub mod unroll;

pub use pass::{Pass, PassCtx, PassManager};
pub use plan::{PassSpec, PipelinePlan, PlanError};

use metaopt_ir::profile::FuncProfile;
use metaopt_ir::{Function, Program};
use metaopt_sim::{MachineConfig, MachineProgram};
use std::fmt;

/// A real-valued priority function over named features; the focal point the
/// paper's GP search replaces. Implemented by baselines in this crate and by
/// GP expressions in `metaopt` (the core crate).
pub trait RealPriority: Sync {
    /// Score the option described by the feature vectors (higher = better).
    fn score(&self, reals: &[f64], bools: &[bool]) -> f64;
}

impl<F: Fn(&[f64], &[bool]) -> f64 + Sync> RealPriority for F {
    fn score(&self, reals: &[f64], bools: &[bool]) -> f64 {
        self(reals, bools)
    }
}

/// A Boolean priority ("confidence") function, as used by the data
/// prefetching case study (paper §7).
pub trait BoolPriority: Sync {
    /// Decide the option described by the feature vectors.
    fn decide(&self, reals: &[f64], bools: &[bool]) -> bool;
}

impl<F: Fn(&[f64], &[bool]) -> bool + Sync> BoolPriority for F {
    fn decide(&self, reals: &[f64], bools: &[bool]) -> bool {
        self(reals, bools)
    }
}

/// Classification of a compilation failure. The GP evaluation layer maps
/// these onto its quarantine taxonomy, so a run's failure ledger can say
/// *which stage* a pathological priority function broke.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CompileErrorKind {
    /// Malformed input program or inlining failure (front half of the
    /// pipeline, independent of any priority function).
    Inline,
    /// The pipeline plan is structurally invalid (see
    /// [`plan::PipelinePlan::validate`]).
    Plan,
    /// The inter-pass IR invariant checker flagged a broken invariant; the
    /// offending pass is named in the message.
    InvariantViolation,
    /// Register allocation could not fit the program on the machine.
    Regalloc,
    /// Final machine-code verification rejected the generated schedule.
    MachineVerify,
    /// Semantic validation ([`Passes::validate`]) proved a pass broke the
    /// program's meaning: a translation validator could not reconstruct a
    /// semantic correspondence, or abstract interpretation found a
    /// statically-provable fault. The offending pass and plan are named in
    /// the message and in [`CompileError::diagnostics`].
    Validation,
}

/// Compilation failure.
#[derive(Clone, Debug, PartialEq)]
pub struct CompileError {
    /// Which stage failed.
    pub kind: CompileErrorKind,
    /// Description.
    pub message: String,
    /// Structured findings backing the error, when the failing stage
    /// produced diagnostics (the invariant checker and semantic validation
    /// do; other stages leave this empty). Each carries pass and plan blame.
    pub diagnostics: Vec<metaopt_analysis::Diagnostic>,
}

impl CompileError {
    /// A new compilation error.
    pub fn new(kind: CompileErrorKind, message: impl Into<String>) -> Self {
        CompileError {
            kind,
            message: message.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Attach the structured findings behind this error.
    pub fn with_diagnostics(mut self, diagnostics: Vec<metaopt_analysis::Diagnostic>) -> Self {
        self.diagnostics = diagnostics;
        self
    }
}

/// How much semantic validation the [`PassManager`] runs after each pass.
///
/// Ordered: each level includes everything below it. Structural IR checking
/// is a separate, orthogonal knob ([`Passes::check_ir`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValidationLevel {
    /// No semantic validation (the default).
    #[default]
    Off,
    /// Per-pass translation validation: after every plan pass, prove the
    /// output means the same as the input where decidable (register
    /// assignment consistency, dependence-respecting schedules, exact loop
    /// replication, insertion-only prefetching, hyperblock obligations).
    Fast,
    /// [`Fast`](ValidationLevel::Fast) plus abstract interpretation of the
    /// post-pass IR (interval + initialization domains), flagging
    /// statically-provable out-of-bounds accesses, uninitialized reads,
    /// division by a provable zero, and definite overflow.
    Full,
}

impl ValidationLevel {
    /// Lowercase label, as used in plan/CLI syntax and trace events.
    pub fn label(self) -> &'static str {
        match self {
            ValidationLevel::Off => "off",
            ValidationLevel::Fast => "fast",
            ValidationLevel::Full => "full",
        }
    }

    /// Parse a [`label`](ValidationLevel::label).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(ValidationLevel::Off),
            "fast" => Some(ValidationLevel::Fast),
            "full" => Some(ValidationLevel::Full),
            _ => None,
        }
    }
}

impl fmt::Display for ValidationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compilation failed: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

/// Which passes run (the [`PipelinePlan`]) and with which priority
/// functions. A pass participates exactly when its step appears in the
/// plan; the priority slots merely replace the shipped baseline heuristics
/// for the passes that do run.
pub struct Passes<'a> {
    /// The pass schedule. [`PipelinePlan::minimal`] by default; the shipped
    /// full pipeline is [`Passes::baseline`].
    pub plan: PipelinePlan,
    /// Hyperblock-formation path priority (Eq. 1 baseline by default).
    pub hyperblock: &'a dyn RealPriority,
    /// Register-allocation per-block savings function (Eq. 2 baseline by
    /// default).
    pub regalloc: &'a dyn RealPriority,
    /// Prefetch confidence function (trip-count baseline by default).
    pub prefetch: &'a dyn BoolPriority,
    /// Prefetch distance in loop iterations.
    pub prefetch_iters_ahead: i64,
    /// Run the `metaopt-analysis` invariant checker after every IR-mutating
    /// pass, attributing the first broken invariant to the pass that
    /// produced it. Defaults to [`CHECK_IR_DEFAULT`] (the `check-ir` cargo
    /// feature).
    pub check_ir: bool,
    /// Semantic validation level: per-pass translation validation and
    /// abstract interpretation (see [`ValidationLevel`]). Off by default.
    pub validate: ValidationLevel,
    /// Structured-trace sink: the [`PassManager`] emits one `pass` event
    /// (wall time + counter deltas) per executed pass into it. Disabled by
    /// default, which costs one branch per pass and changes nothing else.
    pub tracer: metaopt_trace::Tracer,
}

/// Whether [`Passes::check_ir`] defaults to on — true when the crate is
/// built with the `check-ir` feature.
pub const CHECK_IR_DEFAULT: bool = cfg!(feature = "check-ir");

impl<'a> Default for Passes<'a> {
    /// The minimal pipeline (`regalloc,schedule`): no optimization passes,
    /// baseline priority functions.
    fn default() -> Self {
        Passes {
            plan: PipelinePlan::minimal(),
            hyperblock: &hyperblock::BaselineEq1,
            regalloc: &regalloc::BaselineEq2,
            prefetch: &prefetch::BaselineTripCount,
            prefetch_iters_ahead: 8,
            check_ir: CHECK_IR_DEFAULT,
            validate: ValidationLevel::Off,
            tracer: metaopt_trace::Tracer::disabled(),
        }
    }
}

impl<'a> Passes<'a> {
    /// The compiler's shipped configuration: the [`plan::BASELINE_PLAN`]
    /// pipeline with the baseline (human-written) priority functions.
    pub fn baseline() -> Self {
        Passes {
            plan: PipelinePlan::baseline(),
            ..Passes::default()
        }
    }

    /// This configuration with a different pipeline plan.
    pub fn with_plan(mut self, plan: PipelinePlan) -> Self {
        self.plan = plan;
        self
    }

    /// This configuration with a different semantic validation level.
    pub fn with_validate(mut self, level: ValidationLevel) -> Self {
        self.validate = level;
        self
    }
}

/// The scalar pass counters (how much each optimization did overall).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassCounters {
    /// Hyperblocks formed (regions if-converted).
    pub hyperblocks: u64,
    /// Paths merged into hyperblocks.
    pub paths_merged: u64,
    /// Live ranges spilled by the register allocator.
    pub spills: u64,
    /// Counted loops unrolled.
    pub unrolled: u64,
    /// Prefetch instructions inserted.
    pub prefetches: u64,
    /// Static instructions in the final machine code.
    pub static_insts: u64,
    /// Static bundles (schedule length).
    pub static_bundles: u64,
}

impl PassCounters {
    /// Field-wise difference against an earlier snapshot (counters only
    /// grow, so this is the work attributable to the passes in between).
    pub fn delta_since(self, before: PassCounters) -> PassCounters {
        PassCounters {
            hyperblocks: self.hyperblocks - before.hyperblocks,
            paths_merged: self.paths_merged - before.paths_merged,
            spills: self.spills - before.spills,
            unrolled: self.unrolled - before.unrolled,
            prefetches: self.prefetches - before.prefetches,
            static_insts: self.static_insts - before.static_insts,
            static_bundles: self.static_bundles - before.static_bundles,
        }
    }

    /// The non-zero counters as `name +value` pairs, for compact display.
    pub fn nonzero(&self) -> Vec<(&'static str, u64)> {
        [
            ("hyperblocks", self.hyperblocks),
            ("paths_merged", self.paths_merged),
            ("spills", self.spills),
            ("unrolled", self.unrolled),
            ("prefetches", self.prefetches),
            ("static_insts", self.static_insts),
            ("static_bundles", self.static_bundles),
        ]
        .into_iter()
        .filter(|(_, v)| *v > 0)
        .collect()
    }
}

/// Per-pass instrumentation recorded by the [`PassManager`]: what one pass
/// cost and what it changed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PassStat {
    /// Pass name (plan syntax).
    pub name: &'static str,
    /// Wall-clock time spent inside the pass (excluding the post-pass
    /// invariant check).
    pub wall_nanos: u64,
    /// Counter changes attributable to this pass.
    pub delta: PassCounters,
}

/// Per-compilation statistics: the overall [`PassCounters`] plus per-pass
/// instrumentation in execution order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Totals across the whole pipeline.
    pub counters: PassCounters,
    /// Wall time and counter delta of every executed pass, in plan order.
    pub per_pass: Vec<PassStat>,
}

impl CompileStats {
    /// Render the per-pass instrumentation as an aligned text table — one
    /// `pass  wall  changes` row per executed pass. Used by the CLI and the
    /// bench harness.
    pub fn per_pass_table(&self) -> String {
        let mut out = String::new();
        for p in &self.per_pass {
            let delta: Vec<String> = p
                .delta
                .nonzero()
                .into_iter()
                .map(|(k, v)| format!("{k} +{v}"))
                .collect();
            let delta = if delta.is_empty() {
                "-".to_string()
            } else {
                delta.join(", ")
            };
            out.push_str(&format!(
                "{:<12} {:>9.1}us  {}\n",
                p.name,
                p.wall_nanos as f64 / 1000.0,
                delta
            ));
        }
        out
    }
}

/// The compiler's output: scheduled machine code plus the memory image size
/// it needs (globals + spill area).
#[derive(Clone, Debug)]
pub struct Compiled {
    /// Machine code for `metaopt_sim::simulate`.
    pub code: MachineProgram,
    /// Required memory image size in bytes (extends the program's globals
    /// with the spill area).
    pub mem_size: usize,
    /// Pass statistics.
    pub stats: CompileStats,
    /// Semantic-validation findings that did not abort the compilation
    /// (warnings and notes; empty when [`Passes::validate`] is off).
    pub validation: Vec<metaopt_analysis::Diagnostic>,
}

impl Compiled {
    /// Build the initial memory image for `prog` sized for this compilation
    /// (globals initialized, spill area zeroed).
    pub fn initial_memory(&self, prog: &Program) -> Vec<u8> {
        let mut mem = prog.initial_memory();
        mem.resize(self.mem_size, 0);
        mem
    }
}

/// Run the invariant checker over `func` as the output of `pass` when
/// checking is enabled; a violation aborts the compilation with the pass
/// named in the error. (Used by the [`prepare`] half; the compile half's
/// checks are applied uniformly by the [`PassManager`].)
fn checkpoint(
    enabled: bool,
    func: &Function,
    form: metaopt_ir::verify::CfgForm,
    pass: &str,
) -> Result<(), CompileError> {
    if !enabled {
        return Ok(());
    }
    metaopt_analysis::enforce_function(func, form, pass).map_err(|e| {
        CompileError::new(CompileErrorKind::InvariantViolation, e.to_string())
            .with_diagnostics(e.diagnostics)
    })
}

/// Inline all calls and clean up: the "front half" of the pipeline, which is
/// independent of any priority function and therefore runs once per
/// benchmark. The result always has a single function.
///
/// Equivalent to [`prepare_checked`] with IR checking at the crate default.
///
/// # Errors
/// Fails on recursive call graphs or a missing entry function.
pub fn prepare(prog: &Program) -> Result<Program, CompileError> {
    prepare_checked(prog, CHECK_IR_DEFAULT)
}

/// [`prepare`] with explicit control over inter-pass IR checking: when
/// `check_ir` is set, the invariant checker runs after inlining and after
/// the scalar optimizations, attributing any violation to the offending
/// pass.
///
/// # Errors
/// Fails on recursive call graphs, a missing entry function, or (with
/// `check_ir`) a broken IR invariant.
pub fn prepare_checked(prog: &Program, check_ir: bool) -> Result<Program, CompileError> {
    use metaopt_ir::verify::CfgForm;
    let mut p = inline::inline_program(prog)?;
    checkpoint(check_ir, &p.funcs[0], CfgForm::Canonical, "inline")?;
    opt::constant_fold(&mut p.funcs[0]);
    checkpoint(check_ir, &p.funcs[0], CfgForm::Canonical, "constant_fold")?;
    opt::dead_code_elim(&mut p.funcs[0]);
    checkpoint(check_ir, &p.funcs[0], CfgForm::Canonical, "dead_code_elim")?;
    debug_assert!(
        metaopt_ir::verify::verify_program(&p, metaopt_ir::verify::CfgForm::Canonical).is_ok()
    );
    Ok(p)
}

/// Compile a [`prepare`]d program (single function) to machine code using
/// `profile` (collected on the prepared IR) and the given `passes`: the
/// [`PassManager`] executes `passes.plan`, then the generated code is
/// verified against the machine description.
///
/// # Errors
/// Fails if the plan is structurally invalid, a pass fails (e.g. register
/// allocation cannot fit the program on the machine), an IR invariant
/// breaks under `check_ir`, or the generated code does not verify.
pub fn compile(
    prepared: &Program,
    profile: &FuncProfile,
    machine: &MachineConfig,
    passes: &Passes<'_>,
) -> Result<Compiled, CompileError> {
    passes
        .plan
        .validate()
        .map_err(|e| CompileError::new(CompileErrorKind::Plan, format!("invalid plan: {e}")))?;
    let mut func: Function = prepared.funcs[0].clone();
    let mut ctx = PassCtx::new(profile, machine, passes, prepared.memory_size());
    PassManager::from_plan(&passes.plan).run(&mut func, &mut ctx)?;

    let code = ctx
        .code
        .take()
        .expect("validated plans terminate with the schedule pass");
    metaopt_sim::code::verify_machine(&code, machine).map_err(|m| {
        CompileError::new(
            CompileErrorKind::MachineVerify,
            format!("generated machine code failed verification: {m}"),
        )
    })?;

    Ok(Compiled {
        code,
        mem_size: ctx.mem_size,
        stats: ctx.stats,
        validation: ctx.validation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Anti-drift guard for the module docs: the pipeline list above is
    /// written in plan syntax, and the source text must contain the exact
    /// baseline plan string [`plan::BASELINE_PLAN`] that
    /// [`Passes::baseline`] executes — so the docs cannot silently diverge
    /// from the code again.
    #[test]
    fn module_docs_quote_the_baseline_plan() {
        let source = include_str!("lib.rs");
        assert!(
            source.contains(&format!("`{}`", plan::BASELINE_PLAN)),
            "lib.rs module docs must quote the baseline plan string verbatim"
        );
        assert_eq!(Passes::baseline().plan.to_string(), plan::BASELINE_PLAN);
    }

    #[test]
    fn default_passes_run_the_minimal_plan() {
        assert_eq!(Passes::default().plan.to_string(), plan::MINIMAL_PLAN);
    }

    #[test]
    fn invalid_plan_is_a_plan_error() {
        let prog = metaopt_lang::compile("fn main() -> int { return 7; }").unwrap();
        let prepared = prepare(&prog).unwrap();
        let profile = metaopt_ir::interp::run(
            &prepared,
            &metaopt_ir::interp::RunConfig {
                profile: true,
                ..Default::default()
            },
        )
        .unwrap()
        .profile
        .unwrap();
        let passes = Passes::default().with_plan(PipelinePlan::baseline().without("regalloc"));
        let err = compile(
            &prepared,
            &profile.funcs[0],
            &MachineConfig::table3(),
            &passes,
        )
        .unwrap_err();
        assert_eq!(err.kind, CompileErrorKind::Plan);
        assert!(err.message.contains("regalloc"), "{}", err.message);
    }
}
