#![warn(missing_docs)]
//! # metaopt-compiler
//!
//! The optimizing compiler of the *Meta Optimization* (PLDI 2003)
//! reproduction: a from-scratch reimplementation of the Trimaran pipeline
//! pieces whose **priority functions** the paper evolves.
//!
//! Pipeline (see [`compile`]):
//!
//! 1. [`inline`] — mandatory full inlining (the machine has no call support,
//!    matching how the suite kernels are written),
//! 2. [`opt`] — constant folding and dead-code elimination,
//! 3. [`prefetch`] — Mowry-style software data prefetching with a pluggable
//!    **Boolean** confidence function (paper case study III),
//! 4. [`hyperblock`] — if-conversion driven by a pluggable path **priority
//!    function** (paper case study I, Trimaran/IMPACT algorithm, Eq. 1
//!    baseline),
//! 5. [`regalloc`] — Chow–Hennessy priority-based coloring with a pluggable
//!    per-block **savings function** (paper case study II, Eq. 2 baseline),
//! 6. [`schedule`] — latency-weighted-depth list scheduling into VLIW
//!    bundles for the `metaopt-sim` machine.
//!
//! Every pass keeps program semantics: the test suite differentially checks
//! compiled results against the IR interpreter for arbitrary priority
//! functions, which is what lets the genetic search explore the heuristic
//! space safely (only performance varies, never correctness).

pub mod hyperblock;
pub mod inline;
pub mod opt;
pub mod prefetch;
pub mod regalloc;
pub mod schedule;
pub mod unroll;

use metaopt_ir::profile::FuncProfile;
use metaopt_ir::{Function, Program};
use metaopt_sim::{MachineConfig, MachineProgram};
use std::fmt;

/// A real-valued priority function over named features; the focal point the
/// paper's GP search replaces. Implemented by baselines in this crate and by
/// GP expressions in `metaopt` (the core crate).
pub trait RealPriority: Sync {
    /// Score the option described by the feature vectors (higher = better).
    fn score(&self, reals: &[f64], bools: &[bool]) -> f64;
}

impl<F: Fn(&[f64], &[bool]) -> f64 + Sync> RealPriority for F {
    fn score(&self, reals: &[f64], bools: &[bool]) -> f64 {
        self(reals, bools)
    }
}

/// A Boolean priority ("confidence") function, as used by the data
/// prefetching case study (paper §7).
pub trait BoolPriority: Sync {
    /// Decide the option described by the feature vectors.
    fn decide(&self, reals: &[f64], bools: &[bool]) -> bool;
}

impl<F: Fn(&[f64], &[bool]) -> bool + Sync> BoolPriority for F {
    fn decide(&self, reals: &[f64], bools: &[bool]) -> bool {
        self(reals, bools)
    }
}

/// Classification of a compilation failure. The GP evaluation layer maps
/// these onto its quarantine taxonomy, so a run's failure ledger can say
/// *which stage* a pathological priority function broke.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CompileErrorKind {
    /// Malformed input program or inlining failure (front half of the
    /// pipeline, independent of any priority function).
    Inline,
    /// The inter-pass IR invariant checker flagged a broken invariant; the
    /// offending pass is named in the message.
    InvariantViolation,
    /// Register allocation could not fit the program on the machine.
    Regalloc,
    /// Final machine-code verification rejected the generated schedule.
    MachineVerify,
}

/// Compilation failure.
#[derive(Clone, Debug, PartialEq)]
pub struct CompileError {
    /// Which stage failed.
    pub kind: CompileErrorKind,
    /// Description.
    pub message: String,
}

impl CompileError {
    /// A new compilation error.
    pub fn new(kind: CompileErrorKind, message: impl Into<String>) -> Self {
        CompileError {
            kind,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compilation failed: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

/// Which optimizations run and with which priority functions.
pub struct Passes<'a> {
    /// Hyperblock formation priority (None disables if-conversion).
    pub hyperblock: Option<&'a dyn RealPriority>,
    /// Register-allocation per-block savings function (None = Eq. 2
    /// baseline).
    pub regalloc: Option<&'a dyn RealPriority>,
    /// Prefetch confidence function (None disables prefetching).
    pub prefetch: Option<&'a dyn BoolPriority>,
    /// Prefetch distance in loop iterations.
    pub prefetch_iters_ahead: i64,
    /// Counted-loop unrolling factor cap (None disables the pass; it is not
    /// part of the paper-calibrated study pipelines).
    pub unroll: Option<u32>,
    /// Run the `metaopt-analysis` invariant checker after every pass,
    /// attributing the first broken invariant to the pass that produced it.
    /// Defaults to [`CHECK_IR_DEFAULT`] (the `check-ir` cargo feature).
    pub check_ir: bool,
}

/// Whether [`Passes::check_ir`] defaults to on — true when the crate is
/// built with the `check-ir` feature.
pub const CHECK_IR_DEFAULT: bool = cfg!(feature = "check-ir");

impl<'a> Default for Passes<'a> {
    fn default() -> Self {
        Passes {
            hyperblock: None,
            regalloc: None,
            prefetch: None,
            prefetch_iters_ahead: 8,
            unroll: None,
            check_ir: CHECK_IR_DEFAULT,
        }
    }
}

impl<'a> Passes<'a> {
    /// The compiler's shipped configuration: all three passes enabled with
    /// their baseline (human-written) priority functions.
    pub fn baseline() -> Self {
        Passes {
            hyperblock: Some(&hyperblock::BaselineEq1),
            regalloc: Some(&regalloc::BaselineEq2),
            prefetch: Some(&prefetch::BaselineTripCount),
            prefetch_iters_ahead: 8,
            unroll: None,
            check_ir: CHECK_IR_DEFAULT,
        }
    }
}

/// Per-compilation statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Hyperblocks formed (regions if-converted).
    pub hyperblocks: u64,
    /// Paths merged into hyperblocks.
    pub paths_merged: u64,
    /// Live ranges spilled by the register allocator.
    pub spills: u64,
    /// Counted loops unrolled.
    pub unrolled: u64,
    /// Prefetch instructions inserted.
    pub prefetches: u64,
    /// Static instructions in the final machine code.
    pub static_insts: u64,
    /// Static bundles (schedule length).
    pub static_bundles: u64,
}

/// The compiler's output: scheduled machine code plus the memory image size
/// it needs (globals + spill area).
#[derive(Clone, Debug)]
pub struct Compiled {
    /// Machine code for `metaopt_sim::simulate`.
    pub code: MachineProgram,
    /// Required memory image size in bytes (extends the program's globals
    /// with the spill area).
    pub mem_size: usize,
    /// Pass statistics.
    pub stats: CompileStats,
}

impl Compiled {
    /// Build the initial memory image for `prog` sized for this compilation
    /// (globals initialized, spill area zeroed).
    pub fn initial_memory(&self, prog: &Program) -> Vec<u8> {
        let mut mem = prog.initial_memory();
        mem.resize(self.mem_size, 0);
        mem
    }
}

/// Run the invariant checker over `func` as the output of `pass` when
/// checking is enabled; a violation aborts the compilation with the pass
/// named in the error.
fn checkpoint(
    enabled: bool,
    func: &Function,
    form: metaopt_ir::verify::CfgForm,
    pass: &str,
) -> Result<(), CompileError> {
    if !enabled {
        return Ok(());
    }
    metaopt_analysis::enforce_function(func, form, pass)
        .map_err(|e| CompileError::new(CompileErrorKind::InvariantViolation, e.to_string()))
}

/// Inline all calls and clean up: the "front half" of the pipeline, which is
/// independent of any priority function and therefore runs once per
/// benchmark. The result always has a single function.
///
/// Equivalent to [`prepare_checked`] with IR checking at the crate default.
///
/// # Errors
/// Fails on recursive call graphs or a missing entry function.
pub fn prepare(prog: &Program) -> Result<Program, CompileError> {
    prepare_checked(prog, CHECK_IR_DEFAULT)
}

/// [`prepare`] with explicit control over inter-pass IR checking: when
/// `check_ir` is set, the invariant checker runs after inlining and after
/// the scalar optimizations, attributing any violation to the offending
/// pass.
///
/// # Errors
/// Fails on recursive call graphs, a missing entry function, or (with
/// `check_ir`) a broken IR invariant.
pub fn prepare_checked(prog: &Program, check_ir: bool) -> Result<Program, CompileError> {
    use metaopt_ir::verify::CfgForm;
    let mut p = inline::inline_program(prog)?;
    checkpoint(check_ir, &p.funcs[0], CfgForm::Canonical, "inline")?;
    opt::constant_fold(&mut p.funcs[0]);
    checkpoint(check_ir, &p.funcs[0], CfgForm::Canonical, "constant_fold")?;
    opt::dead_code_elim(&mut p.funcs[0]);
    checkpoint(check_ir, &p.funcs[0], CfgForm::Canonical, "dead_code_elim")?;
    debug_assert!(
        metaopt_ir::verify::verify_program(&p, metaopt_ir::verify::CfgForm::Canonical).is_ok()
    );
    Ok(p)
}

/// Compile a [`prepare`]d program (single function) to machine code using
/// `profile` (collected on the prepared IR) and the given `passes`.
///
/// # Errors
/// Fails if register allocation cannot fit the program on the machine or if
/// the generated code does not verify.
pub fn compile(
    prepared: &Program,
    profile: &FuncProfile,
    machine: &MachineConfig,
    passes: &Passes<'_>,
) -> Result<Compiled, CompileError> {
    use metaopt_ir::verify::CfgForm;
    let mut func: Function = prepared.funcs[0].clone();
    let mut stats = CompileStats::default();
    let check = passes.check_ir;
    // The structural discipline loosens once if-conversion has run.
    let mut form = CfgForm::Canonical;

    if let Some(factor) = passes.unroll {
        stats.unrolled = unroll::unroll_loops(&mut func, factor);
        checkpoint(check, &func, form, "unroll")?;
    }
    if let Some(pf) = passes.prefetch {
        stats.prefetches = prefetch::insert_prefetches(
            &mut func,
            profile,
            machine,
            pf,
            passes.prefetch_iters_ahead,
        );
        checkpoint(check, &func, form, "prefetch")?;
    }
    let remapped_profile;
    let mut profile = profile;
    if let Some(hp) = passes.hyperblock {
        let r = hyperblock::form_hyperblocks(&mut func, profile, machine, hp);
        stats.hyperblocks = r.regions_converted;
        stats.paths_merged = r.paths_merged;
        form = CfgForm::Hyperblock;
        // If-conversion tombstones the absorbed blocks; delete them and
        // renumber the profile to match so the allocator's block weights
        // stay aligned.
        let map = func.prune_unreachable_blocks();
        if map.iter().any(|m| m.is_none()) {
            remapped_profile = profile.remap_blocks(&map);
            profile = &remapped_profile;
        }
        checkpoint(check, &func, form, "hyperblock")?;
    }
    let ra = regalloc::allocate(
        &mut func,
        machine,
        passes.regalloc.unwrap_or(&regalloc::BaselineEq2),
        profile,
        prepared.memory_size(),
    )
    .map_err(|m| CompileError::new(CompileErrorKind::Regalloc, m))?;
    stats.spills = ra.spilled;
    // Allocation rewrites the function into machine-register form, where
    // operand indices are physical registers classed by the consuming opcode
    // and `vreg_class` no longer describes the numbering — so only the
    // shape-and-reachability subset of the checker still applies here.
    if check {
        metaopt_analysis::enforce_machine_function(&func, form, "regalloc")
            .map_err(|e| CompileError::new(CompileErrorKind::InvariantViolation, e.to_string()))?;
    }

    let code = schedule::schedule_function(&func, machine);
    stats.static_insts = code.num_insts() as u64;
    stats.static_bundles = code.num_bundles() as u64;

    metaopt_sim::code::verify_machine(&code, machine).map_err(|m| {
        CompileError::new(
            CompileErrorKind::MachineVerify,
            format!("generated machine code failed verification: {m}"),
        )
    })?;

    Ok(Compiled {
        code,
        mem_size: ra.mem_size,
        stats,
    })
}
