//! Classic clean-up optimizations: constant folding and dead-code
//! elimination. These run once after inlining, before any priority-driven
//! pass, so the search operates on reasonable code.

use metaopt_ir::{Function, Inst, Opcode};
use std::collections::HashMap;

/// Fold instructions whose integer operands are all known constants
/// (`MovI`-defined and never redefined) into `MovI`s. Intra-procedural and
/// conservative: a register counts as constant only if it has exactly one
/// definition in the whole function and that definition is an unpredicated
/// `MovI`.
pub fn constant_fold(func: &mut Function) {
    // Count defs and record MovI constants.
    let mut def_count: HashMap<u32, u32> = HashMap::new();
    let mut constants: HashMap<u32, i64> = HashMap::new();
    for b in &func.blocks {
        for inst in &b.insts {
            if let Some(d) = inst.dst {
                *def_count.entry(d.0).or_insert(0) += 1;
                if inst.op == Opcode::MovI && inst.pred.is_none() {
                    constants.insert(d.0, inst.imm);
                }
            }
        }
    }
    let get = |r: &metaopt_ir::VReg| -> Option<i64> {
        if def_count.get(&r.0) == Some(&1) {
            constants.get(&r.0).copied()
        } else {
            None
        }
    };
    for b in &mut func.blocks {
        for inst in &mut b.insts {
            if inst.pred.is_some() {
                continue;
            }
            let folded: Option<i64> = match inst.op {
                Opcode::Add => match (get(&inst.args[0]), get(&inst.args[1])) {
                    (Some(a), Some(c)) => Some(a.wrapping_add(c)),
                    _ => None,
                },
                Opcode::Sub => match (get(&inst.args[0]), get(&inst.args[1])) {
                    (Some(a), Some(c)) => Some(a.wrapping_sub(c)),
                    _ => None,
                },
                Opcode::Mul => match (get(&inst.args[0]), get(&inst.args[1])) {
                    (Some(a), Some(c)) => Some(a.wrapping_mul(c)),
                    _ => None,
                },
                Opcode::AddI => get(&inst.args[0]).map(|a| a.wrapping_add(inst.imm)),
                Opcode::MulI => get(&inst.args[0]).map(|a| a.wrapping_mul(inst.imm)),
                Opcode::Mov => get(&inst.args[0]),
                _ => None,
            };
            if let Some(v) = folded {
                *inst = Inst::new(Opcode::MovI).dst(inst.dst.unwrap()).imm(v);
            }
        }
    }
    // Strength-reduce binary ops with one constant operand into immediate
    // forms (fewer registers, better schedules).
    for b in &mut func.blocks {
        for inst in &mut b.insts {
            if inst.pred.is_some() {
                continue;
            }
            match inst.op {
                Opcode::Add => {
                    if let Some(c) = get(&inst.args[1]) {
                        let a = inst.args[0];
                        *inst = Inst::new(Opcode::AddI)
                            .dst(inst.dst.unwrap())
                            .args(&[a])
                            .imm(c);
                    } else if let Some(c) = get(&inst.args[0]) {
                        let a = inst.args[1];
                        *inst = Inst::new(Opcode::AddI)
                            .dst(inst.dst.unwrap())
                            .args(&[a])
                            .imm(c);
                    }
                }
                Opcode::Mul => {
                    if let Some(c) = get(&inst.args[1]) {
                        let a = inst.args[0];
                        *inst = Inst::new(Opcode::MulI)
                            .dst(inst.dst.unwrap())
                            .args(&[a])
                            .imm(c);
                    } else if let Some(c) = get(&inst.args[0]) {
                        let a = inst.args[1];
                        *inst = Inst::new(Opcode::MulI)
                            .dst(inst.dst.unwrap())
                            .args(&[a])
                            .imm(c);
                    }
                }
                Opcode::CmpLt => {
                    if let Some(c) = get(&inst.args[1]) {
                        let a = inst.args[0];
                        *inst = Inst::new(Opcode::CmpLtI)
                            .dst(inst.dst.unwrap())
                            .args(&[a])
                            .imm(c);
                    }
                }
                Opcode::CmpEq => {
                    if let Some(c) = get(&inst.args[1]) {
                        let a = inst.args[0];
                        *inst = Inst::new(Opcode::CmpEqI)
                            .dst(inst.dst.unwrap())
                            .args(&[a])
                            .imm(c);
                    }
                }
                _ => {}
            }
        }
    }
}

/// Remove pure instructions whose results are never read. Iterates to a
/// fixpoint. Memory operations, control flow, and `UnsafeCall`s are never
/// removed; predicated definitions count as uses of nothing extra but their
/// removal is safe when the destination is dead everywhere.
pub fn dead_code_elim(func: &mut Function) {
    loop {
        let mut used = vec![false; func.num_vregs()];
        for b in &func.blocks {
            for inst in &b.insts {
                for r in inst.reads() {
                    used[r.index()] = true;
                }
            }
        }
        let mut removed = false;
        for b in &mut func.blocks {
            b.insts.retain(|inst| {
                let pure =
                    !inst.op.is_control() && !inst.op.is_mem() && inst.op != Opcode::UnsafeCall;
                let dead = match inst.dst {
                    Some(d) => !used[d.index()],
                    None => false,
                };
                if pure && dead {
                    removed = true;
                    false
                } else {
                    true
                }
            });
        }
        if !removed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_ir::interp::{run, RunConfig};
    use metaopt_ir::verify::{verify_function, CfgForm};
    use metaopt_lang::compile as mc;

    fn optimized(src: &str) -> (metaopt_ir::Program, metaopt_ir::Program) {
        let prog = mc(src).unwrap();
        let mut opt = crate::inline::inline_program(&prog).unwrap();
        constant_fold(&mut opt.funcs[0]);
        dead_code_elim(&mut opt.funcs[0]);
        verify_function(&opt.funcs[0], CfgForm::Canonical).unwrap();
        (prog, opt)
    }

    #[test]
    fn preserves_semantics() {
        let src = r#"
            global int xs[8] = { 1, 2, 3, 4, 5, 6, 7, 8 };
            fn main() -> int {
                let s = 0;
                let dead = 12345 * 99;
                for (let i = 0; i < 8; i = i + 1) { s = s + xs[i] * 2; }
                return s;
            }
        "#;
        let (orig, opt) = optimized(src);
        let a = run(&orig, &RunConfig::default()).unwrap();
        let b = run(&opt, &RunConfig::default()).unwrap();
        assert_eq!(a.ret, b.ret);
    }

    #[test]
    fn removes_dead_code() {
        let (_, opt) =
            optimized("fn main() -> int { let dead = 3 * 4 + 5; let live = 2; return live; }");
        // `dead` chain removed: expect only a handful of instructions.
        assert!(
            opt.funcs[0].num_insts() <= 4,
            "{} insts:\n{}",
            opt.funcs[0].num_insts(),
            opt.funcs[0]
        );
    }

    #[test]
    fn folds_constants() {
        let (_, opt) = optimized("fn main() -> int { return 6 * 7; }");
        let f = &opt.funcs[0];
        // The multiply should be folded away.
        assert!(
            !f.blocks
                .iter()
                .flat_map(|b| &b.insts)
                .any(|i| matches!(i.op, Opcode::Mul | Opcode::MulI)),
            "{f}"
        );
        assert_eq!(run(&opt, &RunConfig::default()).unwrap().ret, 42);
    }

    #[test]
    fn never_removes_stores_or_ucalls() {
        let (_, opt) = optimized(
            r#"
            global int g[2];
            fn main() -> int { g[0] = 7; ucall(1, 5); return g[0]; }
        "#,
        );
        let f = &opt.funcs[0];
        assert!(f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| i.op.is_store()));
        assert!(f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| i.op == Opcode::UnsafeCall));
        assert_eq!(run(&opt, &RunConfig::default()).unwrap().ret, 7);
    }

    #[test]
    fn immediate_forms_substituted() {
        let (_, opt) = optimized(
            "global int xs[4] = {1,2,3,4}; fn main() -> int { let s = 0; for (let i = 0; i < 4; i = i + 1) { s = s + xs[i]; } return s; }",
        );
        // Address arithmetic i*8 should become MulI.
        let f = &opt.funcs[0];
        assert!(
            f.blocks
                .iter()
                .flat_map(|b| &b.insts)
                .any(|i| i.op == Opcode::MulI && i.imm == 8),
            "{f}"
        );
        assert_eq!(run(&opt, &RunConfig::default()).unwrap().ret, 10);
    }
}
