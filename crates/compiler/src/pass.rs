//! The pass manager: typed passes, shared pass context, uniform
//! instrumentation and invariant checking.
//!
//! Each compiler stage is a [`Pass`] — a named transformation over the
//! single prepared [`Function`] — and a compilation is the execution of a
//! [`PipelinePlan`](crate::plan::PipelinePlan) by the [`PassManager`]. The
//! manager owns the cross-cutting concerns the old monolithic `compile()`
//! body hand-rolled at each site:
//!
//! * **Invariant checking** — after every IR-mutating pass the
//!   `metaopt-analysis` checker runs (when [`Passes::check_ir`] is set),
//!   attributing the first broken invariant to the pass that produced it.
//!   Once register allocation has rewritten the function into
//!   machine-register form, the machine-form subset of the checker is used
//!   automatically.
//! * **Instrumentation** — per-pass wall time and counter deltas are
//!   recorded into [`CompileStats::per_pass`] in execution order.
//! * **State transitions** — the CFG discipline ([`CfgForm`]), the profile
//!   remap after block pruning, and the machine-form switch all live in the
//!   passes that cause them, carried by the shared [`PassCtx`].

use crate::{CompileError, CompileErrorKind, CompileStats, PassStat, Passes, ValidationLevel};
use metaopt_analysis::{first_error, Diagnostic};
use metaopt_ir::profile::FuncProfile;
use metaopt_ir::verify::CfgForm;
use metaopt_ir::Function;
use metaopt_sim::{MachineConfig, MachineProgram};
use std::borrow::Cow;
use std::time::Instant;

/// Shared state threaded through a pipeline run: everything a [`Pass`] may
/// read or update besides the function body itself.
pub struct PassCtx<'a> {
    /// The block-level execution profile the priority functions consult.
    /// Starts as the caller's borrowed profile; a pass that renumbers
    /// blocks (hyperblock pruning) replaces it with a remapped copy.
    pub profile: Cow<'a, FuncProfile>,
    /// Target machine.
    pub machine: &'a MachineConfig,
    /// The pass configuration: priority functions and knobs.
    pub config: &'a Passes<'a>,
    /// Size of the program's own memory image (globals); the spill area
    /// starts here.
    pub base_mem_size: usize,
    /// The CFG discipline the function currently satisfies. Loosens to
    /// [`CfgForm::Hyperblock`] once if-conversion has run.
    pub form: CfgForm,
    /// Whether the function has been rewritten into machine-register form
    /// (true after register allocation); selects the machine-form subset of
    /// the invariant checker.
    pub machine_form: bool,
    /// Accumulated statistics, including per-pass instrumentation.
    pub stats: CompileStats,
    /// Required memory image size (globals + spill area); set by register
    /// allocation.
    pub mem_size: usize,
    /// The scheduled machine code; set by the `schedule` terminal.
    pub code: Option<MachineProgram>,
    /// Semantic-validation findings accumulated across the run (when
    /// [`Passes::validate`] is on). Error-severity findings abort the
    /// pipeline; the warnings that remain here ship in
    /// [`Compiled::validation`](crate::Compiled::validation).
    pub validation: Vec<Diagnostic>,
}

impl<'a> PassCtx<'a> {
    /// A fresh context for one compilation.
    pub fn new(
        profile: &'a FuncProfile,
        machine: &'a MachineConfig,
        config: &'a Passes<'a>,
        base_mem_size: usize,
    ) -> Self {
        PassCtx {
            profile: Cow::Borrowed(profile),
            machine,
            config,
            base_mem_size,
            form: CfgForm::Canonical,
            machine_form: false,
            stats: CompileStats::default(),
            mem_size: base_mem_size,
            code: None,
            validation: Vec::new(),
        }
    }
}

/// One compiler pass: a named transformation of the prepared function.
///
/// Implementations live with the algorithms they wrap (e.g.
/// [`crate::hyperblock::HyperblockPass`]); the [`PassManager`] instantiates
/// them from a [`PipelinePlan`](crate::plan::PipelinePlan) and supplies the
/// uniform post-pass invariant check and instrumentation.
pub trait Pass {
    /// Stable name used in plan syntax, diagnostics attribution, and
    /// per-pass statistics.
    fn name(&self) -> &'static str;

    /// Transform `func`, updating `ctx` (stats, profile, form, outputs).
    ///
    /// # Errors
    /// A [`CompileError`] aborts the pipeline; the GP evaluation layer maps
    /// it onto the quarantine taxonomy.
    fn run(&self, func: &mut Function, ctx: &mut PassCtx<'_>) -> Result<(), CompileError>;

    /// Whether the pass mutates the IR. The post-pass invariant checker is
    /// skipped for passes that only *read* the function (e.g. scheduling,
    /// which emits machine code without touching the IR).
    fn mutates_ir(&self) -> bool {
        true
    }
}

/// Executes a pass list built from a [`PipelinePlan`](crate::plan::PipelinePlan),
/// applying the `metaopt-analysis` invariant checker and per-pass
/// instrumentation uniformly after every pass.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// Instantiate the pass objects for `plan`. The plan should already be
    /// [validated](crate::plan::PipelinePlan::validate); the compile entry
    /// points do so.
    pub fn from_plan(plan: &crate::plan::PipelinePlan) -> Self {
        use crate::plan::PassSpec;
        let passes = plan
            .steps()
            .iter()
            .map(|spec| -> Box<dyn Pass> {
                match *spec {
                    PassSpec::Unroll(factor) => Box::new(crate::unroll::UnrollPass { factor }),
                    PassSpec::Prefetch => Box::new(crate::prefetch::PrefetchPass),
                    PassSpec::Hyperblock => Box::new(crate::hyperblock::HyperblockPass),
                    PassSpec::Regalloc => Box::new(crate::regalloc::RegallocPass),
                    PassSpec::Schedule => Box::new(crate::schedule::SchedulePass),
                }
            })
            .collect();
        PassManager { passes }
    }

    /// The passes in execution order.
    pub fn passes(&self) -> &[Box<dyn Pass>] {
        &self.passes
    }

    /// Run every pass over `func`, checking invariants and recording
    /// per-pass instrumentation into `ctx.stats.per_pass`.
    ///
    /// # Errors
    /// The first pass failure or invariant violation aborts the run.
    pub fn run(&self, func: &mut Function, ctx: &mut PassCtx<'_>) -> Result<(), CompileError> {
        for pass in &self.passes {
            let before = ctx.stats.counters;
            // Translation validation compares the pass's input against its
            // output, so snapshot the function for the passes that rewrite
            // it (the scheduler is validated IR-vs-bundles instead).
            let pre = (ctx.config.validate > ValidationLevel::Off && pass.mutates_ir())
                .then(|| func.clone());
            let start = Instant::now();
            pass.run(func, ctx)?;
            let wall_nanos = start.elapsed().as_nanos() as u64;
            if ctx.config.check_ir && pass.mutates_ir() {
                check_after(func, ctx, pass.name())?;
            }
            if ctx.config.validate > ValidationLevel::Off {
                validate_after(pre.as_ref(), func, ctx, pass.name())?;
            }
            let delta = ctx.stats.counters.delta_since(before);
            if let Some(m) = ctx.config.tracer.metrics() {
                m.histogram_labeled("metaopt_pass_wall_ns", "pass", pass.name())
                    .record(wall_nanos);
            }
            if ctx.config.tracer.enabled() {
                use metaopt_trace::json::Value;
                let delta_obj = delta
                    .nonzero()
                    .into_iter()
                    .map(|(name, v)| (name.to_string(), Value::UInt(v)))
                    .collect();
                ctx.config.tracer.emit(
                    "pass",
                    [
                        ("pass", Value::str(pass.name())),
                        ("wall_ns", Value::UInt(wall_nanos)),
                        ("delta", Value::Obj(delta_obj)),
                    ],
                );
            }
            ctx.stats.per_pass.push(PassStat {
                name: pass.name(),
                wall_nanos,
                delta,
            });
        }
        Ok(())
    }
}

/// Run the invariant checker over `func` as the output of `pass`, selecting
/// the machine-form subset once register allocation has run. Failures carry
/// the pipeline plan so sweeps over many plans can attribute broken IR.
fn check_after(func: &Function, ctx: &PassCtx<'_>, pass: &str) -> Result<(), CompileError> {
    let result = if ctx.machine_form {
        metaopt_analysis::enforce_machine_function(func, ctx.form, pass)
    } else {
        metaopt_analysis::enforce_function(func, ctx.form, pass)
    };
    result.map_err(|e| {
        let e = e.with_plan(ctx.config.plan.to_string());
        CompileError::new(CompileErrorKind::InvariantViolation, e.to_string())
            .with_diagnostics(e.diagnostics)
    })
}

/// Run semantic validation over the output of `pass`: the matching
/// translation validator (comparing against the pre-pass snapshot `pre`, or
/// the emitted bundles for the scheduler), plus abstract interpretation of
/// the post-pass IR at [`ValidationLevel::Full`]. Findings accumulate in
/// [`PassCtx::validation`] with pass and plan blame; an error-severity
/// finding aborts the pipeline as [`CompileErrorKind::Validation`].
fn validate_after(
    pre: Option<&Function>,
    func: &Function,
    ctx: &mut PassCtx<'_>,
    pass: &'static str,
) -> Result<(), CompileError> {
    use metaopt_analysis as analysis;
    let start = Instant::now();
    let mut diags: Vec<Diagnostic> = Vec::new();
    match (pass, pre) {
        ("unroll", Some(pre)) => diags.extend(analysis::validate_unroll(pre, func, pass)),
        ("prefetch", Some(pre)) => diags.extend(analysis::validate_prefetch(pre, func, pass)),
        ("hyperblock", Some(pre)) => diags.extend(analysis::validate_hyperblock(pre, func, pass)),
        ("regalloc", Some(pre)) => diags.extend(analysis::validate_regalloc(
            pre,
            func,
            ctx.machine,
            ctx.base_mem_size,
            ctx.mem_size,
            pass,
        )),
        ("schedule", _) => {
            if let Some(code) = &ctx.code {
                diags.extend(analysis::validate_schedule(func, code, ctx.machine, pass));
            }
        }
        _ => {}
    }
    // Abstract interpretation of the pass's output IR; the scheduler does
    // not rewrite the IR, so its output was already analyzed after the
    // previous pass.
    if ctx.config.validate >= ValidationLevel::Full && pass != "schedule" {
        let form = if ctx.machine_form {
            analysis::AbsForm::Machine(ctx.machine)
        } else {
            analysis::AbsForm::Virtual
        };
        diags.extend(analysis::analyze_function(func, form, ctx.mem_size, pass));
    }
    let wall_ns = start.elapsed().as_nanos() as u64;

    let plan = ctx.config.plan.to_string();
    for d in &mut diags {
        d.plan = Some(plan.clone());
    }
    let ok = first_error(&diags).is_none();
    if ctx.config.tracer.enabled() {
        use metaopt_trace::json::Value;
        ctx.config.tracer.emit(
            "validate",
            [
                ("pass", Value::str(pass)),
                ("level", Value::str(ctx.config.validate.label())),
                ("ok", Value::Bool(ok)),
                ("findings", Value::UInt(diags.len() as u64)),
                ("wall_ns", Value::UInt(wall_ns)),
            ],
        );
    }
    ctx.validation.extend(diags.iter().cloned());
    if !ok {
        let first = first_error(&diags).expect("checked above");
        return Err(CompileError::new(
            CompileErrorKind::Validation,
            format!(
                "semantic validation failed after pass '{pass}' (plan {plan}): {}",
                first.render()
            ),
        )
        .with_diagnostics(diags));
    }
    Ok(())
}
