//! Declarative pipeline plans: the pass schedule as *data*.
//!
//! A [`PipelinePlan`] is an ordered list of [`PassSpec`] steps with a
//! canonical textual syntax — a comma-separated list such as
//! `unroll(2),prefetch,hyperblock,regalloc,schedule` — that round-trips
//! through [`PipelinePlan::parse`] and [`fmt::Display`]. Plans are what the
//! [`PassManager`](crate::pass::PassManager) executes, what the `metaopt`
//! CLI accepts via `--passes`, and what the phase-ordering ablation driver
//! sweeps over: the compiler's algorithm sequence becomes a first-class,
//! searchable value instead of a hard-coded function body.
//!
//! Structural validity is enforced at parse/validate time rather than deep
//! inside a compilation:
//!
//! * the plan must end with the `schedule` terminal (machine-code emission),
//! * `regalloc` must run immediately before `schedule` (after allocation the
//!   function is in machine-register form, which the optimization passes do
//!   not understand),
//! * no pass may appear twice,
//! * an `unroll(N)` factor must be at least 2 (a factor of 1 is the
//!   identity).
//!
//! Everything before the `regalloc,schedule` terminal pair — any subset and
//! any order of `unroll(N)`, `prefetch` and `hyperblock` — is legal; the
//! inter-pass invariant checker guards each boundary at runtime.

use std::fmt;
use std::str::FromStr;

/// One step of a [`PipelinePlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PassSpec {
    /// Counted-loop unrolling with the given factor cap (≥ 2).
    Unroll(u32),
    /// Software data prefetching ([`crate::prefetch`]).
    Prefetch,
    /// Hyperblock formation / if-conversion ([`crate::hyperblock`]).
    Hyperblock,
    /// Register allocation ([`crate::regalloc`]); mandatory, second-to-last.
    Regalloc,
    /// VLIW list scheduling ([`crate::schedule`]); mandatory terminal.
    Schedule,
}

impl PassSpec {
    /// The pass name used in plan syntax, diagnostics, and per-pass stats.
    pub fn name(self) -> &'static str {
        match self {
            PassSpec::Unroll(_) => "unroll",
            PassSpec::Prefetch => "prefetch",
            PassSpec::Hyperblock => "hyperblock",
            PassSpec::Regalloc => "regalloc",
            PassSpec::Schedule => "schedule",
        }
    }
}

impl fmt::Display for PassSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassSpec::Unroll(n) => write!(f, "unroll({n})"),
            other => f.write_str(other.name()),
        }
    }
}

/// A rejected [`PipelinePlan`]: what is malformed and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// The plan has no steps.
    Empty,
    /// A step is not one of the known passes.
    UnknownPass(String),
    /// A pass appears more than once.
    Duplicate(&'static str),
    /// An `unroll(N)` factor is missing, unparseable, or below 2.
    BadUnrollFactor(String),
    /// The plan does not end with the `schedule` terminal.
    MissingTerminal,
    /// `regalloc` is absent or not immediately before `schedule`.
    MisplacedRegalloc,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Empty => write!(f, "empty pipeline plan"),
            PlanError::UnknownPass(s) => write!(
                f,
                "unknown pass {s:?} (expected unroll(N), prefetch, hyperblock, regalloc, \
                 schedule)"
            ),
            PlanError::Duplicate(name) => {
                write!(f, "pass '{name}' appears more than once in the plan")
            }
            PlanError::BadUnrollFactor(s) => write!(
                f,
                "bad unroll factor {s:?}: expected unroll(N) with an integer N >= 2"
            ),
            PlanError::MissingTerminal => {
                write!(f, "plan must end with the 'schedule' terminal")
            }
            PlanError::MisplacedRegalloc => write!(
                f,
                "'regalloc' must be present and run immediately before 'schedule' \
                 (optimization passes cannot run on machine-register form)"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// The canonical full pipeline in plan syntax: what [`crate::Passes::baseline`]
/// runs. `unroll(N)` is not part of it (it is not in the paper-calibrated
/// study pipelines) but may be prepended, e.g. `unroll(2),prefetch,...`.
pub const BASELINE_PLAN: &str = "prefetch,hyperblock,regalloc,schedule";

/// The smallest legal pipeline: allocation and scheduling only, no
/// optimization passes. What [`crate::Passes::default`] runs.
pub const MINIMAL_PLAN: &str = "regalloc,schedule";

/// An ordered, validated pass schedule. See the [module docs](self) for the
/// textual syntax and the structural rules.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PipelinePlan {
    steps: Vec<PassSpec>,
}

impl PipelinePlan {
    /// The canonical full pipeline ([`BASELINE_PLAN`]).
    pub fn baseline() -> Self {
        BASELINE_PLAN.parse().expect("baseline plan is valid")
    }

    /// The smallest legal pipeline ([`MINIMAL_PLAN`]).
    pub fn minimal() -> Self {
        MINIMAL_PLAN.parse().expect("minimal plan is valid")
    }

    /// Build a plan from explicit steps, validating the structural rules.
    ///
    /// # Errors
    /// Returns the first [`PlanError`] the step list violates.
    pub fn new(steps: Vec<PassSpec>) -> Result<Self, PlanError> {
        let plan = PipelinePlan { steps };
        plan.validate()?;
        Ok(plan)
    }

    /// Parse a comma-separated plan string (whitespace around steps is
    /// ignored), e.g. `"unroll(2), prefetch, hyperblock, regalloc, schedule"`.
    ///
    /// # Errors
    /// Returns a [`PlanError`] describing the first malformed step or
    /// structural violation.
    pub fn parse(text: &str) -> Result<Self, PlanError> {
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return Err(PlanError::Empty);
        }
        let mut steps = Vec::new();
        for raw in trimmed.split(',') {
            let tok = raw.trim();
            steps.push(match tok {
                "prefetch" => PassSpec::Prefetch,
                "hyperblock" => PassSpec::Hyperblock,
                "regalloc" => PassSpec::Regalloc,
                "schedule" => PassSpec::Schedule,
                _ => {
                    if let Some(rest) = tok.strip_prefix("unroll") {
                        let inner = rest
                            .strip_prefix('(')
                            .and_then(|r| r.strip_suffix(')'))
                            .ok_or_else(|| PlanError::BadUnrollFactor(tok.to_string()))?;
                        let factor: u32 = inner
                            .trim()
                            .parse()
                            .map_err(|_| PlanError::BadUnrollFactor(tok.to_string()))?;
                        if factor < 2 {
                            return Err(PlanError::BadUnrollFactor(tok.to_string()));
                        }
                        PassSpec::Unroll(factor)
                    } else {
                        return Err(PlanError::UnknownPass(tok.to_string()));
                    }
                }
            });
        }
        Self::new(steps)
    }

    /// Check the structural rules (see the [module docs](self)).
    ///
    /// # Errors
    /// Returns the first violated rule.
    pub fn validate(&self) -> Result<(), PlanError> {
        if self.steps.is_empty() {
            return Err(PlanError::Empty);
        }
        for (i, s) in self.steps.iter().enumerate() {
            if self.steps[..i].iter().any(|p| p.name() == s.name()) {
                return Err(PlanError::Duplicate(s.name()));
            }
            if let PassSpec::Unroll(n) = s {
                if *n < 2 {
                    return Err(PlanError::BadUnrollFactor(s.to_string()));
                }
            }
        }
        if self.steps.last() != Some(&PassSpec::Schedule) {
            return Err(PlanError::MissingTerminal);
        }
        if self.steps.len() < 2 || self.steps[self.steps.len() - 2] != PassSpec::Regalloc {
            return Err(PlanError::MisplacedRegalloc);
        }
        Ok(())
    }

    /// The steps in execution order.
    pub fn steps(&self) -> &[PassSpec] {
        &self.steps
    }

    /// Whether the plan contains a pass with this name.
    pub fn contains(&self, name: &str) -> bool {
        self.steps.iter().any(|s| s.name() == name)
    }

    /// This plan with `unroll(factor)` prepended (replacing any existing
    /// unroll step). A factor below 2 removes unrolling instead.
    pub fn with_unroll(mut self, factor: u32) -> Self {
        self.steps.retain(|s| !matches!(s, PassSpec::Unroll(_)));
        if factor >= 2 {
            self.steps.insert(0, PassSpec::Unroll(factor));
        }
        self
    }

    /// This plan with the named pass removed (no-op if absent). Removing
    /// `regalloc` or `schedule` yields an invalid plan; [`Self::validate`]
    /// or the compile entry point will reject it.
    pub fn without(mut self, name: &str) -> Self {
        self.steps.retain(|s| s.name() != name);
        self
    }
}

impl Default for PipelinePlan {
    /// The minimal plan, matching [`crate::Passes::default`].
    fn default() -> Self {
        PipelinePlan::minimal()
    }
}

impl fmt::Display for PipelinePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl FromStr for PipelinePlan {
    type Err = PlanError;

    fn from_str(s: &str) -> Result<Self, PlanError> {
        PipelinePlan::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_plan_matches_documented_string() {
        assert_eq!(PipelinePlan::baseline().to_string(), BASELINE_PLAN);
        assert_eq!(PipelinePlan::minimal().to_string(), MINIMAL_PLAN);
    }

    #[test]
    fn parse_print_round_trip_on_canonical_plans() {
        for text in [
            BASELINE_PLAN,
            MINIMAL_PLAN,
            "unroll(2),prefetch,hyperblock,regalloc,schedule",
            "hyperblock,prefetch,regalloc,schedule",
            "unroll(16),regalloc,schedule",
        ] {
            let plan = PipelinePlan::parse(text).unwrap();
            assert_eq!(plan.to_string(), text);
            assert_eq!(PipelinePlan::parse(&plan.to_string()).unwrap(), plan);
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let plan = PipelinePlan::parse("  unroll( 4 ) , prefetch ,hyperblock, regalloc,schedule ")
            .unwrap();
        assert_eq!(
            plan.to_string(),
            "unroll(4),prefetch,hyperblock,regalloc,schedule"
        );
    }

    #[test]
    fn malformed_plans_are_rejected_with_useful_errors() {
        let cases: [(&str, PlanError); 8] = [
            ("", PlanError::Empty),
            ("   ", PlanError::Empty),
            (
                "prefetch,frobnicate,regalloc,schedule",
                PlanError::UnknownPass("frobnicate".to_string()),
            ),
            (
                "prefetch,prefetch,regalloc,schedule",
                PlanError::Duplicate("prefetch"),
            ),
            (
                "unroll(1),regalloc,schedule",
                PlanError::BadUnrollFactor("unroll(1)".to_string()),
            ),
            (
                "unroll,regalloc,schedule",
                PlanError::BadUnrollFactor("unroll".to_string()),
            ),
            ("prefetch,regalloc", PlanError::MissingTerminal),
            ("prefetch,schedule", PlanError::MisplacedRegalloc),
        ];
        for (text, want) in cases {
            let got = PipelinePlan::parse(text).unwrap_err();
            assert_eq!(got, want, "plan {text:?}");
            assert!(!got.to_string().is_empty());
        }
        // regalloc not *immediately* before schedule.
        assert_eq!(
            PipelinePlan::parse("regalloc,prefetch,schedule").unwrap_err(),
            PlanError::MisplacedRegalloc
        );
        // Two unrolls are a duplicate even with different factors.
        assert_eq!(
            PipelinePlan::parse("unroll(2),unroll(4),regalloc,schedule").unwrap_err(),
            PlanError::Duplicate("unroll")
        );
    }

    #[test]
    fn with_unroll_prepends_and_replaces() {
        let p = PipelinePlan::baseline().with_unroll(2);
        assert_eq!(
            p.to_string(),
            "unroll(2),prefetch,hyperblock,regalloc,schedule"
        );
        let p = p.with_unroll(8);
        assert_eq!(
            p.to_string(),
            "unroll(8),prefetch,hyperblock,regalloc,schedule"
        );
        let p = p.with_unroll(0);
        assert_eq!(p.to_string(), BASELINE_PLAN);
    }

    #[test]
    fn without_removes_named_pass() {
        let p = PipelinePlan::baseline().without("hyperblock");
        assert_eq!(p.to_string(), "prefetch,regalloc,schedule");
        assert!(p.without("schedule").validate().is_err());
    }
}
