//! Genetic operators over [`PipelinePlan`]s: mutation and crossover in the
//! pipeline-plan search space, for co-evolving phase orderings alongside
//! priority functions.
//!
//! The operators work on the *optimization prefix* of a plan — everything
//! before the mandatory `regalloc,schedule` terminal pair, which the
//! structural grammar pins in place. Because they only ever toggle, retune,
//! reorder, or merge prefix passes (keeping pass names unique) and never
//! touch the terminal pair, **every plan they produce is structurally valid
//! by construction**: it round-trips through the textual grammar and passes
//! [`PipelinePlan::validate`]. The property test in
//! `tests/plan_ops_proptest.rs` holds them to that contract.
//!
//! All randomness flows through the caller's RNG, so plan evolution is as
//! deterministic as the rest of the GP engine: same seed, same plans.

use crate::plan::{PassSpec, PipelinePlan};
use rand::{Rng, RngExt};

/// Smallest unroll factor the mutation operator will produce. (The grammar
/// itself accepts any factor >= 2; existing larger factors are preserved.)
pub const MIN_UNROLL: u32 = 2;
/// Largest unroll factor the mutation operator will produce.
pub const MAX_UNROLL: u32 = 16;

/// Split a valid plan into its optimization prefix and the fixed
/// `regalloc,schedule` tail. Validation guarantees the tail is exactly the
/// last two steps.
fn split(plan: &PipelinePlan) -> (Vec<PassSpec>, [PassSpec; 2]) {
    let steps = plan.steps();
    debug_assert!(steps.len() >= 2, "valid plans end in regalloc,schedule");
    let n = steps.len();
    (steps[..n - 2].to_vec(), [steps[n - 2], steps[n - 1]])
}

/// Reassemble a prefix (unique pass names, factors >= 2) with the terminal
/// pair. Infallible by construction.
fn rebuild(prefix: Vec<PassSpec>, tail: [PassSpec; 2]) -> PipelinePlan {
    let steps: Vec<PassSpec> = prefix.into_iter().chain(tail).collect();
    PipelinePlan::new(steps).expect("operator output is structurally valid")
}

/// Mutate one plan: toggle an optimization pass in or out, toggle or retune
/// the `unroll(N)` knob, or swap two adjacent prefix passes. The result is
/// always a valid plan; it may equal the input when the chosen edit is a
/// no-op (e.g. a swap on a prefix shorter than two passes).
pub fn mutate_plan<R: Rng>(rng: &mut R, plan: &PipelinePlan) -> PipelinePlan {
    let (mut prefix, tail) = split(plan);
    match rng.random_range(0u8..4) {
        0 => {
            // Toggle presence of a boolean optimization pass.
            let (name, spec) = if rng.random_bool(0.5) {
                ("prefetch", PassSpec::Prefetch)
            } else {
                ("hyperblock", PassSpec::Hyperblock)
            };
            if let Some(i) = prefix.iter().position(|s| s.name() == name) {
                prefix.remove(i);
            } else {
                let at = rng.random_range(0..=prefix.len());
                prefix.insert(at, spec);
            }
        }
        1 => {
            // Toggle the unroll knob in or out.
            if let Some(i) = prefix.iter().position(|s| matches!(s, PassSpec::Unroll(_))) {
                prefix.remove(i);
            } else {
                let factor = MIN_UNROLL << rng.random_range(0u32..3); // 2, 4, or 8
                prefix.insert(0, PassSpec::Unroll(factor));
            }
        }
        2 => {
            // Retune the unroll factor (doubling/halving walks the knob
            // range); introduce the pass at the minimum factor if absent.
            match prefix.iter_mut().find(|s| matches!(s, PassSpec::Unroll(_))) {
                Some(PassSpec::Unroll(f)) => {
                    *f = if rng.random_bool(0.5) {
                        f.saturating_mul(2).min(MAX_UNROLL)
                    } else {
                        (*f / 2).max(MIN_UNROLL)
                    };
                }
                _ => prefix.insert(0, PassSpec::Unroll(MIN_UNROLL)),
            }
        }
        _ => {
            // Reorder: swap two adjacent prefix passes.
            if prefix.len() >= 2 {
                let i = rng.random_range(0..prefix.len() - 1);
                prefix.swap(i, i + 1);
            }
        }
    }
    rebuild(prefix, tail)
}

/// Cross two plans: the child's prefix inherits each pass name present in
/// both parents (taking either parent's `unroll` factor), keeps passes
/// unique to one parent with probability 1/2, and preserves relative order
/// (first parent's order, then the second's for its exclusive passes). The
/// terminal pair is untouched, so the child is always valid.
pub fn crossover_plans<R: Rng>(rng: &mut R, a: &PipelinePlan, b: &PipelinePlan) -> PipelinePlan {
    let (pa, tail) = split(a);
    let (pb, _) = split(b);
    let mut prefix = Vec::new();
    for s in &pa {
        let in_b = pb.iter().find(|t| t.name() == s.name());
        if in_b.is_none() && !rng.random_bool(0.5) {
            continue;
        }
        let spec = match (s, in_b) {
            (PassSpec::Unroll(fa), Some(PassSpec::Unroll(fb))) => {
                PassSpec::Unroll(if rng.random_bool(0.5) { *fa } else { *fb })
            }
            _ => *s,
        };
        prefix.push(spec);
    }
    for t in &pb {
        if pa.iter().all(|s| s.name() != t.name()) && rng.random_bool(0.5) {
            prefix.push(*t);
        }
    }
    rebuild(prefix, tail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mutation_is_deterministic_for_a_seed() {
        let plan = PipelinePlan::baseline();
        let a: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..32)
                .map(|_| mutate_plan(&mut rng, &plan).to_string())
                .collect()
        };
        let b: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..32)
                .map(|_| mutate_plan(&mut rng, &plan).to_string())
                .collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn mutation_explores_beyond_the_seed_plan() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::BTreeSet::new();
        let mut plan = PipelinePlan::baseline();
        for _ in 0..64 {
            plan = mutate_plan(&mut rng, &plan);
            seen.insert(plan.to_string());
        }
        assert!(seen.len() > 3, "mutation walked only {seen:?}");
    }

    #[test]
    fn unroll_factor_stays_in_knob_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut plan = PipelinePlan::minimal().with_unroll(2);
        for _ in 0..256 {
            plan = mutate_plan(&mut rng, &plan);
            for s in plan.steps() {
                if let PassSpec::Unroll(f) = s {
                    assert!((MIN_UNROLL..=MAX_UNROLL).contains(f), "factor {f}");
                }
            }
        }
    }

    #[test]
    fn crossover_of_identical_parents_is_identity() {
        let mut rng = StdRng::seed_from_u64(5);
        let plan = PipelinePlan::baseline().with_unroll(4);
        for _ in 0..16 {
            let child = crossover_plans(&mut rng, &plan, &plan);
            assert_eq!(child.to_string(), plan.to_string());
        }
    }
}
