//! Software data prefetching (paper case study III).
//!
//! A Mowry-style selective prefetcher: recognize induction-variable address
//! streams in loops, and for each candidate load ask a **Boolean** priority
//! ("confidence") function whether to emit a non-binding `Prefetch` of the
//! line the load will touch a few iterations ahead. The baseline
//! ([`BaselineTripCount`]) mimics ORC's shipped heuristic — prefetch
//! whenever the loop's trip count is estimable — which the paper found
//! "overzealous"; the evolved functions mostly learn to say no.

use crate::pass::{Pass, PassCtx};
use crate::{BoolPriority, CompileError};
use metaopt_ir::dom::DomTree;
use metaopt_ir::loops::LoopForest;
use metaopt_ir::profile::FuncProfile;
use metaopt_ir::{Function, Inst, Opcode, VReg};
use metaopt_sim::MachineConfig;
use std::collections::HashMap;

/// Real-valued features per candidate load. Index order is the public
/// contract for confidence functions.
pub const REAL_FEATURES: &[&str] = &[
    "trip_count", // profiled average iterations per loop entry
    "stride",     // signed address stride in bytes per iteration (0 if unknown)
    "abs_stride", // |stride|
    "loop_depth", // nesting depth of the loop
    "body_insts", // static instructions in the loop
    "mem_ops",    // memory operations in the loop
    "num_loads",  // loads in the loop
    "line_reuse", // cache-line size / |stride| (accesses per line)
];

/// Boolean features per candidate load.
pub const BOOL_FEATURES: &[&str] = &["stride_known", "trip_known", "is_float"];

/// The feature names (reals, bools) in index order.
pub fn feature_names() -> (Vec<&'static str>, Vec<&'static str>) {
    (REAL_FEATURES.to_vec(), BOOL_FEATURES.to_vec())
}

/// ORC-like baseline: prefetch whenever the compiler can estimate the trip
/// count (paper §7: "the priority function is simply based upon how well
/// the compiler can estimate loop trip counts"). Deliberately stride-blind
/// — the overzealousness the paper observed in ORC.
pub struct BaselineTripCount;

impl BoolPriority for BaselineTripCount {
    fn decide(&self, _reals: &[f64], bools: &[bool]) -> bool {
        bools[1]
    }
}

/// Definition map: vreg -> its unique defining instruction `(block, index)`,
/// absent for multiply-defined cells.
fn single_defs(func: &Function) -> HashMap<u32, (usize, usize)> {
    let mut count: HashMap<u32, u32> = HashMap::new();
    let mut site: HashMap<u32, (usize, usize)> = HashMap::new();
    for (bi, b) in func.blocks.iter().enumerate() {
        for (ii, inst) in b.insts.iter().enumerate() {
            if let Some(d) = inst.dst {
                *count.entry(d.0).or_insert(0) += 1;
                site.insert(d.0, (bi, ii));
            }
        }
    }
    site.retain(|r, _| count[r] == 1);
    site
}

/// Basic induction variables of a loop: cells `i` whose only in-loop
/// definition is `Mov i, t` with `t = AddI(i, c)` (the frontend's canonical
/// update), or a direct `AddI i <- i, c`. Returns vreg -> step.
fn induction_steps(
    func: &Function,
    blocks: &[usize],
    defs: &HashMap<u32, (usize, usize)>,
) -> HashMap<u32, i64> {
    // Collect in-loop defs per vreg.
    let mut in_loop_defs: HashMap<u32, Vec<(usize, usize)>> = HashMap::new();
    for &bi in blocks {
        for (ii, inst) in func.blocks[bi].insts.iter().enumerate() {
            if let Some(d) = inst.dst {
                in_loop_defs.entry(d.0).or_default().push((bi, ii));
            }
        }
    }
    let mut out = HashMap::new();
    for (reg, sites) in &in_loop_defs {
        if sites.len() != 1 {
            continue;
        }
        let (bi, ii) = sites[0];
        let inst = &func.blocks[bi].insts[ii];
        if inst.pred.is_some() {
            continue;
        }
        match inst.op {
            Opcode::AddI if inst.args[0].0 == *reg => {
                out.insert(*reg, inst.imm);
            }
            Opcode::Mov => {
                let src = inst.args[0].0;
                if let Some(&(sbi, sii)) = defs.get(&src) {
                    if blocks.contains(&sbi) {
                        let s = &func.blocks[sbi].insts[sii];
                        if s.op == Opcode::AddI && s.args[0].0 == *reg && s.pred.is_none() {
                            out.insert(*reg, s.imm);
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Per-iteration address stride of `reg` (bytes), if derivable: walk the
/// (single-)definition chain treating induction variables as the base case.
fn stride_of(
    func: &Function,
    reg: u32,
    ivs: &HashMap<u32, i64>,
    defs: &HashMap<u32, (usize, usize)>,
    blocks: &[usize],
    depth: usize,
) -> Option<i64> {
    if depth == 0 {
        return None;
    }
    if let Some(&s) = ivs.get(&reg) {
        return Some(s);
    }
    match defs.get(&reg) {
        None => None, // multiply-defined, not an IV
        Some(&(bi, ii)) => {
            if !blocks.contains(&bi) {
                return Some(0); // loop-invariant
            }
            let inst = &func.blocks[bi].insts[ii];
            if inst.pred.is_some() {
                return None;
            }
            match inst.op {
                Opcode::MovI => Some(0),
                Opcode::Mov => stride_of(func, inst.args[0].0, ivs, defs, blocks, depth - 1),
                Opcode::AddI => stride_of(func, inst.args[0].0, ivs, defs, blocks, depth - 1),
                Opcode::Add => {
                    let a = stride_of(func, inst.args[0].0, ivs, defs, blocks, depth - 1)?;
                    let b = stride_of(func, inst.args[1].0, ivs, defs, blocks, depth - 1)?;
                    Some(a + b)
                }
                Opcode::Sub => {
                    let a = stride_of(func, inst.args[0].0, ivs, defs, blocks, depth - 1)?;
                    let b = stride_of(func, inst.args[1].0, ivs, defs, blocks, depth - 1)?;
                    Some(a - b)
                }
                Opcode::MulI => {
                    let a = stride_of(func, inst.args[0].0, ivs, defs, blocks, depth - 1)?;
                    Some(a.wrapping_mul(inst.imm))
                }
                Opcode::ShlI => {
                    let a = stride_of(func, inst.args[0].0, ivs, defs, blocks, depth - 1)?;
                    Some(a.wrapping_shl(inst.imm as u32 & 63))
                }
                _ => None,
            }
        }
    }
}

/// Run prefetch insertion over every loop of `func`; returns the number of
/// `Prefetch` instructions inserted.
pub fn insert_prefetches(
    func: &mut Function,
    profile: &FuncProfile,
    machine: &MachineConfig,
    confidence: &dyn BoolPriority,
    iters_ahead: i64,
) -> u64 {
    let dt = DomTree::compute(func);
    let forest = LoopForest::compute(func, &dt);
    let defs = single_defs(func);
    let line = machine.cache.line_bytes as f64;

    // Collect insertion requests first (block, inst index, prefetch inst).
    let mut requests: Vec<(usize, usize, Inst)> = Vec::new();
    for l in &forest.loops {
        let blocks: Vec<usize> = l.blocks.iter().collect();
        let ivs = induction_steps(func, &blocks, &defs);

        // Loop statistics.
        let header_count = profile.block_count(l.header) as f64;
        let backedges: f64 = l
            .latches
            .iter()
            .map(|&lat| profile.edge_count(lat, l.header) as f64)
            .sum();
        let entries = (header_count - backedges).max(0.0);
        let trip = if entries > 0.0 {
            header_count / entries
        } else {
            0.0
        };
        let body_insts: usize = blocks.iter().map(|&b| func.blocks[b].insts.len()).sum();
        let mem_ops = blocks
            .iter()
            .flat_map(|&b| &func.blocks[b].insts)
            .filter(|i| i.op.is_mem())
            .count() as f64;
        let num_loads = blocks
            .iter()
            .flat_map(|&b| &func.blocks[b].insts)
            .filter(|i| i.op.is_load())
            .count() as f64;

        for &bi in &blocks {
            // Only innermost placement: skip blocks whose innermost loop is
            // a different (deeper) loop.
            let this = forest
                .loops
                .iter()
                .position(|x| std::ptr::eq(x, l))
                .unwrap_or(usize::MAX);
            if forest.innermost[bi] != Some(this) {
                continue;
            }
            for (ii, inst) in func.blocks[bi].insts.iter().enumerate() {
                if !inst.op.is_load() {
                    continue;
                }
                let addr = inst.args[0];
                let stride = stride_of(func, addr.0, &ivs, &defs, &blocks, 16);
                let stride_known = stride.is_some_and(|s| s != 0);
                let s = stride.unwrap_or(0);
                let trip_known = trip > 2.0;
                let is_float = inst.op == Opcode::FLd;
                let reals = [
                    trip,
                    s as f64,
                    s.abs() as f64,
                    l.depth as f64,
                    body_insts as f64,
                    mem_ops,
                    num_loads,
                    if s != 0 { line / s.abs() as f64 } else { 0.0 },
                ];
                let bools = [stride_known, trip_known, is_float];
                if confidence.decide(&reals, &bools) {
                    let dist = if stride_known {
                        s * iters_ahead
                    } else {
                        machine.cache.line_bytes as i64
                    };
                    let pf = Inst::new(Opcode::Prefetch)
                        .args(&[VReg(addr.0)])
                        .imm(inst.imm + dist);
                    requests.push((bi, ii, pf));
                }
            }
        }
    }

    // Insert back-to-front so indices stay valid.
    requests.sort_by_key(|r| std::cmp::Reverse((r.0, r.1)));
    let count = requests.len() as u64;
    for (bi, ii, pf) in requests {
        func.blocks[bi].insts.insert(ii, pf);
    }
    count
}

/// [`insert_prefetches`] as a plan-schedulable [`Pass`], reading the
/// confidence function and prefetch distance from the [`PassCtx`] config.
pub struct PrefetchPass;

impl Pass for PrefetchPass {
    fn name(&self) -> &'static str {
        "prefetch"
    }

    fn run(&self, func: &mut Function, ctx: &mut PassCtx<'_>) -> Result<(), CompileError> {
        ctx.stats.counters.prefetches += insert_prefetches(
            func,
            &ctx.profile,
            ctx.machine,
            ctx.config.prefetch,
            ctx.config.prefetch_iters_ahead,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_ir::interp::{run, RunConfig};

    const STREAM: &str = r#"
        global float a[2048];
        global float b[2048];
        fn main() -> int {
            for (let i = 0; i < 2048; i = i + 1) { a[i] = i2f(i) * 0.5; }
            let s = 0.0;
            for (let r = 0; r < 4; r = r + 1) {
                for (let i = 0; i < 2048; i = i + 1) {
                    s = s + a[i] * 1.0001 + b[i];
                    b[i] = s;
                }
            }
            return f2i(s);
        }
    "#;

    fn prepared_with_profile(src: &str) -> (metaopt_ir::Program, FuncProfile) {
        let prog = metaopt_lang::compile(src).unwrap();
        let prepared = crate::prepare(&prog).unwrap();
        let prof = run(
            &prepared,
            &RunConfig {
                profile: true,
                ..Default::default()
            },
        )
        .unwrap()
        .profile
        .unwrap();
        (prepared, prof.funcs[0].clone())
    }

    #[test]
    fn baseline_inserts_prefetches_for_strided_loads() {
        let (prepared, prof) = prepared_with_profile(STREAM);
        let mut func = prepared.funcs[0].clone();
        let n = insert_prefetches(
            &mut func,
            &prof,
            &MachineConfig::itanium_like(),
            &BaselineTripCount,
            8,
        );
        assert!(
            n >= 2,
            "expected prefetches for the streaming loads, got {n}"
        );
        assert!(func
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| i.op == Opcode::Prefetch));
    }

    #[test]
    fn prefetches_preserve_semantics() {
        let (prepared, prof) = prepared_with_profile(STREAM);
        let want = run(&prepared, &RunConfig::default()).unwrap().ret;
        let mut func = prepared.funcs[0].clone();
        insert_prefetches(
            &mut func,
            &prof,
            &MachineConfig::itanium_like(),
            &BaselineTripCount,
            8,
        );
        let mut p2 = prepared.clone();
        p2.funcs[0] = func;
        metaopt_ir::verify::verify_program(&p2, metaopt_ir::verify::CfgForm::Canonical).unwrap();
        assert_eq!(run(&p2, &RunConfig::default()).unwrap().ret, want);
    }

    #[test]
    fn never_confidence_inserts_nothing() {
        let (prepared, prof) = prepared_with_profile(STREAM);
        let mut func = prepared.funcs[0].clone();
        let never = |_: &[f64], _: &[bool]| false;
        let n = insert_prefetches(&mut func, &prof, &MachineConfig::itanium_like(), &never, 8);
        assert_eq!(n, 0);
    }

    #[test]
    fn stride_detection_finds_unit_stride() {
        let (prepared, prof) = prepared_with_profile(STREAM);
        let func = &prepared.funcs[0];
        let _ = prof;
        let dt = DomTree::compute(func);
        let forest = LoopForest::compute(func, &dt);
        let defs = single_defs(func);
        let mut found_stride8 = false;
        for l in &forest.loops {
            let blocks: Vec<usize> = l.blocks.iter().collect();
            let ivs = induction_steps(func, &blocks, &defs);
            for &bi in &blocks {
                for inst in &func.blocks[bi].insts {
                    if inst.op.is_load() {
                        if let Some(8) = stride_of(func, inst.args[0].0, &ivs, &defs, &blocks, 16) {
                            found_stride8 = true;
                        }
                    }
                }
            }
        }
        assert!(
            found_stride8,
            "float stream loads should have 8-byte stride"
        );
    }

    #[test]
    fn byte_arrays_have_unit_stride() {
        let src = r#"
            global byte data[4096];
            fn main() -> int {
                let s = 0;
                for (let i = 0; i < 4096; i = i + 1) { s = s + data[i]; }
                return s;
            }
        "#;
        let (prepared, prof) = prepared_with_profile(src);
        let mut func = prepared.funcs[0].clone();
        let record = std::sync::Mutex::new(Vec::new());
        let spy = |reals: &[f64], bools: &[bool]| {
            record.lock().unwrap().push((reals[1], bools[0]));
            false
        };
        insert_prefetches(&mut func, &prof, &MachineConfig::itanium_like(), &spy, 8);
        let seen = record.lock().unwrap();
        assert!(
            seen.iter().any(|(s, known)| *s == 1.0 && *known),
            "expected unit-stride candidate: {seen:?}"
        );
    }
}
