//! Priority-based coloring register allocation (Chow & Hennessy), paper
//! case study II.
//!
//! Live ranges are per-vreg sets of blocks; interference is block-set
//! overlap within a register class. Ranges are colored **in priority
//! order**, where the priority of a range is the *mean over its blocks* of a
//! per-block savings function — paper Eq. 3 wrapping Eq. 2:
//!
//! ```text
//! savings_i  = w_i · (LDsave · uses_i + STsave · defs_i)      (Eq. 2)
//! priority   = Σ_i savings_i / N                               (Eq. 3)
//! ```
//!
//! Eq. 3 (the normalization) stays fixed, exactly as in the paper (§6); the
//! GP search replaces only the per-block savings function via
//! [`RealPriority`]. Ranges that cannot be colored are spilled with
//! load-before-use / store-after-def code around reserved temp registers.
//!
//! Register-file reservations (per class): int r0 is the hard-wired zero /
//! spill-base register, r1–r3 are spill temps; float f0–f2 are spill temps;
//! predicate p0–p3 are spill temps. Everything else is allocatable.

use crate::pass::{Pass, PassCtx};
use crate::{CompileError, CompileErrorKind, RealPriority};
use metaopt_ir::liveness::Liveness;
use metaopt_ir::profile::FuncProfile;
use metaopt_ir::util::BitSet;
use metaopt_ir::{BlockId, Function, Inst, Opcode, RegClass, VReg};
use metaopt_sim::MachineConfig;

/// Real-valued features fed to the savings function, per (block, range).
/// Index order matches [`feature_names`].
pub const REAL_FEATURES: &[&str] = &[
    "uses",       // uses of the range's vreg in this block
    "defs",       // defs in this block
    "w",          // block execution frequency (profile, normalized)
    "loop_depth", // loop nesting depth of the block
    "range_size", // number of blocks in the live range (Eq. 3's N)
    "degree",     // interference degree of the range
    "total_refs", // uses+defs of the range across the whole function
];

/// Boolean features. Index order matches [`feature_names`].
pub const BOOL_FEATURES: &[&str] = &["is_float", "is_pred"];

/// The feature names (reals, bools) in index order.
pub fn feature_names() -> (Vec<&'static str>, Vec<&'static str>) {
    (REAL_FEATURES.to_vec(), BOOL_FEATURES.to_vec())
}

/// The paper's Eq. 2 baseline: `w · (LDsave·uses + STsave·defs)` with
/// `LDsave` = the L1 hit latency (2) and `STsave` = the buffered store cost
/// (1), per the Table 3 machine.
pub struct BaselineEq2;

impl RealPriority for BaselineEq2 {
    fn score(&self, reals: &[f64], _bools: &[bool]) -> f64 {
        let uses = reals[0];
        let defs = reals[1];
        let w = reals[2];
        w * (2.0 * uses + 1.0 * defs)
    }
}

/// Result of allocation.
#[derive(Clone, Copy, Debug, Default)]
pub struct RaResult {
    /// Live ranges spilled.
    pub spilled: u64,
    /// Required memory size (globals + spill slots).
    pub mem_size: usize,
}

const INT_TEMPS: [u32; 3] = [1, 2, 3]; // r0 is the zero/spill-base register
const FLOAT_TEMPS: [u32; 3] = [0, 1, 2];
const PRED_TEMPS: [u32; 4] = [0, 1, 2, 3];
const FIRST_INT: u32 = 4;
const FIRST_FLOAT: u32 = 3;
const FIRST_PRED: u32 = 4;

fn class_of_operand(inst: &Inst, arg_ix: usize) -> RegClass {
    match inst.op.arg_classes() {
        Some(cs) => cs[arg_ix],
        None => RegClass::Int, // Ret value
    }
}

/// Allocate registers for `func`, rewriting it **in place** into machine
/// register form (operand indices become physical registers of the class
/// implied by the opcode). `globals_size` is where the spill area starts.
///
/// # Errors
/// Returns a message if the machine has too few registers even with
/// spilling (pathological class pressure inside a single instruction).
pub fn allocate(
    func: &mut Function,
    machine: &MachineConfig,
    savings: &dyn RealPriority,
    profile: &FuncProfile,
    globals_size: usize,
) -> Result<RaResult, String> {
    let nv = func.num_vregs();
    let nb = func.blocks.len();
    let live = Liveness::compute(func);

    // Live range = set of blocks where the vreg is live or referenced.
    let mut range: Vec<BitSet> = vec![BitSet::new(nb); nv];
    let mut uses_in: Vec<Vec<u32>> = Vec::new();
    uses_in.resize_with(nv, || vec![0u32; nb]);
    let mut defs_in: Vec<Vec<u32>> = Vec::new();
    defs_in.resize_with(nv, || vec![0u32; nb]);
    for bi in 0..nb {
        for v in live.live_in[bi].iter() {
            range[v].insert(bi);
        }
        for v in live.live_out[bi].iter() {
            range[v].insert(bi);
        }
        for inst in &func.blocks[bi].insts {
            for r in inst.reads() {
                range[r.index()].insert(bi);
                uses_in[r.index()][bi] += 1;
            }
            if let Some(d) = inst.dst {
                range[d.index()].insert(bi);
                defs_in[d.index()][bi] += 1;
            }
        }
    }

    let referenced: Vec<bool> = (0..nv).map(|v| !range[v].is_empty()).collect();

    // Interference: same class and overlapping block sets.
    let by_class = |c: RegClass| -> Vec<usize> {
        (0..nv)
            .filter(|&v| referenced[v] && func.vreg_class[v] == c)
            .collect()
    };

    // Block frequency normalization.
    let entry_count = profile.block_count(func.entry).max(1) as f64;
    let dt = metaopt_ir::dom::DomTree::compute(func);
    let loops = metaopt_ir::loops::LoopForest::compute(func, &dt);

    let mut assignment: Vec<Option<u32>> = vec![None; nv];
    let mut spilled: Vec<bool> = vec![false; nv];
    let mut num_spilled = 0u64;

    for (class, first, count) in [
        (RegClass::Int, FIRST_INT, machine.gpr as u32),
        (RegClass::Float, FIRST_FLOAT, machine.fpr as u32),
        (RegClass::Pred, FIRST_PRED, machine.pred as u32),
    ] {
        let vregs = by_class(class);
        let k = vregs.len();
        // Pairwise interference (block-set overlap).
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); k];
        for i in 0..k {
            for j in (i + 1)..k {
                if range[vregs[i]].intersects(&range[vregs[j]]) {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        // Priorities: mean over the range's blocks of the savings function.
        let mut prio: Vec<f64> = Vec::with_capacity(k);
        for (i, &v) in vregs.iter().enumerate() {
            let blocks: Vec<usize> = range[v].iter().collect();
            let n = blocks.len().max(1) as f64;
            let total_refs: u32 = blocks.iter().map(|&b| uses_in[v][b] + defs_in[v][b]).sum();
            let mut sum = 0.0;
            for &b in &blocks {
                let w = profile.block_count(BlockId(b as u32)) as f64 / entry_count;
                let reals = [
                    uses_in[v][b] as f64,
                    defs_in[v][b] as f64,
                    w,
                    loops.depth_of(BlockId(b as u32)) as f64,
                    n,
                    adj[i].len() as f64,
                    total_refs as f64,
                ];
                let bools = [class == RegClass::Float, class == RegClass::Pred];
                sum += savings.score(&reals, &bools);
            }
            prio.push(sum / n);
        }
        // Color in priority order.
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&a, &b| {
            prio[b]
                .partial_cmp(&prio[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(vregs[a].cmp(&vregs[b]))
        });
        let colors_available = count.saturating_sub(first);
        for &i in &order {
            let v = vregs[i];
            let mut taken = vec![false; colors_available as usize];
            for &j in &adj[i] {
                if let Some(c) = assignment[vregs[j]] {
                    taken[(c - first) as usize] = true;
                }
            }
            match taken.iter().position(|t| !t) {
                Some(c) => assignment[v] = Some(first + c as u32),
                None => {
                    if class == RegClass::Pred && colors_available == 0 {
                        return Err("no allocatable predicate registers".into());
                    }
                    spilled[v] = true;
                    num_spilled += 1;
                }
            }
        }
    }

    // Spill slots.
    let mut slot_of: Vec<Option<usize>> = vec![None; nv];
    let mut next_slot = 0usize;
    for v in 0..nv {
        if spilled[v] {
            slot_of[v] = Some(next_slot);
            next_slot += 1;
        }
    }
    let spill_base = ((globals_size + 7) & !7) as i64;

    // Rewrite instructions.
    for bi in 0..nb {
        let old = std::mem::take(&mut func.blocks[bi].insts);
        let mut new = Vec::with_capacity(old.len());
        for mut inst in old {
            let mut int_t = 0usize;
            let mut float_t = 0usize;
            let mut pred_t = 0usize;
            // Reload guard first (it controls the instruction).
            if let Some(p) = inst.pred {
                let v = p.index();
                if spilled[v] {
                    let slot = spill_base + slot_of[v].unwrap() as i64 * 8;
                    let it = INT_TEMPS[int_t];
                    int_t += 1;
                    let pt = PRED_TEMPS[pred_t];
                    pred_t += 1;
                    new.push(
                        Inst::new(Opcode::Ld(metaopt_ir::Width::B8))
                            .dst(VReg(it))
                            .args(&[VReg(0)])
                            .imm(slot),
                    );
                    new.push(Inst::new(Opcode::I2P).dst(VReg(pt)).args(&[VReg(it)]));
                    inst.pred = Some(VReg(pt));
                } else {
                    inst.pred = Some(VReg(assignment[v].expect("allocated")));
                }
            }
            // Operands.
            for ai in 0..inst.args.len() {
                let v = inst.args[ai].index();
                let class = class_of_operand(&inst, ai);
                if spilled[v] {
                    let slot = spill_base + slot_of[v].unwrap() as i64 * 8;
                    match class {
                        RegClass::Int => {
                            if int_t >= INT_TEMPS.len() {
                                return Err("out of int spill temps".into());
                            }
                            let t = INT_TEMPS[int_t];
                            int_t += 1;
                            new.push(
                                Inst::new(Opcode::Ld(metaopt_ir::Width::B8))
                                    .dst(VReg(t))
                                    .args(&[VReg(0)])
                                    .imm(slot),
                            );
                            inst.args[ai] = VReg(t);
                        }
                        RegClass::Float => {
                            if float_t >= FLOAT_TEMPS.len() - 1 {
                                return Err("out of float spill temps".into());
                            }
                            let t = FLOAT_TEMPS[float_t];
                            float_t += 1;
                            new.push(
                                Inst::new(Opcode::FLd)
                                    .dst(VReg(t))
                                    .args(&[VReg(0)])
                                    .imm(slot),
                            );
                            inst.args[ai] = VReg(t);
                        }
                        RegClass::Pred => {
                            if int_t >= INT_TEMPS.len() || pred_t >= PRED_TEMPS.len() - 1 {
                                return Err("out of pred spill temps".into());
                            }
                            let it = INT_TEMPS[int_t];
                            int_t += 1;
                            let pt = PRED_TEMPS[pred_t];
                            pred_t += 1;
                            new.push(
                                Inst::new(Opcode::Ld(metaopt_ir::Width::B8))
                                    .dst(VReg(it))
                                    .args(&[VReg(0)])
                                    .imm(slot),
                            );
                            new.push(Inst::new(Opcode::I2P).dst(VReg(pt)).args(&[VReg(it)]));
                            inst.args[ai] = VReg(pt);
                        }
                    }
                } else {
                    inst.args[ai] = VReg(assignment[v].expect("allocated"));
                }
            }
            // Destination.
            let mut post: Vec<Inst> = Vec::new();
            if let Some(d) = inst.dst {
                let v = d.index();
                let class = inst.op.dst_class().expect("dst implies class");
                if spilled[v] {
                    let slot = spill_base + slot_of[v].unwrap() as i64 * 8;
                    match class {
                        RegClass::Int => {
                            let t = INT_TEMPS[INT_TEMPS.len() - 1];
                            inst.dst = Some(VReg(t));
                            let mut st = Inst::new(Opcode::St(metaopt_ir::Width::B8))
                                .args(&[VReg(0), VReg(t)])
                                .imm(slot);
                            st.pred = inst.pred; // only write back if executed
                            post.push(st);
                        }
                        RegClass::Float => {
                            let t = FLOAT_TEMPS[FLOAT_TEMPS.len() - 1];
                            inst.dst = Some(VReg(t));
                            let mut st = Inst::new(Opcode::FSt).args(&[VReg(0), VReg(t)]).imm(slot);
                            st.pred = inst.pred;
                            post.push(st);
                        }
                        RegClass::Pred => {
                            let pt = PRED_TEMPS[PRED_TEMPS.len() - 1];
                            let it = INT_TEMPS[INT_TEMPS.len() - 1];
                            inst.dst = Some(VReg(pt));
                            let mut cvt = Inst::new(Opcode::P2I).dst(VReg(it)).args(&[VReg(pt)]);
                            cvt.pred = inst.pred;
                            post.push(cvt);
                            let mut st = Inst::new(Opcode::St(metaopt_ir::Width::B8))
                                .args(&[VReg(0), VReg(it)])
                                .imm(slot);
                            st.pred = inst.pred;
                            post.push(st);
                        }
                    }
                } else {
                    inst.dst = Some(VReg(assignment[v].expect("allocated")));
                }
            }
            new.push(inst);
            new.extend(post);
        }
        func.blocks[bi].insts = new;
    }

    Ok(RaResult {
        spilled: num_spilled,
        mem_size: spill_base as usize + next_slot * 8,
    })
}

/// [`allocate`] as a plan-schedulable [`Pass`]: the mandatory
/// second-to-last step of every plan. Rewrites the function into
/// machine-register form (flipping [`PassCtx::machine_form`] so the
/// invariant checker switches to its shape-and-reachability subset) and
/// records the required memory image size.
pub struct RegallocPass;

impl Pass for RegallocPass {
    fn name(&self) -> &'static str {
        "regalloc"
    }

    fn run(&self, func: &mut Function, ctx: &mut PassCtx<'_>) -> Result<(), CompileError> {
        let ra = allocate(
            func,
            ctx.machine,
            ctx.config.regalloc,
            &ctx.profile,
            ctx.base_mem_size,
        )
        .map_err(|m| CompileError::new(CompileErrorKind::Regalloc, m))?;
        ctx.stats.counters.spills += ra.spilled;
        ctx.mem_size = ra.mem_size;
        ctx.machine_form = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_ir::interp::{run, RunConfig};
    use metaopt_sim::simulate;

    fn compile_and_compare(src: &str, machine: &MachineConfig) {
        let prog = metaopt_lang::compile(src).unwrap();
        let prepared = crate::prepare(&prog).unwrap();
        let interp_out = run(&prepared, &RunConfig::default()).unwrap();
        let profile = run(
            &prepared,
            &RunConfig {
                profile: true,
                ..Default::default()
            },
        )
        .unwrap()
        .profile
        .unwrap();
        let compiled = crate::compile(
            &prepared,
            &profile.funcs[0],
            machine,
            &crate::Passes::default(),
        )
        .unwrap();
        let mem = compiled.initial_memory(&prepared);
        let sim = simulate(&compiled.code, machine, mem).unwrap();
        assert_eq!(
            sim.ret, interp_out.ret,
            "simulated result must match interpreter"
        );
    }

    const KERNEL: &str = r#"
        global int xs[64];
        fn main() -> int {
            for (let i = 0; i < 64; i = i + 1) { xs[i] = i * 3 % 17; }
            let a = 0; let b = 1; let c = 2; let d = 3; let e = 4;
            let f = 5; let g = 6; let h = 7; let k = 8; let m = 9;
            for (let i = 0; i < 64; i = i + 1) {
                a = a + xs[i]; b = b + a; c = c + b; d = d + c;
                e = e + d; f = f + e; g = g + f; h = h + g;
                k = k + h; m = m + k;
            }
            return a + b + c + d + e + f + g + h + k + m;
        }
    "#;

    #[test]
    fn allocates_and_matches_interpreter_on_table3() {
        compile_and_compare(KERNEL, &MachineConfig::table3());
    }

    #[test]
    fn spills_correctly_on_tiny_register_file() {
        // 8 int registers (4 allocatable after reservations) forces heavy
        // spilling; the program must still compute the same result.
        let mut m = MachineConfig::table3();
        m.gpr = 8;
        compile_and_compare(KERNEL, &m);
    }

    #[test]
    fn float_pressure_spills() {
        let mut m = MachineConfig::table3();
        m.fpr = 6;
        compile_and_compare(
            r#"
            global float fs[32];
            fn main() -> int {
                for (let i = 0; i < 32; i = i + 1) { fs[i] = i2f(i) * 1.5; }
                let a = 0.0; let b = 1.0; let c = 2.0; let d = 3.0;
                let e = 4.0; let f = 5.0; let g = 6.0;
                for (let i = 0; i < 32; i = i + 1) {
                    a = a + fs[i]; b = b + a; c = c + b; d = d + c;
                    e = e + d; f = f + e; g = g + f;
                }
                return f2i(a + b + c + d + e + f + g);
            }
        "#,
            &m,
        );
    }

    #[test]
    fn spill_count_grows_as_registers_shrink() {
        let prog = metaopt_lang::compile(KERNEL).unwrap();
        let prepared = crate::prepare(&prog).unwrap();
        let profile = run(
            &prepared,
            &RunConfig {
                profile: true,
                ..Default::default()
            },
        )
        .unwrap()
        .profile
        .unwrap();
        let spills_at = |gpr: usize| {
            let mut m = MachineConfig::table3();
            m.gpr = gpr;
            crate::compile(&prepared, &profile.funcs[0], &m, &crate::Passes::default())
                .unwrap()
                .stats
                .counters
                .spills
        };
        assert_eq!(spills_at(64), 0, "Table 3 machine should not spill");
        assert!(spills_at(8) > 0, "8 registers must spill");
        assert!(spills_at(8) >= spills_at(16));
    }

    #[test]
    fn baseline_eq2_prefers_hot_ranges() {
        // Eq. 2 weight scales with frequency and use counts.
        let hot = BaselineEq2.score(&[5.0, 1.0, 10.0, 2.0, 3.0, 4.0, 6.0], &[false, false]);
        let cold = BaselineEq2.score(&[5.0, 1.0, 0.1, 0.0, 3.0, 4.0, 6.0], &[false, false]);
        assert!(hot > cold);
    }
}
