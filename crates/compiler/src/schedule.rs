//! List scheduling into VLIW bundles.
//!
//! The classic latency-weighted-depth priority (Gibbons & Muchnick, cited by
//! the paper's §2 as the canonical list-scheduling priority function) drives
//! a greedy cycle-by-cycle scheduler. Each block is split into *segments* at
//! control instructions — nothing moves across a branch, which keeps
//! hyperblock side exits correct without speculation machinery.

use crate::pass::{Pass, PassCtx};
use crate::CompileError;
use metaopt_ir::{Function, Inst, Opcode, RegClass};
use metaopt_sim::machine::{latency_of, unit_of, MachineConfig, UnitKind};
use metaopt_sim::{Bundle, MachineProgram};
use std::collections::HashMap;

/// Scheduling latency of an instruction: functional-unit latency, with
/// loads assumed to hit L1 (the optimistic assumption the simulator then
/// checks dynamically).
fn sched_latency(inst: &Inst, m: &MachineConfig) -> u64 {
    if inst.op.is_load() {
        m.cache.l1_latency
    } else {
        latency_of(inst.op)
    }
}

/// Operand identity for dependence analysis: (class, physical index).
type Reg = (RegClass, u32);

fn reads_of(inst: &Inst) -> Vec<Reg> {
    let mut out = Vec::new();
    if let Some(classes) = inst.op.arg_classes() {
        for (a, c) in inst.args.iter().zip(classes) {
            out.push((*c, a.0));
        }
    } else {
        for a in &inst.args {
            out.push((RegClass::Int, a.0)); // Ret value
        }
    }
    if let Some(p) = inst.pred {
        out.push((RegClass::Pred, p.0));
    }
    out
}

fn write_of(inst: &Inst) -> Option<Reg> {
    match (inst.op.dst_class(), inst.dst) {
        (Some(c), Some(d)) => Some((c, d.0)),
        _ => None,
    }
}

/// Schedule one segment (no control instructions) into bundles.
fn schedule_segment(insts: &[Inst], m: &MachineConfig, out: &mut Vec<Bundle>) {
    let n = insts.len();
    if n == 0 {
        return;
    }
    // Build dependence edges: preds[i] = list of (j, latency) with j before i.
    let mut preds: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    let mut nsucc = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    {
        let mut last_write: HashMap<Reg, usize> = HashMap::new();
        let mut readers: HashMap<Reg, Vec<usize>> = HashMap::new();
        let mut last_store: Option<usize> = None;
        let mut loads_since_store: Vec<usize> = Vec::new();
        let edge = |preds: &mut Vec<Vec<(usize, u64)>>,
                    succs: &mut Vec<Vec<usize>>,
                    nsucc: &mut Vec<usize>,
                    from: usize,
                    to: usize,
                    lat: u64| {
            preds[to].push((from, lat));
            succs[from].push(to);
            nsucc[to] += 0; // placeholder to satisfy closure shape
            let _ = nsucc;
        };
        for (i, inst) in insts.iter().enumerate() {
            // RAW
            for r in reads_of(inst) {
                if let Some(&w) = last_write.get(&r) {
                    edge(
                        &mut preds,
                        &mut succs,
                        &mut nsucc,
                        w,
                        i,
                        sched_latency(&insts[w], m),
                    );
                }
                readers.entry(r).or_default().push(i);
            }
            if let Some(w) = write_of(inst) {
                // WAR
                if let Some(rs) = readers.get(&w) {
                    for &r in rs {
                        if r != i {
                            edge(&mut preds, &mut succs, &mut nsucc, r, i, 1);
                        }
                    }
                }
                // WAW
                if let Some(&pw) = last_write.get(&w) {
                    edge(&mut preds, &mut succs, &mut nsucc, pw, i, 1);
                }
                last_write.insert(w, i);
                readers.remove(&w);
            }
            // Memory ordering: stores/ucalls are barriers among memory ops;
            // loads may reorder with loads. Prefetches have no memory deps.
            let is_store_like = inst.op.is_store() || inst.op == Opcode::UnsafeCall;
            let is_load_like = inst.op.is_load();
            if is_store_like {
                if let Some(s) = last_store {
                    edge(&mut preds, &mut succs, &mut nsucc, s, i, 1);
                }
                for &l in &loads_since_store {
                    edge(&mut preds, &mut succs, &mut nsucc, l, i, 1);
                }
                last_store = Some(i);
                loads_since_store.clear();
            } else if is_load_like {
                if let Some(s) = last_store {
                    edge(&mut preds, &mut succs, &mut nsucc, s, i, 1);
                }
                loads_since_store.push(i);
            }
        }
    }
    let mut npred: Vec<usize> = preds.iter().map(|p| p.len()).collect();

    // Latency-weighted depth priority: longest path to any leaf.
    let mut prio = vec![0u64; n];
    for i in (0..n).rev() {
        let base = sched_latency(&insts[i], m);
        let succ_max = succs[i].iter().map(|&s| prio[s]).max().unwrap_or(0);
        prio[i] = base + succ_max;
    }

    // Greedy cycle-driven list scheduling.
    let mut earliest = vec![0u64; n]; // earliest issue cycle given scheduled preds
    let mut scheduled = vec![false; n];
    let mut remaining = n;
    let mut cycle: u64 = 0;
    let base_bundle = out.len() as u64;
    while remaining > 0 {
        let mut ready: Vec<usize> = (0..n)
            .filter(|&i| !scheduled[i] && npred[i] == 0 && earliest[i] <= cycle)
            .collect();
        if ready.is_empty() {
            // Jump to the next time anything becomes ready.
            cycle = (0..n)
                .filter(|&i| !scheduled[i] && npred[i] == 0)
                .map(|i| earliest[i])
                .min()
                .unwrap_or(cycle + 1)
                .max(cycle + 1);
            continue;
        }
        ready.sort_by(|&a, &b| prio[b].cmp(&prio[a]).then(a.cmp(&b)));
        let mut units = [0usize; 4];
        let caps = [m.int_units, m.fp_units, m.mem_units, m.branch_units];
        let mut bundle = Bundle::default();
        let mut picked: Vec<usize> = Vec::new();
        for i in ready {
            let u = match unit_of(insts[i].op) {
                UnitKind::Int => 0,
                UnitKind::Float => 1,
                UnitKind::Mem => 2,
                UnitKind::Branch => 3,
            };
            if units[u] < caps[u] {
                units[u] += 1;
                picked.push(i);
            }
        }
        // Keep original program order within the bundle (sequential-slot
        // semantics; all picked instructions are mutually independent).
        picked.sort_unstable();
        for &i in &picked {
            bundle.insts.push(insts[i].clone());
            scheduled[i] = true;
            remaining -= 1;
        }
        for &i in &picked {
            for &s in &succs[i] {
                npred[s] -= 1;
                let lat = preds[s]
                    .iter()
                    .filter(|(p, _)| *p == i)
                    .map(|(_, l)| *l)
                    .max()
                    .unwrap_or(1);
                earliest[s] = earliest[s].max(cycle + lat);
            }
        }
        out.push(bundle);
        cycle += 1;
    }
    let _ = base_bundle;
}

/// Schedule a function in machine-register form into a [`MachineProgram`].
/// Control instructions terminate their segment and are emitted in their own
/// bundle, preserving program order of branches.
pub fn schedule_function(func: &Function, m: &MachineConfig) -> MachineProgram {
    let mut blocks = Vec::with_capacity(func.blocks.len());
    for block in &func.blocks {
        let mut bundles: Vec<Bundle> = Vec::new();
        let mut segment: Vec<Inst> = Vec::new();
        for inst in &block.insts {
            if inst.op.is_control() {
                schedule_segment(&segment, m, &mut bundles);
                segment.clear();
                bundles.push(Bundle {
                    insts: vec![inst.clone()],
                });
            } else {
                segment.push(inst.clone());
            }
        }
        schedule_segment(&segment, m, &mut bundles);
        blocks.push(bundles);
    }
    MachineProgram {
        blocks,
        entry: func.entry.index(),
    }
}

/// [`schedule_function`] as a plan-schedulable [`Pass`]: the mandatory
/// terminal of every plan. Reads the machine-register-form function and
/// deposits the scheduled [`MachineProgram`] into [`PassCtx::code`];
/// `mutates_ir` is false, so the post-pass invariant checker (which would
/// re-check an unchanged function) is skipped.
pub struct SchedulePass;

impl Pass for SchedulePass {
    fn name(&self) -> &'static str {
        "schedule"
    }

    fn run(&self, func: &mut Function, ctx: &mut PassCtx<'_>) -> Result<(), CompileError> {
        let code = schedule_function(func, ctx.machine);
        ctx.stats.counters.static_insts = code.num_insts() as u64;
        ctx.stats.counters.static_bundles = code.num_bundles() as u64;
        ctx.code = Some(code);
        Ok(())
    }

    fn mutates_ir(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_ir::VReg;

    fn movi(d: u32, v: i64) -> Inst {
        Inst::new(Opcode::MovI).dst(VReg(d)).imm(v)
    }

    fn add(d: u32, a: u32, b: u32) -> Inst {
        Inst::new(Opcode::Add)
            .dst(VReg(d))
            .args(&[VReg(a), VReg(b)])
    }

    fn func_of(insts: Vec<Inst>) -> Function {
        let mut f = Function::new("t");
        f.blocks[0].insts = insts;
        f
    }

    #[test]
    fn bundles_independent_instructions_together() {
        let mut insts: Vec<Inst> = (0..4).map(|i| movi(4 + i, i as i64)).collect();
        insts.push(Inst::new(Opcode::Ret));
        let mp = schedule_function(&func_of(insts), &MachineConfig::table3());
        // 4 independent MovIs fit in one bundle (4 int units), then ret.
        assert_eq!(mp.blocks[0].len(), 2, "{:?}", mp.blocks[0]);
        assert_eq!(mp.blocks[0][0].insts.len(), 4);
    }

    #[test]
    fn serializes_dependent_chain() {
        let insts = vec![
            movi(4, 1),
            add(5, 4, 4),
            add(6, 5, 5),
            add(7, 6, 6),
            Inst::new(Opcode::Ret).args(&[VReg(7)]),
        ];
        let mp = schedule_function(&func_of(insts), &MachineConfig::table3());
        // Chain of 4 + ret: at least 5 bundles.
        assert!(mp.blocks[0].len() >= 5, "{}", mp.blocks[0].len());
    }

    #[test]
    fn respects_memory_unit_limit() {
        // 4 independent loads: only 2 memory units -> 2 bundles minimum.
        let mut insts = vec![movi(4, 8192)];
        for i in 0..4 {
            insts.push(
                Inst::new(Opcode::Ld(metaopt_ir::Width::B8))
                    .dst(VReg(5 + i))
                    .args(&[VReg(4)])
                    .imm(i as i64 * 8),
            );
        }
        insts.push(Inst::new(Opcode::Ret));
        let mp = schedule_function(&func_of(insts), &MachineConfig::table3());
        for bundle in &mp.blocks[0] {
            let mems = bundle
                .insts
                .iter()
                .filter(|i| unit_of(i.op) == UnitKind::Mem)
                .count();
            assert!(mems <= 2);
        }
    }

    #[test]
    fn store_load_order_preserved() {
        // st [a] = x ; y = ld [a] : the load must come strictly after.
        let insts = vec![
            movi(4, 8192),
            movi(5, 77),
            Inst::new(Opcode::St(metaopt_ir::Width::B8)).args(&[VReg(4), VReg(5)]),
            Inst::new(Opcode::Ld(metaopt_ir::Width::B8))
                .dst(VReg(6))
                .args(&[VReg(4)]),
            Inst::new(Opcode::Ret).args(&[VReg(6)]),
        ];
        let mp = schedule_function(&func_of(insts), &MachineConfig::table3());
        let mut store_bundle = None;
        let mut load_bundle = None;
        for (bi, b) in mp.blocks[0].iter().enumerate() {
            for inst in &b.insts {
                if inst.op.is_store() {
                    store_bundle = Some(bi);
                }
                if inst.op.is_load() {
                    load_bundle = Some(bi);
                }
            }
        }
        assert!(store_bundle.unwrap() < load_bundle.unwrap());
    }

    #[test]
    fn control_instructions_end_segments_in_order() {
        let mut f = Function::new("t");
        let p = f.new_vreg(RegClass::Pred);
        let b1 = f.new_block();
        f.blocks[0].insts = vec![
            Inst::new(Opcode::PMovI).dst(p).imm(1),
            Inst::new(Opcode::CBr).args(&[p]).target(b1),
            Inst::new(Opcode::Br).target(b1),
        ];
        f.blocks[1].insts = vec![Inst::new(Opcode::Ret)];
        let mp = schedule_function(&f, &MachineConfig::table3());
        // Each control inst gets its own bundle, in order.
        let b0 = &mp.blocks[0];
        assert_eq!(b0.len(), 3);
        assert_eq!(b0[1].insts[0].op, Opcode::CBr);
        assert_eq!(b0[2].insts[0].op, Opcode::Br);
        assert!(metaopt_sim::code::verify_machine(&mp, &MachineConfig::table3()).is_ok());
    }
}
