//! Counted-loop unrolling.
//!
//! Trimaran's §5.3 pipeline includes loop unrolling among the enabled
//! classic optimizations. This pass unrolls *counted* innermost loops of
//! the canonical frontend shape — a two-block loop whose header tests a
//! constant bound against a constant-initialized, constant-step induction
//! cell — by the largest factor from `{8, 4, 2}` that divides the trip
//! count exactly (so no prologue/epilogue is needed and the header test
//! stays correct when executed once per group).
//!
//! Because cross-iteration state lives in multiply-defined *cells*, body
//! replication is verbatim: each copy recomputes the induction variable
//! from the cell, so no register renaming is required. The pass is **not**
//! part of the default study pipelines (it would perturb the calibrated
//! paper dynamics); enable it with `unroll(N)` in a
//! [`PipelinePlan`](crate::plan::PipelinePlan) (CLI: `--unroll N` or
//! `--passes "unroll(2),prefetch,hyperblock,regalloc,schedule"`).

use crate::pass::{Pass, PassCtx};
use crate::CompileError;
use metaopt_ir::dom::DomTree;
use metaopt_ir::loops::LoopForest;
use metaopt_ir::{Function, Inst, Opcode};
use std::collections::HashMap;

/// Upper bound on body size (instructions) eligible for unrolling.
const MAX_BODY: usize = 64;

/// A recognized counted loop.
struct Counted {
    header: usize,
    body: usize,
    trip: i64,
}

/// The cell's unique out-of-loop initialization constant, if any: either a
/// direct `MovI cell, k` (after constant folding) or the frontend's
/// `MovI t, k; Mov cell, t` idiom.
fn init_of(func: &Function, in_loop: &dyn Fn(usize) -> bool, cell: u32) -> Option<i64> {
    // Single-def MovI constants anywhere in the function.
    let mut def_count: HashMap<u32, u32> = HashMap::new();
    let mut movi: HashMap<u32, i64> = HashMap::new();
    for b in &func.blocks {
        for inst in &b.insts {
            if let Some(d) = inst.dst {
                *def_count.entry(d.0).or_insert(0) += 1;
                if inst.op == Opcode::MovI && inst.pred.is_none() {
                    movi.insert(d.0, inst.imm);
                }
            }
        }
    }
    let const_of = |r: u32| -> Option<i64> {
        (def_count.get(&r) == Some(&1))
            .then(|| movi.get(&r).copied())
            .flatten()
    };
    let mut init = None;
    let mut outside_defs = 0;
    for (bi, b) in func.blocks.iter().enumerate() {
        for inst in &b.insts {
            if inst.dst.map(|d| d.0) != Some(cell) || in_loop(bi) {
                continue;
            }
            outside_defs += 1;
            init = match inst.op {
                Opcode::MovI if inst.pred.is_none() => Some(inst.imm),
                Opcode::Mov if inst.pred.is_none() => const_of(inst.args[0].0),
                _ => None,
            };
        }
    }
    (outside_defs == 1).then_some(init).flatten()
}

fn recognize(func: &Function, forest: &LoopForest) -> Vec<Counted> {
    let mut out = Vec::new();
    for l in &forest.loops {
        let blocks: Vec<usize> = l.blocks.iter().collect();
        if blocks.len() != 2 {
            continue;
        }
        let header = l.header.index();
        let body = *blocks.iter().find(|&&b| b != header).expect("two blocks");
        // Header shape: [..cmp p = CmpLtI(cell, N); CBr p -> body; Br exit]
        let h = &func.blocks[header].insts;
        if h.len() < 3 {
            continue;
        }
        let (cbr, br) = (&h[h.len() - 2], &h[h.len() - 1]);
        if cbr.op != Opcode::CBr
            || br.op != Opcode::Br
            || cbr.target.map(|t| t.index()) != Some(body)
        {
            continue;
        }
        let cmp = &h[h.len() - 3];
        if cmp.op != Opcode::CmpLtI || cmp.dst != Some(cbr.args[0]) || cmp.pred.is_some() {
            continue;
        }
        let cell = cmp.args[0].0;
        let bound = cmp.imm;
        // Body: straight-line, ends Br header, updates the cell by AddI step
        // exactly once (via the Mov idiom), size-bounded.
        let b = &func.blocks[body].insts;
        if b.len() > MAX_BODY || b.last().map(|i| i.op) != Some(Opcode::Br) {
            continue;
        }
        if b.iter().any(|i| i.op.is_control() && i.op != Opcode::Br) {
            continue;
        }
        let in_loop = |bi: usize| bi == header || bi == body;
        let steps = crate_step_of(func, body, cell);
        let Some(step) = steps else { continue };
        if step <= 0 {
            continue;
        }
        let Some(init) = init_of(func, &in_loop, cell) else {
            continue;
        };
        if init >= bound {
            continue;
        }
        let span = bound - init;
        if span % step != 0 {
            continue;
        }
        out.push(Counted {
            header,
            body,
            trip: span / step,
        });
    }
    out
}

/// The cell's in-body step, if it is updated exactly once as
/// `t = AddI(cell, c); Mov cell, t` (or a direct `AddI cell <- cell, c`).
fn crate_step_of(func: &Function, body: usize, cell: u32) -> Option<i64> {
    let insts = &func.blocks[body].insts;
    let mut step = None;
    let mut defs = 0;
    for inst in insts {
        if inst.dst.map(|d| d.0) == Some(cell) {
            defs += 1;
            match inst.op {
                Opcode::AddI if inst.args[0].0 == cell && inst.pred.is_none() => {
                    step = Some(inst.imm);
                }
                Opcode::Mov if inst.pred.is_none() => {
                    let src = inst.args[0].0;
                    step = insts.iter().find_map(|s| {
                        (s.dst.map(|d| d.0) == Some(src)
                            && s.op == Opcode::AddI
                            && s.args[0].0 == cell
                            && s.pred.is_none())
                        .then_some(s.imm)
                    });
                }
                _ => return None,
            }
        }
    }
    (defs == 1).then_some(step).flatten()
}

/// Unroll eligible counted loops by the largest factor in `{8, 4, 2}` that
/// divides their trip count. Returns the number of loops unrolled.
pub fn unroll_loops(func: &mut Function, max_factor: u32) -> u64 {
    let dt = DomTree::compute(func);
    let forest = LoopForest::compute(func, &dt);
    let loops = recognize(func, &forest);
    let mut unrolled = 0;
    for c in loops {
        let factor = [8i64, 4, 2]
            .into_iter()
            .filter(|f| *f <= max_factor as i64)
            .find(|f| c.trip % f == 0);
        let Some(factor) = factor else { continue };
        let body: Vec<Inst> = func.blocks[c.body].insts.clone();
        let tail = body.last().cloned().expect("non-empty body"); // Br header
        let straight = &body[..body.len() - 1];
        let mut new_insts = Vec::with_capacity(straight.len() * factor as usize + 1);
        for _ in 0..factor {
            new_insts.extend(straight.iter().cloned());
        }
        new_insts.push(tail);
        func.blocks[c.body].insts = new_insts;
        let _ = c.header;
        unrolled += 1;
    }
    unrolled
}

/// [`unroll_loops`] as a plan-schedulable [`Pass`] (`unroll(N)` in plan
/// syntax).
pub struct UnrollPass {
    /// Unrolling factor cap (≥ 2).
    pub factor: u32,
}

impl Pass for UnrollPass {
    fn name(&self) -> &'static str {
        "unroll"
    }

    fn run(&self, func: &mut Function, ctx: &mut PassCtx<'_>) -> Result<(), CompileError> {
        ctx.stats.counters.unrolled += unroll_loops(func, self.factor);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_ir::interp::{run, RunConfig};
    use metaopt_ir::verify::{verify_function, CfgForm};

    fn prepared(src: &str) -> metaopt_ir::Program {
        let prog = metaopt_lang::compile(src).unwrap();
        crate::prepare(&prog).unwrap()
    }

    const SUMLOOP: &str = r#"
        global int xs[64];
        fn main() -> int {
            let s = 0;
            for (let i = 0; i < 64; i = i + 1) { xs[i] = i * 7 % 13; }
            for (let i = 0; i < 64; i = i + 1) { s = s + xs[i] * 3; }
            return s;
        }
    "#;

    #[test]
    fn unrolls_and_preserves_semantics() {
        let mut p = prepared(SUMLOOP);
        let want = run(&p, &RunConfig::default()).unwrap().ret;
        let before = p.funcs[0].num_insts();
        let n = unroll_loops(&mut p.funcs[0], 8);
        assert!(n >= 2, "both loops are counted: {n}");
        assert!(p.funcs[0].num_insts() > before * 4, "bodies replicated");
        verify_function(&p.funcs[0], CfgForm::Canonical).unwrap();
        assert_eq!(run(&p, &RunConfig::default()).unwrap().ret, want);
    }

    #[test]
    fn unrolled_loop_executes_fewer_branches() {
        let mut p = prepared(SUMLOOP);
        let base = run(
            &p,
            &RunConfig {
                profile: true,
                ..Default::default()
            },
        )
        .unwrap()
        .profile
        .unwrap();
        let base_branches: u64 = base.funcs[0].branches.values().map(|s| s.executed).sum();
        unroll_loops(&mut p.funcs[0], 8);
        let after = run(
            &p,
            &RunConfig {
                profile: true,
                ..Default::default()
            },
        )
        .unwrap()
        .profile
        .unwrap();
        let after_branches: u64 = after.funcs[0].branches.values().map(|s| s.executed).sum();
        assert!(
            after_branches * 4 < base_branches,
            "{after_branches} vs {base_branches}"
        );
    }

    #[test]
    fn skips_non_divisible_and_data_dependent_loops() {
        let mut p = prepared(
            r#"
            fn main() -> int {
                let s = 0;
                for (let i = 0; i < 7; i = i + 1) { s = s + i; }    // trip 7: indivisible
                let n = s % 5 + 2;
                for (let j = 0; j < n; j = j + 1) { s = s + 1; }    // data-dependent bound
                while (s > 10) { s = s - 10; }                      // not counted
                return s;
            }
        "#,
        );
        let want = run(&p, &RunConfig::default()).unwrap().ret;
        // The trip-7 loop may unroll only by a divisor of 7 (none in {8,4,2}).
        let n = unroll_loops(&mut p.funcs[0], 8);
        assert_eq!(n, 0, "nothing here is safely unrollable");
        assert_eq!(run(&p, &RunConfig::default()).unwrap().ret, want);
    }

    #[test]
    fn respects_max_factor() {
        let mut p2 = prepared(SUMLOOP);
        unroll_loops(&mut p2.funcs[0], 2);
        let mut p8 = prepared(SUMLOOP);
        unroll_loops(&mut p8.funcs[0], 8);
        assert!(p8.funcs[0].num_insts() > p2.funcs[0].num_insts());
        assert_eq!(
            run(&p2, &RunConfig::default()).unwrap().ret,
            run(&p8, &RunConfig::default()).unwrap().ret
        );
    }

    #[test]
    fn loops_with_inner_control_are_skipped() {
        let mut p = prepared(
            r#"
            global int xs[16];
            fn main() -> int {
                let s = 0;
                for (let i = 0; i < 16; i = i + 1) {
                    if (xs[i] % 2 == 0) { s = s + 1; } else { s = s - 1; }
                }
                return s;
            }
        "#,
        );
        let want = run(&p, &RunConfig::default()).unwrap().ret;
        // The loop body spans multiple blocks; only the (absent) two-block
        // loops qualify.
        unroll_loops(&mut p.funcs[0], 8);
        assert_eq!(run(&p, &RunConfig::default()).unwrap().ret, want);
    }

    #[test]
    fn compiles_and_simulates_after_unrolling() {
        let mut p = prepared(SUMLOOP);
        let want = run(&p, &RunConfig::default()).unwrap().ret;
        unroll_loops(&mut p.funcs[0], 8);
        let profile = run(
            &p,
            &RunConfig {
                profile: true,
                ..Default::default()
            },
        )
        .unwrap()
        .profile
        .unwrap();
        let machine = metaopt_sim::MachineConfig::table3();
        let compiled =
            crate::compile(&p, &profile.funcs[0], &machine, &crate::Passes::default()).unwrap();
        let sim =
            metaopt_sim::simulate(&compiled.code, &machine, compiled.initial_memory(&p)).unwrap();
        assert_eq!(sim.ret, want);
    }
}
