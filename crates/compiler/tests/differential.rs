//! The pipeline's strongest correctness property, fuzzed: **any** MiniC
//! program compiled under **any** priority functions (hyperblock, regalloc,
//! prefetch), **any** legal pipeline plan, on **any** reasonable machine
//! must produce exactly the reference interpreter's result.

use metaopt_compiler::{compile, prepare, Passes, PipelinePlan};
use metaopt_ir::interp::{run, RunConfig};
use metaopt_sim::{simulate, MachineConfig};
use proptest::prelude::*;

/// A random but always-valid, always-terminating MiniC `main`.
#[derive(Debug, Clone)]
enum Stmt {
    Assign(usize, Expr),
    Store(Expr, Expr),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    For(u8, Vec<Stmt>),
}

#[derive(Debug, Clone)]
enum Expr {
    Lit(i16),
    Var(usize),
    Load(Box<Expr>),
    Bin(u8, Box<Expr>, Box<Expr>),
}

const VARS: [&str; 4] = ["a", "b", "c", "d"];

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<i16>().prop_map(Expr::Lit),
        (0usize..VARS.len()).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Load(Box::new(e))),
            (0u8..8, inner.clone(), inner).prop_map(|(op, a, b)| Expr::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    if depth == 0 {
        prop_oneof![
            ((0usize..VARS.len()), arb_expr()).prop_map(|(v, e)| Stmt::Assign(v, e)),
            (arb_expr(), arb_expr()).prop_map(|(i, v)| Stmt::Store(i, v)),
        ]
        .boxed()
    } else {
        let inner = proptest::collection::vec(arb_stmt(depth - 1), 1..4);
        prop_oneof![
            3 => ((0usize..VARS.len()), arb_expr()).prop_map(|(v, e)| Stmt::Assign(v, e)),
            2 => (arb_expr(), arb_expr()).prop_map(|(i, v)| Stmt::Store(i, v)),
            2 => (arb_expr(), inner.clone(), proptest::collection::vec(arb_stmt(depth - 1), 0..3))
                .prop_map(|(c, t, e)| Stmt::If(c, t, e)),
            1 => ((2u8..10), inner).prop_map(|(n, b)| Stmt::For(n, b)),
        ]
        .boxed()
    }
}

fn expr_src(e: &Expr) -> String {
    match e {
        Expr::Lit(v) => format!("{v}"),
        Expr::Var(v) => VARS[*v].to_string(),
        Expr::Load(ix) => format!("xs[abs({}) % 64]", expr_src(ix)),
        Expr::Bin(op, a, b) => {
            let o = ["+", "-", "*", "/", "%", "&", "|", "^"][(*op % 8) as usize];
            format!("({} {o} {})", expr_src(a), expr_src(b))
        }
    }
}

fn stmt_src(s: &Stmt, out: &mut String, loop_depth: usize, indent: usize) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Assign(v, e) => {
            out.push_str(&format!("{pad}{} = {};\n", VARS[*v], expr_src(e)));
        }
        Stmt::Store(ix, v) => {
            out.push_str(&format!(
                "{pad}xs[abs({}) % 64] = {};\n",
                expr_src(ix),
                expr_src(v)
            ));
        }
        Stmt::If(c, t, e) => {
            out.push_str(&format!("{pad}if (({}) % 2 == 0) {{\n", expr_src(c)));
            for s in t {
                stmt_src(s, out, loop_depth, indent + 1);
            }
            if e.is_empty() {
                out.push_str(&format!("{pad}}}\n"));
            } else {
                out.push_str(&format!("{pad}}} else {{\n"));
                for s in e {
                    stmt_src(s, out, loop_depth, indent + 1);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
        }
        Stmt::For(n, body) => {
            let v = format!("i{loop_depth}");
            out.push_str(&format!(
                "{pad}for (let {v} = 0; {v} < {n}; {v} = {v} + 1) {{\n"
            ));
            out.push_str(&format!("{pad}    a = a + {v};\n"));
            for s in body {
                stmt_src(s, out, loop_depth + 1, indent + 1);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
    }
}

fn program_src(stmts: &[Stmt]) -> String {
    let mut body = String::new();
    for s in stmts {
        stmt_src(s, &mut body, 0, 1);
    }
    format!(
        r#"
        global int xs[64];
        fn main() -> int {{
            let a = 1; let b = 2; let c = 3; let d = 4;
            for (let k = 0; k < 64; k = k + 1) {{ xs[k] = k * 2654435761 % 977; }}
{body}
            let h = a ^ b ^ c ^ d;
            for (let k = 0; k < 64; k = k + 1) {{ h = (h * 31 + xs[k]) % 1000003; }}
            return h;
        }}
    "#
    )
}

/// A handful of adversarial priority functions spanning the search space.
fn priorities(pick: u8) -> (f64, f64) {
    // (hyperblock bias, regalloc bias): interpreted by the closures below.
    match pick % 5 {
        0 => (1e9, 1.0),
        1 => (-1e9, -1.0),
        2 => (0.0, 0.0),
        3 => (1.0, 1e6),
        _ => (-1.0, 1e-6),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn compiled_code_matches_interpreter(
        stmts in proptest::collection::vec(arb_stmt(2), 1..6),
        pick in any::<u8>(),
        tiny_regs in any::<bool>(),
        unroll in any::<bool>(),
    ) {
        let src = program_src(&stmts);
        let prog = metaopt_lang::compile(&src)
            .unwrap_or_else(|e| panic!("generated MiniC must compile: {e}\n{src}"));
        let prepared = prepare(&prog).expect("prepares");
        let want = run(&prepared, &RunConfig::default()).expect("interprets");
        let profile = run(&prepared, &RunConfig { profile: true, ..Default::default() })
            .expect("profiles")
            .profile
            .expect("requested");

        let (hb_bias, ra_bias) = priorities(pick);
        let hb = move |r: &[f64], _: &[bool]| r[2] * 10.0 + hb_bias;
        let ra = move |r: &[f64], _: &[bool]| r[0] * ra_bias + r[2];
        let pf = |_: &[f64], b: &[bool]| b[0];
        // Fuzz the phase order too: any legal plan must stay correct.
        let plan: PipelinePlan = ["prefetch,hyperblock,regalloc,schedule",
            "hyperblock,prefetch,regalloc,schedule",
            "hyperblock,regalloc,schedule",
            "prefetch,regalloc,schedule"][(pick % 4) as usize]
            .parse()
            .unwrap();
        let plan = if unroll { plan.with_unroll(8) } else { plan };
        let passes = Passes {
            plan,
            hyperblock: &hb,
            regalloc: &ra,
            prefetch: &pf,
            prefetch_iters_ahead: 4,
            // Fuzzed pipelines double as a stress test for the inter-pass
            // invariant checker and the semantic validators: every boundary
            // of every case must be clean, and validation must never reject
            // a compile the interpreter differential accepts (the soundness
            // stance of DESIGN.md §13).
            check_ir: true,
            validate: metaopt_compiler::ValidationLevel::Full,
            tracer: metaopt_trace::Tracer::disabled(),
        };
        let mut machine = MachineConfig::table3();
        if tiny_regs {
            machine.gpr = 10;
            machine.fpr = 8;
        }
        let compiled = compile(&prepared, &profile.funcs[0], &machine, &passes)
            .expect("compiles");
        let mem = compiled.initial_memory(&prepared);
        let got = simulate(&compiled.code, &machine, mem).expect("simulates");
        prop_assert_eq!(got.ret, want.ret, "source:\n{}", src);
        // Memory images agree over the program's own address space.
        let n = prepared.memory_size();
        prop_assert_eq!(&got.memory[..n], &want.memory[..n], "memory divergence in:\n{}", src);
    }
}
