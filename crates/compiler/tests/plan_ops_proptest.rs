//! Property tests for the plan genetic operators: every plan produced by
//! mutation or crossover round-trips through the textual grammar and passes
//! [`PipelinePlan`] structural validation (terminal `regalloc,schedule`
//! pair, no duplicate passes) — the operators never panic and never yield
//! an invalid plan, from any valid starting point and any RNG seed.

use metaopt_compiler::plan_ops::{crossover_plans, mutate_plan};
use metaopt_compiler::{PassSpec, PipelinePlan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Any structurally valid plan (same space as the grammar round-trip
/// tests): optional `unroll(N)`/`prefetch`/`hyperblock` prefix in a fuzzed
/// order, then the mandatory terminal pair.
fn arb_plan() -> impl Strategy<Value = PipelinePlan> {
    let opts = proptest::collection::vec(any::<bool>(), 3);
    (opts, 2u32..=64, any::<u8>()).prop_map(|(include, factor, order)| {
        let mut steps = Vec::new();
        if include[0] {
            steps.push(PassSpec::Unroll(factor));
        }
        if include[1] {
            steps.push(PassSpec::Prefetch);
        }
        if include[2] {
            steps.push(PassSpec::Hyperblock);
        }
        if steps.len() > 1 {
            let rot = order as usize % steps.len();
            steps.rotate_left(rot);
            if order >= 128 && steps.len() > 1 {
                steps.swap(0, 1);
            }
        }
        steps.push(PassSpec::Regalloc);
        steps.push(PassSpec::Schedule);
        PipelinePlan::new(steps).expect("constructed plans are valid")
    })
}

/// A produced plan must validate and survive a print/parse round trip.
fn assert_valid(plan: &PipelinePlan) {
    plan.validate()
        .unwrap_or_else(|e| panic!("invalid plan {plan}: {e}"));
    let text = plan.to_string();
    let reparsed = PipelinePlan::parse(&text).expect("operator output parses");
    assert_eq!(&reparsed, plan, "round trip of {text}");
}

proptest! {
    #[test]
    fn mutation_chains_only_yield_valid_plans(start in arb_plan(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = start;
        for _ in 0..24 {
            plan = mutate_plan(&mut rng, &plan);
            assert_valid(&plan);
        }
    }

    #[test]
    fn crossover_only_yields_valid_plans(a in arb_plan(), b in arb_plan(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let child = crossover_plans(&mut rng, &a, &b);
            assert_valid(&child);
            // And crossing children back with a parent stays closed.
            let grandchild = crossover_plans(&mut rng, &child, &b);
            assert_valid(&grandchild);
        }
    }

    #[test]
    fn crossover_inherits_only_parental_passes(a in arb_plan(), b in arb_plan(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let child = crossover_plans(&mut rng, &a, &b);
        for s in child.steps() {
            prop_assert!(
                a.contains(s.name()) || b.contains(s.name()),
                "{} appeared from neither parent", s.name()
            );
        }
    }
}
