//! Property tests for the textual [`PipelinePlan`] syntax: printing any
//! valid plan and parsing it back is the identity, and parsing is total
//! (returns a structured error, never panics) on arbitrary input.

use metaopt_compiler::{PassSpec, PipelinePlan};
use proptest::prelude::*;

/// Any structurally valid plan: a subset of the optimization passes in any
/// order (optionally including `unroll(N)` with a fuzzed factor), followed
/// by the mandatory `regalloc,schedule` terminal pair.
fn arb_plan() -> impl Strategy<Value = PipelinePlan> {
    let opts = proptest::collection::vec(any::<bool>(), 3);
    (opts, 2u32..=64, any::<u8>()).prop_map(|(include, factor, order)| {
        let mut steps = Vec::new();
        if include[0] {
            steps.push(PassSpec::Unroll(factor));
        }
        if include[1] {
            steps.push(PassSpec::Prefetch);
        }
        if include[2] {
            steps.push(PassSpec::Hyperblock);
        }
        // A deterministic shuffle of the optimization prefix.
        if steps.len() > 1 {
            let rot = order as usize % steps.len();
            steps.rotate_left(rot);
            if order >= 128 && steps.len() > 1 {
                steps.swap(0, 1);
            }
        }
        steps.push(PassSpec::Regalloc);
        steps.push(PassSpec::Schedule);
        PipelinePlan::new(steps).expect("constructed plans are valid")
    })
}

proptest! {
    #[test]
    fn parse_print_is_identity(plan in arb_plan()) {
        let text = plan.to_string();
        let reparsed = PipelinePlan::parse(&text).expect("printed plans parse");
        prop_assert_eq!(&reparsed, &plan);
        // Printing is canonical: a second round trip changes nothing.
        prop_assert_eq!(reparsed.to_string(), text);
    }

    #[test]
    fn parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = PipelinePlan::parse(&text);
    }

    #[test]
    fn validate_agrees_with_parse(plan in arb_plan()) {
        prop_assert!(plan.validate().is_ok());
        // Dropping the terminal always invalidates.
        prop_assert!(plan.without("schedule").validate().is_err());
    }
}
