//! General-purpose mode (paper §5.4.2): evolve ONE hyperblock priority
//! function over several benchmarks with dynamic subset selection, then
//! cross-validate it on benchmarks it never saw.
//!
//! ```sh
//! cargo run --release -p metaopt --example general_purpose_dss
//! ```

use metaopt::{experiment, study};
use metaopt_gp::GpParams;

fn main() {
    let cfg = study::hyperblock();
    let train: Vec<_> = ["rawdaudio", "rawcaudio", "g721encode", "g721decode"]
        .iter()
        .map(|n| metaopt_suite::by_name(n).expect("registered"))
        .collect();
    let test: Vec<_> = ["unepic", "djpeg", "mpeg2dec"]
        .iter()
        .map(|n| metaopt_suite::by_name(n).expect("registered"))
        .collect();

    let mut params = GpParams::quick();
    params.population = 24;
    params.generations = 8;
    params.subset_size = Some(2); // dynamic subset selection

    println!(
        "training one general-purpose priority function on {} benchmarks...",
        train.len()
    );
    let r = experiment::train_general(&cfg, &train, &params);
    for (name, t, n) in &r.per_bench {
        println!("  {name:<12} train {t:.3}  novel {n:.3}");
    }
    println!(
        "  mean: train {:.3} novel {:.3}",
        r.mean_train, r.mean_novel
    );

    println!("cross-validating on unseen benchmarks...");
    let cv = experiment::cross_validate(&cfg, &r.best, &test);
    for (name, t, n) in &cv.per_bench {
        println!("  {name:<12} train-data {t:.3}  novel-data {n:.3}");
    }
    println!("  mean: {:.3}", cv.mean);
}
