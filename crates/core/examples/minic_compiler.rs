//! Drive the whole compiler pipeline by hand on a MiniC program: frontend,
//! inlining, profiling, if-conversion, register allocation, scheduling, and
//! cycle-level simulation — with the shipped baseline heuristics.
//!
//! ```sh
//! cargo run --release -p metaopt --example minic_compiler
//! ```

use metaopt_compiler::{compile, prepare, Passes};
use metaopt_ir::interp::{run, RunConfig};
use metaopt_sim::{simulate, MachineConfig};

const SRC: &str = r#"
    global int xs[256];
    global int dataseed = 42;
    fn step(v: int) -> int {
        if (v % 2 == 0) { return v / 2; }
        return 3 * v + 1;
    }
    fn main() -> int {
        let total = 0;
        for (let i = 0; i < 256; i = i + 1) { xs[i] = (i * 2654435761 + dataseed) % 1000; }
        for (let i = 0; i < 256; i = i + 1) {
            let v = xs[i];
            let c = 0;
            while (v > 1) { v = step(v); c = c + 1; }
            total = total + c;
        }
        return total;
    }
"#;

fn main() {
    let prog = metaopt_lang::compile(SRC).expect("MiniC compiles");
    println!(
        "frontend: {} functions, {} instructions",
        prog.funcs.len(),
        prog.num_insts()
    );

    let prepared = prepare(&prog).expect("inlines");
    println!(
        "after inlining + cleanup: {} instructions",
        prepared.num_insts()
    );

    let reference = run(&prepared, &RunConfig::default()).expect("interprets");
    let profile = run(
        &prepared,
        &RunConfig {
            profile: true,
            ..Default::default()
        },
    )
    .expect("profiles")
    .profile
    .expect("requested");
    println!(
        "interpreter: result={} ({} dynamic instructions)",
        reference.ret, reference.steps
    );

    let machine = MachineConfig::table3();
    let compiled =
        compile(&prepared, &profile.funcs[0], &machine, &Passes::baseline()).expect("compiles");
    println!(
        "compiled: {} insts in {} bundles; {} hyperblocks, {} spills, {} prefetches",
        compiled.stats.counters.static_insts,
        compiled.stats.counters.static_bundles,
        compiled.stats.counters.hyperblocks,
        compiled.stats.counters.spills,
        compiled.stats.counters.prefetches
    );
    println!("per-pass timing:\n{}", compiled.stats.per_pass_table());

    let result =
        simulate(&compiled.code, &machine, compiled.initial_memory(&prepared)).expect("simulates");
    assert_eq!(result.ret, reference.ret, "differential check");
    println!(
        "simulated: result={} in {} cycles (IPC {:.2}, {} mispredicts, {} L1 misses)",
        result.ret,
        result.cycles,
        result.ipc(),
        result.mispredicts,
        result.cache.l1_misses
    );
}
