//! The prefetching case study (paper §7): Boolean confidence functions on a
//! noisy "real machine". Compares the overzealous ORC-like baseline, never
//! prefetching, and an evolved confidence function.
//!
//! ```sh
//! cargo run --release -p metaopt --example prefetch_tuning
//! ```

use metaopt::{experiment, study, PreparedBench};
use metaopt_gp::parse::parse_expr;
use metaopt_gp::GpParams;
use metaopt_suite::DataSet;

fn main() {
    let cfg = study::prefetch();
    let bench = metaopt_suite::by_name("101.tomcatv").expect("registered");

    let pb = PreparedBench::new(&cfg, &bench);
    let never = parse_expr("(bconst false)", &cfg.features).expect("parses");
    let always = parse_expr("(bconst true)", &cfg.features).expect("parses");
    println!("101.tomcatv under different prefetch policies (train data):");
    println!(
        "  ORC-like baseline: {:>9} cycles (1.000x)",
        pb.baseline_cycles(DataSet::Train)
    );
    for (name, e) in [("never prefetch", &never), ("always prefetch", &always)] {
        println!(
            "  {name:<17} {:>9} cycles ({:.3}x)",
            pb.cycles_with(&cfg, e, DataSet::Train),
            pb.speedup(&cfg, e, DataSet::Train)
        );
    }

    let mut params = GpParams::quick();
    params.population = 24;
    params.generations = 6;
    let r = experiment::specialize(&cfg, &bench, &params);
    println!(
        "  evolved           ({:.3}x) -> {}",
        r.train_speedup, r.best
    );
    println!("\nThe paper's finding reproduces: the shipped heuristic overzealously");
    println!("prefetches; evolved functions rarely prefetch on these kernels.");
}
