//! Quickstart: evolve an application-specific hyperblock priority function
//! for one benchmark and print what Meta Optimization found.
//!
//! ```sh
//! cargo run --release -p metaopt --example quickstart
//! ```

use metaopt::{experiment, study};
use metaopt_gp::expr::display_named;
use metaopt_gp::GpParams;

fn main() {
    // 1. Pick a case study: the hyperblock-formation priority function
    //    (paper §5), on the Table 3 EPIC machine.
    let cfg = study::hyperblock();

    // 2. Pick a benchmark from the suite (paper Table 5).
    let bench = metaopt_suite::by_name("rawdaudio").expect("in the suite");

    // 3. Evolve. `GpParams::paper()` is the paper's Table 2 configuration;
    //    `quick()` is laptop-scale.
    let mut params = GpParams::quick();
    params.generations = 10;
    params.population = 30;
    let result = experiment::specialize(&cfg, &bench, &params);

    println!("benchmark:       {}", result.name);
    println!(
        "train speedup:   {:.3}x over the shipped Eq. 1 heuristic",
        result.train_speedup
    );
    println!("novel-data:      {:.3}x", result.novel_speedup);
    println!(
        "evaluations:     {} compile+simulate runs",
        result.evaluations
    );
    println!("evolved priority function:");
    println!("  {}", display_named(&result.best, &cfg.features));
}
