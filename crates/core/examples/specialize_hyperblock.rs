//! Per-benchmark specialization across several benchmarks, with the
//! evolution trace — a compact version of the paper's Figs. 4 and 5.
//!
//! ```sh
//! cargo run --release -p metaopt --example specialize_hyperblock [bench...]
//! ```

use metaopt::{experiment, study};
use metaopt_gp::GpParams;

fn main() {
    let cfg = study::hyperblock();
    let names: Vec<String> = {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.is_empty() {
            vec!["rawdaudio".into(), "g721decode".into()]
        } else {
            args
        }
    };
    let mut params = GpParams::quick();
    params.population = 24;
    params.generations = 8;
    for name in names {
        let Some(b) = metaopt_suite::by_name(&name) else {
            eprintln!("unknown benchmark {name} (see `table5` for the list)");
            continue;
        };
        let r = experiment::specialize(&cfg, &b, &params);
        println!(
            "{name}: train {:.3}x novel {:.3}x",
            r.train_speedup, r.novel_speedup
        );
        print!("  fitness/gen:");
        for g in &r.log {
            print!(" {:.3}", g.best_fitness);
        }
        println!("\n  best: {}", r.best);
    }
}
