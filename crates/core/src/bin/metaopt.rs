//! `metaopt` — command-line interface to the Meta Optimization system.
//!
//! ```text
//! metaopt list                                  list benchmarks
//! metaopt specialize <study> <benchmark>        evolve for one benchmark
//! metaopt train <study>                         evolve a general-purpose fn (DSS)
//! metaopt crossval <study> <sexpr-file>         apply a saved fn to the test set
//! metaopt compile <study> <benchmark> <sexpr>   compile+simulate with a given fn
//! metaopt ablate <study> <benchmark> [plan ...] sweep pipeline plans, cycles per plan
//! metaopt check <study> [benchmark]             semantically validate baseline compiles
//! ```
//!
//! `<study>` is `hyperblock`, `regalloc`, or `prefetch`. GP scale options:
//! `--pop N`, `--gens N`, `--seed N`, `--threads N`. `--check-ir` runs the
//! `metaopt-analysis` invariant checker at every pass boundary of every
//! compilation (on by default when built with the `check-ir` feature).
//! `--validate off|fast|full` turns on semantic validation: per-pass
//! translation validators at `fast`, plus abstract interpretation of the
//! post-pass IR at `full`. `check` sweeps every suite kernel (or one
//! benchmark) through the study plan plus the standard ablation plans at
//! `full` validation and fails on any error-severity finding; `--json`
//! emits the diagnostics as a machine-readable report.
//!
//! Pipeline plans: `--passes <plan>` replaces the study's pass pipeline
//! with a textual plan such as `unroll(2),prefetch,hyperblock,regalloc,schedule`,
//! and `--unroll <N>` prepends loop unrolling to whatever plan is active.
//! `ablate` sweeps a set of plans (the built-in ablation set when none are
//! given) over one benchmark and prints a cycles-per-plan table (or, with
//! `--json`, a machine-readable cycles/size/compile-wall report); `compile`
//! prints per-pass wall time and counter deltas.
//!
//! Simulator tiers: `--sim-tier fast|reference` picks the execution
//! backend every evaluation simulates on — the pre-decoded bytecode tier
//! (the default) or the reference cycle-level interpreter. Both produce
//! bit-identical results by contract, so the flag only changes throughput;
//! caches and checkpoints written under one tier are valid under the other.
//!
//! Co-evolution: `specialize <study> <bench> --co-evolve` evolves joint
//! `(pipeline plan, priority function)` genomes under multi-objective
//! NSGA-II selection over (cycles, code size, compile cost) and prints the
//! final Pareto front plus the cycle-minimal champion. `--objectives`
//! restricts selection to a subset, e.g. `--objectives cycles,size`.
//! Co-evolved runs checkpoint/resume and cache like scalar runs (the
//! formats are fingerprint-separated) and stay bit-identical across
//! `--threads` settings.
//!
//! Long evolution runs can be made restartable: `--checkpoint <path>`
//! writes a checkpoint after every completed generation, and
//! `--resume <path>` continues a run from one (the GP parameters must
//! match; `--gens` may be raised to extend the run). A resumed run
//! reproduces the uninterrupted run exactly.
//!
//! `--eval-cache <path>` adds a crash-safe persistent fitness cache:
//! every successful score is appended as it is computed, and a rerun (or
//! resume) under the same configuration answers those evaluations from
//! disk — the run prints its warm-hit count. Corrupt or foreign cache
//! files are recovered or ignored, never fatal. `--retries N` bounds how
//! many times a transiently failing evaluation (timeout) is retried
//! before quarantine (default 2).
//!
//! Every subcommand accepts `--trace-out <path>`: structured run telemetry
//! (the `run-trace.v1` JSONL schema — evolution generations, uncached
//! evaluations, compiler passes, simulations, checkpoints) streams to the
//! file, and `metaopt trace-report <path>` renders it as throughput /
//! cache-hit / slowest-pass / quarantine tables. Runs without `--trace-out`
//! are bit-identical to runs of a build without tracing.
//!
//! Live observability: `--trace-out` (or `--metrics-addr`) also enables the
//! in-process metrics registry — counters, gauges, and log2-bucket latency
//! histograms updated on the hot path with relaxed atomics. `metaopt top
//! <trace.jsonl> --follow` tails a running trace and renders a live status
//! view (generation progress, eval throughput, latency quantiles, worker
//! pool health). `--metrics-addr 127.0.0.1:9184` additionally serves the
//! registry as Prometheus text exposition on `GET /metrics`.

use metaopt::experiment::{ExperimentError, RunControl};
use metaopt::{experiment, study, PreparedBench, StudyConfig};
use metaopt_gp::expr::display_named;
use metaopt_gp::{GpParams, QuarantineRecord};
use metaopt_trace::{json::Value, Tracer};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: metaopt <command> [args]\n\
         \n\
         commands:\n\
           list                                 list the benchmark suite\n\
           specialize <study> <benchmark>       evolve a specialized priority fn\n\
           train <study>                        evolve a general-purpose fn with DSS\n\
           crossval <study> <sexpr-file>        cross-validate a saved priority fn\n\
           compile <study> <benchmark> <sexpr>  compile+simulate with a priority fn\n\
           ablate <study> <benchmark> [plan ..] sweep pipeline plans, report cycles\n\
           check <study> [benchmark]            semantically validate baseline compiles\n\
           trace-report <trace.jsonl>           summarize a --trace-out file\n\
           top <trace.jsonl> [--follow]         live status view of a (running) trace\n\
         \n\
         studies: hyperblock | regalloc | prefetch\n\
         options: --pop N --gens N --seed N --threads N --check-ir\n\
                  --validate off|fast|full --json\n\
                  --passes <plan> --unroll <N> --sim-tier fast|reference\n\
                  --co-evolve (specialize: evolve (plan, expr) genomes, NSGA-II)\n\
                  --objectives cycles,size,compile (co-evolve selection mask)\n\
                  --checkpoint <path> --resume <path> --trace-out <path>\n\
                  --eval-cache <path> (persistent fitness cache) --retries N\n\
                  --bench-json <path> (trace-report: write throughput digest)\n\
                  --metrics-addr HOST:PORT (serve Prometheus /metrics)\n\
                  --follow (top: keep tailing until the run ends)\n\
         plans:   comma-separated passes ending in regalloc,schedule,\n\
                  e.g. unroll(2),prefetch,hyperblock,regalloc,schedule"
    );
    ExitCode::FAILURE
}

fn study_by_name(name: &str) -> Option<StudyConfig> {
    match name {
        "hyperblock" => Some(study::hyperblock()),
        "regalloc" => Some(study::regalloc()),
        "prefetch" => Some(study::prefetch()),
        _ => None,
    }
}

fn training_set(cfg: &StudyConfig) -> Vec<metaopt_suite::Benchmark> {
    match cfg.kind {
        metaopt::StudyKind::Hyperblock => metaopt_suite::hyperblock_training_set(),
        metaopt::StudyKind::Regalloc => metaopt_suite::regalloc_training_set(),
        metaopt::StudyKind::Prefetch => metaopt_suite::prefetch_training_set(),
    }
}

fn test_set(cfg: &StudyConfig) -> Vec<metaopt_suite::Benchmark> {
    match cfg.kind {
        metaopt::StudyKind::Hyperblock => metaopt_suite::hyperblock_test_set(),
        metaopt::StudyKind::Regalloc => metaopt_suite::regalloc_test_set(),
        metaopt::StudyKind::Prefetch => metaopt_suite::prefetch_test_set(),
    }
}

struct Options {
    positional: Vec<String>,
    params: GpParams,
    check_ir: bool,
    validate: metaopt_compiler::ValidationLevel,
    json: bool,
    control: RunControl,
    passes: Option<metaopt_compiler::PipelinePlan>,
    unroll: Option<u32>,
    sim_tier: metaopt_sim::SimTier,
    co_evolve: bool,
    objectives: [bool; metaopt_gp::pareto::NUM_OBJECTIVES],
    trace_out: Option<std::path::PathBuf>,
    bench_json: Option<std::path::PathBuf>,
    metrics_addr: Option<String>,
    follow: bool,
}

fn parse_args() -> Option<Options> {
    let mut params = GpParams::quick();
    let mut positional = Vec::new();
    let mut check_ir = metaopt_compiler::CHECK_IR_DEFAULT;
    let mut validate = metaopt_compiler::ValidationLevel::Off;
    let mut json = false;
    let mut control = RunControl::default();
    let mut passes = None;
    let mut unroll = None;
    let mut sim_tier = metaopt_sim::SimTier::default();
    let mut co_evolve = false;
    let mut objectives = [true; metaopt_gp::pareto::NUM_OBJECTIVES];
    let mut trace_out = None;
    let mut bench_json = None;
    let mut metrics_addr = None;
    let mut follow = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--pop" => params.population = args.next()?.parse().ok()?,
            "--gens" => params.generations = args.next()?.parse().ok()?,
            "--seed" => params.seed = args.next()?.parse().ok()?,
            "--threads" => params.threads = args.next()?.parse().ok()?,
            "--check-ir" => check_ir = true,
            "--validate" => match metaopt_compiler::ValidationLevel::parse(&args.next()?) {
                Some(level) => validate = level,
                None => {
                    eprintln!("--validate: expected off, fast, or full");
                    return None;
                }
            },
            "--json" => json = true,
            "--passes" => match args.next()?.parse() {
                Ok(plan) => passes = Some(plan),
                Err(e) => {
                    eprintln!("--passes: {e}");
                    return None;
                }
            },
            "--unroll" => unroll = Some(args.next()?.parse().ok()?),
            "--sim-tier" => match args.next()?.parse() {
                Ok(tier) => sim_tier = tier,
                Err(e) => {
                    eprintln!("--sim-tier: {e}");
                    return None;
                }
            },
            "--co-evolve" => co_evolve = true,
            "--objectives" => match metaopt_gp::coevo::parse_mask(&args.next()?) {
                Some(mask) => objectives = mask,
                None => {
                    eprintln!(
                        "--objectives: expected a non-empty comma-separated subset of {}",
                        metaopt_gp::pareto::OBJECTIVE_NAMES.join(",")
                    );
                    return None;
                }
            },
            "--checkpoint" => control.checkpoint = Some(args.next()?.into()),
            "--resume" => control.resume = Some(args.next()?.into()),
            "--eval-cache" => control.eval_cache = Some(args.next()?.into()),
            "--retries" => params.retries = args.next()?.parse().ok()?,
            "--trace-out" => trace_out = Some(args.next()?.into()),
            "--bench-json" => bench_json = Some(args.next()?.into()),
            "--metrics-addr" => metrics_addr = Some(args.next()?),
            "--follow" => follow = true,
            _ => positional.push(a),
        }
    }
    Some(Options {
        positional,
        params,
        check_ir,
        validate,
        json,
        control,
        passes,
        unroll,
        sim_tier,
        co_evolve,
        objectives,
        trace_out,
        bench_json,
        metrics_addr,
        follow,
    })
}

impl Options {
    /// `cfg` with every global override applied: `--check-ir`,
    /// `--validate`, `--passes`, `--unroll`, `--sim-tier`.
    fn configure(&self, cfg: StudyConfig) -> StudyConfig {
        let mut cfg = cfg
            .with_check_ir(self.check_ir)
            .with_validate(self.validate)
            .with_sim_tier(self.sim_tier);
        if let Some(plan) = &self.passes {
            cfg = cfg.with_plan(plan.clone());
        }
        if let Some(factor) = self.unroll {
            cfg = cfg.with_unroll(factor);
        }
        cfg
    }
}

/// Annotate an evolved winner with its genome lints (warnings on the raw
/// genome — dead branches, foldable subtrees, shadowed divisions — plus
/// which features it never reads).
fn print_lints(best: &metaopt_gp::Expr, cfg: &StudyConfig) {
    for l in metaopt_gp::lint::lint(best, cfg.genome_kind, &cfg.features) {
        println!("  lint {l}");
    }
}

/// Summarize the quarantine ledger: failure counts per error class, plus
/// the first few records for diagnosis.
fn print_quarantine(quarantined: &[QuarantineRecord], evaluations: u64, successes: u64) {
    if quarantined.is_empty() {
        return;
    }
    let mut by_kind: Vec<(&str, usize)> = Vec::new();
    for r in quarantined {
        let label = r.error.kind.label();
        match by_kind.iter_mut().find(|(k, _)| *k == label) {
            Some((_, n)) => *n += 1,
            None => by_kind.push((label, 1)),
        }
    }
    let classes: Vec<String> = by_kind.iter().map(|(k, n)| format!("{k} x{n}")).collect();
    println!(
        "quarantine: {} genome-case failures ({} of {} evaluations) [{}]",
        quarantined.len(),
        evaluations - successes,
        evaluations,
        classes.join(", ")
    );
    const SHOW: usize = 5;
    for r in quarantined.iter().take(SHOW) {
        println!("  {} case {}: {}", r.genome, r.case, r.error);
    }
    if quarantined.len() > SHOW {
        println!("  ... and {} more", quarantined.len() - SHOW);
    }
}

/// One greppable line for scripts and CI: how many evaluations the
/// persistent fitness cache answered. Printed only when `--eval-cache`
/// was given, so default output is unchanged.
fn print_warm_hits(control: &RunControl, warm_hits: u64) {
    if control.eval_cache.is_some() {
        println!("eval cache warm hits: {warm_hits}");
    }
}

fn report_error(e: &ExperimentError) -> ExitCode {
    eprintln!("error: {e}");
    ExitCode::FAILURE
}

/// `metaopt specialize <study> <bench> --co-evolve`: joint (plan, expr)
/// evolution with Pareto-rank selection. Prints the final front, the
/// hypervolume proxy, and the conventional champion report (the
/// cycle-minimal front point against the study's own baseline).
fn co_evolve_command(
    opts: &Options,
    cfg: &StudyConfig,
    bench: &metaopt_suite::Benchmark,
    control: &RunControl,
) -> ExitCode {
    let r = match experiment::co_evolve_controlled(
        cfg,
        bench,
        &opts.params,
        opts.objectives,
        control,
    ) {
        Ok(r) => r,
        Err(e) => return report_error(&e),
    };
    println!(
        "pareto front: {} point(s) on ({}), hypervolume {}",
        r.front.len(),
        metaopt_gp::coevo::mask_label(&opts.objectives),
        r.hypervolume
    );
    print!("{}", r.front_table());
    match (&r.best_plan, &r.best) {
        (Some(plan), Some(best)) => {
            println!("champion plan: {plan}");
            println!("train speedup: {:.3}", r.train_speedup);
            println!("novel speedup: {:.3}", r.novel_speedup);
            println!(
                "evolved: {}",
                display_named(&metaopt_gp::simplify::simplify(best), &cfg.features)
            );
            println!("raw (re-parseable): {}", best.key());
            print_lints(best, cfg);
        }
        _ => println!("no champion: every genome in the final population failed"),
    }
    print_quarantine(&r.quarantined, r.evaluations, r.successes);
    print_warm_hits(control, r.warm_hits);
    ExitCode::SUCCESS
}

/// `metaopt top <trace.jsonl> [--follow]` — render a live status view of a
/// trace. Without `--follow` it reads the file once and prints one frame;
/// with it, the file is tailed (partial trailing lines are buffered until
/// their newline arrives) and the screen repainted until `run-end` appears.
fn top_command(path: &str, follow: bool) -> ExitCode {
    use metaopt_trace::live::LiveStatus;
    use std::io::{Read as _, Seek as _};

    let mut status = LiveStatus::new();
    let mut offset = 0u64;
    let mut partial = String::new();
    loop {
        let mut file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let len = file.metadata().map(|m| m.len()).unwrap_or(0);
        if len < offset {
            // Truncated underneath us (a fresh run reusing the path):
            // start over rather than resuming mid-file.
            status = LiveStatus::new();
            offset = 0;
            partial.clear();
        }
        if len > offset {
            if file.seek(std::io::SeekFrom::Start(offset)).is_err() {
                eprintln!("cannot seek {path}");
                return ExitCode::FAILURE;
            }
            let mut chunk = String::new();
            match file.take(len - offset).read_to_string(&mut chunk) {
                Ok(n) => offset += n as u64,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            partial.push_str(&chunk);
            while let Some(nl) = partial.find('\n') {
                let line: String = partial.drain(..=nl).collect();
                status.push_line(line.trim_end());
            }
        }
        if follow {
            // Repaint in place: clear screen, home the cursor.
            print!("\x1b[2J\x1b[H{}", status.render());
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            if status.finished() {
                return ExitCode::SUCCESS;
            }
            std::thread::sleep(std::time::Duration::from_millis(250));
        } else {
            // One-shot: flush any unterminated final line, print one frame.
            if !partial.is_empty() {
                status.push_line(partial.trim_end());
            }
            print!("{}", status.render());
            return ExitCode::SUCCESS;
        }
    }
}

fn main() -> ExitCode {
    let Some(opts) = parse_args() else {
        return usage();
    };
    let mut tracer = match &opts.trace_out {
        Some(path) => match Tracer::to_file(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot create trace file {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => Tracer::disabled(),
    };
    // The metrics registry rides on the tracer; `--metrics-addr` alone is
    // enough to enable it (histograms fill even without a trace sink).
    let mut _metrics_server = None;
    if opts.trace_out.is_some() || opts.metrics_addr.is_some() {
        let registry = metaopt_trace::metrics::MetricsRegistry::new();
        if let Some(addr) = &opts.metrics_addr {
            match metaopt_trace::serve::serve(addr.as_str(), registry.clone()) {
                Ok(server) => {
                    eprintln!(
                        "serving Prometheus metrics on http://{}/metrics",
                        server.local_addr()
                    );
                    _metrics_server = Some(server);
                }
                Err(e) => {
                    eprintln!("cannot serve metrics on {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        tracer = tracer.with_metrics(registry);
    }
    let command = opts.positional.join(" ");
    let run_span = tracer.begin();
    if tracer.enabled() {
        tracer.emit("run-start", [("command", Value::str(command.as_str()))]);
    }
    let code = run(&opts, &tracer);
    if tracer.enabled() {
        tracer.emit(
            "run-end",
            [
                ("command", Value::str(command.as_str())),
                ("dur_ns", Value::UInt(run_span.dur_ns())),
            ],
        );
        tracer.flush();
    }
    code
}

fn run(opts: &Options, tracer: &Tracer) -> ExitCode {
    let mut control = opts.control.clone();
    control.tracer = tracer.clone();
    let pos: Vec<&str> = opts.positional.iter().map(|s| s.as_str()).collect();
    match pos.as_slice() {
        ["list"] => {
            for b in metaopt_suite::all_benchmarks() {
                println!("{:<14} {:<12} {}", b.name, b.suite, b.description);
            }
            ExitCode::SUCCESS
        }
        ["specialize", study_name, bench_name] => {
            let Some(cfg) = study_by_name(study_name) else {
                return usage();
            };
            let cfg = opts.configure(cfg);
            let Some(bench) = metaopt_suite::by_name(bench_name) else {
                eprintln!("unknown benchmark {bench_name} (try `metaopt list`)");
                return ExitCode::FAILURE;
            };
            if opts.co_evolve {
                return co_evolve_command(opts, &cfg, &bench, &control);
            }
            let r = match experiment::specialize_controlled(&cfg, &bench, &opts.params, &control) {
                Ok(r) => r,
                Err(e) => return report_error(&e),
            };
            println!("train speedup: {:.3}", r.train_speedup);
            println!("novel speedup: {:.3}", r.novel_speedup);
            println!(
                "evolved: {}",
                display_named(&metaopt_gp::simplify::simplify(&r.best), &cfg.features)
            );
            println!("raw (re-parseable): {}", r.best.key());
            print_lints(&r.best, &cfg);
            print_quarantine(&r.quarantined, r.evaluations, r.successes);
            print_warm_hits(&control, r.warm_hits);
            ExitCode::SUCCESS
        }
        ["train", study_name] => {
            let Some(cfg) = study_by_name(study_name) else {
                return usage();
            };
            let cfg = opts.configure(cfg);
            let r = match experiment::train_general_controlled(
                &cfg,
                &training_set(&cfg),
                &opts.params,
                &control,
            ) {
                Ok(r) => r,
                Err(e) => return report_error(&e),
            };
            for (name, t, n) in &r.per_bench {
                println!("{name:<14} train {t:.3}  novel {n:.3}");
            }
            println!("mean: train {:.3} novel {:.3}", r.mean_train, r.mean_novel);
            println!(
                "winner: {}",
                display_named(&metaopt_gp::simplify::simplify(&r.best), &cfg.features)
            );
            println!("raw (re-parseable): {}", r.best.key());
            print_lints(&r.best, &cfg);
            print_quarantine(&r.quarantined, r.evaluations, r.successes);
            print_warm_hits(&control, r.warm_hits);
            ExitCode::SUCCESS
        }
        ["crossval", study_name, path] => {
            let Some(cfg) = study_by_name(study_name) else {
                return usage();
            };
            let cfg = opts.configure(cfg);
            let Ok(text) = std::fs::read_to_string(path) else {
                eprintln!("cannot read {path}");
                return ExitCode::FAILURE;
            };
            let expr = match metaopt_gp::parse::parse_expr(text.trim(), &cfg.features) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let cv = match experiment::try_cross_validate(&cfg, &expr, &test_set(&cfg)) {
                Ok(cv) => cv,
                Err(e) => return report_error(&e),
            };
            for (name, t, n) in &cv.per_bench {
                println!("{name:<14} train-data {t:.3}  novel-data {n:.3}");
            }
            println!("mean: {:.3}", cv.mean);
            ExitCode::SUCCESS
        }
        ["compile", study_name, bench_name, sexpr] => {
            let Some(cfg) = study_by_name(study_name) else {
                return usage();
            };
            let cfg = opts.configure(cfg);
            let Some(bench) = metaopt_suite::by_name(bench_name) else {
                eprintln!("unknown benchmark {bench_name}");
                return ExitCode::FAILURE;
            };
            let expr = match metaopt_gp::parse::parse_expr(sexpr, &cfg.features) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("cannot parse priority function: {e}");
                    eprintln!("features: {}", cfg.features);
                    return ExitCode::FAILURE;
                }
            };
            let pb = match PreparedBench::try_new(&cfg, &bench) {
                Ok(pb) => pb,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Per-pass instrumentation of this compilation: the priority
            // function in the study's slot, baselines elsewhere.
            let pri = study::ExprPriority(&expr);
            let mut passes = cfg.passes_with(&pri);
            passes.tracer = tracer.clone();
            match metaopt_compiler::compile(&pb.prepared, &pb.profile, &cfg.machine, &passes) {
                Ok(compiled) => {
                    println!("plan: {}", cfg.plan);
                    println!("{}", compiled.stats.per_pass_table());
                }
                Err(e) => {
                    eprintln!("compilation failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            for ds in [metaopt_suite::DataSet::Train, metaopt_suite::DataSet::Novel] {
                match pb.try_cycles_traced(&cfg, &expr, ds, tracer) {
                    Ok(cycles) => println!(
                        "{ds:?}: {} cycles (baseline {}, speedup {:.3})",
                        cycles,
                        pb.baseline_cycles(ds),
                        pb.baseline_cycles(ds) as f64 / cycles as f64
                    ),
                    Err(e) => {
                        eprintln!("{ds:?}: evaluation failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        ["ablate", study_name, bench_name, plan_args @ ..] => {
            let Some(cfg) = study_by_name(study_name) else {
                return usage();
            };
            let cfg = opts.configure(cfg);
            let Some(bench) = metaopt_suite::by_name(bench_name) else {
                eprintln!("unknown benchmark {bench_name} (try `metaopt list`)");
                return ExitCode::FAILURE;
            };
            let plans = if plan_args.is_empty() {
                experiment::default_ablation_plans()
            } else {
                let mut plans = Vec::new();
                for text in plan_args {
                    match text.parse::<metaopt_compiler::PipelinePlan>() {
                        Ok(p) => plans.push(p),
                        Err(e) => {
                            eprintln!("bad plan {text}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                plans
            };
            let r = match experiment::try_ablate_traced(&cfg, &bench, &plans, tracer) {
                Ok(r) => r,
                Err(e) => return report_error(&e),
            };
            if opts.json {
                println!("{}", r.json(study_name));
            } else {
                println!("{}: cycles per pipeline plan (train data)", r.bench);
                print!("{}", r.table());
            }
            ExitCode::SUCCESS
        }
        ["check", study_name, bench_args @ ..] => {
            let Some(cfg) = study_by_name(study_name) else {
                return usage();
            };
            let cfg = opts.configure(cfg);
            // `check` exists to validate; without an explicit level it runs
            // the whole battery.
            let level = if opts.validate == metaopt_compiler::ValidationLevel::Off {
                metaopt_compiler::ValidationLevel::Full
            } else {
                opts.validate
            };
            let benches = match bench_args {
                [] => metaopt_suite::all_benchmarks(),
                [name] => match metaopt_suite::by_name(name) {
                    Some(b) => vec![b],
                    None => {
                        eprintln!("unknown benchmark {name} (try `metaopt list`)");
                        return ExitCode::FAILURE;
                    }
                },
                _ => return usage(),
            };
            // The study's own plan plus the standard ablation set, deduped.
            let mut plans = vec![cfg.plan.clone()];
            for p in experiment::default_ablation_plans() {
                if plans.iter().all(|q| q.to_string() != p.to_string()) {
                    plans.push(p);
                }
            }
            let mut failures = 0usize;
            let mut compiles = 0usize;
            let mut results = Vec::new();
            for bench in &benches {
                let pb = match PreparedBench::try_new(&cfg, bench) {
                    Ok(pb) => pb,
                    Err(e) => {
                        eprintln!("error: {}: {e}", bench.name);
                        return ExitCode::FAILURE;
                    }
                };
                for plan in &plans {
                    let passes = metaopt_compiler::Passes {
                        plan: plan.clone(),
                        validate: level,
                        tracer: tracer.clone(),
                        ..cfg.baseline_passes()
                    };
                    compiles += 1;
                    let (ok, diags) = match metaopt_compiler::compile(
                        &pb.prepared,
                        &pb.profile,
                        &cfg.machine,
                        &passes,
                    ) {
                        Ok(compiled) => (true, compiled.validation),
                        Err(e) => {
                            failures += 1;
                            (false, e.diagnostics)
                        }
                    };
                    if opts.json {
                        results.push(format!(
                            "{{\"bench\":\"{}\",\"plan\":\"{plan}\",\"ok\":{ok},\"diagnostics\":{}}}",
                            bench.name,
                            metaopt_analysis::render_json(&diags)
                        ));
                    } else if !ok {
                        let blame = metaopt_analysis::first_error(&diags)
                            .map_or_else(String::new, |d| format!(": {}", d.render()));
                        println!("FAIL {:<14} {plan}{blame}", bench.name);
                    } else if !diags.is_empty() {
                        println!("warn {:<14} {plan}: {} finding(s)", bench.name, diags.len());
                    }
                }
            }
            if opts.json {
                println!(
                    "{{\"study\":\"{study_name}\",\"level\":\"{level}\",\"compiles\":{compiles},\
                     \"failures\":{failures},\"results\":[{}]}}",
                    results.join(",")
                );
            } else {
                println!(
                    "check {study_name} ({level}): {} benchmark(s) x {} plan(s), {} compile(s), {} validation failure(s)",
                    benches.len(),
                    plans.len(),
                    compiles,
                    failures
                );
            }
            if failures == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        ["top", path] => top_command(path, opts.follow),
        ["trace-report", path] => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match metaopt_trace::report::analyze(&text) {
                Ok(report) => {
                    if let Some(out) = &opts.bench_json {
                        let digest = report.bench_json();
                        if let Err(e) = std::fs::write(out, format!("{digest}\n")) {
                            eprintln!("cannot write {}: {e}", out.display());
                            return ExitCode::FAILURE;
                        }
                        println!("bench digest -> {}", out.display());
                    }
                    print!("{}", report.render());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{path}: invalid trace: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
