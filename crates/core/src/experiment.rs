//! Experiment drivers: specialization, general-purpose (DSS) training, and
//! cross-validation — the paper's two modes of operation plus its
//! evaluation methodology.

use crate::pipeline::{PreparedBench, StudyEvaluator};
use crate::study::StudyConfig;
use metaopt_gp::{Evolution, Expr, GenLog, GpParams};
use metaopt_suite::{Benchmark, DataSet};

/// Result of specializing a priority function to one benchmark (paper
/// §5.4.1 / Figs. 4, 9, 13).
#[derive(Clone, Debug)]
pub struct SpecializationResult {
    /// Benchmark name.
    pub name: String,
    /// Speedup on the data the function was trained on.
    pub train_speedup: f64,
    /// Speedup on the novel data set.
    pub novel_speedup: f64,
    /// The evolved priority function.
    pub best: Expr,
    /// Per-generation telemetry (drives the evolution figures).
    pub log: Vec<GenLog>,
    /// Uncached fitness evaluations performed.
    pub evaluations: u64,
}

/// Evolve a priority function specialized to a single benchmark. Each
/// benchmark's evolution is independent (as in the paper's per-benchmark
/// runs): the RNG seed is derived from the configured seed and the
/// benchmark name.
pub fn specialize(
    study: &StudyConfig,
    bench: &Benchmark,
    params: &GpParams,
) -> SpecializationResult {
    let pb = PreparedBench::new(study, bench);
    let benches = [pb];
    let evaluator = StudyEvaluator {
        study,
        benches: &benches,
    };
    let mut params = params.clone();
    params.kind = study.genome_kind;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::hash::Hash::hash(bench.name, &mut h);
    params.seed ^= std::hash::Hasher::finish(&h);
    let result = Evolution::new(params, &study.features, &evaluator)
        .with_seeds(vec![study.baseline_seed.clone()])
        .run();
    let train_speedup = benches[0].speedup(study, &result.best, DataSet::Train);
    let novel_speedup = benches[0].speedup(study, &result.best, DataSet::Novel);
    SpecializationResult {
        name: bench.name.to_string(),
        train_speedup,
        novel_speedup,
        best: result.best,
        log: result.log,
        evaluations: result.evaluations,
    }
}

/// Result of a general-purpose (multi-benchmark DSS) training run (paper
/// §5.4.2 / Figs. 6, 11, 15).
#[derive(Clone, Debug)]
pub struct GeneralResult {
    /// Per-benchmark `(name, train-data speedup, novel-data speedup)`.
    pub per_bench: Vec<(String, f64, f64)>,
    /// Mean speedup on the training data.
    pub mean_train: f64,
    /// Mean speedup on the novel data.
    pub mean_novel: f64,
    /// The evolved general-purpose priority function.
    pub best: Expr,
    /// Per-generation telemetry.
    pub log: Vec<GenLog>,
    /// Uncached fitness evaluations performed.
    pub evaluations: u64,
}

/// Evolve one general-purpose priority function over `benches` using
/// dynamic subset selection.
pub fn train_general(
    study: &StudyConfig,
    benches: &[Benchmark],
    params: &GpParams,
) -> GeneralResult {
    let prepared: Vec<PreparedBench> = benches
        .iter()
        .map(|b| PreparedBench::new(study, b))
        .collect();
    let evaluator = StudyEvaluator {
        study,
        benches: &prepared,
    };
    let mut params = params.clone();
    params.kind = study.genome_kind;
    if params.subset_size.is_none() && benches.len() > 4 {
        // The paper's DSS default: train on subsets, roughly half the suite.
        params.subset_size = Some(benches.len().div_ceil(2));
    }
    let result = Evolution::new(params, &study.features, &evaluator)
        .with_seeds(vec![study.baseline_seed.clone()])
        .run();
    let per_bench: Vec<(String, f64, f64)> = prepared
        .iter()
        .map(|pb| {
            (
                pb.name.clone(),
                pb.speedup(study, &result.best, DataSet::Train),
                pb.speedup(study, &result.best, DataSet::Novel),
            )
        })
        .collect();
    let n = per_bench.len().max(1) as f64;
    GeneralResult {
        mean_train: per_bench.iter().map(|x| x.1).sum::<f64>() / n,
        mean_novel: per_bench.iter().map(|x| x.2).sum::<f64>() / n,
        per_bench,
        best: result.best,
        log: result.log,
        evaluations: result.evaluations,
    }
}

/// Cross-validation of a trained priority function on unrelated benchmarks
/// (paper §5.4.2 / Figs. 7, 12, 16).
#[derive(Clone, Debug)]
pub struct CrossValidation {
    /// Per-benchmark `(name, speedup on train data, speedup on novel data)`.
    pub per_bench: Vec<(String, f64, f64)>,
    /// Mean speedup (train-data column).
    pub mean: f64,
}

/// Apply `expr` to benchmarks it was never trained on.
pub fn cross_validate(study: &StudyConfig, expr: &Expr, benches: &[Benchmark]) -> CrossValidation {
    let per_bench: Vec<(String, f64, f64)> = benches
        .iter()
        .map(|b| {
            let pb = PreparedBench::new(study, b);
            (
                b.name.to_string(),
                pb.speedup(study, expr, DataSet::Train),
                pb.speedup(study, expr, DataSet::Novel),
            )
        })
        .collect();
    let mean = per_bench.iter().map(|x| x.1).sum::<f64>() / per_bench.len().max(1) as f64;
    CrossValidation { per_bench, mean }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study;

    fn tiny_params(seed: u64) -> GpParams {
        GpParams {
            population: 12,
            generations: 4,
            seed,
            threads: 2,
            ..GpParams::quick()
        }
    }

    #[test]
    fn specialization_never_loses_to_baseline_on_train_data() {
        // With the baseline seeded and elitism on, the specialized result
        // can only match or beat the baseline on its training data.
        let cfg = study::hyperblock();
        let bench = metaopt_suite::by_name("unepic").unwrap();
        let r = specialize(&cfg, &bench, &tiny_params(11));
        assert!(
            r.train_speedup >= 0.999,
            "{}: train speedup {}",
            r.name,
            r.train_speedup
        );
        assert!(!r.log.is_empty());
        assert!(r.evaluations > 0);
    }

    #[test]
    fn general_training_reports_all_benchmarks() {
        let cfg = study::hyperblock();
        let benches: Vec<_> = ["unepic", "mpeg2dec"]
            .iter()
            .map(|n| metaopt_suite::by_name(n).unwrap())
            .collect();
        let r = train_general(&cfg, &benches, &tiny_params(7));
        assert_eq!(r.per_bench.len(), 2);
        assert!(r.mean_train >= 0.99, "mean train {}", r.mean_train);
    }

    #[test]
    fn cross_validation_runs_on_unseen_benchmarks() {
        let cfg = study::hyperblock();
        let seed = cfg.baseline_seed.clone();
        let benches = vec![metaopt_suite::by_name("djpeg").unwrap()];
        let cv = cross_validate(&cfg, &seed, &benches);
        assert_eq!(cv.per_bench.len(), 1);
        // The baseline seed cross-validates at exactly 1.0 by construction.
        assert!((cv.per_bench[0].1 - 1.0).abs() < 1e-9, "{cv:?}");
    }
}
