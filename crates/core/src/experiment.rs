//! Experiment drivers: specialization, general-purpose (DSS) training,
//! cross-validation — the paper's two modes of operation plus its
//! evaluation methodology — and the pipeline-ablation sweep that treats
//! phase ordering itself as a workload.
//!
//! Each driver comes in two flavours: a `*_controlled` form that takes a
//! [`RunControl`] (checkpointing, resume) and returns a `Result`, and the
//! original panicking convenience form for tests and examples. Reporting
//! after evolution uses the fallible evaluation path: a benchmark on which
//! the winner fails contributes `NaN` to its column and is excluded from
//! means, rather than aborting the whole experiment at the finish line.

use crate::pipeline::{
    PrepareError, PreparedBench, StudyEvaluator, StudyMultiEvaluator, StudyPlanSpace,
};
use crate::study::StudyConfig;
use metaopt_compiler::{CompileStats, PipelinePlan};
use metaopt_gp::checkpoint::{Checkpoint, CheckpointError};
use metaopt_gp::pareto::{hypervolume_proxy, ParetoPoint, NUM_OBJECTIVES};
use metaopt_gp::{CoEvolution, Evolution, Expr, GenLog, GpParams, QuarantineRecord};
use metaopt_suite::{Benchmark, DataSet};
use metaopt_trace::json::Value;
use metaopt_trace::Tracer;
use std::fmt;
use std::path::PathBuf;

/// Failure of an experiment driver: either benchmark preparation broke
/// (setup problem) or checkpoint I/O did (operational problem). Genome
/// evaluation failures never surface here — they are quarantined inside
/// the evolution loop.
#[derive(Debug)]
pub enum ExperimentError {
    /// A benchmark could not be prepared.
    Prepare(PrepareError),
    /// A checkpoint could not be saved, loaded, or validated.
    Checkpoint(CheckpointError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Prepare(e) => write!(f, "{e}"),
            ExperimentError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Prepare(e) => Some(e),
            ExperimentError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<PrepareError> for ExperimentError {
    fn from(e: PrepareError) -> Self {
        ExperimentError::Prepare(e)
    }
}

impl From<CheckpointError> for ExperimentError {
    fn from(e: CheckpointError) -> Self {
        ExperimentError::Checkpoint(e)
    }
}

/// Run-lifecycle controls shared by the experiment drivers.
#[derive(Clone, Debug, Default)]
pub struct RunControl {
    /// Write a checkpoint to this path after every completed generation.
    pub checkpoint: Option<PathBuf>,
    /// Resume from this checkpoint instead of starting fresh. The file's
    /// parameter fingerprint must match the current run (generation count
    /// and thread count may differ).
    pub resume: Option<PathBuf>,
    /// Structured-trace sink for the run (`run-trace.v1`): the GP engine,
    /// the pass manager, and the simulator all emit into it. Disabled by
    /// default, leaving results bit-identical to an untraced run.
    pub tracer: Tracer,
    /// Crash-safe persistent fitness cache. Scores are appended as they
    /// are computed and replayed on the next run with the same config
    /// fingerprint, so a warm rerun skips straight past every evaluation
    /// it has already paid for. Corrupt or foreign files degrade to
    /// in-memory caching; they never abort the run.
    pub eval_cache: Option<PathBuf>,
}

/// Result of specializing a priority function to one benchmark (paper
/// §5.4.1 / Figs. 4, 9, 13).
#[derive(Clone, Debug)]
pub struct SpecializationResult {
    /// Benchmark name.
    pub name: String,
    /// Speedup on the data the function was trained on (`NaN` if the
    /// winner's final evaluation failed).
    pub train_speedup: f64,
    /// Speedup on the novel data set (`NaN` on failure).
    pub novel_speedup: f64,
    /// The evolved priority function.
    pub best: Expr,
    /// Per-generation telemetry (drives the evolution figures).
    pub log: Vec<GenLog>,
    /// Uncached fitness evaluations performed.
    pub evaluations: u64,
    /// Evaluations that produced a score.
    pub successes: u64,
    /// Evaluations answered by the persistent fitness cache (0 unless
    /// [`RunControl::eval_cache`] is set and the store was warm).
    pub warm_hits: u64,
    /// Quarantine ledger: every distinct `(genome, case)` evaluation
    /// failure, with its classified error.
    pub quarantined: Vec<QuarantineRecord>,
}

fn speedup_or_nan(pb: &PreparedBench, study: &StudyConfig, expr: &Expr, ds: DataSet) -> f64 {
    pb.try_speedup(study, expr, ds).unwrap_or(f64::NAN)
}

/// Mean of the finite entries; `NaN` when none are.
fn mean_finite<I: Iterator<Item = f64>>(vals: I) -> f64 {
    let (mut sum, mut n) = (0.0, 0u32);
    for v in vals.filter(|v| v.is_finite()) {
        sum += v;
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

/// Evolve a priority function specialized to a single benchmark, with
/// checkpoint/resume control. Each benchmark's evolution is independent
/// (as in the paper's per-benchmark runs): the RNG seed is derived from
/// the configured seed and the benchmark name.
pub fn specialize_controlled(
    study: &StudyConfig,
    bench: &Benchmark,
    params: &GpParams,
    control: &RunControl,
) -> Result<SpecializationResult, ExperimentError> {
    let pb = PreparedBench::try_new(study, bench)?;
    let benches = [pb];
    let evaluator = StudyEvaluator::new(study, &benches).with_tracer(control.tracer.clone());
    let mut params = params.clone();
    params.kind = study.genome_kind;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::hash::Hash::hash(bench.name, &mut h);
    params.seed ^= std::hash::Hasher::finish(&h);
    let mut evo = Evolution::new(params, &study.features, &evaluator)
        .with_seeds(vec![study.baseline_seed.clone()])
        .with_config_tag(study.plan.to_string())
        .with_tracer(control.tracer.clone());
    if let Some(path) = &control.resume {
        evo = evo.resume_from(Checkpoint::load(path)?);
    }
    if let Some(path) = &control.checkpoint {
        evo = evo.with_checkpoint_file(path);
    }
    if let Some(path) = &control.eval_cache {
        evo = evo.with_eval_cache(path);
    }
    let result = evo.try_run()?;
    let train_speedup = speedup_or_nan(&benches[0], study, &result.best, DataSet::Train);
    let novel_speedup = speedup_or_nan(&benches[0], study, &result.best, DataSet::Novel);
    Ok(SpecializationResult {
        name: bench.name.to_string(),
        train_speedup,
        novel_speedup,
        best: result.best,
        log: result.log,
        evaluations: result.evaluations,
        successes: result.successes,
        warm_hits: result.warm_hits,
        quarantined: result.quarantined,
    })
}

/// Panicking convenience wrapper around [`specialize_controlled`] with no
/// checkpointing, for tests and examples.
///
/// # Panics
/// Panics if benchmark preparation fails.
pub fn specialize(
    study: &StudyConfig,
    bench: &Benchmark,
    params: &GpParams,
) -> SpecializationResult {
    specialize_controlled(study, bench, params, &RunControl::default())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Result of a general-purpose (multi-benchmark DSS) training run (paper
/// §5.4.2 / Figs. 6, 11, 15).
#[derive(Clone, Debug)]
pub struct GeneralResult {
    /// Per-benchmark `(name, train-data speedup, novel-data speedup)`;
    /// `NaN` marks a failed final evaluation.
    pub per_bench: Vec<(String, f64, f64)>,
    /// Mean speedup on the training data (over finite entries).
    pub mean_train: f64,
    /// Mean speedup on the novel data (over finite entries).
    pub mean_novel: f64,
    /// The evolved general-purpose priority function.
    pub best: Expr,
    /// Per-generation telemetry.
    pub log: Vec<GenLog>,
    /// Uncached fitness evaluations performed.
    pub evaluations: u64,
    /// Evaluations that produced a score.
    pub successes: u64,
    /// Evaluations answered by the persistent fitness cache (0 unless
    /// [`RunControl::eval_cache`] is set and the store was warm).
    pub warm_hits: u64,
    /// Quarantine ledger: every distinct `(genome, case)` evaluation
    /// failure, with its classified error.
    pub quarantined: Vec<QuarantineRecord>,
}

/// Evolve one general-purpose priority function over `benches` using
/// dynamic subset selection, with checkpoint/resume control.
pub fn train_general_controlled(
    study: &StudyConfig,
    benches: &[Benchmark],
    params: &GpParams,
    control: &RunControl,
) -> Result<GeneralResult, ExperimentError> {
    let prepared = benches
        .iter()
        .map(|b| PreparedBench::try_new(study, b))
        .collect::<Result<Vec<PreparedBench>, PrepareError>>()?;
    let evaluator = StudyEvaluator::new(study, &prepared).with_tracer(control.tracer.clone());
    let mut params = params.clone();
    params.kind = study.genome_kind;
    if params.subset_size.is_none() && benches.len() > 4 {
        // The paper's DSS default: train on subsets, roughly half the suite.
        params.subset_size = Some(benches.len().div_ceil(2));
    }
    let mut evo = Evolution::new(params, &study.features, &evaluator)
        .with_seeds(vec![study.baseline_seed.clone()])
        .with_config_tag(study.plan.to_string())
        .with_tracer(control.tracer.clone());
    if let Some(path) = &control.resume {
        evo = evo.resume_from(Checkpoint::load(path)?);
    }
    if let Some(path) = &control.checkpoint {
        evo = evo.with_checkpoint_file(path);
    }
    if let Some(path) = &control.eval_cache {
        evo = evo.with_eval_cache(path);
    }
    let result = evo.try_run()?;
    let per_bench: Vec<(String, f64, f64)> = prepared
        .iter()
        .map(|pb| {
            (
                pb.name.clone(),
                speedup_or_nan(pb, study, &result.best, DataSet::Train),
                speedup_or_nan(pb, study, &result.best, DataSet::Novel),
            )
        })
        .collect();
    Ok(GeneralResult {
        mean_train: mean_finite(per_bench.iter().map(|x| x.1)),
        mean_novel: mean_finite(per_bench.iter().map(|x| x.2)),
        per_bench,
        best: result.best,
        log: result.log,
        evaluations: result.evaluations,
        successes: result.successes,
        warm_hits: result.warm_hits,
        quarantined: result.quarantined,
    })
}

/// Panicking convenience wrapper around [`train_general_controlled`] with
/// no checkpointing, for tests and examples.
///
/// # Panics
/// Panics if benchmark preparation fails.
pub fn train_general(
    study: &StudyConfig,
    benches: &[Benchmark],
    params: &GpParams,
) -> GeneralResult {
    train_general_controlled(study, benches, params, &RunControl::default())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Cross-validation of a trained priority function on unrelated benchmarks
/// (paper §5.4.2 / Figs. 7, 12, 16).
#[derive(Clone, Debug)]
pub struct CrossValidation {
    /// Per-benchmark `(name, speedup on train data, speedup on novel data)`;
    /// `NaN` marks a failed evaluation.
    pub per_bench: Vec<(String, f64, f64)>,
    /// Mean speedup (train-data column, over finite entries).
    pub mean: f64,
}

/// Apply `expr` to benchmarks it was never trained on.
pub fn try_cross_validate(
    study: &StudyConfig,
    expr: &Expr,
    benches: &[Benchmark],
) -> Result<CrossValidation, ExperimentError> {
    let per_bench = benches
        .iter()
        .map(|b| {
            let pb = PreparedBench::try_new(study, b)?;
            Ok((
                b.name.to_string(),
                speedup_or_nan(&pb, study, expr, DataSet::Train),
                speedup_or_nan(&pb, study, expr, DataSet::Novel),
            ))
        })
        .collect::<Result<Vec<_>, PrepareError>>()?;
    let mean = mean_finite(per_bench.iter().map(|x| x.1));
    Ok(CrossValidation { per_bench, mean })
}

/// Panicking convenience wrapper around [`try_cross_validate`].
///
/// # Panics
/// Panics if benchmark preparation fails.
pub fn cross_validate(study: &StudyConfig, expr: &Expr, benches: &[Benchmark]) -> CrossValidation {
    try_cross_validate(study, expr, benches).unwrap_or_else(|e| panic!("{e}"))
}

/// One pipeline plan's measured cost in an ablation sweep.
#[derive(Clone, Debug)]
pub struct PlanRun {
    /// The plan that was compiled and timed.
    pub plan: PipelinePlan,
    /// Cycles on the training data, if the plan evaluated cleanly.
    pub cycles: Option<u64>,
    /// Compile statistics (counters and per-pass timing) on success.
    pub stats: Option<CompileStats>,
    /// The classified evaluation error, if the plan failed.
    pub error: Option<String>,
}

/// Result of sweeping pipeline plans over one prepared benchmark: the
/// phase-ordering experiment. Each plan compiles with the study's shipped
/// baseline priority functions, so differences are attributable to pass
/// selection and ordering alone.
#[derive(Clone, Debug)]
pub struct AblationResult {
    /// Benchmark name.
    pub bench: String,
    /// One row per plan, in the order given.
    pub runs: Vec<PlanRun>,
}

impl AblationResult {
    /// Render the cycles-per-plan table: one row per plan, cycles, speedup
    /// relative to the first (reference) plan, and compile time.
    pub fn table(&self) -> String {
        let width = self
            .runs
            .iter()
            .map(|r| r.plan.to_string().len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = format!(
            "{:<width$} {:>12} {:>8} {:>11}\n",
            "plan", "cycles", "vs[0]", "compile"
        );
        let reference = self.runs.first().and_then(|r| r.cycles);
        for r in &self.runs {
            let plan = r.plan.to_string();
            match (r.cycles, &r.stats) {
                (Some(cycles), Some(stats)) => {
                    let rel = match reference {
                        Some(base) => format!("{:.3}x", base as f64 / cycles as f64),
                        None => "-".to_string(),
                    };
                    let compile_us: u64 = stats.per_pass.iter().map(|p| p.wall_nanos).sum();
                    out.push_str(&format!(
                        "{plan:<width$} {cycles:>12} {rel:>8} {:>9.1}us\n",
                        compile_us as f64 / 1000.0
                    ));
                }
                _ => {
                    let err = r.error.as_deref().unwrap_or("failed");
                    out.push_str(&format!("{plan:<width$} {err}\n"));
                }
            }
        }
        out
    }

    /// Machine-readable form of the sweep, following the `metaopt check
    /// --json` convention (a single object with summary counts and a
    /// `results` array): per plan, training-data cycles, static code size,
    /// measured compile wall nanos, and the speedup relative to the first
    /// (reference) plan; failed plans report `ok: false` with the error.
    pub fn json(&self, study: &str) -> String {
        let reference = self.runs.first().and_then(|r| r.cycles);
        let results: Vec<Value> = self
            .runs
            .iter()
            .map(|r| {
                let mut fields = vec![
                    ("plan".to_string(), Value::str(r.plan.to_string())),
                    ("ok".to_string(), Value::Bool(r.cycles.is_some())),
                ];
                match (r.cycles, &r.stats) {
                    (Some(cycles), Some(stats)) => {
                        let wall: u64 = stats.per_pass.iter().map(|p| p.wall_nanos).sum();
                        fields.push(("cycles".to_string(), Value::UInt(cycles)));
                        fields.push(("size".to_string(), Value::UInt(stats.counters.static_insts)));
                        fields.push(("compile_wall_ns".to_string(), Value::UInt(wall)));
                        if let Some(base) = reference {
                            fields.push((
                                "speedup_vs_reference".to_string(),
                                Value::Num(base as f64 / cycles as f64),
                            ));
                        }
                    }
                    _ => {
                        let err = r.error.as_deref().unwrap_or("failed");
                        fields.push(("error".to_string(), Value::str(err)));
                    }
                }
                Value::Obj(fields)
            })
            .collect();
        let failures = self.runs.iter().filter(|r| r.cycles.is_none()).count();
        Value::Obj(vec![
            ("study".to_string(), Value::str(study)),
            ("bench".to_string(), Value::str(self.bench.as_str())),
            ("plans".to_string(), Value::UInt(self.runs.len() as u64)),
            ("failures".to_string(), Value::UInt(failures as u64)),
            ("results".to_string(), Value::Arr(results)),
        ])
        .to_string()
    }
}

/// The default ablation set: the canonical baseline plan plus one-pass
/// knockouts and an unrolled variant.
pub fn default_ablation_plans() -> Vec<PipelinePlan> {
    let baseline = PipelinePlan::baseline();
    vec![
        baseline.clone(),
        baseline.clone().without("hyperblock"),
        baseline.clone().without("prefetch"),
        baseline.with_unroll(2),
        PipelinePlan::minimal(),
    ]
}

/// Sweep `plans` over `bench`: prepare once, then compile under every plan
/// with the study's baseline priority functions and measure training-data
/// cycles. Plans that fail to compile or simulate are reported per-row
/// rather than aborting the sweep.
pub fn try_ablate(
    study: &StudyConfig,
    bench: &Benchmark,
    plans: &[PipelinePlan],
) -> Result<AblationResult, ExperimentError> {
    try_ablate_traced(study, bench, plans, &Tracer::disabled())
}

/// [`try_ablate`], emitting `pass` and `sim` events for every plan's
/// compile-and-simulate into `tracer`.
pub fn try_ablate_traced(
    study: &StudyConfig,
    bench: &Benchmark,
    plans: &[PipelinePlan],
    tracer: &Tracer,
) -> Result<AblationResult, ExperimentError> {
    let pb = PreparedBench::try_new(study, bench)?;
    let runs = plans
        .iter()
        .map(
            |plan| match pb.try_plan_cycles_traced(study, plan, DataSet::Train, tracer) {
                Ok((cycles, stats)) => PlanRun {
                    plan: plan.clone(),
                    cycles: Some(cycles),
                    stats: Some(stats),
                    error: None,
                },
                Err(e) => PlanRun {
                    plan: plan.clone(),
                    cycles: None,
                    stats: None,
                    error: Some(e.to_string()),
                },
            },
        )
        .collect();
    Ok(AblationResult {
        bench: bench.name.to_string(),
        runs,
    })
}

/// Panicking convenience wrapper around [`try_ablate`].
///
/// # Panics
/// Panics if benchmark preparation fails.
pub fn ablate(study: &StudyConfig, bench: &Benchmark, plans: &[PipelinePlan]) -> AblationResult {
    try_ablate(study, bench, plans).unwrap_or_else(|e| panic!("{e}"))
}

/// Result of co-evolving `(pipeline plan, priority function)` genomes on
/// one benchmark: the final Pareto front over (cycles, code size, compile
/// cost) plus the conventional champion-and-speedup report for the
/// cycle-minimal front point.
#[derive(Clone, Debug)]
pub struct CoEvolutionResult {
    /// Benchmark name.
    pub name: String,
    /// The final non-dominated front, sorted by objective vector (so the
    /// first point is cycle-minimal). Empty only if every genome in the
    /// final population was quarantined.
    pub front: Vec<ParetoPoint>,
    /// Saturating hypervolume proxy of the front under the selection mask.
    pub hypervolume: u64,
    /// The cycle-minimal front point's plan, parsed.
    pub best_plan: Option<PipelinePlan>,
    /// The cycle-minimal front point's priority function, parsed.
    pub best: Option<Expr>,
    /// Champion speedup over the study baseline (its plan + heuristic) on
    /// the training data; `NaN` if the front is empty or the final
    /// evaluation failed.
    pub train_speedup: f64,
    /// Champion speedup on the novel data set (`NaN` on failure).
    pub novel_speedup: f64,
    /// Per-generation telemetry (best/mean are summed training cycles).
    pub log: Vec<GenLog>,
    /// Uncached objective-vector evaluations performed.
    pub evaluations: u64,
    /// Evaluations that produced an objective vector.
    pub successes: u64,
    /// Evaluations answered by the persistent fitness cache.
    pub warm_hits: u64,
    /// Quarantine ledger over `plan|expr` genome keys.
    pub quarantined: Vec<QuarantineRecord>,
}

impl CoEvolutionResult {
    /// Render the front as a table: one row per point, objectives first.
    pub fn front_table(&self) -> String {
        let width = self
            .front
            .iter()
            .map(|p| p.plan.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = format!(
            "{:>12} {:>10} {:>12}  {:<width$} expr\n",
            "cycles", "size", "compile", "plan"
        );
        for p in &self.front {
            out.push_str(&format!(
                "{:>12} {:>10} {:>12}  {:<width$} {}\n",
                p.objectives[0], p.objectives[1], p.objectives[2], p.plan, p.expr
            ));
        }
        out
    }
}

/// Co-evolve pipeline plans with priority functions on a single benchmark
/// (multi-objective NSGA-II; see [`metaopt_gp::CoEvolution`]), with
/// checkpoint/resume control. Seeding mirrors [`specialize_controlled`]:
/// the RNG seed is derived from the configured seed and the benchmark
/// name, and the study's baseline heuristic seeds the expression
/// population while the study plan and the minimal plan seed the plans.
pub fn co_evolve_controlled(
    study: &StudyConfig,
    bench: &Benchmark,
    params: &GpParams,
    objectives: [bool; NUM_OBJECTIVES],
    control: &RunControl,
) -> Result<CoEvolutionResult, ExperimentError> {
    let pb = PreparedBench::try_new(study, bench)?;
    let benches = [pb];
    let evaluator = StudyMultiEvaluator::new(study, &benches).with_tracer(control.tracer.clone());
    let plan_space = StudyPlanSpace::new(study);
    let mut params = params.clone();
    params.kind = study.genome_kind;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::hash::Hash::hash(bench.name, &mut h);
    params.seed ^= std::hash::Hasher::finish(&h);
    let mut evo = CoEvolution::new(params, &study.features, &evaluator, &plan_space)
        .with_seeds(vec![study.baseline_seed.clone()])
        .with_objectives(objectives)
        .with_config_tag(study.plan.to_string())
        .with_tracer(control.tracer.clone());
    if let Some(path) = &control.resume {
        evo = evo.resume_from(Checkpoint::load(path)?);
    }
    if let Some(path) = &control.checkpoint {
        evo = evo.with_checkpoint_file(path);
    }
    if let Some(path) = &control.eval_cache {
        evo = evo.with_eval_cache(path);
    }
    let result = evo.try_run()?;

    let hypervolume = {
        let vectors: Vec<[u64; NUM_OBJECTIVES]> =
            result.front.iter().map(|p| p.objectives).collect();
        hypervolume_proxy(&vectors, &objectives)
    };
    // The front is sorted by objective vector, so the first point is the
    // cycle-minimal champion; report it the way `specialize` reports its
    // winner, against the study's own baseline plan + heuristic.
    let champion = result.front.first().and_then(|p| {
        let plan: PipelinePlan = p.plan.parse().ok()?;
        let expr = metaopt_gp::parse::parse_expr(&p.expr, &study.features).ok()?;
        Some((plan, expr))
    });
    let (best_plan, best, train_speedup, novel_speedup) = match champion {
        Some((plan, expr)) => {
            let speedup = |ds: DataSet| {
                benches[0]
                    .try_objectives_traced(study, &plan, &expr, ds, &Tracer::disabled())
                    .map(|o| benches[0].baseline_cycles(ds) as f64 / o[0] as f64)
                    .unwrap_or(f64::NAN)
            };
            let (t, n) = (speedup(DataSet::Train), speedup(DataSet::Novel));
            (Some(plan), Some(expr), t, n)
        }
        None => (None, None, f64::NAN, f64::NAN),
    };
    Ok(CoEvolutionResult {
        name: bench.name.to_string(),
        front: result.front,
        hypervolume,
        best_plan,
        best,
        train_speedup,
        novel_speedup,
        log: result.log,
        evaluations: result.evaluations,
        successes: result.successes,
        warm_hits: result.warm_hits,
        quarantined: result.quarantined,
    })
}

/// Panicking convenience wrapper around [`co_evolve_controlled`] with all
/// objectives enabled and no checkpointing, for tests and examples.
///
/// # Panics
/// Panics if benchmark preparation fails.
pub fn co_evolve(study: &StudyConfig, bench: &Benchmark, params: &GpParams) -> CoEvolutionResult {
    co_evolve_controlled(
        study,
        bench,
        params,
        [true; NUM_OBJECTIVES],
        &RunControl::default(),
    )
    .unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study;

    fn tiny_params(seed: u64) -> GpParams {
        GpParams {
            population: 12,
            generations: 4,
            seed,
            threads: 2,
            ..GpParams::quick()
        }
    }

    #[test]
    fn specialization_never_loses_to_baseline_on_train_data() {
        // With the baseline seeded and elitism on, the specialized result
        // can only match or beat the baseline on its training data.
        let cfg = study::hyperblock();
        let bench = metaopt_suite::by_name("unepic").unwrap();
        let r = specialize(&cfg, &bench, &tiny_params(11));
        assert!(
            r.train_speedup >= 0.999,
            "{}: train speedup {}",
            r.name,
            r.train_speedup
        );
        assert!(!r.log.is_empty());
        assert!(r.evaluations > 0);
        // Without fault injection the bundled kernels evaluate cleanly.
        assert_eq!(r.successes, r.evaluations);
        assert!(r.quarantined.is_empty());
    }

    #[test]
    fn general_training_reports_all_benchmarks() {
        let cfg = study::hyperblock();
        let benches: Vec<_> = ["unepic", "mpeg2dec"]
            .iter()
            .map(|n| metaopt_suite::by_name(n).unwrap())
            .collect();
        let r = train_general(&cfg, &benches, &tiny_params(7));
        assert_eq!(r.per_bench.len(), 2);
        assert!(r.mean_train >= 0.99, "mean train {}", r.mean_train);
    }

    #[test]
    fn cross_validation_runs_on_unseen_benchmarks() {
        let cfg = study::hyperblock();
        let seed = cfg.baseline_seed.clone();
        let benches = vec![metaopt_suite::by_name("djpeg").unwrap()];
        let cv = cross_validate(&cfg, &seed, &benches);
        assert_eq!(cv.per_bench.len(), 1);
        // The baseline seed cross-validates at exactly 1.0 by construction.
        assert!((cv.per_bench[0].1 - 1.0).abs() < 1e-9, "{cv:?}");
    }

    #[test]
    fn checkpointed_specialization_resumes_identically() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("metaopt-exp-ck-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = study::hyperblock();
        let bench = metaopt_suite::by_name("unepic").unwrap();

        // Phase 1: short run that leaves a checkpoint behind.
        let short = GpParams {
            generations: 2,
            ..tiny_params(5)
        };
        let ck_control = RunControl {
            checkpoint: Some(path.clone()),
            ..RunControl::default()
        };
        specialize_controlled(&cfg, &bench, &short, &ck_control).unwrap();
        assert!(path.exists(), "checkpoint file must be written");

        // Phase 2: resume to the full horizon and compare with an
        // uninterrupted run at the same seed.
        let full = tiny_params(5);
        let resumed = specialize_controlled(
            &cfg,
            &bench,
            &full,
            &RunControl {
                resume: Some(path.clone()),
                ..RunControl::default()
            },
        )
        .unwrap();
        let straight = specialize(&cfg, &bench, &full);
        assert_eq!(resumed.best.key(), straight.best.key());
        assert_eq!(resumed.log, straight.log);
        assert!((resumed.train_speedup - straight.train_speedup).abs() < 1e-12);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ablation_sweeps_distinct_plans_and_renders_a_table() {
        let cfg = study::hyperblock();
        let bench = metaopt_suite::by_name("rawdaudio").unwrap();
        let plans = default_ablation_plans();
        assert!(plans.len() >= 4, "the default sweep covers >= 4 plans");
        let r = ablate(&cfg, &bench, &plans);
        assert_eq!(r.runs.len(), plans.len());
        for run in &r.runs {
            assert!(
                run.cycles.is_some(),
                "plan {} failed: {:?}",
                run.plan,
                run.error
            );
            let stats = run.stats.as_ref().unwrap();
            assert_eq!(stats.per_pass.len(), run.plan.steps().len());
        }
        // Knocking out hyperblock formation must change the schedule cost.
        let base = r.runs[0].cycles.unwrap();
        let no_hb = r.runs[1].cycles.unwrap();
        assert_ne!(base, no_hb, "hyperblock knockout must be observable");
        let table = r.table();
        for run in &r.runs {
            assert!(table.contains(&run.plan.to_string()), "table:\n{table}");
        }
    }

    #[test]
    fn resume_under_a_different_plan_is_rejected() {
        // A checkpoint's fitness values are only meaningful under the
        // pipeline plan that produced them, so the plan is part of the
        // config fingerprint.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("metaopt-exp-plan-ck-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = study::hyperblock();
        let bench = metaopt_suite::by_name("unepic").unwrap();
        // Two generations: the engine snapshots at generation boundaries,
        // so a 1-generation run finishes before ever writing a checkpoint.
        let params = GpParams {
            generations: 2,
            ..tiny_params(9)
        };
        let ck = RunControl {
            checkpoint: Some(path.clone()),
            ..RunControl::default()
        };
        specialize_controlled(&cfg, &bench, &params, &ck).unwrap();

        let resume = RunControl {
            resume: Some(path.clone()),
            ..RunControl::default()
        };
        let err = specialize_controlled(&cfg.clone().with_unroll(2), &bench, &params, &resume)
            .unwrap_err();
        assert!(
            matches!(
                &err,
                ExperimentError::Checkpoint(CheckpointError::Mismatch { .. })
            ),
            "{err}"
        );
        // Same plan still resumes fine.
        specialize_controlled(&cfg, &bench, &params, &resume).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn warm_specialization_reproduces_the_cold_run() {
        // A second run over the same persistent fitness cache must land on
        // the same winner and telemetry, only faster: every score the cold
        // run paid for is answered from disk.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("metaopt-exp-store-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = study::hyperblock();
        let bench = metaopt_suite::by_name("unepic").unwrap();
        let params = tiny_params(13);
        let control = RunControl {
            eval_cache: Some(path.clone()),
            ..RunControl::default()
        };
        let cold = specialize_controlled(&cfg, &bench, &params, &control).unwrap();
        assert_eq!(cold.warm_hits, 0, "a fresh store cannot answer anything");
        let warm = specialize_controlled(&cfg, &bench, &params, &control).unwrap();
        assert!(warm.warm_hits > 0, "second run must hit the store");
        assert_eq!(warm.best.key(), cold.best.key());
        assert_eq!(warm.log, cold.log);
        assert_eq!(warm.evaluations, cold.evaluations);
        assert_eq!(warm.successes, cold.successes);
        assert!((warm.train_speedup - cold.train_speedup).abs() < 1e-12);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_from_missing_checkpoint_is_an_error() {
        let cfg = study::hyperblock();
        let bench = metaopt_suite::by_name("unepic").unwrap();
        let control = RunControl {
            resume: Some(std::path::PathBuf::from("/nonexistent/metaopt-ck.txt")),
            ..RunControl::default()
        };
        let err = specialize_controlled(&cfg, &bench, &tiny_params(3), &control).unwrap_err();
        assert!(matches!(err, ExperimentError::Checkpoint(_)), "{err}");
    }
}
