//! Seeded deterministic fault injection for the evaluation pipeline.
//!
//! Robustness features (quarantine, penalty fitness, checkpoint survival)
//! are only trustworthy if they are *exercised*: organic failures are rare
//! by design, so the injector forces classified failures at chosen pipeline
//! stages with a configurable probability. Injection is a pure function of
//! `(seed, stage, genome, benchmark)` — no global state, no RNG stream —
//! so a given genome fails (or not) identically across re-evaluations,
//! runs, resumes, and threads. That consistency is what lets the
//! fault-injection suite assert that the quarantine ledger matches the
//! injected faults exactly.
//!
//! The injector itself always compiles (it is plain deterministic code);
//! the `fault-inject` cargo feature gates only its *wiring* into
//! [`crate::pipeline::StudyEvaluator`], keeping production evaluation free
//! of even the check overhead unless explicitly requested.

use metaopt_gp::{EvalError, EvalErrorKind};

/// Pipeline stage at which a fault can be injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultStage {
    /// Before invoking the compiler (forces a [`EvalErrorKind::Compile`]).
    Compile,
    /// At the inter-pass IR checking boundary (forces a
    /// [`EvalErrorKind::IrCheck`]).
    CheckIr,
    /// At the semantic-validation boundary (forces a
    /// [`EvalErrorKind::Validation`]).
    Validate,
    /// Before simulating the compiled program, after the timeout check
    /// (forces a [`EvalErrorKind::Sim`]).
    Simulate,
    /// An operational timeout between validation and simulation (forces a
    /// *transient* [`EvalErrorKind::Timeout`], which the engine retries).
    /// Unlike the other stages, timeout decisions are attempt-sensitive —
    /// see [`FaultInjector::should_fail_at`] — so a timeout can clear on
    /// retry, exercising the retry path end to end.
    Timeout,
    /// Corruption of a persistent fitness-cache record as it is written.
    /// Not part of the per-evaluation pipeline: exercised through
    /// [`metaopt_gp::store::FitnessStore`]'s corruption hook, so the store's
    /// detect-and-recover machinery is what gets tested. [`FaultStage::kind`]
    /// for this stage exists only for totality.
    CacheCorrupt,
}

impl FaultStage {
    /// All stages. The first five are the per-evaluation pipeline stages
    /// (see [`FaultStage::EVAL`] for those in pipeline order);
    /// `CacheCorrupt` acts at the storage layer instead.
    pub const ALL: [FaultStage; 6] = [
        FaultStage::Compile,
        FaultStage::CheckIr,
        FaultStage::Validate,
        FaultStage::Timeout,
        FaultStage::Simulate,
        FaultStage::CacheCorrupt,
    ];

    /// The per-evaluation pipeline stages, in the order the pipeline
    /// checks them.
    pub const EVAL: [FaultStage; 5] = [
        FaultStage::Compile,
        FaultStage::CheckIr,
        FaultStage::Validate,
        FaultStage::Timeout,
        FaultStage::Simulate,
    ];

    /// The error class an injected fault at this stage reports as.
    pub fn kind(self) -> EvalErrorKind {
        match self {
            FaultStage::Compile => EvalErrorKind::Compile,
            FaultStage::CheckIr => EvalErrorKind::IrCheck,
            FaultStage::Validate => EvalErrorKind::Validation,
            FaultStage::Timeout => EvalErrorKind::Timeout,
            FaultStage::Simulate => EvalErrorKind::Sim,
            // Cache corruption never surfaces as an evaluation error (the
            // store detects and recovers); mapped for totality only.
            FaultStage::CacheCorrupt => EvalErrorKind::Sim,
        }
    }

    /// Stable label used in diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            FaultStage::Compile => "compile",
            FaultStage::CheckIr => "check-ir",
            FaultStage::Validate => "validate",
            FaultStage::Timeout => "timeout",
            FaultStage::Simulate => "simulate",
            FaultStage::CacheCorrupt => "cache-corrupt",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultStage::Compile => 0,
            FaultStage::CheckIr => 1,
            FaultStage::Validate => 2,
            FaultStage::Timeout => 3,
            FaultStage::Simulate => 4,
            FaultStage::CacheCorrupt => 5,
        }
    }
}

/// Deterministic fault injector: decides failure purely from
/// `(seed, stage, genome key, benchmark name)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultInjector {
    seed: u64,
    rates: [f64; 6],
}

impl FaultInjector {
    /// An injector with all rates zero (injects nothing until configured
    /// via [`FaultInjector::with_rate`]).
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            seed,
            rates: [0.0; 6],
        }
    }

    /// An injector failing every stage with probability `rate`.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultInjector {
            seed,
            rates: [rate; 6],
        }
    }

    /// Set the failure probability for one stage (clamped to `[0, 1]`).
    pub fn with_rate(mut self, stage: FaultStage, rate: f64) -> Self {
        self.rates[stage.index()] = rate.clamp(0.0, 1.0);
        self
    }

    /// The configured failure probability for `stage`.
    pub fn rate(&self, stage: FaultStage) -> f64 {
        self.rates[stage.index()]
    }

    /// Whether this injector fires for `(stage, genome, bench)` on the
    /// first attempt — a pure function, identical on every call.
    pub fn should_fail(&self, stage: FaultStage, genome_key: &str, bench: &str) -> bool {
        self.should_fail_at(stage, genome_key, bench, 0)
    }

    /// Whether this injector fires for `(stage, genome, bench)` on retry
    /// attempt `attempt`. Permanent stages ignore `attempt` — a compile
    /// fault that fired once fires on every retry, which is exactly why the
    /// engine never retries them. [`FaultStage::Timeout`] folds the attempt
    /// into the draw, so an injected timeout can clear on a later attempt
    /// (or persist through the whole retry budget and quarantine).
    pub fn should_fail_at(
        &self,
        stage: FaultStage,
        genome_key: &str,
        bench: &str,
        attempt: u32,
    ) -> bool {
        let rate = self.rates[stage.index()];
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        // FNV-1a over the identifying tuple, then a splitmix64 finalizer to
        // decorrelate the low-entropy inputs; top 53 bits become a uniform
        // draw in [0, 1).
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_01b3);
            }
        };
        eat(stage.label().as_bytes());
        eat(&[0xFF]);
        eat(genome_key.as_bytes());
        eat(&[0xFF]);
        eat(bench.as_bytes());
        if stage == FaultStage::Timeout {
            eat(&[0xFF]);
            eat(&attempt.to_le_bytes());
        }
        let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let draw = (z >> 11) as f64 / (1u64 << 53) as f64;
        draw < rate
    }

    /// Fail the evaluation if the injector fires for this tuple on the
    /// first attempt; the error is marked [`EvalError::injected`] so
    /// ledgers distinguish forced from organic failures.
    pub fn check(&self, stage: FaultStage, genome_key: &str, bench: &str) -> Result<(), EvalError> {
        self.check_at(stage, genome_key, bench, 0)
    }

    /// [`FaultInjector::check`] with an explicit retry attempt.
    pub fn check_at(
        &self,
        stage: FaultStage,
        genome_key: &str,
        bench: &str,
        attempt: u32,
    ) -> Result<(), EvalError> {
        if self.should_fail_at(stage, genome_key, bench, attempt) {
            return Err(EvalError::injected(
                stage.kind(),
                format!(
                    "fault injector forced a {} failure on {bench} (attempt {attempt})",
                    stage.label()
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fires_and_one_always_does() {
        let off = FaultInjector::new(7);
        let on = FaultInjector::uniform(7, 1.0);
        for stage in FaultStage::ALL {
            assert!(!off.should_fail(stage, "(add r0 r1)", "unepic"));
            assert!(on.should_fail(stage, "(add r0 r1)", "unepic"));
        }
    }

    #[test]
    fn decisions_are_deterministic_and_input_sensitive() {
        let inj = FaultInjector::uniform(42, 0.5);
        let a = inj.should_fail(FaultStage::Compile, "(add r0 r1)", "unepic");
        for _ in 0..10 {
            assert_eq!(
                a,
                inj.should_fail(FaultStage::Compile, "(add r0 r1)", "unepic")
            );
        }
        // Across many genomes, both outcomes and both stage-sensitivity and
        // seed-sensitivity must appear.
        let genomes: Vec<String> = (0..200).map(|i| format!("(rconst {i}.5)")).collect();
        let fired = genomes
            .iter()
            .filter(|g| inj.should_fail(FaultStage::Compile, g, "unepic"))
            .count();
        assert!(fired > 50 && fired < 150, "~half should fire, got {fired}");
        let other_seed = FaultInjector::uniform(43, 0.5);
        assert!(
            genomes
                .iter()
                .any(|g| inj.should_fail(FaultStage::Compile, g, "unepic")
                    != other_seed.should_fail(FaultStage::Compile, g, "unepic")),
            "different seeds must differ somewhere"
        );
        assert!(
            genomes
                .iter()
                .any(|g| inj.should_fail(FaultStage::Compile, g, "unepic")
                    != inj.should_fail(FaultStage::Simulate, g, "unepic")),
            "different stages must differ somewhere"
        );
    }

    #[test]
    fn observed_rate_tracks_configured_rate() {
        let inj = FaultInjector::uniform(1, 0.05);
        let n = 4000;
        let fired = (0..n)
            .filter(|i| inj.should_fail(FaultStage::Simulate, &format!("(rconst {i})"), "102.swim"))
            .count();
        let observed = fired as f64 / n as f64;
        assert!(
            (observed - 0.05).abs() < 0.02,
            "observed rate {observed} too far from 0.05"
        );
    }

    #[test]
    fn timeout_is_attempt_sensitive_and_permanent_stages_are_not() {
        let inj = FaultInjector::uniform(11, 0.5);
        let genomes: Vec<String> = (0..200).map(|i| format!("(rconst {i}.25)")).collect();
        // Permanent stages: the attempt index must not change the decision.
        for stage in [
            FaultStage::Compile,
            FaultStage::CheckIr,
            FaultStage::Validate,
        ] {
            for g in &genomes {
                let base = inj.should_fail_at(stage, g, "unepic", 0);
                for attempt in 1..4 {
                    assert_eq!(base, inj.should_fail_at(stage, g, "unepic", attempt));
                }
            }
        }
        // Timeout: some pair must clear on a retry, and some must persist,
        // or the retry path is untestable at this rate.
        let clears = genomes.iter().any(|g| {
            inj.should_fail_at(FaultStage::Timeout, g, "unepic", 0)
                && !inj.should_fail_at(FaultStage::Timeout, g, "unepic", 1)
        });
        let persists = genomes
            .iter()
            .any(|g| (0..3).all(|a| inj.should_fail_at(FaultStage::Timeout, g, "unepic", a)));
        assert!(clears, "no timeout cleared on retry");
        assert!(persists, "no timeout persisted through retries");
        // Transience contract: the timeout stage maps to the one transient
        // error kind, everything else permanent.
        for stage in FaultStage::ALL {
            assert_eq!(stage.kind().is_transient(), stage == FaultStage::Timeout);
        }
    }

    #[test]
    fn check_produces_injected_errors_with_stage_kind() {
        let inj = FaultInjector::uniform(3, 1.0);
        for stage in FaultStage::ALL {
            let err = inj.check(stage, "(add r0 r1)", "unepic").unwrap_err();
            assert_eq!(err.kind, stage.kind());
            assert!(err.injected);
            assert!(err.message.contains("unepic"));
        }
        let off = FaultInjector::new(3);
        for stage in FaultStage::ALL {
            off.check(stage, "(add r0 r1)", "unepic").unwrap();
        }
    }
}
