#![warn(missing_docs)]
//! # metaopt
//!
//! **Meta Optimization** (Stephenson, Amarasinghe, Martin, O'Reilly —
//! PLDI 2003): automatically improving compiler heuristics with genetic
//! programming.
//!
//! Many compiler heuristics hinge on a single **priority function** — an
//! arithmetic scoring function over program features. This crate wraps the
//! GP engine from `metaopt-gp` around the compile-and-simulate loop
//! (`metaopt-compiler` + `metaopt-sim` over the `metaopt-suite` benchmarks)
//! to *search the space of priority functions directly*, using end-to-end
//! execution time as fitness, exactly as the paper describes (Fig. 2).
//!
//! Three case studies are provided, matching the paper's:
//!
//! * [`StudyKind::Hyperblock`] — if-conversion path selection (paper §5),
//! * [`StudyKind::Regalloc`] — priority-based coloring spill choice (§6),
//! * [`StudyKind::Prefetch`] — Boolean prefetch confidence (§7).
//!
//! Two modes of operation:
//!
//! * [`experiment::specialize`] — evolve an application-specific priority
//!   function (an advanced form of feedback-directed optimization),
//! * [`experiment::train_general`] — evolve one general-purpose function
//!   over a training suite with dynamic subset selection, then
//!   [`experiment::cross_validate`] it on unrelated benchmarks.
//!
//! Every fitness evaluation differentially checks the compiled program's
//! result against the reference interpreter, so arbitrary evolved priority
//! functions can only change *performance*, never correctness.
//!
//! ```no_run
//! use metaopt::{study, experiment};
//! use metaopt_gp::GpParams;
//!
//! let cfg = study::hyperblock();
//! let bench = metaopt_suite::by_name("rawcaudio").unwrap();
//! let result = experiment::specialize(&cfg, &bench, &GpParams::quick());
//! println!("train speedup: {:.2}", result.train_speedup);
//! ```

pub mod experiment;
pub mod fault;
pub mod pipeline;
pub mod study;

pub use experiment::{CrossValidation, GeneralResult, RunControl, SpecializationResult};
pub use fault::{FaultInjector, FaultStage};
pub use pipeline::{PrepareError, PreparedBench, StudyEvaluator};
pub use study::{StudyConfig, StudyKind};
