//! Benchmark preparation and the compile-and-simulate fitness pipeline.

use crate::study::{ExprPriority, StudyConfig};
use metaopt_compiler::{compile, prepare, CompileStats};
use metaopt_gp::Expr;
use metaopt_ir::interp::{run, RunConfig};
use metaopt_ir::profile::FuncProfile;
use metaopt_ir::Program;
use metaopt_sim::exec::{simulate, simulate_noisy};
use metaopt_suite::{Benchmark, DataSet};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A benchmark made ready for repeated fitness evaluation: inlined IR,
/// training profile, per-data-set memory images and interpreter ground
/// truth, plus the baseline compilation's cycle counts.
pub struct PreparedBench {
    /// Benchmark name.
    pub name: String,
    /// Inlined, cleaned program (single function).
    pub prepared: Program,
    /// Profile collected on the training data (what the compiler sees).
    pub profile: FuncProfile,
    /// Baseline cycles on the training data.
    pub baseline_train_cycles: u64,
    /// Baseline cycles on the novel data.
    pub baseline_novel_cycles: u64,
    /// Baseline compile statistics.
    pub baseline_stats: CompileStats,
    train_mem: Vec<u8>,
    novel_mem: Vec<u8>,
    train_ret: i64,
    novel_ret: i64,
}

const INTERP_STEP_LIMIT: u64 = 100_000_000;

impl PreparedBench {
    /// Prepare `bench` for `study`: inline, profile on the train data,
    /// verify both data sets in the interpreter, and time the baseline.
    ///
    /// # Panics
    /// Panics if the bundled benchmark fails to compile, run, or verify —
    /// all covered by the suite's own tests.
    pub fn new(study: &StudyConfig, bench: &Benchmark) -> Self {
        let prog = bench.program();
        let prepared = prepare(&prog).expect("benchmark call graph is inlinable");
        let train_mem = bench.memory(&prepared, DataSet::Train);
        let novel_mem = bench.memory(&prepared, DataSet::Novel);

        let train_out = run(
            &prepared,
            &RunConfig {
                memory: Some(train_mem.clone()),
                profile: true,
                max_steps: INTERP_STEP_LIMIT,
                ..Default::default()
            },
        )
        .expect("train run succeeds");
        let novel_out = run(
            &prepared,
            &RunConfig {
                memory: Some(novel_mem.clone()),
                max_steps: INTERP_STEP_LIMIT,
                ..Default::default()
            },
        )
        .expect("novel run succeeds");
        let profile = train_out.profile.expect("profile requested").funcs[0].clone();

        let mut pb = PreparedBench {
            name: bench.name.to_string(),
            prepared,
            profile,
            baseline_train_cycles: 0,
            baseline_novel_cycles: 0,
            baseline_stats: CompileStats::default(),
            train_mem,
            novel_mem,
            train_ret: train_out.ret,
            novel_ret: novel_out.ret,
        };
        let passes = study.baseline_passes();
        let compiled = compile(&pb.prepared, &pb.profile, &study.machine, &passes)
            .expect("baseline compilation succeeds");
        pb.baseline_stats = compiled.stats;
        pb.baseline_train_cycles = pb.simulate_compiled(study, &compiled, DataSet::Train, 0);
        pb.baseline_novel_cycles = pb.simulate_compiled(study, &compiled, DataSet::Novel, 0);
        pb
    }

    fn mem_for(&self, compiled: &metaopt_compiler::Compiled, ds: DataSet) -> Vec<u8> {
        let base = match ds {
            DataSet::Train => &self.train_mem,
            DataSet::Novel => &self.novel_mem,
        };
        let mut mem = base.clone();
        mem.resize(compiled.mem_size.max(mem.len()), 0);
        mem
    }

    fn expected_ret(&self, ds: DataSet) -> i64 {
        match ds {
            DataSet::Train => self.train_ret,
            DataSet::Novel => self.novel_ret,
        }
    }

    fn simulate_compiled(
        &self,
        study: &StudyConfig,
        compiled: &metaopt_compiler::Compiled,
        ds: DataSet,
        noise_seed: u64,
    ) -> u64 {
        let mem = self.mem_for(compiled, ds);
        let result = if study.noise > 0.0 {
            simulate_noisy(&compiled.code, &study.machine, mem, study.noise, noise_seed)
        } else {
            simulate(&compiled.code, &study.machine, mem)
        }
        .unwrap_or_else(|e| panic!("simulation of {} failed: {e}", self.name));
        assert_eq!(
            result.ret,
            self.expected_ret(ds),
            "{}: compiled program diverged from the interpreter on {ds:?} — \
             a compiler bug exposed by a priority function",
            self.name
        );
        result.cycles
    }

    /// Compile with `expr` in the study's priority slot and simulate on
    /// `ds`; returns cycles. Differentially verifies the program result.
    ///
    /// Timing noise (if the study has any) is seeded deterministically from
    /// the expression and data set, so memoized fitness stays consistent
    /// while different expressions still see different measurement error —
    /// the situation GP must tolerate on a real machine (paper §7.1).
    pub fn cycles_with(&self, study: &StudyConfig, expr: &Expr, ds: DataSet) -> u64 {
        let pri = ExprPriority(expr);
        let passes = study.passes_with(&pri);
        let compiled = compile(&self.prepared, &self.profile, &study.machine, &passes)
            .unwrap_or_else(|e| panic!("compilation of {} failed: {e}", self.name));
        let mut h = DefaultHasher::new();
        expr.key().hash(&mut h);
        self.name.hash(&mut h);
        (ds == DataSet::Novel).hash(&mut h);
        self.simulate_compiled(study, &compiled, ds, h.finish())
    }

    /// Speedup of `expr` over the baseline heuristic on `ds`.
    pub fn speedup(&self, study: &StudyConfig, expr: &Expr, ds: DataSet) -> f64 {
        let base = match ds {
            DataSet::Train => self.baseline_train_cycles,
            DataSet::Novel => self.baseline_novel_cycles,
        };
        base as f64 / self.cycles_with(study, expr, ds) as f64
    }

    /// Baseline cycles on `ds`.
    pub fn baseline_cycles(&self, ds: DataSet) -> u64 {
        match ds {
            DataSet::Train => self.baseline_train_cycles,
            DataSet::Novel => self.baseline_novel_cycles,
        }
    }
}

/// GP fitness evaluator over a set of prepared benchmarks: fitness of an
/// expression on case *i* is its speedup over the baseline on benchmark
/// *i*'s training data (paper §4: "total execution time" / Table 2:
/// "average speedup over the baseline").
pub struct StudyEvaluator<'a> {
    /// The study being run.
    pub study: &'a StudyConfig,
    /// Prepared benchmarks (the training cases).
    pub benches: &'a [PreparedBench],
}

impl metaopt_gp::Evaluator for StudyEvaluator<'_> {
    fn num_cases(&self) -> usize {
        self.benches.len()
    }

    fn eval_case(&self, expr: &Expr, case: usize) -> f64 {
        self.benches[case].speedup(self.study, expr, DataSet::Train)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study;

    #[test]
    fn baseline_seed_reproduces_baseline_cycles() {
        // Compiling with the GP-expressed baseline seed must give exactly
        // the native baseline's cycle count (the seed is Eq. 1).
        let cfg = study::hyperblock();
        let bench = metaopt_suite::by_name("unepic").unwrap();
        let pb = PreparedBench::new(&cfg, &bench);
        let cycles = pb.cycles_with(&cfg, &cfg.baseline_seed, DataSet::Train);
        assert_eq!(cycles, pb.baseline_train_cycles);
    }

    #[test]
    fn disabling_ifconversion_changes_cycles() {
        let cfg = study::hyperblock();
        let bench = metaopt_suite::by_name("rawdaudio").unwrap();
        let pb = PreparedBench::new(&cfg, &bench);
        let never = metaopt_gp::parse::parse_expr("(rconst -1.0)", &cfg.features).unwrap();
        let c = pb.cycles_with(&cfg, &never, DataSet::Train);
        assert_ne!(c, pb.baseline_train_cycles);
    }

    #[test]
    fn prefetch_study_runs_with_noise() {
        let cfg = study::prefetch();
        let bench = metaopt_suite::by_name("102.swim").unwrap();
        let pb = PreparedBench::new(&cfg, &bench);
        let always = metaopt_gp::parse::parse_expr("(bconst true)", &cfg.features).unwrap();
        let never = metaopt_gp::parse::parse_expr("(bconst false)", &cfg.features).unwrap();
        let ca = pb.cycles_with(&cfg, &always, DataSet::Train);
        let cn = pb.cycles_with(&cfg, &never, DataSet::Train);
        assert!(ca > 0 && cn > 0);
        // Identical inputs give identical (memoizable) results.
        assert_eq!(ca, pb.cycles_with(&cfg, &always, DataSet::Train));
    }

    #[test]
    fn regalloc_study_spills_on_stressed_machine() {
        let cfg = study::regalloc();
        let bench = metaopt_suite::by_name("g721encode").unwrap();
        let pb = PreparedBench::new(&cfg, &bench);
        assert!(pb.baseline_train_cycles > 0);
    }
}
