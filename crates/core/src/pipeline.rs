//! Benchmark preparation and the compile-and-simulate fitness pipeline.
//!
//! Two failure regimes live here, and they are handled differently:
//!
//! * **Preparation** ([`PreparedBench::try_new`]) runs before evolution on
//!   trusted, bundled benchmarks. A failure there is a setup bug, reported
//!   as a [`PrepareError`] carrying the benchmark name.
//! * **Evaluation** ([`PreparedBench::try_cycles_with`] and friends) runs
//!   on *evolved* priority functions, which are adversarial inputs to the
//!   compiler. Every failure — compile error, IR invariant violation,
//!   budget exhaustion, simulator fault, or a wrong answer from the
//!   compiled program — is returned as a classified
//!   [`metaopt_gp::EvalError`] so the GP engine can quarantine the genome
//!   instead of tearing down the run.

use crate::fault::{FaultInjector, FaultStage};
use crate::study::{ExprPriority, StudyConfig};
use metaopt_compiler::{compile, prepare, CompileErrorKind, CompileStats};
use metaopt_gp::{EvalError, EvalErrorKind, EvalOutcome, Expr};
use metaopt_ir::budget;
use metaopt_ir::interp::{run, RunConfig};
use metaopt_ir::profile::FuncProfile;
use metaopt_ir::Program;
use metaopt_sim::exec::{simulate_traced, SimError};
use metaopt_sim::machine::MachineConfig;
use metaopt_suite::{Benchmark, DataSet, SuiteError};
use metaopt_trace::{json::Value, Tracer};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Failure while preparing a benchmark for evaluation (loading, inlining,
/// interpreting the reference run, or timing the baseline). These occur
/// before any evolved genome is involved, so they indicate a broken setup
/// rather than a bad genome.
#[derive(Clone, Debug)]
pub struct PrepareError {
    /// Benchmark that failed to prepare.
    pub bench: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PrepareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot prepare benchmark {}: {}",
            self.bench, self.message
        )
    }
}

impl std::error::Error for PrepareError {}

impl From<SuiteError> for PrepareError {
    fn from(e: SuiteError) -> Self {
        let (bench, message) = match e {
            SuiteError::Compile { bench, message } => (bench, message),
            SuiteError::MissingDataseed { bench } => {
                (bench, "source lacks a dataseed global".to_string())
            }
        };
        PrepareError {
            bench: bench.to_string(),
            message,
        }
    }
}

/// A benchmark made ready for repeated fitness evaluation: inlined IR,
/// training profile, per-data-set memory images and interpreter ground
/// truth, plus the baseline compilation's cycle counts.
pub struct PreparedBench {
    /// Benchmark name.
    pub name: String,
    /// Inlined, cleaned program (single function).
    pub prepared: Program,
    /// Profile collected on the training data (what the compiler sees).
    pub profile: FuncProfile,
    /// Baseline cycles on the training data.
    pub baseline_train_cycles: u64,
    /// Baseline cycles on the novel data.
    pub baseline_novel_cycles: u64,
    /// Baseline compile statistics.
    pub baseline_stats: CompileStats,
    /// The study machine with the per-evaluation instruction budget
    /// ([`budget::EVAL_MAX_SIM_INSTS`]) so a pathological genome cannot
    /// stall a worker for the full default limit. Budgets only bound the
    /// abort point, never the cycle count of a run that finishes, so
    /// fitness is unaffected.
    eval_machine: MachineConfig,
    train_mem: Vec<u8>,
    novel_mem: Vec<u8>,
    train_ret: i64,
    novel_ret: i64,
}

impl PreparedBench {
    /// Prepare `bench` for `study`: inline, profile on the train data,
    /// verify both data sets in the interpreter, and time the baseline.
    pub fn try_new(study: &StudyConfig, bench: &Benchmark) -> Result<Self, PrepareError> {
        let err = |message: String| PrepareError {
            bench: bench.name.to_string(),
            message,
        };
        let prog = bench.try_program()?;
        let prepared = prepare(&prog).map_err(|e| err(format!("inlining failed: {e}")))?;
        let train_mem = bench.try_memory(&prepared, DataSet::Train)?;
        let novel_mem = bench.try_memory(&prepared, DataSet::Novel)?;

        let train_out = run(
            &prepared,
            &RunConfig {
                memory: Some(train_mem.clone()),
                profile: true,
                max_steps: budget::KERNEL_VERIFY_MAX_STEPS,
                ..Default::default()
            },
        )
        .map_err(|e| err(format!("reference run on train data failed: {e}")))?;
        let novel_out = run(
            &prepared,
            &RunConfig {
                memory: Some(novel_mem.clone()),
                max_steps: budget::KERNEL_VERIFY_MAX_STEPS,
                ..Default::default()
            },
        )
        .map_err(|e| err(format!("reference run on novel data failed: {e}")))?;
        let profile = train_out.profile.expect("profile requested").funcs[0].clone();

        let mut eval_machine = study.machine.clone();
        eval_machine.max_insts = budget::EVAL_MAX_SIM_INSTS;
        // The cooperative deadline: the simulator checks the cycle budget
        // every bundle, so even a low-IPC pathological schedule terminates
        // deterministically — the evaluation service's primary hang bound.
        eval_machine.max_cycles = budget::EVAL_MAX_SIM_CYCLES;
        let mut pb = PreparedBench {
            name: bench.name.to_string(),
            prepared,
            profile,
            baseline_train_cycles: 0,
            baseline_novel_cycles: 0,
            baseline_stats: CompileStats::default(),
            eval_machine,
            train_mem,
            novel_mem,
            train_ret: train_out.ret,
            novel_ret: novel_out.ret,
        };
        let passes = study.baseline_passes();
        let compiled = compile(&pb.prepared, &pb.profile, &study.machine, &passes)
            .map_err(|e| err(format!("baseline compilation failed: {e}")))?;
        pb.baseline_stats = compiled.stats.clone();
        pb.baseline_train_cycles = pb
            .try_simulate(
                study,
                &study.machine,
                &compiled,
                DataSet::Train,
                0,
                &Tracer::disabled(),
            )
            .map_err(|e| err(format!("baseline timing failed: {e}")))?;
        pb.baseline_novel_cycles = pb
            .try_simulate(
                study,
                &study.machine,
                &compiled,
                DataSet::Novel,
                0,
                &Tracer::disabled(),
            )
            .map_err(|e| err(format!("baseline timing failed: {e}")))?;
        Ok(pb)
    }

    /// Panicking convenience wrapper around [`PreparedBench::try_new`] for
    /// tests, examples, and benches where a broken bundled benchmark should
    /// abort loudly.
    ///
    /// # Panics
    /// Panics if the bundled benchmark fails to compile, run, or verify.
    pub fn new(study: &StudyConfig, bench: &Benchmark) -> Self {
        Self::try_new(study, bench).unwrap_or_else(|e| panic!("{e}"))
    }

    fn mem_for(&self, compiled: &metaopt_compiler::Compiled, ds: DataSet) -> Vec<u8> {
        let base = match ds {
            DataSet::Train => &self.train_mem,
            DataSet::Novel => &self.novel_mem,
        };
        let mut mem = base.clone();
        mem.resize(compiled.mem_size.max(mem.len()), 0);
        mem
    }

    fn expected_ret(&self, ds: DataSet) -> i64 {
        match ds {
            DataSet::Train => self.train_ret,
            DataSet::Novel => self.novel_ret,
        }
    }

    /// Simulate `compiled` on `ds` with the given machine, differentially
    /// verifying the program result against the interpreter's.
    fn try_simulate(
        &self,
        study: &StudyConfig,
        machine: &MachineConfig,
        compiled: &metaopt_compiler::Compiled,
        ds: DataSet,
        noise_seed: u64,
        tracer: &Tracer,
    ) -> Result<u64, EvalError> {
        let mem = self.mem_for(compiled, ds);
        let noise = (study.noise > 0.0).then_some((study.noise, noise_seed));
        let result = simulate_traced(&compiled.code, machine, mem, noise, study.sim_tier, tracer)
            .map_err(|e| match e {
            SimError::InstLimit(n) => EvalError::new(
                EvalErrorKind::Budget,
                format!(
                    "{}: simulation exceeded the {n}-instruction budget on {ds:?}",
                    self.name
                ),
            ),
            // The cooperative deadline is deterministic (a property of
            // the genome's schedule, not of the host), so it classifies
            // as a permanent budget fault — retrying would be futile.
            SimError::CycleLimit(n) => EvalError::new(
                EvalErrorKind::Budget,
                format!(
                    "{}: simulation exceeded the {n}-cycle cooperative deadline on {ds:?}",
                    self.name
                ),
            ),
            other => EvalError::new(
                EvalErrorKind::Sim,
                format!("{}: simulation fault on {ds:?}: {other}", self.name),
            ),
        })?;
        if result.ret != self.expected_ret(ds) {
            return Err(EvalError::new(
                EvalErrorKind::WrongAnswer,
                format!(
                    "{}: compiled program returned {} but the interpreter returned {} on \
                     {ds:?} — a compiler bug exposed by a priority function",
                    self.name,
                    result.ret,
                    self.expected_ret(ds)
                ),
            ));
        }
        Ok(result.cycles)
    }

    /// Compile with `expr` in the study's priority slot and simulate on
    /// `ds`, optionally consulting a fault injector at each pipeline stage.
    /// `attempt` is the engine's retry attempt index; only the (transient)
    /// timeout stage is attempt-sensitive.
    fn eval_cycles(
        &self,
        study: &StudyConfig,
        expr: &Expr,
        ds: DataSet,
        fault: Option<&FaultInjector>,
        attempt: u32,
        tracer: &Tracer,
    ) -> Result<u64, EvalError> {
        let key = expr.key();
        if let Some(f) = fault {
            f.check(FaultStage::Compile, &key, &self.name)?;
        }
        let pri = ExprPriority(expr);
        let mut passes = study.passes_with(&pri);
        passes.tracer = tracer.clone();
        let compiled =
            compile(&self.prepared, &self.profile, &study.machine, &passes).map_err(|e| {
                let kind = match e.kind {
                    CompileErrorKind::InvariantViolation => EvalErrorKind::IrCheck,
                    CompileErrorKind::Validation => EvalErrorKind::Validation,
                    _ => EvalErrorKind::Compile,
                };
                EvalError::new(kind, format!("{}: {e}", self.name))
            })?;
        if let Some(f) = fault {
            f.check(FaultStage::CheckIr, &key, &self.name)?;
            f.check(FaultStage::Validate, &key, &self.name)?;
            f.check_at(FaultStage::Timeout, &key, &self.name, attempt)?;
            f.check(FaultStage::Simulate, &key, &self.name)?;
        }
        // Timing noise (if the study has any) is seeded deterministically
        // from the expression and data set, so memoized fitness stays
        // consistent while different expressions still see different
        // measurement error — the situation GP must tolerate on a real
        // machine (paper §7.1).
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        self.name.hash(&mut h);
        (ds == DataSet::Novel).hash(&mut h);
        self.try_simulate(study, &self.eval_machine, &compiled, ds, h.finish(), tracer)
    }

    /// Compile with `expr` in the study's priority slot and simulate on
    /// `ds`; returns cycles. Differentially verifies the program result.
    pub fn try_cycles_with(
        &self,
        study: &StudyConfig,
        expr: &Expr,
        ds: DataSet,
    ) -> Result<u64, EvalError> {
        self.eval_cycles(study, expr, ds, None, 0, &Tracer::disabled())
    }

    /// [`PreparedBench::try_cycles_with`], emitting `pass` and `sim` events
    /// for this compile-and-simulate into `tracer`.
    pub fn try_cycles_traced(
        &self,
        study: &StudyConfig,
        expr: &Expr,
        ds: DataSet,
        tracer: &Tracer,
    ) -> Result<u64, EvalError> {
        self.eval_cycles(study, expr, ds, None, 0, tracer)
    }

    /// Panicking wrapper around [`PreparedBench::try_cycles_with`] for
    /// tests and examples.
    ///
    /// # Panics
    /// Panics if compilation, simulation, or differential verification
    /// fails for `expr`.
    pub fn cycles_with(&self, study: &StudyConfig, expr: &Expr, ds: DataSet) -> u64 {
        self.try_cycles_with(study, expr, ds)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Speedup of `expr` over the baseline heuristic on `ds`.
    pub fn try_speedup(
        &self,
        study: &StudyConfig,
        expr: &Expr,
        ds: DataSet,
    ) -> Result<f64, EvalError> {
        let base = self.baseline_cycles(ds);
        Ok(base as f64 / self.try_cycles_with(study, expr, ds)? as f64)
    }

    /// Panicking wrapper around [`PreparedBench::try_speedup`] for tests
    /// and examples.
    ///
    /// # Panics
    /// Panics if the evaluation of `expr` fails.
    pub fn speedup(&self, study: &StudyConfig, expr: &Expr, ds: DataSet) -> f64 {
        self.try_speedup(study, expr, ds)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Baseline cycles on `ds`.
    pub fn baseline_cycles(&self, ds: DataSet) -> u64 {
        match ds {
            DataSet::Train => self.baseline_train_cycles,
            DataSet::Novel => self.baseline_novel_cycles,
        }
    }

    /// Compile under `plan` with the shipped baseline priority functions
    /// and simulate on `ds`, differentially verifying the result. Returns
    /// cycles and the compile statistics (including per-pass timing).
    ///
    /// This is the phase-ordering workload: the benchmark is prepared once
    /// and then evaluated under arbitrary legal pipeline plans.
    pub fn try_plan_cycles(
        &self,
        study: &StudyConfig,
        plan: &metaopt_compiler::PipelinePlan,
        ds: DataSet,
    ) -> Result<(u64, CompileStats), EvalError> {
        self.try_plan_cycles_traced(study, plan, ds, &Tracer::disabled())
    }

    /// [`PreparedBench::try_plan_cycles`], emitting `pass` and `sim` events
    /// into `tracer`.
    pub fn try_plan_cycles_traced(
        &self,
        study: &StudyConfig,
        plan: &metaopt_compiler::PipelinePlan,
        ds: DataSet,
        tracer: &Tracer,
    ) -> Result<(u64, CompileStats), EvalError> {
        let passes = metaopt_compiler::Passes {
            plan: plan.clone(),
            tracer: tracer.clone(),
            ..study.baseline_passes()
        };
        let compiled =
            compile(&self.prepared, &self.profile, &study.machine, &passes).map_err(|e| {
                let kind = match e.kind {
                    CompileErrorKind::InvariantViolation => EvalErrorKind::IrCheck,
                    CompileErrorKind::Validation => EvalErrorKind::Validation,
                    _ => EvalErrorKind::Compile,
                };
                EvalError::new(kind, format!("{}: plan {plan}: {e}", self.name))
            })?;
        let cycles = self.try_simulate(study, &self.eval_machine, &compiled, ds, 0, tracer)?;
        Ok((cycles, compiled.stats))
    }

    /// Panicking wrapper around [`PreparedBench::try_plan_cycles`] for
    /// tests, examples, and benches.
    ///
    /// # Panics
    /// Panics if compilation, simulation, or differential verification
    /// fails under `plan`.
    pub fn plan_cycles(
        &self,
        study: &StudyConfig,
        plan: &metaopt_compiler::PipelinePlan,
        ds: DataSet,
    ) -> (u64, CompileStats) {
        self.try_plan_cycles(study, plan, ds)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Compile with `expr` in the study's priority slot **under an
    /// arbitrary legal pipeline plan** and simulate on `ds` — the joint
    /// workload of co-evolution. Returns the multi-objective vector
    /// (all minimized):
    ///
    /// * `cycles` — simulated cycles, differentially verified;
    /// * `size` — static instruction count of the compiled code;
    /// * `compile` — a deterministic compile-cost proxy,
    ///   `plan length × static instructions` (the pass-sweep work bound).
    ///   Measured wall time would make selection depend on host load and
    ///   thread count, breaking the engine's bit-identical determinism
    ///   contract; wall nanos stay observable via `pass` trace events and
    ///   `metaopt ablate --json` instead.
    pub fn try_objectives_traced(
        &self,
        study: &StudyConfig,
        plan: &metaopt_compiler::PipelinePlan,
        expr: &Expr,
        ds: DataSet,
        tracer: &Tracer,
    ) -> Result<[u64; 3], EvalError> {
        let pri = ExprPriority(expr);
        let mut passes = study.passes_with(&pri);
        passes.plan = plan.clone();
        passes.tracer = tracer.clone();
        let compiled =
            compile(&self.prepared, &self.profile, &study.machine, &passes).map_err(|e| {
                let kind = match e.kind {
                    CompileErrorKind::InvariantViolation => EvalErrorKind::IrCheck,
                    CompileErrorKind::Validation => EvalErrorKind::Validation,
                    _ => EvalErrorKind::Compile,
                };
                EvalError::new(kind, format!("{}: plan {plan}: {e}", self.name))
            })?;
        // Noise is seeded from the full genome (plan and expression), so
        // memoized objective vectors stay consistent while distinct
        // genomes see distinct measurement error.
        let mut h = DefaultHasher::new();
        expr.key().hash(&mut h);
        plan.to_string().hash(&mut h);
        self.name.hash(&mut h);
        (ds == DataSet::Novel).hash(&mut h);
        let cycles =
            self.try_simulate(study, &self.eval_machine, &compiled, ds, h.finish(), tracer)?;
        let size = compiled.stats.counters.static_insts;
        let compile_cost = (plan.steps().len() as u64).saturating_mul(size);
        Ok([cycles, size, compile_cost])
    }
}

/// GP fitness evaluator over a set of prepared benchmarks: fitness of an
/// expression on case *i* is its speedup over the baseline on benchmark
/// *i*'s training data (paper §4: "total execution time" / Table 2:
/// "average speedup over the baseline").
///
/// Evaluation failures are returned as [`EvalOutcome::Failed`] with a
/// classified error; the GP engine quarantines the genome and assigns the
/// penalty fitness. With the `fault-inject` feature, an optional
/// [`FaultInjector`] can deterministically force such failures for
/// robustness testing.
pub struct StudyEvaluator<'a> {
    study: &'a StudyConfig,
    benches: &'a [PreparedBench],
    fault: Option<FaultInjector>,
    tracer: Tracer,
}

impl<'a> StudyEvaluator<'a> {
    /// Evaluator for `study` over the prepared training cases.
    pub fn new(study: &'a StudyConfig, benches: &'a [PreparedBench]) -> Self {
        StudyEvaluator {
            study,
            benches,
            fault: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Emit `pass`/`sim` events (stamped with the benchmark name) for every
    /// evaluation into `tracer`.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attach a deterministic fault injector (robustness testing only).
    #[cfg(feature = "fault-inject")]
    pub fn with_fault(mut self, injector: FaultInjector) -> Self {
        self.fault = Some(injector);
        self
    }
}

impl metaopt_gp::Evaluator for StudyEvaluator<'_> {
    fn num_cases(&self) -> usize {
        self.benches.len()
    }

    fn eval_case(&self, expr: &Expr, case: usize) -> EvalOutcome {
        self.eval_case_attempt(expr, case, 0)
    }

    fn eval_case_attempt(&self, expr: &Expr, case: usize, attempt: u32) -> EvalOutcome {
        let pb = &self.benches[case];
        let tracer = self
            .tracer
            .scoped([("bench", Value::str(pb.name.as_str()))]);
        match pb.eval_cycles(
            self.study,
            expr,
            DataSet::Train,
            self.fault.as_ref(),
            attempt,
            &tracer,
        ) {
            Ok(cycles) => EvalOutcome::Score(pb.baseline_train_cycles as f64 / cycles as f64),
            Err(e) => EvalOutcome::Failed(e),
        }
    }
}

/// Multi-objective fitness evaluator over prepared benchmarks for
/// co-evolution: each `(plan, expr)` genome compiles under the genome's
/// own pipeline plan with the expression in the study's priority slot, and
/// scores as the integer objective vector of
/// [`PreparedBench::try_objectives_traced`] on the training data.
pub struct StudyMultiEvaluator<'a> {
    study: &'a StudyConfig,
    benches: &'a [PreparedBench],
    tracer: Tracer,
}

impl<'a> StudyMultiEvaluator<'a> {
    /// Evaluator for `study` over the prepared training cases.
    pub fn new(study: &'a StudyConfig, benches: &'a [PreparedBench]) -> Self {
        StudyMultiEvaluator {
            study,
            benches,
            tracer: Tracer::disabled(),
        }
    }

    /// Emit `pass`/`sim` events (stamped with the benchmark name) for every
    /// evaluation into `tracer`.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }
}

impl metaopt_gp::MultiEvaluator for StudyMultiEvaluator<'_> {
    fn num_cases(&self) -> usize {
        self.benches.len()
    }

    fn eval_objectives(
        &self,
        plan: &str,
        expr: &Expr,
        case: usize,
        _attempt: u32,
    ) -> Result<[u64; 3], EvalError> {
        let pb = &self.benches[case];
        let plan: metaopt_compiler::PipelinePlan = plan.parse().map_err(|e| {
            EvalError::new(
                EvalErrorKind::Compile,
                format!("{}: unparseable pipeline plan {plan:?}: {e}", pb.name),
            )
        })?;
        let tracer = self
            .tracer
            .scoped([("bench", Value::str(pb.name.as_str()))]);
        pb.try_objectives_traced(self.study, &plan, expr, DataSet::Train, &tracer)
    }
}

/// The plan half of the co-evolution search space: seeds, genetic
/// operators, and validity over canonical plan strings, delegating to the
/// compiler's structural grammar and `plan_ops` operators. Implemented
/// here (not in the GP crate) so the engine stays compiler-agnostic.
pub struct StudyPlanSpace {
    seeds: Vec<metaopt_compiler::PipelinePlan>,
}

impl StudyPlanSpace {
    /// Plan space seeded with the study's own plan and the minimal legal
    /// plan. The minimal plan has the strictly smallest compile-cost and
    /// size objectives of any legal pipeline, so fronts start with a
    /// genuine trade-off axis already populated.
    pub fn new(study: &StudyConfig) -> Self {
        let mut seeds = vec![
            metaopt_compiler::PipelinePlan::minimal(),
            study.plan.clone(),
        ];
        seeds.dedup_by_key(|p| p.to_string());
        StudyPlanSpace { seeds }
    }
}

impl metaopt_gp::PlanSpace for StudyPlanSpace {
    fn seed_plans(&self) -> Vec<String> {
        self.seeds.iter().map(|p| p.to_string()).collect()
    }

    fn mutate_plan(&self, rng: &mut rand::rngs::StdRng, plan: &str) -> String {
        let plan: metaopt_compiler::PipelinePlan =
            plan.parse().expect("plan genomes are canonical");
        metaopt_compiler::plan_ops::mutate_plan(rng, &plan).to_string()
    }

    fn crossover_plans(&self, rng: &mut rand::rngs::StdRng, a: &str, b: &str) -> String {
        let a: metaopt_compiler::PipelinePlan = a.parse().expect("plan genomes are canonical");
        let b: metaopt_compiler::PipelinePlan = b.parse().expect("plan genomes are canonical");
        metaopt_compiler::plan_ops::crossover_plans(rng, &a, &b).to_string()
    }

    fn is_valid(&self, plan: &str) -> bool {
        plan.parse::<metaopt_compiler::PipelinePlan>()
            .is_ok_and(|p| p.to_string() == plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study;

    #[test]
    fn baseline_seed_reproduces_baseline_cycles() {
        // Compiling with the GP-expressed baseline seed must give exactly
        // the native baseline's cycle count (the seed is Eq. 1).
        let cfg = study::hyperblock();
        let bench = metaopt_suite::by_name("unepic").unwrap();
        let pb = PreparedBench::new(&cfg, &bench);
        let cycles = pb.cycles_with(&cfg, &cfg.baseline_seed, DataSet::Train);
        assert_eq!(cycles, pb.baseline_train_cycles);
    }

    #[test]
    fn disabling_ifconversion_changes_cycles() {
        let cfg = study::hyperblock();
        let bench = metaopt_suite::by_name("rawdaudio").unwrap();
        let pb = PreparedBench::new(&cfg, &bench);
        let never = metaopt_gp::parse::parse_expr("(rconst -1.0)", &cfg.features).unwrap();
        let c = pb.cycles_with(&cfg, &never, DataSet::Train);
        assert_ne!(c, pb.baseline_train_cycles);
    }

    #[test]
    fn prefetch_study_runs_with_noise() {
        let cfg = study::prefetch();
        let bench = metaopt_suite::by_name("102.swim").unwrap();
        let pb = PreparedBench::new(&cfg, &bench);
        let always = metaopt_gp::parse::parse_expr("(bconst true)", &cfg.features).unwrap();
        let never = metaopt_gp::parse::parse_expr("(bconst false)", &cfg.features).unwrap();
        let ca = pb.cycles_with(&cfg, &always, DataSet::Train);
        let cn = pb.cycles_with(&cfg, &never, DataSet::Train);
        assert!(ca > 0 && cn > 0);
        // Identical inputs give identical (memoizable) results.
        assert_eq!(ca, pb.cycles_with(&cfg, &always, DataSet::Train));
    }

    #[test]
    fn regalloc_study_spills_on_stressed_machine() {
        let cfg = study::regalloc();
        let bench = metaopt_suite::by_name("g721encode").unwrap();
        let pb = PreparedBench::new(&cfg, &bench);
        assert!(pb.baseline_train_cycles > 0);
    }

    #[test]
    fn evaluator_scores_the_baseline_seed_at_one() {
        let cfg = study::hyperblock();
        let bench = metaopt_suite::by_name("unepic").unwrap();
        let benches = [PreparedBench::new(&cfg, &bench)];
        let ev = StudyEvaluator::new(&cfg, &benches);
        let out = metaopt_gp::Evaluator::eval_case(&ev, &cfg.baseline_seed, 0);
        match out {
            EvalOutcome::Score(s) => assert!((s - 1.0).abs() < 1e-12, "speedup {s}"),
            EvalOutcome::Failed(e) => panic!("baseline seed failed: {e}"),
        }
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_faults_surface_as_classified_failures() {
        let cfg = study::hyperblock();
        let bench = metaopt_suite::by_name("unepic").unwrap();
        let benches = [PreparedBench::new(&cfg, &bench)];
        // Only the per-evaluation pipeline stages surface through
        // `eval_case`; `CacheCorrupt` acts at the storage layer and is
        // exercised through the fitness store's corruption hook instead.
        for stage in FaultStage::EVAL {
            let ev = StudyEvaluator::new(&cfg, &benches)
                .with_fault(FaultInjector::new(0).with_rate(stage, 1.0));
            match metaopt_gp::Evaluator::eval_case(&ev, &cfg.baseline_seed, 0) {
                EvalOutcome::Failed(e) => {
                    assert_eq!(e.kind, stage.kind());
                    assert!(e.injected);
                }
                EvalOutcome::Score(s) => panic!("expected injected failure, got score {s}"),
            }
        }
    }
}
