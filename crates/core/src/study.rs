//! The three case studies: which compiler pass is evolved, on which
//! machine, with which features, seeds and baselines.

use metaopt_compiler::{
    hyperblock, prefetch, regalloc, BoolPriority, Passes, PipelinePlan, RealPriority,
    ValidationLevel,
};
use metaopt_gp::expr::{Env, Expr};
use metaopt_gp::parse::parse_expr;
use metaopt_gp::{FeatureSet, Kind};
use metaopt_sim::{MachineConfig, SimTier};

/// Which priority function is being evolved.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StudyKind {
    /// Hyperblock-formation path priority (paper §5, real-valued).
    Hyperblock,
    /// Register-allocation per-block savings (paper §6, real-valued).
    Regalloc,
    /// Data-prefetch confidence (paper §7, Boolean).
    Prefetch,
}

/// Full configuration of a case study.
#[derive(Clone, Debug)]
pub struct StudyConfig {
    /// Which pass is evolved.
    pub kind: StudyKind,
    /// Target machine.
    pub machine: MachineConfig,
    /// Feature set the genomes are built over.
    pub features: FeatureSet,
    /// The baseline heuristic expressed as a GP genome (seeds the initial
    /// population, paper §4).
    pub baseline_seed: Expr,
    /// Multiplicative timing-noise amplitude (the prefetch study runs on a
    /// "real machine"; paper §7.1), 0.0 for the simulated studies.
    pub noise: f64,
    /// Genome sort.
    pub genome_kind: Kind,
    /// Run the inter-pass IR invariant checker at every pass boundary of
    /// every compilation in this study. Defaults to the compiler crate's
    /// `check-ir` feature; flip at runtime with [`StudyConfig::with_check_ir`]
    /// (the CLI's `--check-ir`).
    pub check_ir: bool,
    /// The pipeline plan every compilation in this study executes. Each
    /// study's constructor picks the paper-calibrated plan (the evolved
    /// pass plus the fixed downstream passes); override with
    /// [`StudyConfig::with_plan`] (the CLI's `--passes`) or
    /// [`StudyConfig::with_unroll`] (the CLI's `--unroll`) to explore the
    /// phase-ordering space.
    pub plan: PipelinePlan,
    /// Which simulator execution tier evaluations run on. Both tiers are
    /// bit-identical in every observable by contract, so this is purely a
    /// throughput knob: it never enters fitness, the persistent fitness
    /// cache, or checkpoint fingerprints. Defaults to the fast bytecode
    /// tier; flip with [`StudyConfig::with_sim_tier`] (the CLI's
    /// `--sim-tier`).
    pub sim_tier: SimTier,
    /// Semantic-validation level every compilation in this study runs at:
    /// per-pass translation validators at [`ValidationLevel::Fast`], plus
    /// post-pass abstract interpretation at [`ValidationLevel::Full`]. Off
    /// by default; flip with [`StudyConfig::with_validate`] (the CLI's
    /// `--validate`).
    pub validate: ValidationLevel,
}

fn features_from(names: (Vec<&'static str>, Vec<&'static str>)) -> FeatureSet {
    let mut fs = FeatureSet::new();
    for r in names.0 {
        fs.add_real(r);
    }
    for b in names.1 {
        fs.add_bool(b);
    }
    fs
}

/// The hyperblock-formation study (paper §5): Table 3 machine, Table 4
/// features, Eq. 1 seed.
pub fn hyperblock() -> StudyConfig {
    let features = features_from(hyperblock::feature_names());
    let seed = parse_expr(
        "(mul exec_ratio (cmul (or (barg mem_hazard) (or (barg has_unsafe_jsr) (barg has_pointer_deref))) \
           0.25 \
           (sub 2.1 (add (div dep_height dep_height_max) (div num_ops num_ops_max)))))",
        &features,
    )
    .expect("Eq. 1 seed parses");
    StudyConfig {
        kind: StudyKind::Hyperblock,
        machine: MachineConfig::table3(),
        features,
        baseline_seed: seed,
        noise: 0.0,
        genome_kind: Kind::Real,
        check_ir: metaopt_compiler::CHECK_IR_DEFAULT,
        sim_tier: SimTier::default(),
        plan: PipelinePlan::parse("hyperblock,regalloc,schedule").expect("study plan is valid"),
        validate: ValidationLevel::Off,
    }
}

/// The register-allocation study (paper §6): Table 3 machine restricted to
/// 32 GPR / 32 FPR, Eq. 2 seed.
pub fn regalloc() -> StudyConfig {
    let features = features_from(regalloc::feature_names());
    let seed =
        parse_expr("(mul w (add (mul 2.0 uses) defs))", &features).expect("Eq. 2 seed parses");
    StudyConfig {
        kind: StudyKind::Regalloc,
        machine: MachineConfig::regalloc_stress(),
        features,
        baseline_seed: seed,
        noise: 0.0,
        genome_kind: Kind::Real,
        check_ir: metaopt_compiler::CHECK_IR_DEFAULT,
        sim_tier: SimTier::default(),
        plan: PipelinePlan::parse("hyperblock,regalloc,schedule").expect("study plan is valid"),
        validate: ValidationLevel::Off,
    }
}

/// The data-prefetching study (paper §7): Itanium-like machine, Boolean
/// confidence genome, ORC-like trip-count seed, real-machine noise.
pub fn prefetch() -> StudyConfig {
    let features = features_from(prefetch::feature_names());
    let seed = parse_expr("(barg trip_known)", &features).expect("trip-count seed parses");
    StudyConfig {
        kind: StudyKind::Prefetch,
        machine: MachineConfig::itanium_like(),
        features,
        baseline_seed: seed,
        noise: 0.005,
        genome_kind: Kind::Bool,
        check_ir: metaopt_compiler::CHECK_IR_DEFAULT,
        sim_tier: SimTier::default(),
        plan: PipelinePlan::parse("prefetch,regalloc,schedule").expect("study plan is valid"),
        validate: ValidationLevel::Off,
    }
}

/// Adapter: a GP expression used as a real-valued priority function.
pub struct ExprPriority<'a>(pub &'a Expr);

impl RealPriority for ExprPriority<'_> {
    fn score(&self, reals: &[f64], bools: &[bool]) -> f64 {
        self.0.eval_real(&Env { reals, bools })
    }
}

impl BoolPriority for ExprPriority<'_> {
    fn decide(&self, reals: &[f64], bools: &[bool]) -> bool {
        self.0.eval_bool(&Env { reals, bools })
    }
}

impl StudyConfig {
    /// This study with IR invariant checking switched on or off.
    pub fn with_check_ir(mut self, on: bool) -> Self {
        self.check_ir = on;
        self
    }

    /// This study simulating on `tier` (the fast bytecode tier or the
    /// reference cycle-level interpreter; results are identical, only
    /// throughput differs).
    pub fn with_sim_tier(mut self, tier: SimTier) -> Self {
        self.sim_tier = tier;
        self
    }

    /// This study with semantic validation at `level` (the translation
    /// validators at `fast`, plus abstract interpretation at `full`).
    pub fn with_validate(mut self, level: ValidationLevel) -> Self {
        self.validate = level;
        self
    }

    /// This study running `plan` instead of its paper-calibrated pipeline.
    /// Priority slots for passes outside the study keep their shipped
    /// baselines, so any legal plan is runnable.
    pub fn with_plan(mut self, plan: PipelinePlan) -> Self {
        self.plan = plan;
        self
    }

    /// This study with a `unroll(factor)` step prepended to its plan
    /// (replacing any existing unroll step; `factor < 2` removes it).
    pub fn with_unroll(mut self, factor: u32) -> Self {
        self.plan = self.plan.with_unroll(factor);
        self
    }

    /// The pass configuration with the study's slot filled by `expr`
    /// (the other passes run their shipped baselines).
    pub fn passes_with<'a>(&self, expr: &'a ExprPriority<'a>) -> Passes<'a> {
        let mut passes: Passes<'a> = self.baseline_passes();
        match self.kind {
            StudyKind::Hyperblock => passes.hyperblock = expr,
            StudyKind::Regalloc => passes.regalloc = expr,
            StudyKind::Prefetch => passes.prefetch = expr,
        }
        passes
    }

    /// The pass configuration with the study's shipped baseline heuristic:
    /// the study's plan, baseline priorities in every slot.
    pub fn baseline_passes(&self) -> Passes<'static> {
        Passes {
            plan: self.plan.clone(),
            hyperblock: &hyperblock::BaselineEq1,
            regalloc: &regalloc::BaselineEq2,
            prefetch: &prefetch::BaselineTripCount,
            prefetch_iters_ahead: 8,
            check_ir: self.check_ir,
            validate: self.validate,
            tracer: metaopt_trace::Tracer::disabled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_studies_construct() {
        for cfg in [hyperblock(), regalloc(), prefetch()] {
            assert!(cfg.features.num_reals() > 0);
            assert!(cfg.baseline_seed.size() >= 1);
        }
    }

    #[test]
    fn hyperblock_seed_matches_native_eq1() {
        // The GP-expressed Eq. 1 seed must agree with the native baseline on
        // arbitrary feature vectors.
        let cfg = hyperblock();
        let n = cfg.features.num_reals();
        for trial in 0..50 {
            let reals: Vec<f64> = (0..n)
                .map(|i| ((trial * 31 + i * 7) % 13) as f64 + 0.5)
                .collect();
            let bools = [trial % 3 == 0, trial % 5 == 0, trial % 7 == 0];
            let native = metaopt_compiler::hyperblock::BaselineEq1.score(&reals, &bools);
            let seeded = ExprPriority(&cfg.baseline_seed).score(&reals, &bools);
            assert!(
                (native - seeded).abs() < 1e-9,
                "trial {trial}: native {native} vs seed {seeded}"
            );
        }
    }

    #[test]
    fn regalloc_seed_matches_native_eq2() {
        let cfg = regalloc();
        for trial in 0..20 {
            let reals: Vec<f64> = (0..cfg.features.num_reals())
                .map(|i| ((trial + i * 3) % 9) as f64)
                .collect();
            let bools = [false, false];
            let native = metaopt_compiler::regalloc::BaselineEq2.score(&reals, &bools);
            let seeded = ExprPriority(&cfg.baseline_seed).score(&reals, &bools);
            assert!((native - seeded).abs() < 1e-9);
        }
    }

    #[test]
    fn prefetch_seed_matches_native_baseline() {
        let cfg = prefetch();
        let reals = vec![0.0; cfg.features.num_reals()];
        for sk in [false, true] {
            for tk in [false, true] {
                let bools = [sk, tk, false];
                let native = metaopt_compiler::prefetch::BaselineTripCount.decide(&reals, &bools);
                let seeded = ExprPriority(&cfg.baseline_seed).decide(&reals, &bools);
                assert_eq!(native, seeded);
            }
        }
    }
}
