//! Acceptance test for the inter-pass IR invariant checker: the full
//! pipeline, run over **every** bundled suite benchmark under each study's
//! machine and baseline heuristics, must pass every checkpoint — prepare
//! (inline / constant-fold / DCE) and compile (unroll / prefetch /
//! hyperblock / regalloc) alike.

use metaopt::study;
use metaopt_compiler::{compile, prepare_checked};
use metaopt_ir::budget::KERNEL_VERIFY_MAX_STEPS;
use metaopt_ir::interp::{run, RunConfig};
use metaopt_suite::DataSet;

#[test]
fn every_suite_benchmark_compiles_clean_under_check_ir() {
    for cfg in [study::hyperblock(), study::regalloc(), study::prefetch()] {
        let cfg = cfg.with_check_ir(true);
        for bench in metaopt_suite::all_benchmarks() {
            let prog = bench.program();
            let prepared = prepare_checked(&prog, true)
                .unwrap_or_else(|e| panic!("{}: prepare checkpoints failed: {e}", bench.name));
            let mem = bench.memory(&prepared, DataSet::Train);
            let profile = run(
                &prepared,
                &RunConfig {
                    memory: Some(mem),
                    profile: true,
                    max_steps: KERNEL_VERIFY_MAX_STEPS,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("{}: profiling run failed: {e:?}", bench.name))
            .profile
            .expect("profile requested")
            .funcs[0]
                .clone();
            // Baseline passes inherit cfg.check_ir = true, so every pass
            // boundary of this compilation is checked.
            let passes = cfg.baseline_passes();
            assert!(passes.check_ir);
            compile(&prepared, &profile, &cfg.machine, &passes).unwrap_or_else(|e| {
                panic!(
                    "{} under {:?} study: compile checkpoints failed: {e}",
                    bench.name, cfg.kind
                )
            });
        }
    }
}
