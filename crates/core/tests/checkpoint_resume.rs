//! End-to-end checkpoint/resume acceptance: start a real `metaopt` run as
//! a subprocess, SIGKILL it mid-evolution once its first checkpoint lands,
//! resume from the checkpoint file, and require the resumed run to report
//! *exactly* the same winner and speedups as a never-interrupted run.
//!
//! Works on any kill point: checkpoints are written atomically (tmp +
//! rename), so the file on disk is always a complete generation boundary,
//! and resumption replays the remaining generations deterministically.

use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

const GP_ARGS: &[&str] = &[
    "specialize",
    "hyperblock",
    "unepic",
    "--pop",
    "12",
    "--gens",
    "6",
    "--seed",
    "42",
    "--threads",
    "2",
];

fn metaopt(extra: &[&str]) -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_metaopt"));
    c.args(GP_ARGS).args(extra);
    c
}

/// The lines a run is judged by: the re-parseable winner and its speedups.
fn key_lines(stdout: &[u8]) -> Vec<String> {
    String::from_utf8_lossy(stdout)
        .lines()
        .filter(|l| {
            l.starts_with("raw (re-parseable):")
                || l.starts_with("train speedup:")
                || l.starts_with("novel speedup:")
        })
        .map(str::to_string)
        .collect()
}

#[test]
fn killed_run_resumes_to_the_same_result() {
    let path: PathBuf =
        std::env::temp_dir().join(format!("metaopt-kill-resume-{}.ck", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // Launch the run with checkpointing, then kill it as soon as the first
    // checkpoint exists. If the run wins the race and finishes first, the
    // kill is a no-op and resume starts from the final checkpoint — the
    // equality below must hold at *any* kill point.
    let mut child = metaopt(&["--checkpoint", path.to_str().unwrap()])
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn metaopt");
    let deadline = Instant::now() + Duration::from_secs(120);
    while !path.exists() {
        assert!(Instant::now() < deadline, "no checkpoint within 120s");
        if child.try_wait().expect("try_wait").is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = child.kill();
    let _ = child.wait();
    assert!(path.exists(), "a checkpoint must survive the kill");

    let resumed = metaopt(&["--resume", path.to_str().unwrap()])
        .output()
        .expect("resumed run");
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let straight = metaopt(&[]).output().expect("uninterrupted run");
    assert!(straight.status.success());

    let r = key_lines(&resumed.stdout);
    let s = key_lines(&straight.stdout);
    assert_eq!(r.len(), 3, "expected 3 key lines, got {r:?}");
    assert_eq!(
        r, s,
        "resumed run must reproduce the uninterrupted run exactly"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_rejects_a_checkpoint_from_different_parameters() {
    let path: PathBuf =
        std::env::temp_dir().join(format!("metaopt-mismatch-{}.ck", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let first = metaopt(&["--checkpoint", path.to_str().unwrap()])
        .output()
        .expect("checkpointed run");
    assert!(first.status.success());
    assert!(path.exists());

    // Same checkpoint, different population size: must be refused, loudly.
    let mut c = Command::new(env!("CARGO_BIN_EXE_metaopt"));
    c.args([
        "specialize",
        "hyperblock",
        "unepic",
        "--pop",
        "14",
        "--gens",
        "6",
        "--seed",
        "42",
        "--resume",
        path.to_str().unwrap(),
    ]);
    let out = c.output().expect("mismatched resume");
    assert!(!out.status.success(), "mismatched resume must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("checkpoint"),
        "error should mention the checkpoint: {stderr}"
    );
    let _ = std::fs::remove_file(&path);
}
