//! End-to-end checkpoint/resume acceptance: start a real `metaopt` run as
//! a subprocess, SIGKILL it mid-evolution once its first checkpoint lands,
//! resume from the checkpoint file, and require the resumed run to report
//! *exactly* the same winner and speedups as a never-interrupted run.
//!
//! Works on any kill point: checkpoints are written atomically (tmp +
//! rename), so the file on disk is always a complete generation boundary,
//! and resumption replays the remaining generations deterministically.

use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

const GP_ARGS: &[&str] = &[
    "specialize",
    "hyperblock",
    "unepic",
    "--pop",
    "12",
    "--gens",
    "6",
    "--seed",
    "42",
    "--threads",
    "2",
];

fn metaopt(extra: &[&str]) -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_metaopt"));
    c.args(GP_ARGS).args(extra);
    c
}

/// The lines a run is judged by: the re-parseable winner and its speedups.
fn key_lines(stdout: &[u8]) -> Vec<String> {
    String::from_utf8_lossy(stdout)
        .lines()
        .filter(|l| {
            l.starts_with("raw (re-parseable):")
                || l.starts_with("train speedup:")
                || l.starts_with("novel speedup:")
        })
        .map(str::to_string)
        .collect()
}

#[test]
fn killed_run_resumes_to_the_same_result() {
    let path: PathBuf =
        std::env::temp_dir().join(format!("metaopt-kill-resume-{}.ck", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // Launch the run with checkpointing, then kill it as soon as the first
    // checkpoint exists. If the run wins the race and finishes first, the
    // kill is a no-op and resume starts from the final checkpoint — the
    // equality below must hold at *any* kill point.
    let mut child = metaopt(&["--checkpoint", path.to_str().unwrap()])
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn metaopt");
    let deadline = Instant::now() + Duration::from_secs(120);
    while !path.exists() {
        assert!(Instant::now() < deadline, "no checkpoint within 120s");
        if child.try_wait().expect("try_wait").is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = child.kill();
    let _ = child.wait();
    assert!(path.exists(), "a checkpoint must survive the kill");

    let resumed = metaopt(&["--resume", path.to_str().unwrap()])
        .output()
        .expect("resumed run");
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let straight = metaopt(&[]).output().expect("uninterrupted run");
    assert!(straight.status.success());

    let r = key_lines(&resumed.stdout);
    let s = key_lines(&straight.stdout);
    assert_eq!(r.len(), 3, "expected 3 key lines, got {r:?}");
    assert_eq!(
        r, s,
        "resumed run must reproduce the uninterrupted run exactly"
    );
    let _ = std::fs::remove_file(&path);
}

/// Kill -9 a run while it is appending to the persistent fitness cache,
/// then deliberately tear the file's tail mid-record (the worst crash the
/// append protocol can leave behind). The next run must recover the cache
/// on open — dropping only the torn tail — answer evaluations from it
/// (warm hits > 0), and still report *exactly* the same winner and
/// speedups as a never-interrupted, never-cached run.
#[test]
fn killed_run_leaves_a_recoverable_fitness_cache() {
    let cache: PathBuf =
        std::env::temp_dir().join(format!("metaopt-kill-cache-{}.bin", std::process::id()));
    let trace: PathBuf =
        std::env::temp_dir().join(format!("metaopt-kill-cache-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&cache);
    let _ = std::fs::remove_file(&trace);

    // Kill once the cache holds the header plus a few full records. If the
    // run wins the race and finishes first, the kill is a no-op and the
    // torn tail below still exercises recovery.
    let mut child = metaopt(&["--eval-cache", cache.to_str().unwrap()])
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn metaopt");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let len = std::fs::metadata(&cache).map(|m| m.len()).unwrap_or(0);
        if len >= 1000 || child.try_wait().expect("try_wait").is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "cache never grew within 120s");
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = child.kill();
    let _ = child.wait();

    // Tear the last record: chop a few bytes off the tail, as a crash in
    // the middle of a `write_all` would.
    let len = std::fs::metadata(&cache)
        .expect("cache must survive the kill")
        .len();
    assert!(
        len > 100,
        "cache should hold at least the header: {len} bytes"
    );
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&cache)
        .expect("open cache for truncation");
    f.set_len(len - 5).expect("tear the tail");
    drop(f);

    let warm = metaopt(&[
        "--eval-cache",
        cache.to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
    ])
    .output()
    .expect("warm run");
    assert!(
        warm.status.success(),
        "warm run failed: {}",
        String::from_utf8_lossy(&warm.stderr)
    );
    let straight = metaopt(&[]).output().expect("uninterrupted run");
    assert!(straight.status.success());

    // Same winner and speedups as a run that never saw a cache or a crash.
    assert_eq!(
        key_lines(&warm.stdout),
        key_lines(&straight.stdout),
        "warm recovered run must reproduce the uninterrupted run exactly"
    );
    // The store actually answered evaluations.
    let stdout = String::from_utf8_lossy(&warm.stdout).to_string();
    let hits: u64 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("eval cache warm hits: "))
        .expect("warm run must report its warm-hit count")
        .trim()
        .parse()
        .expect("warm-hit count parses");
    assert!(hits > 0, "expected warm hits > 0:\n{stdout}");
    // And the trace records the truncated-tail recovery.
    let trace_text = std::fs::read_to_string(&trace).expect("trace file");
    assert!(
        trace_text
            .lines()
            .any(|l| l.contains("\"type\":\"cache-recovered\"")
                && l.contains("\"mode\":\"recovered\"")),
        "trace must carry the cache-recovered event"
    );
    let _ = std::fs::remove_file(&cache);
    let _ = std::fs::remove_file(&trace);
}

/// The deterministic section of a co-evolved run's report: the front
/// header, the front table, the champion, and its speedups — everything
/// from `pareto front:` through `raw (re-parseable):`.
fn coevo_key_section(stdout: &[u8]) -> String {
    let text = String::from_utf8_lossy(stdout);
    let start = text.find("pareto front:").expect("front header in output");
    let end = text[start..]
        .find("\nraw (re-parseable):")
        .map(|i| {
            let line_end = text[start + i + 1..]
                .find('\n')
                .map_or(text.len(), |j| start + i + 1 + j);
            line_end
        })
        .unwrap_or(text.len());
    text[start..end].to_string()
}

/// SIGKILL a co-evolved run after its first v3 checkpoint lands, resume,
/// and require bit-identical output (front, champion, speedups) to the
/// never-interrupted run — the joint-genome analogue of
/// [`killed_run_resumes_to_the_same_result`].
#[test]
fn killed_co_evolved_run_resumes_to_the_same_result() {
    let path: PathBuf =
        std::env::temp_dir().join(format!("metaopt-coevo-kill-{}.ck", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let mut child = metaopt(&["--co-evolve", "--checkpoint", path.to_str().unwrap()])
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn metaopt");
    let deadline = Instant::now() + Duration::from_secs(120);
    while !path.exists() {
        assert!(Instant::now() < deadline, "no checkpoint within 120s");
        if child.try_wait().expect("try_wait").is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = child.kill();
    let _ = child.wait();
    assert!(path.exists(), "a checkpoint must survive the kill");

    let resumed = metaopt(&["--co-evolve", "--resume", path.to_str().unwrap()])
        .output()
        .expect("resumed run");
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let straight = metaopt(&["--co-evolve"])
        .output()
        .expect("uninterrupted run");
    assert!(straight.status.success());
    assert_eq!(
        coevo_key_section(&resumed.stdout),
        coevo_key_section(&straight.stdout),
        "resumed co-evolved run must reproduce the uninterrupted run exactly"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_rejects_a_checkpoint_from_different_parameters() {
    let path: PathBuf =
        std::env::temp_dir().join(format!("metaopt-mismatch-{}.ck", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let first = metaopt(&["--checkpoint", path.to_str().unwrap()])
        .output()
        .expect("checkpointed run");
    assert!(first.status.success());
    assert!(path.exists());

    // Same checkpoint, different population size: must be refused, loudly.
    let mut c = Command::new(env!("CARGO_BIN_EXE_metaopt"));
    c.args([
        "specialize",
        "hyperblock",
        "unepic",
        "--pop",
        "14",
        "--gens",
        "6",
        "--seed",
        "42",
        "--resume",
        path.to_str().unwrap(),
    ]);
    let out = c.output().expect("mismatched resume");
    assert!(!out.status.success(), "mismatched resume must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("checkpoint"),
        "error should mention the checkpoint: {stderr}"
    );
    let _ = std::fs::remove_file(&path);
}
