//! Co-evolution acceptance on a real study: joint (plan, expr) genomes
//! evolved under NSGA-II selection must surface a genuine trade-off front
//! — at least two mutually non-dominated points on (cycles, size, compile)
//! — and the whole run must be deterministic across thread counts.

use metaopt::{experiment, study};
use metaopt_gp::coevo::front_is_mutually_non_dominated;
use metaopt_gp::pareto::NUM_OBJECTIVES;
use metaopt_gp::GpParams;

fn tiny(threads: usize) -> GpParams {
    GpParams {
        population: 10,
        generations: 3,
        seed: 7,
        threads,
        ..GpParams::quick()
    }
}

#[test]
fn co_evolution_surfaces_a_trade_off_front() {
    let cfg = study::hyperblock();
    let bench = metaopt_suite::by_name("unepic").unwrap();
    let r = experiment::co_evolve(&cfg, &bench, &tiny(2));

    assert!(
        r.front.len() >= 2,
        "expected a front of at least two points, got {}",
        r.front.len()
    );
    assert!(
        front_is_mutually_non_dominated(&r.front, &[true; NUM_OBJECTIVES]),
        "no front point may dominate another: {:#?}",
        r.front
    );
    // A *trade-off* front, not one point repeated: at least two distinct
    // objective vectors must survive selection.
    let mut vectors: Vec<_> = r.front.iter().map(|p| p.objectives).collect();
    vectors.sort_unstable();
    vectors.dedup();
    assert!(
        vectors.len() >= 2,
        "expected at least two distinct objective vectors, got {vectors:?}"
    );
    // The front is sorted, so the first point is cycle-minimal and backs
    // the champion the CLI reports.
    let min_cycles = r.front.iter().map(|p| p.objectives[0]).min().unwrap();
    assert_eq!(r.front[0].objectives[0], min_cycles);
    assert!(r.best_plan.is_some(), "champion plan must parse back");
    assert!(r.best.is_some(), "champion expression must parse back");
    assert!(
        r.train_speedup.is_finite() && r.train_speedup > 0.0,
        "train speedup should be a positive real: {}",
        r.train_speedup
    );
    assert!(r.hypervolume > 0, "a non-empty front has positive volume");
}

#[test]
fn co_evolved_runs_are_deterministic_across_thread_counts() {
    let cfg = study::hyperblock();
    let bench = metaopt_suite::by_name("unepic").unwrap();
    let serial = experiment::co_evolve(&cfg, &bench, &tiny(1));
    let parallel = experiment::co_evolve(&cfg, &bench, &tiny(4));

    assert_eq!(
        serial.front, parallel.front,
        "front must not depend on threads"
    );
    assert_eq!(serial.hypervolume, parallel.hypervolume);
    assert_eq!(serial.log, parallel.log, "per-generation log must match");
    assert_eq!(
        serial.best_plan.map(|p| p.to_string()),
        parallel.best_plan.map(|p| p.to_string())
    );
    assert_eq!(serial.best.map(|e| e.key()), parallel.best.map(|e| e.key()));
    assert_eq!(serial.train_speedup, parallel.train_speedup);
    assert_eq!(serial.novel_speedup, parallel.novel_speedup);
}
