//! Differential testing across the whole pipeline: for every benchmark in
//! the suite and a collection of adversarial priority functions, the
//! compiled-and-simulated program must produce exactly the interpreter's
//! result. This is the property that makes the GP search safe (and which
//! the paper notes in passing: "Our system can also be used to uncover
//! bugs!").

use metaopt::study::{self, StudyConfig};
use metaopt::PreparedBench;
use metaopt_gp::gen::random_expr;
use metaopt_gp::{FeatureSet, Kind};
use metaopt_suite::{Benchmark, DataSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_priorities(fs: &FeatureSet, kind: Kind, n: usize, seed: u64) -> Vec<metaopt_gp::Expr> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| random_expr(&mut rng, fs, kind, 2, 6))
        .collect()
}

/// `cycles_with` panics on divergence, so simply running it is the check.
fn check(cfg: &StudyConfig, bench: &Benchmark, exprs: &[metaopt_gp::Expr]) {
    let pb = PreparedBench::new(cfg, bench);
    for e in exprs {
        let c1 = pb.cycles_with(cfg, e, DataSet::Train);
        let c2 = pb.cycles_with(cfg, e, DataSet::Novel);
        assert!(c1 > 0 && c2 > 0);
    }
}

#[test]
fn hyperblock_priorities_never_change_results() {
    let cfg = study::hyperblock();
    let exprs = random_priorities(&cfg.features, Kind::Real, 6, 101);
    for b in ["rawdaudio", "129.compress", "085.cc1", "147.vortex"] {
        check(&cfg, &metaopt_suite::by_name(b).unwrap(), &exprs);
    }
}

#[test]
fn regalloc_priorities_never_change_results() {
    let cfg = study::regalloc();
    let exprs = random_priorities(&cfg.features, Kind::Real, 6, 202);
    for b in ["g721encode", "mpeg2dec", "huff_enc"] {
        check(&cfg, &metaopt_suite::by_name(b).unwrap(), &exprs);
    }
}

#[test]
fn prefetch_priorities_never_change_results() {
    let cfg = study::prefetch();
    let exprs = random_priorities(&cfg.features, Kind::Bool, 6, 303);
    for b in ["101.tomcatv", "146.wave5", "183.equake"] {
        check(&cfg, &metaopt_suite::by_name(b).unwrap(), &exprs);
    }
}

#[test]
fn every_benchmark_compiles_and_matches_under_all_baselines() {
    // The full suite through each study's baseline pipeline.
    for cfg in [study::hyperblock(), study::regalloc(), study::prefetch()] {
        let benches = match cfg.kind {
            metaopt::StudyKind::Prefetch => {
                let mut v = metaopt_suite::prefetch_training_set();
                v.extend(metaopt_suite::prefetch_test_set());
                v
            }
            _ => metaopt_suite::int_benchmarks(),
        };
        for b in benches {
            // PreparedBench::new differentially verifies both data sets.
            let pb = PreparedBench::new(&cfg, &b);
            assert!(pb.baseline_cycles(DataSet::Train) > 0, "{}", b.name);
        }
    }
}
