//! Guard tests for the calibrated experiment dynamics: these assert the
//! *shape* relationships that make the paper's figures reproducible, so a
//! future change to the simulator, the suite, or a pass cannot silently
//! invert a case study's story (see DESIGN.md §8).

use metaopt::{study, PreparedBench};
use metaopt_gp::parse::parse_expr;
use metaopt_suite::DataSet;

#[test]
fn prefetch_baseline_is_overzealous_on_the_training_set() {
    // Paper §7: "ORC overzealously prefetches... shutting off prefetching
    // altogether achieves gains within 7% of the specialized priority
    // functions". Guard: disabling prefetch must beat the baseline by a
    // solid margin on average, and on at least half the training kernels.
    let cfg = study::prefetch();
    let never = parse_expr("(bconst false)", &cfg.features).unwrap();
    let mut speedups = Vec::new();
    for b in metaopt_suite::prefetch_training_set() {
        let pb = PreparedBench::new(&cfg, &b);
        speedups.push(pb.speedup(&cfg, &never, DataSet::Train));
    }
    let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
    assert!(
        mean > 1.05,
        "no-prefetch mean {mean} must beat the baseline"
    );
    let winners = speedups.iter().filter(|s| **s > 1.02).count();
    assert!(winners * 2 >= speedups.len(), "{speedups:?}");
}

#[test]
fn streaming_spec2000_kernels_want_aggressive_prefetch() {
    // Paper Fig. 16's caveat: for some SPEC2000 benchmarks aggressive
    // prefetching is desirable — disabling it must hurt at least one.
    let cfg = study::prefetch();
    let never = parse_expr("(bconst false)", &cfg.features).unwrap();
    let mut any_loss = false;
    for name in ["171.swim", "172.mgrid", "183.equake"] {
        let b = metaopt_suite::by_name(name).unwrap();
        let pb = PreparedBench::new(&cfg, &b);
        if pb.speedup(&cfg, &never, DataSet::Train) < 0.97 {
            any_loss = true;
        }
    }
    assert!(any_loss, "disabling prefetch must hurt a streaming kernel");
}

#[test]
fn hyperblock_search_space_has_room_in_both_directions() {
    // GP can only improve on Eq. 1 if the baseline's decisions are wrong in
    // both directions somewhere in the suite: some benchmark wants *more*
    // predication than Eq. 1 gives it, another wants *less*.
    let cfg = study::hyperblock();
    let never = parse_expr("(rconst -1.0)", &cfg.features).unwrap();
    let always = parse_expr("(rconst 5.0)", &cfg.features).unwrap();
    let mut more_wins = false;
    let mut less_wins = false;
    for b in metaopt_suite::hyperblock_training_set() {
        let pb = PreparedBench::new(&cfg, &b);
        if pb.speedup(&cfg, &always, DataSet::Train) > 1.02 {
            more_wins = true;
        }
        if pb.speedup(&cfg, &never, DataSet::Train) > 1.002 {
            less_wins = true;
        }
    }
    assert!(more_wins, "some benchmark must reward more predication");
    assert!(less_wins, "some benchmark must reward less predication");
}

#[test]
fn regalloc_pressure_exists_on_the_stressed_machine() {
    // The 32-register study is meaningless unless the baseline actually
    // spills somewhere.
    let cfg = study::regalloc();
    let mut any_spills = false;
    for b in metaopt_suite::regalloc_training_set() {
        let pb = PreparedBench::new(&cfg, &b);
        if pb.baseline_stats.counters.spills > 0 {
            any_spills = true;
        }
    }
    assert!(any_spills, "the 32-register machine must force spills");
}

#[test]
fn unpredictable_branches_make_predication_profitable() {
    // The core hyperblock dynamic: on the ADPCM decoder (data-dependent
    // step adaptation), full if-conversion beats no if-conversion.
    let cfg = study::hyperblock();
    let b = metaopt_suite::by_name("rawdaudio").unwrap();
    let pb = PreparedBench::new(&cfg, &b);
    let never = parse_expr("(rconst -1.0)", &cfg.features).unwrap();
    let always = parse_expr("(rconst 5.0)", &cfg.features).unwrap();
    let never_cycles = pb.cycles_with(&cfg, &never, DataSet::Train);
    let always_cycles = pb.cycles_with(&cfg, &always, DataSet::Train);
    assert!(
        (always_cycles as f64) < 0.92 * never_cycles as f64,
        "predication must pay on rawdaudio: {always_cycles} vs {never_cycles}"
    );
}
