//! End-to-end behavioral tests of the Meta Optimization system: the
//! headline properties the paper claims, at laptop scale.

use metaopt::{experiment, study};
use metaopt_gp::GpParams;
use metaopt_suite::DataSet;

fn params(seed: u64) -> GpParams {
    GpParams {
        population: 16,
        generations: 5,
        seed,
        threads: 4,
        ..GpParams::quick()
    }
}

#[test]
fn specialization_beats_or_matches_baseline_across_studies() {
    // Seeded with the baseline and elitist, train-data speedup can never
    // drop below ~1.0 in any study.
    for (cfg, bench) in [
        (study::hyperblock(), "rawcaudio"),
        (study::regalloc(), "g721decode"),
        (study::prefetch(), "107.mgrid"),
    ] {
        let b = metaopt_suite::by_name(bench).unwrap();
        let r = experiment::specialize(&cfg, &b, &params(5));
        assert!(
            r.train_speedup >= 0.995,
            "{bench}: {} < baseline",
            r.train_speedup
        );
    }
}

#[test]
fn prefetch_study_finds_large_gains() {
    // The paper's case study III headline: the ORC-like baseline is
    // overzealous and evolved confidence functions find real speedups.
    let cfg = study::prefetch();
    let b = metaopt_suite::by_name("101.tomcatv").unwrap();
    let r = experiment::specialize(&cfg, &b, &params(9));
    assert!(
        r.train_speedup > 1.10,
        "tomcatv specialization should exceed 10%: {}",
        r.train_speedup
    );
}

#[test]
fn general_purpose_function_transfers_to_novel_data() {
    let cfg = study::prefetch();
    let benches: Vec<_> = ["101.tomcatv", "102.swim", "107.mgrid"]
        .iter()
        .map(|n| metaopt_suite::by_name(n).unwrap())
        .collect();
    let r = experiment::train_general(&cfg, &benches, &params(13));
    assert!(r.mean_train > 1.0, "mean train {}", r.mean_train);
    assert!(r.mean_novel > 1.0, "mean novel {}", r.mean_novel);
}

#[test]
fn evolution_log_tracks_monotone_elitism() {
    // With a fixed training subset (no DSS) and elitism, the best fitness
    // per generation never decreases.
    let cfg = study::hyperblock();
    let b = metaopt_suite::by_name("mpeg2dec").unwrap();
    let r = experiment::specialize(&cfg, &b, &params(21));
    let mut prev = 0.0;
    for g in &r.log {
        assert!(
            g.best_fitness >= prev - 1e-9,
            "gen {}: {} < {prev}",
            g.generation,
            g.best_fitness
        );
        prev = g.best_fitness;
    }
}

#[test]
fn cross_validation_handles_whole_test_set() {
    let cfg = study::hyperblock();
    let cv = experiment::cross_validate(
        &cfg,
        &cfg.baseline_seed,
        &metaopt_suite::hyperblock_test_set(),
    );
    assert_eq!(
        cv.per_bench.len(),
        metaopt_suite::hyperblock_test_set().len()
    );
    for (name, t, _) in &cv.per_bench {
        assert!(
            (*t - 1.0).abs() < 1e-9,
            "{name}: baseline seed must reproduce baseline exactly, got {t}"
        );
    }
}

#[test]
fn novel_and_train_data_really_differ_in_cycles() {
    let cfg = study::hyperblock();
    let b = metaopt_suite::by_name("129.compress").unwrap();
    let pb = metaopt::PreparedBench::new(&cfg, &b);
    assert_ne!(
        pb.baseline_cycles(DataSet::Train),
        pb.baseline_cycles(DataSet::Novel)
    );
}
