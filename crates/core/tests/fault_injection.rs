//! Fault-injection acceptance suite (`--features fault-inject`): with the
//! deterministic injector forcing failures in well over 5% of evaluations
//! across all three studies, every generation must complete, the
//! quarantine ledger must exactly match the faults the injector predicts,
//! and the whole run must be bit-for-bit repeatable.
#![cfg(feature = "fault-inject")]

use metaopt::fault::{FaultInjector, FaultStage};
use metaopt::{study, PreparedBench, StudyConfig, StudyEvaluator};
use metaopt_gp::{Evolution, EvolutionResult, GpParams};
use std::io::Write;

const RATE: f64 = 0.1;

fn params(seed: u64) -> GpParams {
    GpParams {
        population: 16,
        generations: 4,
        seed,
        threads: 2,
        ..GpParams::quick()
    }
}

fn run_with_faults(cfg: &StudyConfig, bench_names: &[&str], seed: u64) -> EvolutionResult {
    let benches: Vec<PreparedBench> = bench_names
        .iter()
        .map(|n| {
            let b = metaopt_suite::by_name(n).unwrap();
            PreparedBench::new(cfg, &b)
        })
        .collect();
    let injector = FaultInjector::uniform(seed, RATE);
    let evaluator = StudyEvaluator::new(cfg, &benches).with_fault(injector);
    let mut p = params(seed);
    p.kind = cfg.genome_kind;
    Evolution::new(p, &cfg.features, &evaluator)
        .with_seeds(vec![cfg.baseline_seed.clone()])
        .run()
}

/// Write the ledger where CI can pick it up as an artifact, *before* any
/// assertion runs, so a failing suite still leaves its evidence behind.
fn dump_ledger(study: &str, result: &EvolutionResult) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target");
    let _ = std::fs::create_dir_all(&dir);
    if let Ok(mut f) = std::fs::File::create(dir.join(format!("quarantine-ledger-{study}.txt"))) {
        for r in &result.quarantined {
            let _ = writeln!(f, "{}", r.to_line());
        }
    }
}

/// The injector's own prediction for a `(genome, bench)` pair under the
/// engine's retry policy: which stage, if any, ends up in the ledger.
///
/// Permanent stages are attempt-invariant, so the first one that fires
/// (in pipeline check order, before the timeout check) decides the
/// outcome on attempt 0 and no retry can change it. Otherwise the engine
/// retries transient timeouts up to `retries` times: the evaluation
/// succeeds (or falls through to the attempt-invariant Simulate check) on
/// the first attempt where the timeout does not fire, and quarantines as
/// a timeout only when every attempt timed out.
fn predicted_failure(
    injector: &FaultInjector,
    genome: &str,
    bench: &str,
    retries: u32,
) -> Option<FaultStage> {
    use FaultStage::{CheckIr, Compile, Simulate, Timeout, Validate};
    for stage in [Compile, CheckIr, Validate] {
        if injector.should_fail(stage, genome, bench) {
            return Some(stage);
        }
    }
    for attempt in 0..=retries {
        if !injector.should_fail_at(Timeout, genome, bench, attempt) {
            return injector
                .should_fail(Simulate, genome, bench)
                .then_some(Simulate);
        }
    }
    Some(Timeout)
}

fn check_study(name: &str, cfg: &StudyConfig, bench_names: &[&str], seed: u64) {
    let result = run_with_faults(cfg, bench_names, seed);
    dump_ledger(name, &result);
    let injector = FaultInjector::uniform(seed, RATE);

    // Every generation completed despite the injected failures.
    assert_eq!(
        result.log.len(),
        params(seed).generations,
        "{name}: every generation must complete"
    );
    // Accounting identity, and a fresh run's ledger covers every failure.
    assert_eq!(
        result.evaluations,
        result.successes + result.failures,
        "{name}: accounting identity"
    );
    assert_eq!(
        result.quarantined.len() as u64,
        result.failures,
        "{name}: ledger covers every distinct failure"
    );
    // The injector actually exercised the failure path at meaningful volume.
    assert!(
        result.failures as f64 >= 0.05 * result.evaluations as f64,
        "{name}: expected >=5% injected failures, got {}/{}",
        result.failures,
        result.evaluations
    );
    assert!(
        result.successes > 0,
        "{name}: clean genomes must still score"
    );

    // The ledger matches the injector's own predictions exactly: every
    // record is marked injected, lands on the predicted stage's error
    // class, and names a (genome, bench) pair the injector fires on.
    for r in &result.quarantined {
        let bench = bench_names[r.case];
        assert!(
            r.error.injected,
            "{name}: bundled kernels only fail when injected: {r}"
        );
        let stage = predicted_failure(&injector, &r.genome, bench, params(seed).retries)
            .unwrap_or_else(|| panic!("{name}: ledger record not predicted by injector: {r}"));
        assert_eq!(
            r.error.kind,
            stage.kind(),
            "{name}: error class must match the predicted stage: {r}"
        );
        assert!(
            r.error.message.contains(bench),
            "{name}: diagnostics must name the benchmark: {r}"
        );
    }
    // The winner survived: it is quarantined on no case it was scored on.
    assert!(
        !result
            .quarantined
            .iter()
            .any(|r| r.genome == result.best.key()),
        "{name}: a quarantined genome must never win"
    );

    // Determinism: the identical run reproduces everything, ledger included.
    let again = run_with_faults(cfg, bench_names, seed);
    assert_eq!(result.best.key(), again.best.key(), "{name}: best differs");
    assert_eq!(result.best_fitness, again.best_fitness, "{name}");
    assert_eq!(result.evaluations, again.evaluations, "{name}");
    assert_eq!(
        result.quarantined, again.quarantined,
        "{name}: ledger differs"
    );
}

/// The `CacheCorrupt` stage never flows through the evaluation pipeline —
/// it models torn writes to the persistent fitness store. Drive it through
/// the store's corruption hook and prove the recovery contract: a reopened
/// store drops the corrupt record and everything after it, serves every
/// record before it with the exact appended score, and never surfaces a
/// wrong fitness.
#[test]
fn cache_corrupt_faults_are_recovered_on_reopen() {
    use metaopt_gp::{FitnessStore, StoreHealth};
    use metaopt_trace::Tracer;
    use std::sync::Arc;

    let path = std::env::temp_dir().join(format!("metaopt-fault-cache-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);
    const FP: &str = "pop=16 seed=7 config=fault";
    let injector = FaultInjector::uniform(7, 0.2);
    let hook = Arc::new(move |key: &str, case: usize| {
        injector.should_fail(FaultStage::CacheCorrupt, key, &format!("case{case}"))
    });
    let store = FitnessStore::open(&path, FP, &Tracer::disabled()).with_corrupt_hook(hook.clone());

    let rows: Vec<(String, usize, f64)> = (0..64)
        .map(|i| (format!("(add x {i}.0)"), i % 3, i as f64 * 0.5 - 1.0))
        .collect();
    for (k, c, v) in &rows {
        store.append(k, *c, *v);
    }
    drop(store);

    let first_bad = rows
        .iter()
        .position(|(k, c, _)| hook(k, *c))
        .expect("at 20% corruption over 64 appends, at least one must fire");

    let s = FitnessStore::open(&path, FP, &Tracer::disabled());
    assert_eq!(s.health(), StoreHealth::Recovered);
    assert_eq!(s.entries(), first_bad as u64);
    for (i, (k, c, v)) in rows.iter().enumerate() {
        if i < first_bad {
            assert_eq!(s.lookup(k, *c), Some(*v), "record {i} must survive intact");
        } else {
            assert_eq!(s.lookup(k, *c), None, "record {i} is past the corrupt tail");
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn hyperblock_survives_injected_faults() {
    check_study(
        "hyperblock",
        &study::hyperblock(),
        &["unepic", "mpeg2dec"],
        101,
    );
}

#[test]
fn regalloc_survives_injected_faults() {
    check_study(
        "regalloc",
        &study::regalloc(),
        &["g721encode", "huff_enc"],
        202,
    );
}

#[test]
fn prefetch_survives_injected_faults() {
    check_study(
        "prefetch",
        &study::prefetch(),
        &["102.swim", "101.tomcatv"],
        303,
    );
}
