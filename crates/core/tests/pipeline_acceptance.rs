//! Differential acceptance for the pass-manager refactor: the plan-driven
//! [`metaopt_compiler::compile`] must be **behavior-preserving by
//! construction** against the pre-refactor monolithic pipeline. The
//! reference below is a line-for-line replica of the old `compile()` body
//! (fixed pass order, hand-rolled profile remap and form transitions); for
//! every suite benchmark under all three study configurations, with
//! invariant checking on and off, the new pipeline must produce a
//! bit-identical [`MachineProgram`], the same memory size, and the same
//! simulated cycle count.

use metaopt::study::{self, StudyConfig, StudyKind};
use metaopt_compiler::{compile, hyperblock, prefetch, prepare, regalloc, schedule};
use metaopt_ir::budget::KERNEL_VERIFY_MAX_STEPS;
use metaopt_ir::interp::{run, RunConfig};
use metaopt_ir::profile::FuncProfile;
use metaopt_ir::{Function, Program};
use metaopt_sim::{simulate, MachineProgram};
use metaopt_suite::DataSet;

/// Replica of the monolithic pre-refactor `compile()`: the fixed
/// unroll → prefetch → hyperblock → regalloc → schedule order with each
/// study's baseline pass selection, sequencing the profile remap and the
/// machine-form switch by hand exactly as the old body did.
fn reference_compile(
    prepared: &Program,
    profile: &FuncProfile,
    cfg: &StudyConfig,
) -> (MachineProgram, usize) {
    let machine = &cfg.machine;
    let mut func: Function = prepared.funcs[0].clone();

    if cfg.kind == StudyKind::Prefetch {
        prefetch::insert_prefetches(&mut func, profile, machine, &prefetch::BaselineTripCount, 8);
    }
    let remapped_profile;
    let mut profile = profile;
    if matches!(cfg.kind, StudyKind::Hyperblock | StudyKind::Regalloc) {
        hyperblock::form_hyperblocks(&mut func, profile, machine, &hyperblock::BaselineEq1);
        let map = func.prune_unreachable_blocks();
        if map.iter().any(|m| m.is_none()) {
            remapped_profile = profile.remap_blocks(&map);
            profile = &remapped_profile;
        }
    }
    let ra = regalloc::allocate(
        &mut func,
        machine,
        &regalloc::BaselineEq2,
        profile,
        prepared.memory_size(),
    )
    .expect("reference regalloc succeeds");
    let code = schedule::schedule_function(&func, machine);
    metaopt_sim::code::verify_machine(&code, machine).expect("reference code verifies");
    (code, ra.mem_size)
}

fn profile_on_train(prepared: &Program, bench: &metaopt_suite::Benchmark) -> FuncProfile {
    let mem = bench.memory(prepared, DataSet::Train);
    run(
        prepared,
        &RunConfig {
            memory: Some(mem),
            profile: true,
            max_steps: KERNEL_VERIFY_MAX_STEPS,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("{}: profiling run failed: {e:?}", bench.name))
    .profile
    .expect("profile requested")
    .funcs[0]
        .clone()
}

#[test]
fn plan_driven_compile_matches_the_monolithic_pipeline() {
    for bench in metaopt_suite::all_benchmarks() {
        let prog = bench.program();
        let prepared =
            prepare(&prog).unwrap_or_else(|e| panic!("{}: preparation failed: {e}", bench.name));
        let profile = profile_on_train(&prepared, &bench);
        for cfg in [study::hyperblock(), study::regalloc(), study::prefetch()] {
            let (want_code, want_mem) = reference_compile(&prepared, &profile, &cfg);
            for check_ir in [false, true] {
                let cfg = cfg.clone().with_check_ir(check_ir);
                let got = compile(&prepared, &profile, &cfg.machine, &cfg.baseline_passes())
                    .unwrap_or_else(|e| {
                        panic!(
                            "{} under {:?} (check_ir={check_ir}): compile failed: {e}",
                            bench.name, cfg.kind
                        )
                    });
                assert_eq!(
                    got.code, want_code,
                    "{} under {:?} (check_ir={check_ir}): machine code diverged from \
                     the pre-refactor pipeline",
                    bench.name, cfg.kind
                );
                assert_eq!(
                    got.mem_size, want_mem,
                    "{} under {:?}",
                    bench.name, cfg.kind
                );
                assert_eq!(
                    got.stats.per_pass.len(),
                    cfg.plan.steps().len(),
                    "one instrumentation record per executed pass"
                );
            }

            // Same code and memory layout, so the cycle counts must agree.
            let mut mem = bench.memory(&prepared, DataSet::Train);
            mem.resize(want_mem.max(mem.len()), 0);
            let want_cycles = simulate(&want_code, &cfg.machine, mem.clone())
                .unwrap_or_else(|e| panic!("{}: reference simulation failed: {e}", bench.name))
                .cycles;
            let got = compile(&prepared, &profile, &cfg.machine, &cfg.baseline_passes())
                .expect("compiles");
            let got_cycles = simulate(&got.code, &cfg.machine, mem)
                .unwrap_or_else(|e| panic!("{}: simulation failed: {e}", bench.name))
                .cycles;
            assert_eq!(
                got_cycles, want_cycles,
                "{} under {:?}: cycle count diverged",
                bench.name, cfg.kind
            );
        }
    }
}

/// Satellite: the (formerly dead) unroll pass, now reachable through plan
/// syntax, is semantics-preserving — on every suite benchmark, the unrolled
/// pipeline's compiled code agrees with the IR interpreter's result on both
/// data sets. `plan_cycles` panics on any differential mismatch.
#[test]
fn unrolled_pipelines_agree_with_the_interpreter_on_all_data_sets() {
    let cfg = study::hyperblock();
    let unrolled = cfg.plan.clone().with_unroll(2);
    for bench in metaopt_suite::all_benchmarks() {
        let pb = metaopt::PreparedBench::new(&cfg, &bench);
        for ds in [DataSet::Train, DataSet::Novel] {
            let (plain, _) = pb.plan_cycles(&cfg, &cfg.plan, ds);
            let (unroll_cycles, stats) = pb.plan_cycles(&cfg, &unrolled, ds);
            assert!(plain > 0 && unroll_cycles > 0);
            assert_eq!(
                stats.per_pass.first().map(|p| p.name),
                Some("unroll"),
                "{}: the unroll pass must have executed first",
                bench.name
            );
        }
    }
}
