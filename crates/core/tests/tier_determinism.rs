//! Determinism of the tiered simulator backend at the experiment level:
//! the sim-backed analogue of the gp crate's synthetic-evaluator
//! thread-count properties.
//!
//! Three contracts, all downstream of the bytecode tier's bit-identical
//! equivalence with the reference interpreter:
//!
//! 1. the (default) fast tier is thread-schedule independent — a run at
//!    `threads = 1` and the same run at `threads = N` agree on every
//!    observable;
//! 2. tiers are interchangeable end-to-end — a reference-tier run lands on
//!    the same winner, telemetry, and speedup bits as the fast-tier run;
//! 3. the tier never enters the config fingerprint — persistent
//!    [`FitnessStore`] entries written under one tier answer evaluations
//!    under the other, and a checkpoint written under one tier resumes
//!    under the other, bit-identically.

use metaopt::experiment::{self, RunControl, SpecializationResult};
use metaopt::study;
use metaopt_gp::GpParams;
use metaopt_sim::SimTier;
use proptest::prelude::*;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn run(tier: SimTier, threads: usize, seed: u64, cache: Option<PathBuf>) -> SpecializationResult {
    let cfg = study::hyperblock().with_sim_tier(tier);
    let bench = metaopt_suite::by_name("unepic").unwrap();
    let params = GpParams {
        population: 6,
        generations: 2,
        seed,
        threads,
        ..GpParams::quick()
    };
    let control = RunControl {
        eval_cache: cache,
        ..RunControl::default()
    };
    experiment::specialize_controlled(&cfg, &bench, &params, &control).unwrap()
}

fn assert_identical(a: &SpecializationResult, b: &SpecializationResult) {
    assert_eq!(a.best.key(), b.best.key());
    assert_eq!(a.train_speedup.to_bits(), b.train_speedup.to_bits());
    assert_eq!(a.novel_speedup.to_bits(), b.novel_speedup.to_bits());
    assert_eq!(a.log, b.log);
    assert_eq!(a.evaluations, b.evaluations);
    assert_eq!(a.successes, b.successes);
    assert_eq!(a.quarantined, b.quarantined);
}

proptest! {
    // Each case is several small-but-real evolution runs; keep the count
    // modest. The gp crate fuzzes the schedule space widely with synthetic
    // evaluators; this pins the same properties onto the real simulator.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Contracts 1 and 2: the fast tier is schedule-independent, and a
    /// serial reference-tier run reproduces the fast-tier result exactly.
    #[test]
    fn fast_tier_is_thread_and_tier_independent(seed in any::<u64>()) {
        let serial = run(SimTier::Fast, 1, seed, None);
        let threaded = run(SimTier::Fast, 3, seed, None);
        assert_identical(&serial, &threaded);

        let reference = run(SimTier::Reference, 1, seed, None);
        assert_identical(&serial, &reference);
    }

    /// Contract 3a: fitness-store entries are tier-portable. A cold run
    /// under the fast tier fills the store; a reference-tier rerun over the
    /// same store must answer from it (the tier is not part of the config
    /// fingerprint) and land on the identical result.
    #[test]
    fn fitness_store_entries_are_tier_portable(seed in any::<u64>()) {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let cache = std::env::temp_dir().join(format!(
            "metaopt-xtier-cache-{}-{}.bin",
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_file(&cache);

        let cold = run(SimTier::Fast, 2, seed, Some(cache.clone()));
        prop_assert_eq!(cold.warm_hits, 0, "a fresh store cannot answer anything");
        let warm = run(SimTier::Reference, 2, seed, Some(cache.clone()));
        prop_assert!(
            warm.warm_hits > 0,
            "fast-tier store entries must be valid under the reference tier"
        );
        assert_identical(&cold, &warm);
        let _ = std::fs::remove_file(&cache);
    }
}

/// The lines a CLI run is judged by: the re-parseable winner and speedups.
fn key_lines(stdout: &[u8]) -> Vec<String> {
    String::from_utf8_lossy(stdout)
        .lines()
        .filter(|l| {
            l.starts_with("raw (re-parseable):")
                || l.starts_with("train speedup:")
                || l.starts_with("novel speedup:")
        })
        .map(str::to_string)
        .collect()
}

fn metaopt(tier: &str, extra: &[&str]) -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_metaopt"));
    c.args([
        "specialize",
        "hyperblock",
        "unepic",
        "--pop",
        "12",
        "--gens",
        "6",
        "--seed",
        "42",
        "--threads",
        "2",
        "--sim-tier",
        tier,
    ])
    .args(extra);
    c
}

/// Contract 3b: SIGKILL a fast-tier run after its first checkpoint lands,
/// then resume it under the *reference* tier. The resume must be accepted
/// (the tier is not in the checkpoint fingerprint) and the remaining
/// generations — now simulated by the other tier — must land on exactly
/// the result of an uninterrupted fast-tier run.
#[test]
fn cross_tier_resume_is_accepted_and_bit_identical() {
    let path: PathBuf =
        std::env::temp_dir().join(format!("metaopt-xtier-resume-{}.ck", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let mut child = metaopt("fast", &["--checkpoint", path.to_str().unwrap()])
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn metaopt");
    let deadline = Instant::now() + Duration::from_secs(120);
    while !path.exists() {
        assert!(Instant::now() < deadline, "no checkpoint within 120s");
        if child.try_wait().expect("try_wait").is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = child.kill();
    let _ = child.wait();
    assert!(path.exists(), "a checkpoint must survive the kill");

    let resumed = metaopt("reference", &["--resume", path.to_str().unwrap()])
        .output()
        .expect("resumed run");
    assert!(
        resumed.status.success(),
        "cross-tier resume must be accepted: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let straight = metaopt("fast", &[]).output().expect("uninterrupted run");
    assert!(straight.status.success());

    let r = key_lines(&resumed.stdout);
    assert_eq!(r.len(), 3, "expected 3 key lines, got {r:?}");
    assert_eq!(
        r,
        key_lines(&straight.stdout),
        "cross-tier resumed run must reproduce the fast-tier run exactly"
    );
    let _ = std::fs::remove_file(&path);
}
