//! Golden trace test: a fixed-seed two-generation specialization run must
//! (a) emit a trace in which every line validates against `run-trace.v1`,
//! (b) reproduce a checked-in golden of the timestamp-stripped event
//! sequence exactly, and (c) leave the run's *results* bit-identical to the
//! same run with tracing disabled.
//!
//! Regenerate the golden after an intentional schema/emission change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p metaopt --test trace_golden
//! ```

use metaopt::experiment::{self, RunControl, SpecializationResult};
use metaopt::study;
use metaopt_gp::GpParams;
use metaopt_trace::metrics::MetricsRegistry;
use metaopt_trace::{report, schema, strip_timing, Tracer};
use std::path::Path;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/trace_smoke.golden"
);

fn smoke_run(tracer: Tracer) -> SpecializationResult {
    let cfg = study::hyperblock();
    let bench = metaopt_suite::by_name("unepic").unwrap();
    let params = GpParams {
        population: 6,
        generations: 2,
        seed: 4,
        threads: 1,
        ..GpParams::quick()
    };
    let control = RunControl {
        tracer,
        ..RunControl::default()
    };
    experiment::specialize_controlled(&cfg, &bench, &params, &control).unwrap()
}

#[test]
fn fixed_seed_trace_matches_golden_and_perturbs_nothing() {
    // Metrics enabled: the golden also pins the stripped metrics-snapshot
    // sequence, proving the snapshot counters are seed-deterministic.
    let tracer = Tracer::in_memory().with_metrics(MetricsRegistry::new());
    let traced = smoke_run(tracer.clone());
    let lines = tracer.lines().unwrap();
    let text = lines.join("\n");

    // (a) Every line validates against the schema.
    let summary = schema::validate_trace(&text).unwrap();
    assert_eq!(summary.events, lines.len());
    assert_eq!(summary.by_type[0].0, "trace-header");

    // The report layer digests the same trace without complaint.
    let rep = report::analyze(&text).unwrap();
    assert_eq!(rep.generations.len(), 2);
    assert!(rep.render().contains("generation"));

    // Snapshots appear once per generation plus a final one, carry a
    // strictly increasing seq, and keep all schedule-dependent registry
    // state inside the strippable "runtime" attribute.
    let snapshots: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"metrics-snapshot\""))
        .collect();
    assert_eq!(snapshots.len(), 3, "2 generations + final snapshot");
    for (seq, line) in snapshots.iter().enumerate() {
        assert!(
            line.contains(&format!("\"seq\":{seq}")),
            "snapshot seq should count 0.. in emission order: {line}"
        );
        assert!(line.contains("\"runtime\""));
        let stripped = strip_timing(line).unwrap();
        assert!(
            !stripped.contains("runtime"),
            "strip_timing must remove the schedule-dependent runtime dump"
        );
    }

    // (b) The timestamp-stripped event sequence is pinned by the golden
    // file: everything but timing is deterministic for a fixed seed.
    let stripped: String = lines
        .iter()
        .map(|l| strip_timing(l).unwrap() + "\n")
        .collect();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &stripped).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            Path::new(GOLDEN).display()
        )
    });
    assert_eq!(
        stripped, golden,
        "trace event sequence drifted from the golden; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1 and review the diff"
    );

    // (c) Tracing observes, never perturbs: the identical run with the
    // tracer disabled produces a bit-identical result.
    let plain = smoke_run(Tracer::disabled());
    assert_eq!(plain.best.key(), traced.best.key());
    assert_eq!(
        plain.train_speedup.to_bits(),
        traced.train_speedup.to_bits()
    );
    assert_eq!(
        plain.novel_speedup.to_bits(),
        traced.novel_speedup.to_bits()
    );
    assert_eq!(plain.log, traced.log);
    assert_eq!(plain.evaluations, traced.evaluations);
    assert_eq!(plain.quarantined, traced.quarantined);
}
