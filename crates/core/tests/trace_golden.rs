//! Golden trace test: a fixed-seed two-generation specialization run must
//! (a) emit a trace in which every line validates against `run-trace.v1`,
//! (b) reproduce a checked-in golden of the timestamp-stripped event
//! sequence exactly, and (c) leave the run's *results* bit-identical to the
//! same run with tracing disabled.
//!
//! Regenerate the golden after an intentional schema/emission change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p metaopt --test trace_golden
//! ```

use metaopt::experiment::{self, RunControl, SpecializationResult};
use metaopt::study;
use metaopt_gp::GpParams;
use metaopt_sim::SimTier;
use metaopt_trace::metrics::MetricsRegistry;
use metaopt_trace::{report, schema, strip_timing, Tracer};
use std::path::Path;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/trace_smoke.golden"
);

fn smoke_run(tracer: Tracer) -> SpecializationResult {
    let cfg = study::hyperblock();
    let bench = metaopt_suite::by_name("unepic").unwrap();
    let params = GpParams {
        population: 6,
        generations: 2,
        seed: 4,
        threads: 1,
        ..GpParams::quick()
    };
    let control = RunControl {
        tracer,
        ..RunControl::default()
    };
    experiment::specialize_controlled(&cfg, &bench, &params, &control).unwrap()
}

#[test]
fn fixed_seed_trace_matches_golden_and_perturbs_nothing() {
    // Metrics enabled: the golden also pins the stripped metrics-snapshot
    // sequence, proving the snapshot counters are seed-deterministic.
    let tracer = Tracer::in_memory().with_metrics(MetricsRegistry::new());
    let traced = smoke_run(tracer.clone());
    let lines = tracer.lines().unwrap();
    let text = lines.join("\n");

    // (a) Every line validates against the schema.
    let summary = schema::validate_trace(&text).unwrap();
    assert_eq!(summary.events, lines.len());
    assert_eq!(summary.by_type[0].0, "trace-header");

    // The report layer digests the same trace without complaint.
    let rep = report::analyze(&text).unwrap();
    assert_eq!(rep.generations.len(), 2);
    assert!(rep.render().contains("generation"));

    // Snapshots appear once per generation plus a final one, carry a
    // strictly increasing seq, and keep all schedule-dependent registry
    // state inside the strippable "runtime" attribute.
    let snapshots: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"metrics-snapshot\""))
        .collect();
    assert_eq!(snapshots.len(), 3, "2 generations + final snapshot");
    for (seq, line) in snapshots.iter().enumerate() {
        assert!(
            line.contains(&format!("\"seq\":{seq}")),
            "snapshot seq should count 0.. in emission order: {line}"
        );
        assert!(line.contains("\"runtime\""));
        let stripped = strip_timing(line).unwrap();
        assert!(
            !stripped.contains("runtime"),
            "strip_timing must remove the schedule-dependent runtime dump"
        );
    }

    // (b) The timestamp-stripped event sequence is pinned by the golden
    // file: everything but timing is deterministic for a fixed seed.
    let stripped: String = lines
        .iter()
        .map(|l| strip_timing(l).unwrap() + "\n")
        .collect();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &stripped).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            Path::new(GOLDEN).display()
        )
    });
    assert_eq!(
        stripped, golden,
        "trace event sequence drifted from the golden; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1 and review the diff"
    );

    // (c) Tracing observes, never perturbs: the identical run with the
    // tracer disabled produces a bit-identical result.
    let plain = smoke_run(Tracer::disabled());
    assert_eq!(plain.best.key(), traced.best.key());
    assert_eq!(
        plain.train_speedup.to_bits(),
        traced.train_speedup.to_bits()
    );
    assert_eq!(
        plain.novel_speedup.to_bits(),
        traced.novel_speedup.to_bits()
    );
    assert_eq!(plain.log, traced.log);
    assert_eq!(plain.evaluations, traced.evaluations);
    assert_eq!(plain.quarantined, traced.quarantined);
}

/// Cross-tier golden: the same fixed-seed evolution run under the fast
/// (bytecode) and reference simulator tiers emits bit-identical event
/// streams once timestamps are stripped and the `tier` attribute — the one
/// sanctioned difference — is normalized. Fitness, the quarantine ledger,
/// and the checkpoint files written along the way are tier-independent.
#[test]
fn cross_tier_run_traces_and_checkpoints_are_bit_identical() {
    let dir = std::env::temp_dir();
    let ck_for = |tier: &str| {
        let p = dir.join(format!("metaopt-xtier-{tier}-{}.ck", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    };
    let run = |tier: SimTier, ck: &Path| {
        let cfg = study::hyperblock().with_sim_tier(tier);
        let bench = metaopt_suite::by_name("unepic").unwrap();
        let params = GpParams {
            population: 6,
            generations: 2,
            seed: 4,
            threads: 1,
            ..GpParams::quick()
        };
        let tracer = Tracer::in_memory();
        let control = RunControl {
            tracer: tracer.clone(),
            checkpoint: Some(ck.to_path_buf()),
            ..RunControl::default()
        };
        let res = experiment::specialize_controlled(&cfg, &bench, &params, &control).unwrap();
        (res, tracer.lines().unwrap())
    };
    let fast_ck = ck_for("fast");
    let ref_ck = ck_for("ref");
    let (fast, fast_lines) = run(SimTier::Fast, &fast_ck);
    let (reference, ref_lines) = run(SimTier::Reference, &ref_ck);

    // Each stream stamps its own tier on sim events…
    assert!(
        fast_lines.iter().any(|l| l.contains("\"tier\":\"fast\"")),
        "fast run must stamp its tier on sim events"
    );
    assert!(
        ref_lines
            .iter()
            .any(|l| l.contains("\"tier\":\"reference\"")),
        "reference run must stamp its tier on sim events"
    );
    // …and that stamp is the *only* difference between them.
    let normalize = |lines: &[String]| -> String {
        lines
            .iter()
            .map(|l| {
                strip_timing(l)
                    .unwrap()
                    .replace("\"tier\":\"reference\"", "\"tier\":\"fast\"")
                    + "\n"
            })
            .collect()
    };
    assert_eq!(
        normalize(&fast_lines),
        normalize(&ref_lines),
        "cross-tier event streams diverged beyond the tier attribute"
    );

    // Results are bit-identical: same winner, same speedups, same
    // per-generation telemetry, same quarantine ledger.
    assert_eq!(fast.best.key(), reference.best.key());
    assert_eq!(
        fast.train_speedup.to_bits(),
        reference.train_speedup.to_bits()
    );
    assert_eq!(
        fast.novel_speedup.to_bits(),
        reference.novel_speedup.to_bits()
    );
    assert_eq!(fast.log, reference.log);
    assert_eq!(fast.evaluations, reference.evaluations);
    assert_eq!(fast.quarantined, reference.quarantined);

    // Checkpoint contents never encode the tier: byte-identical files.
    assert_eq!(
        std::fs::read(&fast_ck).unwrap(),
        std::fs::read(&ref_ck).unwrap(),
        "checkpoints must be tier-independent"
    );
    let _ = std::fs::remove_file(&fast_ck);
    let _ = std::fs::remove_file(&ref_ck);
}
