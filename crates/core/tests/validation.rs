//! Semantic-validation acceptance suite: the translation validators and
//! the abstract interpreter prove their two contractual properties on real
//! compiles.
//!
//! 1. **Zero false rejects** — every baseline compile of representative
//!    suite kernels, across all three studies and every default ablation
//!    plan, passes `--validate full` (the whole-suite sweep runs in CI as
//!    `metaopt check`; the fuzzed version lives in the compiler crate's
//!    differential test).
//! 2. **Miscompiles are caught statically** — deterministic corruptions of
//!    real register-allocator output (dropped reloads, dropped spill
//!    store-backs, clobbered destination registers) and of real scheduler
//!    output (reordered bundles, dependence-violating merges) are each
//!    rejected by the matching validator *before* any simulation runs.

use metaopt::{experiment, study, PreparedBench};
use metaopt_compiler::{compile, prepare, PassCtx, PassManager, Passes, ValidationLevel};
use metaopt_ir::interp::{run, RunConfig};
use metaopt_ir::{Function, Opcode, VReg, Width};
use metaopt_sim::{MachineConfig, MachineProgram};

/// A program lowered through the real minimal pipeline
/// (`regalloc,schedule`), with every artifact the validators compare.
struct Lowered {
    /// The prepared (pre-regalloc) function.
    pre: Function,
    /// The post-regalloc, machine-form function.
    post: Function,
    /// The scheduled bundles.
    code: MachineProgram,
    /// Globals size (spill area starts here).
    base_mem: usize,
    /// Globals + spill area.
    mem_size: usize,
}

fn lower(src: &str, machine: &MachineConfig) -> Lowered {
    let prog = metaopt_lang::compile(src).expect("source compiles");
    let prepared = prepare(&prog).expect("prepares");
    let profile = run(
        &prepared,
        &RunConfig {
            profile: true,
            ..Default::default()
        },
    )
    .expect("profiles")
    .profile
    .expect("requested");
    let passes = Passes::default();
    let pre = prepared.funcs[0].clone();
    let mut post = pre.clone();
    let mut ctx = PassCtx::new(&profile.funcs[0], machine, &passes, prepared.memory_size());
    PassManager::from_plan(&passes.plan)
        .run(&mut post, &mut ctx)
        .expect("lowers");
    Lowered {
        pre,
        post,
        code: ctx.code.take().expect("schedule emitted code"),
        base_mem: prepared.memory_size(),
        mem_size: ctx.mem_size,
    }
}

/// A source program with far more simultaneously-live integers than a
/// 10-GPR machine (6 allocatable registers) can hold, forcing real spill
/// code. The loads defeat constant folding.
const SPILLY: &str = r#"
    global int xs[16];
    fn main() -> int {
        for (let k = 0; k < 16; k = k + 1) { xs[k] = k * 7 + 3; }
        let a = xs[0]; let b = xs[1]; let c = xs[2]; let d = xs[3];
        let e = xs[4]; let f = xs[5]; let g = xs[6]; let h = xs[7];
        let i = xs[8]; let j = xs[9];
        return (a * b + c * d + e * f + g * h + i * j)
             + (a + c + e + g + i) - (b + d + f + h + j);
    }
"#;

fn tiny_machine() -> MachineConfig {
    let mut m = MachineConfig::table3();
    m.gpr = 10;
    m
}

fn regalloc_errors(l: &Lowered, post: &Function, machine: &MachineConfig) -> usize {
    let diags = metaopt_analysis::validate_regalloc(
        &l.pre, post, machine, l.base_mem, l.mem_size, "regalloc",
    );
    diags
        .iter()
        .filter(|d| d.severity == metaopt_analysis::Severity::Error)
        .count()
}

/// Position of the first post-IR instruction matching `want`.
fn find_inst(post: &Function, want: impl Fn(&metaopt_ir::Inst) -> bool) -> (usize, usize) {
    for (b, block) in post.blocks.iter().enumerate() {
        for (i, inst) in block.insts.iter().enumerate() {
            if want(inst) {
                return (b, i);
            }
        }
    }
    panic!("expected instruction not found in lowered function");
}

#[test]
fn real_allocator_output_validates_cleanly_even_under_spill_pressure() {
    let machine = tiny_machine();
    let l = lower(SPILLY, &machine);
    // The scenario is real: the allocator actually spilled.
    find_inst(&l.post, |i| {
        matches!(i.op, Opcode::Ld(Width::B8)) && i.args.first() == Some(&VReg(0))
    });
    assert_eq!(regalloc_errors(&l, &l.post, &machine), 0);
    let sched = metaopt_analysis::validate_schedule(&l.post, &l.code, &machine, "schedule");
    assert!(
        metaopt_analysis::first_error(&sched).is_none(),
        "schedule validator must accept real scheduler output"
    );
}

#[test]
fn dropped_reload_is_caught_statically() {
    let machine = tiny_machine();
    let l = lower(SPILLY, &machine);
    let mut bad = l.post.clone();
    let (b, i) = find_inst(&bad, |i| {
        matches!(i.op, Opcode::Ld(Width::B8)) && i.args.first() == Some(&VReg(0))
    });
    bad.blocks[b].insts.remove(i);
    assert!(
        regalloc_errors(&l, &bad, &machine) > 0,
        "removing a spill reload must be rejected"
    );
}

#[test]
fn dropped_spill_store_back_is_caught_statically() {
    let machine = tiny_machine();
    let l = lower(SPILLY, &machine);
    let mut bad = l.post.clone();
    let (b, i) = find_inst(&bad, |i| {
        matches!(i.op, Opcode::St(Width::B8)) && i.args.first() == Some(&VReg(0))
    });
    bad.blocks[b].insts.remove(i);
    assert!(
        regalloc_errors(&l, &bad, &machine) > 0,
        "removing a spill store-back must be rejected"
    );
}

#[test]
fn clobbered_destination_register_is_caught_statically() {
    let machine = tiny_machine();
    let l = lower(SPILLY, &machine);
    let mut bad = l.post.clone();
    // A core instruction writing an allocated (non-temp) register.
    let (b, i) = find_inst(&bad, |i| i.dst.is_some_and(|d| d.0 >= 4));
    let dst = bad.blocks[b].insts[i].dst.unwrap();
    let other = if dst.0 + 1 < machine.gpr as u32 {
        VReg(dst.0 + 1)
    } else {
        VReg(dst.0 - 1)
    };
    bad.blocks[b].insts[i].dst = Some(other);
    assert!(
        regalloc_errors(&l, &bad, &machine) > 0,
        "rerouting a result to the wrong physical register must be rejected"
    );
}

#[test]
fn dependence_violating_bundle_reorder_is_caught_statically() {
    let machine = tiny_machine();
    let l = lower(SPILLY, &machine);
    // Swapping the first and last bundles of a multi-bundle block must
    // break at least one dependence edge somewhere in the function.
    let mut caught = 0;
    for b in 0..l.code.blocks.len() {
        if l.code.blocks[b].len() < 2 {
            continue;
        }
        let mut bad = l.code.clone();
        let last = bad.blocks[b].len() - 1;
        bad.blocks[b].swap(0, last);
        let diags = metaopt_analysis::validate_schedule(&l.post, &bad, &machine, "schedule");
        if metaopt_analysis::first_error(&diags).is_some() {
            caught += 1;
        }
    }
    assert!(
        caught > 0,
        "no bundle reordering was rejected across any block"
    );
}

#[test]
fn over_packed_bundle_is_caught_statically() {
    let machine = tiny_machine();
    let l = lower(SPILLY, &machine);
    // Collapse the fullest block into one giant bundle: this violates
    // intra-block dependences (same-bundle ordering is not "after") and
    // the per-cycle unit caps.
    let b = (0..l.code.blocks.len())
        .max_by_key(|&b| {
            l.code.blocks[b]
                .iter()
                .map(|bu| bu.insts.len())
                .sum::<usize>()
        })
        .unwrap();
    let mut bad = l.code.clone();
    let merged: Vec<_> = bad.blocks[b].drain(..).flat_map(|bu| bu.insts).collect();
    bad.blocks[b].push(metaopt_sim::Bundle { insts: merged });
    let diags = metaopt_analysis::validate_schedule(&l.post, &bad, &machine, "schedule");
    assert!(
        metaopt_analysis::first_error(&diags).is_some(),
        "merging a whole block into one bundle must be rejected"
    );
}

/// Zero false rejects over real suite kernels: every baseline compile, in
/// every study, under the study plan and every default ablation plan,
/// passes full validation. (`metaopt check <study>` runs the all-40-kernel
/// version of this sweep; CI invokes it for all three studies.)
#[test]
fn baseline_suite_compiles_validate_cleanly_across_studies() {
    let names = ["codrle4", "huff_enc", "g721encode", "mpeg2dec", "102.swim"];
    for cfg in [study::hyperblock(), study::regalloc(), study::prefetch()] {
        let cfg = cfg.with_validate(ValidationLevel::Full);
        let mut plans = vec![cfg.plan.clone()];
        for p in experiment::default_ablation_plans() {
            if plans.iter().all(|q| q.to_string() != p.to_string()) {
                plans.push(p);
            }
        }
        for name in names {
            let bench = metaopt_suite::by_name(name).expect("suite kernel exists");
            let pb = PreparedBench::try_new(&cfg, &bench).expect("prepares");
            for plan in &plans {
                let passes = Passes {
                    plan: plan.clone(),
                    ..cfg.baseline_passes()
                };
                let compiled = compile(&pb.prepared, &pb.profile, &cfg.machine, &passes)
                    .unwrap_or_else(|e| {
                        panic!(
                            "false reject: {name} under plan {plan} ({:?}): {e}",
                            cfg.kind
                        )
                    });
                assert!(
                    metaopt_analysis::first_error(&compiled.validation).is_none(),
                    "{name} under plan {plan}: error-severity finding survived a passing compile"
                );
            }
        }
    }
}

/// Injected validation-stage faults surface in the quarantine ledger as
/// [`EvalErrorKind::Validation`] records with the stage named.
#[cfg(feature = "fault-inject")]
#[test]
fn injected_validation_faults_land_in_the_ledger() {
    use metaopt::fault::{FaultInjector, FaultStage};
    use metaopt::StudyEvaluator;
    use metaopt_gp::{EvalErrorKind, Evolution, GpParams};

    let cfg = study::regalloc();
    let bench_names = ["codrle4", "huff_enc"];
    let benches: Vec<PreparedBench> = bench_names
        .iter()
        .map(|n| PreparedBench::new(&cfg, &metaopt_suite::by_name(n).unwrap()))
        .collect();
    let injector = FaultInjector::new(7).with_rate(FaultStage::Validate, 0.3);
    let evaluator = StudyEvaluator::new(&cfg, &benches).with_fault(injector);
    let mut params = GpParams {
        population: 12,
        generations: 3,
        seed: 7,
        threads: 1,
        ..GpParams::quick()
    };
    params.kind = cfg.genome_kind;
    let result = Evolution::new(params, &cfg.features, &evaluator)
        .with_seeds(vec![cfg.baseline_seed.clone()])
        .run();
    assert!(
        !result.quarantined.is_empty(),
        "a 30% validation-stage fault rate must quarantine someone"
    );
    for r in &result.quarantined {
        assert_eq!(
            r.error.kind,
            EvalErrorKind::Validation,
            "only the validation stage was armed: {r}"
        );
        assert!(
            r.error.message.contains("validate"),
            "ledger record must blame the validation stage: {r}"
        );
    }
}
