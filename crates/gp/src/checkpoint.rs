//! Generation-granular checkpoint/resume for evolution runs.
//!
//! After each generation's breeding step the engine can serialize its
//! complete search state — population, RNG state, DSS weights, telemetry
//! log, evaluation counters, and the quarantine ledger — to a checkpoint
//! file. A run killed mid-search resumes from its last checkpoint and, with
//! the same parameters and a deterministic evaluator, produces *bit-identical*
//! results to an uninterrupted run: the RNG stream is restored exactly
//! (xoshiro state snapshot) and every float crosses the file boundary as its
//! IEEE-754 bit pattern, never as a rounded decimal.
//!
//! The format is a versioned, line-oriented text file (no external
//! serialization dependency is available in this build environment):
//!
//! ```text
//! metaopt-checkpoint v3
//! fingerprint <escaped params fingerprint>
//! next-generation <g>
//! rng <hex> <hex> <hex> <hex>
//! counters <evaluations> <successes> <failures>
//! memo-entries <n>
//! population <n>
//! <genome s-expression> × n
//! plans <n> | plans none
//! <escaped pipeline plan> × n
//! dss <subset_size> <n> | dss none
//! <difficulty f64-bits hex, space-separated>
//! <age f64-bits hex, space-separated>
//! log <n>
//! gen <idx> <best-bits> <mean-bits> <best-size> <subset csv>  × n
//! quarantine <n>
//! <ledger line> × n
//! end
//! ```
//!
//! The fingerprint captures every [`GpParams`] field that shapes the random
//! stream or the selection pressure, plus the caller-supplied evaluator
//! configuration tag (the compiler's pipeline plan — a checkpoint written
//! under one pass pipeline must not be resumed under another).
//! `generations` and `threads` are deliberately excluded: resuming with a
//! larger `generations` *extends* the run (exactly what "resume after kill"
//! needs), and the thread count never affects results (fitness is memoized
//! per genome and the partitioning is deterministic).

use crate::engine::{GenLog, GpParams};
use crate::eval::{escape, unescape, QuarantineRecord};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Checkpoint format version written by this build.
///
/// v2: the fingerprint gained the evaluator-configuration tag (the
/// compiler's pipeline plan), so v1 checkpoints — which cannot prove which
/// pipeline produced their fitness values — are no longer resumable.
///
/// v3: co-evolution serializes a per-genome pipeline-plan section
/// (`plans <n>` / `plans none`) after the population block. Earlier
/// versions cannot represent a co-evolved population, so cross-version
/// resume is rejected with a version-aware error instead of a parse
/// failure deep inside the file.
pub const CHECKPOINT_VERSION: u32 = 3;

/// Serialized DSS (dynamic subset selection) state.
#[derive(Clone, Debug, PartialEq)]
pub struct DssState {
    /// Configured subset size.
    pub subset_size: usize,
    /// Per-case difficulty weights.
    pub difficulty: Vec<f64>,
    /// Per-case age counters.
    pub age: Vec<f64>,
}

/// A complete, resumable snapshot of an evolution run at a generation
/// boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Parameter fingerprint (see [`fingerprint`]); resume refuses a
    /// checkpoint whose fingerprint disagrees with the configured params.
    pub fingerprint: String,
    /// The generation the resumed run will execute next.
    pub next_generation: usize,
    /// Raw xoshiro256++ state at the moment of the snapshot.
    pub rng_state: [u64; 4],
    /// Population genomes in canonical re-parseable form.
    pub population: Vec<String>,
    /// Per-genome pipeline plans (canonical textual form, parallel to
    /// `population`) for co-evolved runs; `None` for scalar single-plan
    /// runs, which keep their plan in the fingerprint's config tag.
    pub plans: Option<Vec<String>>,
    /// DSS state, when the run uses dynamic subset selection.
    pub dss: Option<DssState>,
    /// Per-generation telemetry accumulated so far.
    pub log: Vec<GenLog>,
    /// Uncached fitness evaluations performed so far.
    pub evaluations: u64,
    /// Successful uncached evaluations.
    pub successes: u64,
    /// Failed (quarantined) uncached evaluations.
    pub failures: u64,
    /// The quarantine ledger so far.
    pub quarantined: Vec<QuarantineRecord>,
    /// Memo-cache summary: number of distinct `(genome, case)` entries at
    /// snapshot time (the cache itself is *not* persisted — deterministic
    /// evaluators recompute identical values on resume).
    pub memo_entries: u64,
}

/// Failure while saving, loading, or validating a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(io::Error),
    /// The file is not a well-formed checkpoint.
    Parse {
        /// 1-based line number (0 when the location is not line-specific).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The checkpoint's parameters disagree with the configured run.
    Mismatch {
        /// Fingerprint of the configured parameters.
        expected: String,
        /// Fingerprint recorded in the checkpoint.
        found: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Parse { line, message } => {
                write!(f, "checkpoint parse error at line {line}: {message}")
            }
            CheckpointError::Mismatch { expected, found } => write!(
                f,
                "checkpoint was written by a run with different parameters: \
                 expected [{expected}], checkpoint has [{found}]"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Canonical fingerprint of every [`GpParams`] field that must match for a
/// resume to reproduce the uninterrupted run, plus the caller's
/// `config_tag` describing the evaluator configuration (the experiment
/// drivers pass the compiler's pipeline plan, so a checkpoint cannot be
/// resumed under a different pass pipeline). `generations` is excluded so
/// a resumed run can extend the search; `threads` is excluded because it
/// never affects results.
pub fn fingerprint(p: &GpParams, config_tag: &str) -> String {
    format!(
        "pop={} replace={:016x} mut={:016x} tour={} depth={} init={}-{} kind={:?} seed={} \
         eps={:016x} subset={} elitism={} retries={} config={config_tag}",
        p.population,
        p.replace_frac.to_bits(),
        p.mutation_rate.to_bits(),
        p.tournament,
        p.max_depth,
        p.init_depth.0,
        p.init_depth.1,
        p.kind,
        p.seed,
        p.fitness_epsilon.to_bits(),
        p.subset_size.map_or("none".to_string(), |s| s.to_string()),
        p.elitism,
        p.retries,
    )
}

fn fmt_bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_bits(s: &str, line: usize) -> Result<f64, CheckpointError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| CheckpointError::Parse {
            line,
            message: format!("bad f64 bit pattern {s:?}"),
        })
}

fn parse_u64(s: &str, line: usize, what: &str) -> Result<u64, CheckpointError> {
    s.parse().map_err(|_| CheckpointError::Parse {
        line,
        message: format!("bad {what} {s:?}"),
    })
}

fn parse_usize(s: &str, line: usize, what: &str) -> Result<usize, CheckpointError> {
    s.parse().map_err(|_| CheckpointError::Parse {
        line,
        message: format!("bad {what} {s:?}"),
    })
}

impl Checkpoint {
    /// Refuse to resume under parameters that disagree with the ones that
    /// wrote this checkpoint.
    pub fn validate(&self, expected_fingerprint: &str) -> Result<(), CheckpointError> {
        if self.fingerprint != expected_fingerprint {
            return Err(CheckpointError::Mismatch {
                expected: expected_fingerprint.to_string(),
                found: self.fingerprint.clone(),
            });
        }
        Ok(())
    }

    /// Serialize to the versioned text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("metaopt-checkpoint v{CHECKPOINT_VERSION}\n"));
        out.push_str(&format!("fingerprint {}\n", escape(&self.fingerprint)));
        out.push_str(&format!("next-generation {}\n", self.next_generation));
        let [a, b, c, d] = self.rng_state;
        out.push_str(&format!("rng {a:016x} {b:016x} {c:016x} {d:016x}\n"));
        out.push_str(&format!(
            "counters {} {} {}\n",
            self.evaluations, self.successes, self.failures
        ));
        out.push_str(&format!("memo-entries {}\n", self.memo_entries));
        out.push_str(&format!("population {}\n", self.population.len()));
        for g in &self.population {
            out.push_str(&escape(g));
            out.push('\n');
        }
        match &self.plans {
            None => out.push_str("plans none\n"),
            Some(plans) => {
                out.push_str(&format!("plans {}\n", plans.len()));
                for p in plans {
                    out.push_str(&escape(p));
                    out.push('\n');
                }
            }
        }
        match &self.dss {
            None => out.push_str("dss none\n"),
            Some(st) => {
                out.push_str(&format!("dss {} {}\n", st.subset_size, st.difficulty.len()));
                let join = |v: &[f64]| v.iter().map(|&x| fmt_bits(x)).collect::<Vec<_>>().join(" ");
                out.push_str(&join(&st.difficulty));
                out.push('\n');
                out.push_str(&join(&st.age));
                out.push('\n');
            }
        }
        out.push_str(&format!("log {}\n", self.log.len()));
        for l in &self.log {
            let subset = l
                .subset
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "gen {} {} {} {} {}\n",
                l.generation,
                fmt_bits(l.best_fitness),
                fmt_bits(l.mean_fitness),
                l.best_size,
                if subset.is_empty() {
                    "-".to_string()
                } else {
                    subset
                },
            ));
        }
        out.push_str(&format!("quarantine {}\n", self.quarantined.len()));
        for q in &self.quarantined {
            out.push_str(&q.to_line());
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }

    /// Parse the text format produced by [`Checkpoint::to_text`].
    pub fn parse(text: &str) -> Result<Self, CheckpointError> {
        let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
        let mut next = |what: &str| {
            lines.next().ok_or_else(|| CheckpointError::Parse {
                line: 0,
                message: format!("truncated checkpoint: missing {what}"),
            })
        };

        let (ln, header) = next("header")?;
        let expected = format!("metaopt-checkpoint v{CHECKPOINT_VERSION}");
        if header != expected {
            // Distinguish "a checkpoint from another format version" from
            // "not a checkpoint at all": the former gets a version-aware
            // message so users know to restart rather than suspect
            // corruption.
            let message = match header
                .strip_prefix("metaopt-checkpoint v")
                .and_then(|v| v.parse::<u32>().ok())
            {
                Some(found) => format!(
                    "unsupported checkpoint version v{found}: this build reads \
                     v{CHECKPOINT_VERSION} (the format changed when pipeline-plan \
                     genomes were added); restart the run from scratch"
                ),
                None => format!("bad header {header:?} (expected {expected:?})"),
            };
            return Err(CheckpointError::Parse { line: ln, message });
        }

        let (ln, l) = next("fingerprint")?;
        let fingerprint = l
            .strip_prefix("fingerprint ")
            .and_then(unescape)
            .ok_or_else(|| CheckpointError::Parse {
                line: ln,
                message: "expected `fingerprint <text>`".to_string(),
            })?;

        let (ln, l) = next("next-generation")?;
        let next_generation = l
            .strip_prefix("next-generation ")
            .ok_or_else(|| CheckpointError::Parse {
                line: ln,
                message: "expected `next-generation <n>`".to_string(),
            })
            .and_then(|s| parse_usize(s, ln, "generation"))?;

        let (ln, l) = next("rng")?;
        let words: Vec<&str> = l
            .strip_prefix("rng ")
            .map(|s| s.split_whitespace().collect())
            .unwrap_or_default();
        if words.len() != 4 {
            return Err(CheckpointError::Parse {
                line: ln,
                message: "expected `rng <4 hex words>`".to_string(),
            });
        }
        let mut rng_state = [0u64; 4];
        for (i, w) in words.iter().enumerate() {
            rng_state[i] = u64::from_str_radix(w, 16).map_err(|_| CheckpointError::Parse {
                line: ln,
                message: format!("bad rng word {w:?}"),
            })?;
        }

        let (ln, l) = next("counters")?;
        let words: Vec<&str> = l
            .strip_prefix("counters ")
            .map(|s| s.split_whitespace().collect())
            .unwrap_or_default();
        if words.len() != 3 {
            return Err(CheckpointError::Parse {
                line: ln,
                message: "expected `counters <evals> <successes> <failures>`".to_string(),
            });
        }
        let evaluations = parse_u64(words[0], ln, "evaluation count")?;
        let successes = parse_u64(words[1], ln, "success count")?;
        let failures = parse_u64(words[2], ln, "failure count")?;

        let (ln, l) = next("memo-entries")?;
        let memo_entries = l
            .strip_prefix("memo-entries ")
            .ok_or_else(|| CheckpointError::Parse {
                line: ln,
                message: "expected `memo-entries <n>`".to_string(),
            })
            .and_then(|s| parse_u64(s, ln, "memo entry count"))?;

        let (ln, l) = next("population")?;
        let npop = l
            .strip_prefix("population ")
            .ok_or_else(|| CheckpointError::Parse {
                line: ln,
                message: "expected `population <n>`".to_string(),
            })
            .and_then(|s| parse_usize(s, ln, "population size"))?;
        let mut population = Vec::with_capacity(npop);
        for _ in 0..npop {
            let (ln, l) = next("population genome")?;
            population.push(unescape(l).ok_or_else(|| CheckpointError::Parse {
                line: ln,
                message: "bad escape in genome".to_string(),
            })?);
        }

        let (ln, l) = next("plans")?;
        let plans = if l == "plans none" {
            None
        } else {
            let nplans = l
                .strip_prefix("plans ")
                .ok_or_else(|| CheckpointError::Parse {
                    line: ln,
                    message: "expected `plans none` or `plans <n>`".to_string(),
                })
                .and_then(|s| parse_usize(s, ln, "plan count"))?;
            if nplans != npop {
                return Err(CheckpointError::Parse {
                    line: ln,
                    message: format!("{nplans} plans for {npop} genomes"),
                });
            }
            let mut plans = Vec::with_capacity(nplans);
            for _ in 0..nplans {
                let (ln, l) = next("plan")?;
                plans.push(unescape(l).ok_or_else(|| CheckpointError::Parse {
                    line: ln,
                    message: "bad escape in plan".to_string(),
                })?);
            }
            Some(plans)
        };

        let (ln, l) = next("dss")?;
        let dss = if l == "dss none" {
            None
        } else {
            let words: Vec<&str> = l
                .strip_prefix("dss ")
                .map(|s| s.split_whitespace().collect())
                .unwrap_or_default();
            if words.len() != 2 {
                return Err(CheckpointError::Parse {
                    line: ln,
                    message: "expected `dss none` or `dss <subset> <n>`".to_string(),
                });
            }
            let subset_size = parse_usize(words[0], ln, "subset size")?;
            let n = parse_usize(words[1], ln, "case count")?;
            let mut read_vec = |what: &str| -> Result<Vec<f64>, CheckpointError> {
                let (ln, l) = next(what)?;
                let v = l
                    .split_whitespace()
                    .map(|w| parse_bits(w, ln))
                    .collect::<Result<Vec<f64>, _>>()?;
                if v.len() != n {
                    return Err(CheckpointError::Parse {
                        line: ln,
                        message: format!("{what} has {} entries, expected {n}", v.len()),
                    });
                }
                Ok(v)
            };
            let difficulty = read_vec("dss difficulty")?;
            let age = read_vec("dss age")?;
            Some(DssState {
                subset_size,
                difficulty,
                age,
            })
        };

        let (ln, l) = next("log")?;
        let nlog = l
            .strip_prefix("log ")
            .ok_or_else(|| CheckpointError::Parse {
                line: ln,
                message: "expected `log <n>`".to_string(),
            })
            .and_then(|s| parse_usize(s, ln, "log length"))?;
        let mut log = Vec::with_capacity(nlog);
        for _ in 0..nlog {
            let (ln, l) = next("log entry")?;
            let words: Vec<&str> = l
                .strip_prefix("gen ")
                .map(|s| s.split_whitespace().collect())
                .unwrap_or_default();
            if words.len() != 5 {
                return Err(CheckpointError::Parse {
                    line: ln,
                    message: "expected `gen <idx> <best> <mean> <size> <subset>`".to_string(),
                });
            }
            let subset = if words[4] == "-" {
                Vec::new()
            } else {
                words[4]
                    .split(',')
                    .map(|w| parse_usize(w, ln, "subset case"))
                    .collect::<Result<Vec<_>, _>>()?
            };
            log.push(GenLog {
                generation: parse_usize(words[0], ln, "generation index")?,
                best_fitness: parse_bits(words[1], ln)?,
                mean_fitness: parse_bits(words[2], ln)?,
                best_size: parse_usize(words[3], ln, "best size")?,
                subset,
            });
        }

        let (ln, l) = next("quarantine")?;
        let nq = l
            .strip_prefix("quarantine ")
            .ok_or_else(|| CheckpointError::Parse {
                line: ln,
                message: "expected `quarantine <n>`".to_string(),
            })
            .and_then(|s| parse_usize(s, ln, "quarantine length"))?;
        let mut quarantined = Vec::with_capacity(nq);
        for _ in 0..nq {
            let (ln, l) = next("quarantine record")?;
            quarantined.push(QuarantineRecord::from_line(l).ok_or_else(|| {
                CheckpointError::Parse {
                    line: ln,
                    message: "bad quarantine record".to_string(),
                }
            })?);
        }

        let (ln, l) = next("end marker")?;
        if l != "end" {
            return Err(CheckpointError::Parse {
                line: ln,
                message: format!("expected `end`, found {l:?}"),
            });
        }

        Ok(Checkpoint {
            fingerprint,
            next_generation,
            rng_state,
            population,
            plans,
            dss,
            log,
            evaluations,
            successes,
            failures,
            quarantined,
            memo_entries,
        })
    }

    /// Atomically write the checkpoint to `path` (write to a sibling
    /// temporary file, then rename): a run killed mid-write leaves either
    /// the previous complete checkpoint or the new one, never a torn file.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, self.to_text())?;
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load and parse a checkpoint file.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text = fs::read_to_string(path)?;
        Self::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{EvalError, EvalErrorKind};

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: fingerprint(&GpParams::quick(), "prefetch,hyperblock,regalloc,schedule"),
            next_generation: 3,
            rng_state: [1, u64::MAX, 0xDEAD_BEEF, 42],
            population: vec!["(add r0 1.5)".to_string(), "(mul r1 r0)".to_string()],
            plans: None,
            dss: Some(DssState {
                subset_size: 2,
                difficulty: vec![1.0, f64::NAN, 0.3333333333333333],
                age: vec![2.0, 1.0, 4.0],
            }),
            log: vec![GenLog {
                generation: 0,
                best_fitness: 1.25,
                mean_fitness: 0.875,
                best_size: 7,
                subset: vec![0, 2],
            }],
            evaluations: 10,
            successes: 8,
            failures: 2,
            quarantined: vec![QuarantineRecord {
                genome: "(div r0 0.0)".to_string(),
                case: 1,
                error: EvalError::new(EvalErrorKind::Budget, "instruction limit of 9 exceeded"),
            }],
            memo_entries: 9,
        }
    }

    #[test]
    fn text_round_trip_is_exact() {
        let ck = sample();
        let parsed = Checkpoint::parse(&ck.to_text()).unwrap();
        // NaN breaks PartialEq; compare through bit patterns.
        assert_eq!(parsed.to_text(), ck.to_text());
        assert_eq!(parsed.rng_state, ck.rng_state);
        assert_eq!(parsed.population, ck.population);
        assert_eq!(parsed.quarantined, ck.quarantined);
        let (a, b) = (parsed.dss.unwrap(), ck.dss.unwrap());
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.difficulty), bits(&b.difficulty));
        assert_eq!(bits(&a.age), bits(&b.age));
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("metaopt-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.txt");
        let ck = sample();
        ck.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.to_text(), ck.to_text());
        // Saving again over an existing file must succeed (rename overwrite).
        ck.save(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_and_corrupt_files_error_cleanly() {
        let text = sample().to_text();
        for cut in [0, 1, 10, text.len() / 2] {
            let truncated = &text[..cut.min(text.len())];
            assert!(Checkpoint::parse(truncated).is_err(), "cut at {cut}");
        }
        let corrupt = text.replace("rng ", "rgn ");
        assert!(Checkpoint::parse(&corrupt).is_err());
        let bad_float = text.replace("counters 10 8 2", "counters ten 8 2");
        assert!(Checkpoint::parse(&bad_float).is_err());
    }

    #[test]
    fn mismatched_fingerprint_is_refused() {
        let ck = sample();
        let plan = "prefetch,hyperblock,regalloc,schedule";
        let mut other = GpParams::quick();
        other.seed ^= 1;
        let err = ck.validate(&fingerprint(&other, plan)).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }));
        ck.validate(&fingerprint(&GpParams::quick(), plan)).unwrap();
    }

    #[test]
    fn fingerprint_ignores_generations_and_threads() {
        let a = GpParams::quick();
        let mut b = a.clone();
        b.generations += 17;
        b.threads = 1;
        assert_eq!(fingerprint(&a, ""), fingerprint(&b, ""));
        let mut c = a.clone();
        c.population += 1;
        assert_ne!(fingerprint(&a, ""), fingerprint(&c, ""));
    }

    #[test]
    fn fingerprint_binds_the_pipeline_plan() {
        // A checkpoint written under one pipeline plan must not resume
        // under another: the fitness landscape is plan-dependent.
        let p = GpParams::quick();
        let ck = sample();
        ck.validate(&fingerprint(&p, "prefetch,hyperblock,regalloc,schedule"))
            .unwrap();
        let err = ck
            .validate(&fingerprint(
                &p,
                "unroll(2),prefetch,hyperblock,regalloc,schedule",
            ))
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err}");
        let err = ck
            .validate(&fingerprint(&p, "regalloc,schedule"))
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err}");
    }

    #[test]
    fn plan_genomes_round_trip() {
        let mut ck = sample();
        ck.plans = Some(vec![
            "regalloc,schedule".to_string(),
            "unroll(4),hyperblock,regalloc,schedule".to_string(),
        ]);
        let parsed = Checkpoint::parse(&ck.to_text()).unwrap();
        assert_eq!(parsed.plans, ck.plans);
        assert_eq!(parsed.to_text(), ck.to_text());
    }

    #[test]
    fn plan_count_must_match_the_population() {
        let mut ck = sample();
        ck.plans = Some(vec!["regalloc,schedule".to_string()]); // population is 2
        let err = Checkpoint::parse(&ck.to_text()).unwrap_err();
        assert!(matches!(err, CheckpointError::Parse { .. }), "{err}");
    }

    #[test]
    fn earlier_version_checkpoints_are_rejected_with_a_version_error() {
        // A v2 (or v1) file must be refused at the header with a message
        // that names both versions — a clean rejection, not a parse panic
        // somewhere inside the body the old format lays out differently.
        for old_version in ["v1", "v2"] {
            let old = sample().to_text().replace(
                "metaopt-checkpoint v3",
                &format!("metaopt-checkpoint {old_version}"),
            );
            let err = Checkpoint::parse(&old).unwrap_err();
            match &err {
                CheckpointError::Parse { line: 1, message } => {
                    assert!(
                        message.contains(&format!("unsupported checkpoint version {old_version}"))
                            && message.contains("v3"),
                        "unhelpful message: {message}"
                    );
                }
                other => panic!("expected a line-1 parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Checkpoint::load(Path::new("/nonexistent/metaopt/ck.txt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
