//! Co-evolution of `(pipeline plan, priority function)` genomes under
//! multi-objective Pareto-rank selection.
//!
//! Where [`crate::engine::Evolution`] searches priority-function space
//! inside one fixed compilation pipeline, [`CoEvolution`] searches the
//! joint space: each genome is a [`PlanGenome`] pairing a pipeline plan
//! with an expression, and each evaluation produces an integer *objective
//! vector* (simulated cycles, code size, compile-cost proxy — all
//! minimized) instead of a single fitness. Selection is NSGA-II: crowded
//! tournament for parents, then (μ+λ) environmental selection by
//! non-dominated rank with crowding-distance truncation, everything
//! tie-broken by population index (see [`crate::pareto`]) so runs are
//! bit-identical across thread counts.
//!
//! The engine deliberately does not touch the scalar engine's hot path:
//! scalar single-plan mode stays byte-for-byte what it was. Plumbing the
//! two search spaces together happens through two small traits —
//! [`MultiEvaluator`] (objective vectors per `(plan, expr, case)`) and
//! [`PlanSpace`] (plan seeds and genetic operators over canonical plan
//! strings) — implemented by the `metaopt` core crate, keeping this crate
//! free of a compiler dependency.
//!
//! Determinism contract (mirrors the scalar engine):
//! - every RNG draw happens on the coordinating thread, in a fixed order;
//! - the per-generation work list of uncached `(genome, case)` pairs is
//!   computed serially, each unique pair is evaluated exactly once, and
//!   worker threads only fill disjoint result slots;
//! - selection uses only integer objectives and index-stable tie-breaks.
//!
//! Checkpoints use format v3 (the population's plans ride in the `plans`
//! section) under a fingerprint that embeds the objective mask and a
//! co-evolution marker, so scalar and co-evolved runs can never resume
//! each other's files. The persistent fitness store is shared machinery:
//! keys extend to `plan|expr` and each objective lands in its own derived
//! case slot, so a warm rerun skips straight past paid-for evaluations.

use crate::checkpoint::{fingerprint, Checkpoint, CheckpointError};
use crate::engine::{EvolutionResult, GenLog, GpParams};
use crate::eval::{EvalError, EvalErrorKind, QuarantineRecord};
use crate::expr::Expr;
use crate::features::FeatureSet;
use crate::gen::random_expr;
use crate::ops::{crossover, mutate};
use crate::pareto::{
    crowding_distance, dominates, hypervolume_proxy, non_dominated_sort, ParetoPoint,
    NUM_OBJECTIVES, OBJECTIVE_NAMES,
};
use crate::store::FitnessStore;
use metaopt_trace::{json::Value, Tracer};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One co-evolved genome: a pipeline plan (canonical textual form) joined
/// with a priority-function expression.
#[derive(Clone, Debug)]
pub struct PlanGenome {
    /// The pipeline plan, e.g. `unroll(2),hyperblock,regalloc,schedule`.
    pub plan: String,
    /// The priority function evolved for that plan.
    pub expr: Expr,
}

impl PlanGenome {
    /// Cache/ledger key: `plan|expr-key`. The plan's canonical text is its
    /// fingerprint (printing is canonical — see the plan grammar round-trip
    /// property), and [`Expr::key`] is full-precision re-parseable form, so
    /// distinct genomes never collide.
    pub fn key(&self) -> String {
        format!("{}|{}", self.plan, self.expr.key())
    }
}

/// Objective-vector evaluation of one `(plan, expr)` genome on one case.
///
/// Implementations must be deterministic in `(plan, expr, case)` for a
/// given `attempt` (the attempt index exists so transient-failure
/// injection in tests can clear on retry, exactly like the scalar
/// engine's `eval_case_attempt`).
pub trait MultiEvaluator: Sync {
    /// Number of training cases (benchmarks).
    fn num_cases(&self) -> usize;

    /// Evaluate and return the objective vector (minimized): simulated
    /// cycles, code size, compile-cost proxy.
    ///
    /// # Errors
    /// A classified [`EvalError`]; only `Timeout` is considered transient
    /// and retried.
    fn eval_objectives(
        &self,
        plan: &str,
        expr: &Expr,
        case: usize,
        attempt: u32,
    ) -> Result<[u64; NUM_OBJECTIVES], EvalError>;
}

/// The plan half of the genetic search space, over canonical plan strings.
/// The core crate implements this on top of the compiler's structural
/// grammar and `plan_ops` operators; tests implement toy spaces.
pub trait PlanSpace: Sync {
    /// Seed plans for the initial population (cycled round-robin). Must be
    /// non-empty and canonical.
    fn seed_plans(&self) -> Vec<String>;
    /// Mutate one plan. Must return a canonical, structurally valid plan.
    fn mutate_plan(&self, rng: &mut StdRng, plan: &str) -> String;
    /// Cross two plans. Must return a canonical, structurally valid plan.
    fn crossover_plans(&self, rng: &mut StdRng, a: &str, b: &str) -> String;
    /// Whether `plan` is a canonical, structurally valid plan (resume-time
    /// validation of checkpointed plans).
    fn is_valid(&self, plan: &str) -> bool;
}

/// Render an objective mask as its enabled names, `cycles,size,compile`
/// style — used in fingerprints, CLI parsing, and the report digest.
pub fn mask_label(mask: &[bool; NUM_OBJECTIVES]) -> String {
    let names: Vec<&str> = (0..NUM_OBJECTIVES)
        .filter(|&k| mask[k])
        .map(|k| OBJECTIVE_NAMES[k])
        .collect();
    names.join(",")
}

/// Parse a `--objectives` list (`cycles,size,compile` in any order) into a
/// mask. Returns `None` on an unknown name or an empty selection.
pub fn parse_mask(text: &str) -> Option<[bool; NUM_OBJECTIVES]> {
    let mut mask = [false; NUM_OBJECTIVES];
    for word in text.split(',') {
        let k = OBJECTIVE_NAMES.iter().position(|n| *n == word.trim())?;
        mask[k] = true;
    }
    if mask.iter().any(|&m| m) {
        Some(mask)
    } else {
        None
    }
}

/// Objective sum marking a genome whose evaluation failed on some case:
/// dominated by every clean genome, never on a reported front.
const PENALTY_OBJECTIVES: [u64; NUM_OBJECTIVES] = [u64::MAX; NUM_OBJECTIVES];

/// Per-case evaluation outcome kept in the run-lifetime memo.
#[derive(Clone)]
enum CaseOutcome {
    Objectives([u64; NUM_OBJECTIVES]),
    Failed,
}

/// A co-evolution run: NSGA-II over [`PlanGenome`]s.
pub struct CoEvolution<'a, E: MultiEvaluator, P: PlanSpace> {
    params: GpParams,
    features: &'a FeatureSet,
    evaluator: &'a E,
    plan_space: &'a P,
    seeds: Vec<Expr>,
    objectives: [bool; NUM_OBJECTIVES],
    config_tag: String,
    tracer: Tracer,
    checkpoint_path: Option<PathBuf>,
    resume: Option<Checkpoint>,
    eval_cache: Option<PathBuf>,
}

impl<'a, E: MultiEvaluator, P: PlanSpace> CoEvolution<'a, E, P> {
    /// Create a run with all objectives enabled and no checkpointing.
    pub fn new(
        params: GpParams,
        features: &'a FeatureSet,
        evaluator: &'a E,
        plan_space: &'a P,
    ) -> Self {
        CoEvolution {
            params,
            features,
            evaluator,
            plan_space,
            seeds: Vec::new(),
            objectives: [true; NUM_OBJECTIVES],
            config_tag: String::new(),
            tracer: Tracer::disabled(),
            checkpoint_path: None,
            resume: None,
            eval_cache: None,
        }
    }

    /// Seed expressions injected into the initial population (paired with
    /// the plan space's seed plans, round-robin).
    #[must_use]
    pub fn with_seeds(mut self, seeds: Vec<Expr>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Restrict selection to a subset of the objectives. Objective vectors
    /// are always evaluated and reported in full; the mask only affects
    /// dominance and crowding comparisons. An all-false mask is rejected
    /// at parse time ([`parse_mask`]), so this trusts its input.
    #[must_use]
    pub fn with_objectives(mut self, mask: [bool; NUM_OBJECTIVES]) -> Self {
        self.objectives = mask;
        self
    }

    /// Evaluator-configuration tag folded into the checkpoint/store
    /// fingerprint (the experiment drivers pass the study identity).
    #[must_use]
    pub fn with_config_tag(mut self, tag: impl Into<String>) -> Self {
        self.config_tag = tag.into();
        self
    }

    /// Attach a structured-trace sink.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Write a v3 checkpoint after every completed generation.
    #[must_use]
    pub fn with_checkpoint_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Resume from a previously saved checkpoint.
    #[must_use]
    pub fn resume_from(mut self, ck: Checkpoint) -> Self {
        self.resume = Some(ck);
        self
    }

    /// Attach a crash-safe persistent fitness cache. Keys extend the
    /// scalar store's convention to `plan|expr`, and objective `k` of case
    /// `c` is stored under derived case index `c * NUM_OBJECTIVES + k`
    /// (integer objectives below 2^53 round-trip the store's f64 slots
    /// exactly).
    #[must_use]
    pub fn with_eval_cache(mut self, path: impl Into<PathBuf>) -> Self {
        self.eval_cache = Some(path.into());
        self
    }

    /// The full fingerprint for this configuration: the scalar parameter
    /// fingerprint under a config tag extended with a co-evolution marker
    /// and the objective mask, so scalar checkpoints/stores and co-evolved
    /// ones can never answer for each other.
    fn full_fingerprint(&self) -> String {
        fingerprint(
            &self.params,
            &format!(
                "coevo objectives={} {}",
                mask_label(&self.objectives),
                self.config_tag
            ),
        )
    }

    /// Run, panicking on checkpoint/resume failures (evaluation failures
    /// are quarantined, never fatal).
    pub fn run(&self) -> EvolutionResult {
        self.try_run()
            .unwrap_or_else(|e| panic!("co-evolution run failed: {e}"))
    }

    /// Run the co-evolution, surfacing checkpoint/resume errors.
    ///
    /// # Errors
    /// Checkpoint I/O, parse, or fingerprint-mismatch failures.
    pub fn try_run(&self) -> Result<EvolutionResult, CheckpointError> {
        let p = &self.params;
        let fp = self.full_fingerprint();
        let ncases = self.evaluator.num_cases();
        let all_cases: Vec<usize> = (0..ncases).collect();

        let store = self
            .eval_cache
            .as_ref()
            .map(|path| FitnessStore::open(path, &fp, &self.tracer));

        let mut rng;
        let mut pop: Vec<PlanGenome>;
        let mut log: Vec<GenLog>;
        let start_generation;
        let mut state = EvalState {
            memo: HashMap::new(),
            ledger: Vec::new(),
            seen: HashSet::new(),
            evaluations: 0,
            successes: 0,
            failures: 0,
            cache_hits: 0,
            warm_hits: 0,
            store,
        };

        if let Some(ck) = &self.resume {
            ck.validate(&fp)?;
            let plans = ck.plans.as_ref().ok_or_else(|| CheckpointError::Parse {
                line: 0,
                message: "checkpoint carries no plan genomes (written by a scalar run?)"
                    .to_string(),
            })?;
            pop = Vec::with_capacity(ck.population.len());
            for (genome, plan) in ck.population.iter().zip(plans) {
                let expr = crate::parse::parse_expr(genome, self.features).map_err(|e| {
                    CheckpointError::Parse {
                        line: 0,
                        message: format!("unparseable population genome {genome:?}: {e}"),
                    }
                })?;
                if !self.plan_space.is_valid(plan) {
                    return Err(CheckpointError::Parse {
                        line: 0,
                        message: format!("invalid pipeline plan {plan:?} in checkpoint"),
                    });
                }
                pop.push(PlanGenome {
                    plan: plan.clone(),
                    expr,
                });
            }
            rng = StdRng::from_state(ck.rng_state);
            log = ck.log.clone();
            start_generation = ck.next_generation;
            state.evaluations = ck.evaluations;
            state.successes = ck.successes;
            state.failures = ck.failures;
            state.seen = ck
                .quarantined
                .iter()
                .map(|r| (r.genome.clone(), r.case))
                .collect();
            state.ledger = ck.quarantined.clone();
        } else {
            rng = StdRng::seed_from_u64(p.seed);
            let seed_plans = self.plan_space.seed_plans();
            assert!(!seed_plans.is_empty(), "PlanSpace::seed_plans is empty");
            pop = Vec::with_capacity(p.population);
            for i in 0..p.population {
                let expr = match self.seeds.get(i) {
                    Some(e) => e.clone(),
                    None => random_expr(
                        &mut rng,
                        self.features,
                        p.kind,
                        p.init_depth.0,
                        p.init_depth.1,
                    ),
                };
                pop.push(PlanGenome {
                    plan: seed_plans[i % seed_plans.len()].clone(),
                    expr,
                });
            }
            log = Vec::with_capacity(p.generations);
            start_generation = 0;
        }

        let run_span = self.tracer.begin();
        if self.tracer.enabled() {
            self.tracer.emit(
                "evolution-start",
                [
                    ("population", Value::UInt(p.population as u64)),
                    ("generations", Value::UInt(p.generations as u64)),
                    ("start_gen", Value::UInt(start_generation as u64)),
                    ("threads", Value::UInt(p.threads as u64)),
                    ("resumed", Value::Bool(self.resume.is_some())),
                ],
            );
        }

        let mut final_front: Vec<ParetoPoint> = Vec::new();
        let mut best_genome = 0usize;
        let mut objs: Vec<[u64; NUM_OBJECTIVES]> = Vec::new();

        for generation in start_generation..p.generations {
            let gen_span = self.tracer.begin();
            let evals_before = state.evaluations;
            let hits_before = state.cache_hits;

            // Evaluate everyone (fresh offspring pay, survivors hit the
            // memo), then truncate back to the configured population size.
            let raw_objs = self.evaluate_population(&mut state, &pop, &all_cases, generation);
            let (selected_pop, selected_objs, ranks, crowding) =
                self.environmental_selection(pop, raw_objs, p.population);
            pop = selected_pop;
            objs = selected_objs;

            best_genome = argmin_cycles(&objs);
            let mean_cycles = mean_cycles(&objs);
            log.push(GenLog {
                generation,
                best_fitness: objs[best_genome][0] as f64,
                mean_fitness: mean_cycles,
                best_size: pop[best_genome].expr.size(),
                subset: all_cases.clone(),
            });

            final_front = self.front_points(&pop, &objs);
            if self.tracer.enabled() {
                let gl = log.last().expect("just pushed");
                self.tracer.emit(
                    "generation",
                    [
                        ("gen", Value::UInt(generation as u64)),
                        (
                            "subset",
                            Value::Arr(all_cases.iter().map(|&c| Value::UInt(c as u64)).collect()),
                        ),
                        ("evals", Value::UInt(state.evaluations - evals_before)),
                        ("cache_hits", Value::UInt(state.cache_hits - hits_before)),
                        ("best_fitness", Value::Num(gl.best_fitness)),
                        ("mean_fitness", Value::Num(gl.mean_fitness)),
                        ("best_size", Value::UInt(gl.best_size as u64)),
                        ("dur_ns", Value::UInt(gen_span.dur_ns())),
                    ],
                );
                self.emit_front(generation, &final_front);
            }

            if generation + 1 == p.generations {
                break;
            }

            // Breed: crowded-tournament parents, joint crossover, then
            // independent expression/plan mutation. Offspring are appended
            // unevaluated; the next iteration's evaluation + truncation is
            // the (μ+λ) environmental selection.
            let k = ((p.replace_frac * p.population as f64).round() as usize)
                .clamp(1, p.population.saturating_sub(1));
            let mut offspring = Vec::with_capacity(k);
            for _ in 0..k {
                let a = self.crowded_tournament(&mut rng, &ranks, &crowding);
                let b = self.crowded_tournament(&mut rng, &ranks, &crowding);
                let mut expr = crossover(&mut rng, &pop[a].expr, &pop[b].expr, p.max_depth);
                let mut plan =
                    self.plan_space
                        .crossover_plans(&mut rng, &pop[a].plan, &pop[b].plan);
                if rng.random_bool(p.mutation_rate) {
                    expr = mutate(&mut rng, &expr, self.features, p.max_depth);
                }
                if rng.random_bool(p.mutation_rate) {
                    plan = self.plan_space.mutate_plan(&mut rng, &plan);
                }
                offspring.push(PlanGenome { plan, expr });
            }
            pop.extend(offspring);

            // Snapshot at the generation boundary: the μ+λ population and
            // the RNG state it was bred with.
            if let Some(path) = &self.checkpoint_path {
                let ck_span = self.tracer.begin();
                self.save_checkpoint(path, &fp, generation + 1, &rng, &pop, &log, &state)?;
                if self.tracer.enabled() {
                    self.tracer.emit(
                        "checkpoint",
                        [
                            ("gen", Value::UInt((generation + 1) as u64)),
                            ("dur_ns", Value::UInt(ck_span.dur_ns())),
                        ],
                    );
                }
            }
        }

        let best = pop
            .get(best_genome)
            .cloned()
            .unwrap_or_else(|| pop[0].clone());
        let best_fitness = objs.get(best_genome).map_or(f64::NAN, |o| o[0] as f64);
        let result = EvolutionResult {
            best: best.expr.clone(),
            best_fitness,
            log,
            evaluations: state.evaluations,
            successes: state.successes,
            failures: state.failures,
            quarantined: state.ledger,
            cache_hits: state.cache_hits,
            warm_hits: state.warm_hits,
            front: final_front,
        };
        if self.tracer.enabled() {
            self.tracer.emit(
                "evolution-end",
                [
                    ("evaluations", Value::UInt(result.evaluations)),
                    ("successes", Value::UInt(result.successes)),
                    ("failures", Value::UInt(result.failures)),
                    ("quarantined", Value::UInt(result.quarantined.len() as u64)),
                    ("best_fitness", Value::Num(result.best_fitness)),
                    ("best", Value::str(best.key().as_str())),
                    ("dur_ns", Value::UInt(run_span.dur_ns())),
                ],
            );
            self.tracer.flush();
        }
        Ok(result)
    }

    /// Evaluate every genome on every case, answering from the memo (and
    /// warm store) where possible; returns per-genome summed objective
    /// vectors, with [`PENALTY_OBJECTIVES`] for genomes that failed a case.
    ///
    /// Determinism: the work list of unique uncached `(key, case)` pairs is
    /// assembled serially in population order; workers race only over an
    /// atomic index into disjoint result slots; all accounting happens
    /// serially afterwards, again in work-list order.
    fn evaluate_population(
        &self,
        state: &mut EvalState,
        pop: &[PlanGenome],
        cases: &[usize],
        generation: usize,
    ) -> Vec<[u64; NUM_OBJECTIVES]> {
        let keys: Vec<String> = pop.iter().map(PlanGenome::key).collect();

        // Serial pass 1: memo/warm-store lookups, then the deduplicated
        // work list of pairs that genuinely need a compile-and-simulate.
        let mut work: Vec<(usize, usize)> = Vec::new(); // (pop index, case)
        let mut queued: HashSet<(&str, usize)> = HashSet::new();
        for (g, key) in keys.iter().enumerate() {
            for &case in cases {
                if let Some(slots) = state.memo.get(key.as_str()) {
                    if slots.get(case).is_some_and(Option::is_some) {
                        state.cache_hits += 1;
                        continue;
                    }
                }
                if !queued.insert((key.as_str(), case)) {
                    // Duplicate genome in this population: the first
                    // occurrence evaluates, later ones count as hits.
                    state.cache_hits += 1;
                    continue;
                }
                if let Some(objectives) = state.warm_lookup(key, case) {
                    state.record(key, case, CaseOutcome::Objectives(objectives), true);
                    continue;
                }
                work.push((g, case));
            }
        }

        // Parallel pass: each unique pair evaluated exactly once, into its
        // own slot.
        type Slot = Mutex<Option<Result<[u64; NUM_OBJECTIVES], EvalError>>>;
        let results: Vec<Slot> = work.iter().map(|_| Mutex::new(None)).collect();
        let threads = self.params.threads.max(1).min(work.len().max(1));
        let next = AtomicUsize::new(0);
        let eval_item = |i: usize| {
            let (g, case) = work[i];
            let r = self.eval_with_retries(&keys[g], &pop[g], case, generation);
            *results[i].lock().unwrap() = Some(r);
        };
        if threads <= 1 {
            for i in 0..work.len() {
                eval_item(i);
            }
        } else {
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= work.len() {
                            break;
                        }
                        eval_item(i);
                    });
                }
            });
        }

        // Serial pass 2: fold results into the memo, counters, ledger, and
        // persistent store, in work-list order.
        for (i, (g, case)) in work.iter().enumerate() {
            let r = results[i]
                .lock()
                .unwrap()
                .take()
                .expect("every work slot is filled");
            match r {
                Ok(objectives) => {
                    state.record(&keys[*g], *case, CaseOutcome::Objectives(objectives), false);
                }
                Err(error) => {
                    state.record_failure(&keys[*g], *case, error);
                }
            }
        }

        // Sum per-case vectors per genome (saturating); any failed case
        // poisons the genome to the penalty vector.
        pop.iter()
            .enumerate()
            .map(|(g, _)| {
                let slots = state
                    .memo
                    .get(keys[g].as_str())
                    .expect("all genomes evaluated");
                let mut sum = [0u64; NUM_OBJECTIVES];
                for &case in cases {
                    match slots.get(case).and_then(Option::as_ref) {
                        Some(CaseOutcome::Objectives(o)) => {
                            for k in 0..NUM_OBJECTIVES {
                                sum[k] = sum[k].saturating_add(o[k]);
                            }
                        }
                        Some(CaseOutcome::Failed) | None => return PENALTY_OBJECTIVES,
                    }
                }
                sum
            })
            .collect()
    }

    /// One evaluation with the transient-retry policy: only `Timeout`
    /// failures retry, up to `params.retries` extra attempts, with a
    /// deterministic traced backoff.
    fn eval_with_retries(
        &self,
        key: &str,
        genome: &PlanGenome,
        case: usize,
        generation: usize,
    ) -> Result<[u64; NUM_OBJECTIVES], EvalError> {
        let mut attempt = 0u32;
        loop {
            let span = self.tracer.begin();
            let r = self
                .evaluator
                .eval_objectives(&genome.plan, &genome.expr, case, attempt);
            match &r {
                Err(e) if e.kind == EvalErrorKind::Timeout && attempt < self.params.retries => {
                    let backoff = crate::engine::backoff_ns(key, case, attempt);
                    if self.tracer.enabled() {
                        self.tracer.emit(
                            "retry",
                            [
                                ("gen", Value::UInt(generation as u64)),
                                ("genome", Value::str(key)),
                                ("case", Value::UInt(case as u64)),
                                ("attempt", Value::UInt(u64::from(attempt) + 1)),
                                ("kind", Value::str(e.kind.label())),
                                ("backoff_ns", Value::UInt(backoff)),
                            ],
                        );
                    }
                    attempt += 1;
                    continue;
                }
                _ => {}
            }
            if self.tracer.enabled() {
                let outcome = match &r {
                    Ok(_) => "score",
                    Err(e) => e.kind.label(),
                };
                let mut attrs = vec![
                    ("gen", Value::UInt(generation as u64)),
                    ("genome", Value::str(key)),
                    ("case", Value::UInt(case as u64)),
                    ("outcome", Value::str(outcome)),
                    ("dur_ns", Value::UInt(span.dur_ns())),
                ];
                if let Ok(o) = &r {
                    attrs.push(("score", Value::Num(o[0] as f64)));
                    attrs.push((
                        "objectives",
                        Value::Arr(o.iter().map(|&x| Value::UInt(x)).collect()),
                    ));
                }
                self.tracer.emit("eval", attrs);
            }
            return r;
        }
    }

    /// (μ+λ) environmental selection: non-dominated sort the combined
    /// population, keep whole fronts while they fit, truncate the boundary
    /// front by crowding distance (descending, ties by index). Returns the
    /// survivors (in original relative order) with their objective vectors,
    /// ranks, and crowding distances.
    #[allow(clippy::type_complexity)]
    fn environmental_selection(
        &self,
        pop: Vec<PlanGenome>,
        objs: Vec<[u64; NUM_OBJECTIVES]>,
        target: usize,
    ) -> (
        Vec<PlanGenome>,
        Vec<[u64; NUM_OBJECTIVES]>,
        Vec<usize>,
        Vec<f64>,
    ) {
        let fronts = non_dominated_sort(&objs, &self.objectives);
        let mut selected: Vec<usize> = Vec::with_capacity(target);
        for front in &fronts {
            if selected.len() >= target {
                break;
            }
            let room = target - selected.len();
            if front.len() <= room {
                selected.extend_from_slice(front);
            } else {
                let crowd = crowding_distance(front, &objs, &self.objectives);
                let mut order: Vec<usize> = (0..front.len()).collect();
                order.sort_by(|&x, &y| {
                    crowd[y]
                        .partial_cmp(&crowd[x])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(front[x].cmp(&front[y]))
                });
                selected.extend(order[..room].iter().map(|&x| front[x]));
            }
        }
        selected.sort_unstable();

        let keep: HashSet<usize> = selected.iter().copied().collect();
        let mut new_pop = Vec::with_capacity(target);
        let mut new_objs = Vec::with_capacity(target);
        for (i, (g, o)) in pop.into_iter().zip(objs).enumerate() {
            if keep.contains(&i) {
                new_pop.push(g);
                new_objs.push(o);
            }
        }

        // Re-rank the survivors for tournament selection.
        let fronts = non_dominated_sort(&new_objs, &self.objectives);
        let mut ranks = vec![0usize; new_pop.len()];
        let mut crowding = vec![0.0f64; new_pop.len()];
        for (r, front) in fronts.iter().enumerate() {
            let crowd = crowding_distance(front, &new_objs, &self.objectives);
            for (pos, &i) in front.iter().enumerate() {
                ranks[i] = r;
                crowding[i] = crowd[pos];
            }
        }
        (new_pop, new_objs, ranks, crowding)
    }

    /// Crowded tournament: draw `params.tournament` contenders (with
    /// replacement); the winner has the lowest rank, then the highest
    /// crowding distance, then the lowest index.
    fn crowded_tournament(&self, rng: &mut StdRng, ranks: &[usize], crowding: &[f64]) -> usize {
        let mut best = rng.random_range(0..ranks.len());
        for _ in 1..self.params.tournament.max(1) {
            let c = rng.random_range(0..ranks.len());
            let better = match ranks[c].cmp(&ranks[best]) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => {
                    crowding[c] > crowding[best] || (crowding[c] == crowding[best] && c < best)
                }
            };
            if better {
                best = c;
            }
        }
        best
    }

    /// The rank-0 front of the current population as reportable points:
    /// penalized genomes excluded, deduplicated by genome key, sorted by
    /// objective vector then key for a canonical order.
    fn front_points(&self, pop: &[PlanGenome], objs: &[[u64; NUM_OBJECTIVES]]) -> Vec<ParetoPoint> {
        let fronts = non_dominated_sort(objs, &self.objectives);
        let mut points: Vec<ParetoPoint> = Vec::new();
        let mut seen = HashSet::new();
        for &i in fronts.first().map_or(&[][..], |f| &f[..]) {
            if objs[i] == PENALTY_OBJECTIVES {
                continue;
            }
            let key = pop[i].key();
            if seen.insert(key) {
                points.push(ParetoPoint {
                    plan: pop[i].plan.clone(),
                    expr: pop[i].expr.key(),
                    objectives: objs[i],
                });
            }
        }
        points.sort_by(|a, b| {
            a.objectives
                .cmp(&b.objectives)
                .then_with(|| a.plan.cmp(&b.plan))
                .then_with(|| a.expr.cmp(&b.expr))
        });
        points
    }

    /// Emit the `pareto-front` trace event for one generation.
    fn emit_front(&self, generation: usize, points: &[ParetoPoint]) {
        let vectors: Vec<[u64; NUM_OBJECTIVES]> = points.iter().map(|p| p.objectives).collect();
        let hv = hypervolume_proxy(&vectors, &self.objectives);
        let arr = points
            .iter()
            .map(|p| {
                Value::Obj(vec![
                    ("plan".to_string(), Value::str(&p.plan)),
                    ("expr".to_string(), Value::str(&p.expr)),
                    (
                        "objectives".to_string(),
                        Value::Arr(p.objectives.iter().map(|&x| Value::UInt(x)).collect()),
                    ),
                ])
            })
            .collect();
        self.tracer.emit(
            "pareto-front",
            [
                ("gen", Value::UInt(generation as u64)),
                ("size", Value::UInt(points.len() as u64)),
                ("hypervolume", Value::UInt(hv)),
                ("points", Value::Arr(arr)),
            ],
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn save_checkpoint(
        &self,
        path: &Path,
        fp: &str,
        next_generation: usize,
        rng: &StdRng,
        pop: &[PlanGenome],
        log: &[GenLog],
        state: &EvalState,
    ) -> Result<(), CheckpointError> {
        let ck = Checkpoint {
            fingerprint: fp.to_string(),
            next_generation,
            rng_state: rng.state(),
            population: pop.iter().map(|g| g.expr.key()).collect(),
            plans: Some(pop.iter().map(|g| g.plan.clone()).collect()),
            dss: None,
            log: log.to_vec(),
            evaluations: state.evaluations,
            successes: state.successes,
            failures: state.failures,
            quarantined: state.ledger.clone(),
            memo_entries: state.memo.len() as u64,
        };
        ck.save(path)
    }
}

/// Run-lifetime evaluation state: the memo, counters, quarantine ledger,
/// and optional persistent store. All mutation happens on the coordinating
/// thread.
struct EvalState {
    /// `plan|expr` key → per-case outcomes (index = case).
    memo: HashMap<String, Vec<Option<CaseOutcome>>>,
    ledger: Vec<QuarantineRecord>,
    seen: HashSet<(String, usize)>,
    evaluations: u64,
    successes: u64,
    failures: u64,
    cache_hits: u64,
    warm_hits: u64,
    store: Option<FitnessStore>,
}

impl EvalState {
    /// Answer a pair from the warm persistent store, if every objective of
    /// the case is present.
    fn warm_lookup(&mut self, key: &str, case: usize) -> Option<[u64; NUM_OBJECTIVES]> {
        let store = self.store.as_ref()?;
        let mut objectives = [0u64; NUM_OBJECTIVES];
        for (k, slot) in objectives.iter_mut().enumerate() {
            let v = store.lookup(key, case * NUM_OBJECTIVES + k)?;
            if !(v.is_finite() && v >= 0.0) {
                return None;
            }
            *slot = v as u64;
        }
        Some(objectives)
    }

    /// Record a successful evaluation (or warm hit) for `(key, case)`.
    fn record(&mut self, key: &str, case: usize, outcome: CaseOutcome, warm: bool) {
        self.evaluations += 1;
        self.successes += 1;
        if warm {
            self.warm_hits += 1;
        } else if let (Some(store), CaseOutcome::Objectives(o)) = (&mut self.store, &outcome) {
            for (k, &v) in o.iter().enumerate() {
                store.append(key, case * NUM_OBJECTIVES + k, v as f64);
            }
        }
        self.insert(key, case, outcome);
    }

    /// Record a failed evaluation: counters, deduplicated ledger, memo.
    fn record_failure(&mut self, key: &str, case: usize, error: EvalError) {
        self.evaluations += 1;
        self.failures += 1;
        if self.seen.insert((key.to_string(), case)) {
            self.ledger.push(QuarantineRecord {
                genome: key.to_string(),
                case,
                error,
            });
        }
        self.insert(key, case, CaseOutcome::Failed);
    }

    fn insert(&mut self, key: &str, case: usize, outcome: CaseOutcome) {
        let slots = self.memo.entry(key.to_string()).or_default();
        if slots.len() <= case {
            slots.resize(case + 1, None);
        }
        slots[case] = Some(outcome);
    }
}

/// Index of the genome with the fewest summed cycles (objective 0), ties
/// to the lowest index; 0 on an empty slice.
fn argmin_cycles(objs: &[[u64; NUM_OBJECTIVES]]) -> usize {
    let mut best = 0;
    for (i, o) in objs.iter().enumerate() {
        if o[0] < objs[best][0] {
            best = i;
        }
    }
    best
}

/// Mean of the cycles objective over clean (non-penalized) genomes; NaN
/// when every genome is penalized.
fn mean_cycles(objs: &[[u64; NUM_OBJECTIVES]]) -> f64 {
    let clean: Vec<u64> = objs
        .iter()
        .filter(|o| **o != PENALTY_OBJECTIVES)
        .map(|o| o[0])
        .collect();
    if clean.is_empty() {
        return f64::NAN;
    }
    clean.iter().map(|&c| c as f64).sum::<f64>() / clean.len() as f64
}

/// Sanity check used by tests and the CLI: no point on `front` may be
/// dominated by another under `mask`.
pub fn front_is_mutually_non_dominated(
    front: &[ParetoPoint],
    mask: &[bool; NUM_OBJECTIVES],
) -> bool {
    front.iter().all(|a| {
        front
            .iter()
            .all(|b| !dominates(&b.objectives, &a.objectives, mask))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Kind;

    /// Deterministic synthetic objective landscape with genuine trade-offs:
    /// plan `pN` costs more "compile"/"size" the larger N is, but scales
    /// cycles down; the expression hash perturbs cycles.
    struct Landscape;

    fn fnv(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h
    }

    impl MultiEvaluator for Landscape {
        fn num_cases(&self) -> usize {
            2
        }
        fn eval_objectives(
            &self,
            plan: &str,
            expr: &Expr,
            case: usize,
            _attempt: u32,
        ) -> Result<[u64; NUM_OBJECTIVES], EvalError> {
            let n: u64 = plan.trim_start_matches('p').parse().unwrap_or(0);
            let h = fnv(&expr.key()) % 64;
            let cycles = 1_000 / (n + 1) + h + case as u64;
            let size = 100 + 40 * n;
            let compile = 10 + 25 * n;
            Ok([cycles, size, compile])
        }
    }

    /// Toy plan space over `p0..p3`.
    struct Toy;

    impl PlanSpace for Toy {
        fn seed_plans(&self) -> Vec<String> {
            vec!["p0".to_string(), "p3".to_string()]
        }
        fn mutate_plan(&self, rng: &mut StdRng, _plan: &str) -> String {
            format!("p{}", rng.random_range(0u32..4))
        }
        fn crossover_plans(&self, rng: &mut StdRng, a: &str, b: &str) -> String {
            if rng.random_bool(0.5) {
                a.to_string()
            } else {
                b.to_string()
            }
        }
        fn is_valid(&self, plan: &str) -> bool {
            matches!(plan, "p0" | "p1" | "p2" | "p3")
        }
    }

    fn features() -> FeatureSet {
        let mut fs = FeatureSet::new();
        fs.add_real("x");
        fs.add_real("y");
        fs
    }

    fn params(threads: usize) -> GpParams {
        GpParams {
            population: 12,
            generations: 5,
            seed: 42,
            threads,
            kind: Kind::Real,
            ..GpParams::quick()
        }
    }

    fn snapshot(r: &EvolutionResult) -> (String, Vec<String>, u64, u64, u64, u64, u64) {
        (
            r.best.key(),
            r.front
                .iter()
                .map(|p| format!("{}|{}|{:?}", p.plan, p.expr, p.objectives))
                .collect(),
            r.evaluations,
            r.successes,
            r.failures,
            r.cache_hits,
            r.warm_hits,
        )
    }

    #[test]
    fn coevo_runs_are_deterministic_across_thread_counts() {
        let fs = features();
        let base = CoEvolution::new(params(1), &fs, &Landscape, &Toy).run();
        for threads in [2, 4, 8] {
            let r = CoEvolution::new(params(threads), &fs, &Landscape, &Toy).run();
            assert_eq!(snapshot(&r), snapshot(&base), "threads={threads}");
            assert_eq!(r.log, base.log, "threads={threads}");
        }
    }

    #[test]
    fn front_has_trade_offs_and_no_dominated_points() {
        let fs = features();
        let r = CoEvolution::new(params(2), &fs, &Landscape, &Toy).run();
        assert!(
            r.front.len() >= 2,
            "landscape has cycles-vs-cost trade-offs, front: {:?}",
            r.front
        );
        assert!(front_is_mutually_non_dominated(&r.front, &[true; 3]));
        // The trade-off is real: at least two distinct plans survive.
        let plans: HashSet<&str> = r.front.iter().map(|p| p.plan.as_str()).collect();
        assert!(plans.len() >= 2, "front collapsed to one plan: {plans:?}");
    }

    #[test]
    fn objective_mask_changes_selection() {
        let fs = features();
        // Cycles-only selection degenerates toward the single best plan.
        let masked = CoEvolution::new(params(1), &fs, &Landscape, &Toy)
            .with_objectives([true, false, false])
            .run();
        assert!(front_is_mutually_non_dominated(
            &masked.front,
            &[true, false, false]
        ));
        // Under a cycles-only mask the front is the set of cycle-minimal
        // genomes: every point shares the same cycles value.
        let cycles: HashSet<u64> = masked.front.iter().map(|p| p.objectives[0]).collect();
        assert_eq!(cycles.len(), 1, "{:?}", masked.front);
    }

    #[test]
    fn resume_reproduces_the_uninterrupted_run() {
        let fs = features();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("metaopt-coevo-ck-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);

        // Short run leaves a checkpoint behind.
        let mut short = params(2);
        short.generations = 2;
        CoEvolution::new(short, &fs, &Landscape, &Toy)
            .with_checkpoint_file(&path)
            .run();
        assert!(path.exists());

        let resumed = CoEvolution::new(params(2), &fs, &Landscape, &Toy)
            .resume_from(Checkpoint::load(&path).unwrap())
            .run();
        let straight = CoEvolution::new(params(2), &fs, &Landscape, &Toy).run();
        assert_eq!(resumed.best.key(), straight.best.key());
        assert_eq!(resumed.front, straight.front);
        assert_eq!(resumed.log, straight.log);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scalar_checkpoints_are_refused() {
        let fs = features();
        // A checkpoint without a plans section cannot resume a co-evolved
        // run even if someone forges a matching fingerprint; the mismatch
        // fires first because the config tags differ.
        let p = params(1);
        let ck = Checkpoint {
            fingerprint: fingerprint(&p, "plain-scalar-tag"),
            next_generation: 1,
            rng_state: [1, 2, 3, 4],
            population: vec!["(add x y)".to_string(); 12],
            plans: None,
            dss: None,
            log: Vec::new(),
            evaluations: 0,
            successes: 0,
            failures: 0,
            quarantined: Vec::new(),
            memo_entries: 0,
        };
        let err = CoEvolution::new(p, &fs, &Landscape, &Toy)
            .resume_from(ck)
            .try_run()
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err}");
    }

    #[test]
    fn warm_cache_run_reproduces_the_cold_run() {
        let fs = features();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("metaopt-coevo-store-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cold = CoEvolution::new(params(2), &fs, &Landscape, &Toy)
            .with_eval_cache(&path)
            .run();
        assert_eq!(cold.warm_hits, 0);
        let warm = CoEvolution::new(params(2), &fs, &Landscape, &Toy)
            .with_eval_cache(&path)
            .run();
        assert!(warm.warm_hits > 0, "second run must hit the store");
        assert_eq!(warm.best.key(), cold.best.key());
        assert_eq!(warm.front, cold.front);
        assert_eq!(warm.log, cold.log);
        assert_eq!(warm.evaluations, cold.evaluations);
        let _ = std::fs::remove_file(&path);
    }

    /// Transient timeouts clear on retry and stay deterministic across
    /// thread counts.
    struct Flaky;

    impl MultiEvaluator for Flaky {
        fn num_cases(&self) -> usize {
            2
        }
        fn eval_objectives(
            &self,
            plan: &str,
            expr: &Expr,
            case: usize,
            attempt: u32,
        ) -> Result<[u64; NUM_OBJECTIVES], EvalError> {
            let h = fnv(&format!("{plan}|{}|{case}", expr.key()));
            if h % 5 == 0 && attempt == 0 {
                return Err(EvalError::new(EvalErrorKind::Timeout, "injected stall"));
            }
            if h % 11 == 0 {
                return Err(EvalError::new(EvalErrorKind::Sim, "injected fault"));
            }
            Landscape.eval_objectives(plan, expr, case, attempt)
        }
    }

    #[test]
    fn flaky_runs_are_deterministic_and_quarantine_hard_failures() {
        let fs = features();
        let base = CoEvolution::new(params(1), &fs, &Flaky, &Toy).run();
        for threads in [2, 4] {
            let r = CoEvolution::new(params(threads), &fs, &Flaky, &Toy).run();
            assert_eq!(snapshot(&r), snapshot(&base), "threads={threads}");
            assert_eq!(
                r.quarantined.len(),
                base.quarantined.len(),
                "threads={threads}"
            );
        }
        assert_eq!(base.evaluations, base.successes + base.failures);
        assert!(front_is_mutually_non_dominated(&base.front, &[true; 3]));
    }

    #[test]
    fn mask_labels_round_trip() {
        assert_eq!(mask_label(&[true, true, true]), "cycles,size,compile");
        assert_eq!(parse_mask("cycles,size,compile"), Some([true, true, true]));
        assert_eq!(parse_mask("size"), Some([false, true, false]));
        assert_eq!(parse_mask("compile, cycles"), Some([true, false, true]));
        assert_eq!(parse_mask(""), None);
        assert_eq!(parse_mask("speed"), None);
    }
}
