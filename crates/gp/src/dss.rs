//! Dynamic subset selection (Gathercole), paper §3.
//!
//! Training a general-purpose priority function over many benchmarks is
//! expensive: every fitness evaluation compiles and runs each benchmark.
//! DSS trains each generation on a *subset*, biased toward benchmarks that
//! are currently **difficult** (the population does poorly on them relative
//! to the baseline) and benchmarks that have not been selected for a while
//! (**age**), so nothing is starved.

use rand::{Rng, RngExt};

/// Subset-selection state over `n` training cases.
#[derive(Clone, Debug)]
pub struct Dss {
    difficulty: Vec<f64>,
    age: Vec<f64>,
    subset_size: usize,
    /// Exponent applied to difficulty (Gathercole's `d`).
    pub difficulty_exp: f64,
    /// Exponent applied to age (Gathercole's `a`).
    pub age_exp: f64,
}

impl Dss {
    /// New state over `n` cases selecting subsets of `subset_size`.
    pub fn new(n: usize, subset_size: usize) -> Self {
        Dss {
            difficulty: vec![1.0; n],
            age: vec![1.0; n],
            subset_size: subset_size.clamp(1, n.max(1)),
            difficulty_exp: 1.0,
            age_exp: 2.0,
        }
    }

    /// Number of training cases.
    pub fn num_cases(&self) -> usize {
        self.difficulty.len()
    }

    /// The configured subset size.
    pub fn subset_size(&self) -> usize {
        self.subset_size
    }

    /// Snapshot of the per-case state as `(difficulty, age)` vectors, for
    /// checkpointing.
    pub fn state(&self) -> (Vec<f64>, Vec<f64>) {
        (self.difficulty.clone(), self.age.clone())
    }

    /// Rebuild DSS state from a [`Dss::state`] snapshot. Returns `None` if
    /// the vectors disagree in length or are empty.
    pub fn restore(subset_size: usize, difficulty: Vec<f64>, age: Vec<f64>) -> Option<Self> {
        if difficulty.is_empty() || difficulty.len() != age.len() {
            return None;
        }
        let mut dss = Dss::new(difficulty.len(), subset_size);
        dss.difficulty = difficulty;
        dss.age = age;
        Some(dss)
    }

    /// Current per-case selection weight.
    pub fn weight(&self, case: usize) -> f64 {
        self.difficulty[case].powf(self.difficulty_exp) + self.age[case].powf(self.age_exp)
    }

    /// Sample a subset (without replacement) proportional to the weights,
    /// then advance ages: selected cases reset to 1, unselected ones age.
    pub fn select<R: Rng>(&mut self, rng: &mut R) -> Vec<usize> {
        let n = self.num_cases();
        if self.subset_size >= n {
            return (0..n).collect();
        }
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut chosen = Vec::with_capacity(self.subset_size);
        for _ in 0..self.subset_size {
            let total: f64 = remaining.iter().map(|&c| self.weight(c)).sum();
            // Degenerate weights (all zero, or poisoned by a non-finite
            // difficulty) would otherwise always land on the last remaining
            // case; fall back to a uniform draw instead.
            let pick = if total > 0.0 && total.is_finite() {
                let mut draw = rng.random::<f64>() * total;
                let mut pick = remaining.len() - 1;
                for (i, &c) in remaining.iter().enumerate() {
                    draw -= self.weight(c);
                    if draw <= 0.0 {
                        pick = i;
                        break;
                    }
                }
                pick
            } else {
                rng.random_range(0..remaining.len())
            };
            chosen.push(remaining.swap_remove(pick));
        }
        for c in 0..n {
            if chosen.contains(&c) {
                self.age[c] = 1.0;
            } else {
                self.age[c] += 1.0;
            }
        }
        chosen.sort_unstable();
        chosen
    }

    /// Report the population's best speedup on `case` from the last
    /// evaluation; cases where the best expression still trails the baseline
    /// (speedup < 1) become *difficult* and get picked more often.
    pub fn report(&mut self, case: usize, best_speedup: f64) {
        self.difficulty[case] = (2.0 - best_speedup).clamp(0.05, 4.0) * 10.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_subset_when_size_covers_all() {
        let mut dss = Dss::new(4, 10);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(dss.select(&mut rng), vec![0, 1, 2, 3]);
    }

    #[test]
    fn subsets_have_requested_size_and_no_duplicates() {
        let mut dss = Dss::new(10, 4);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let s = dss.select(&mut rng);
            assert_eq!(s.len(), 4);
            let mut d = s.clone();
            d.dedup();
            assert_eq!(d.len(), 4);
        }
    }

    #[test]
    fn difficult_cases_selected_more_often() {
        let mut dss = Dss::new(10, 3);
        // Case 0 is very difficult; others are solved.
        for c in 0..10 {
            dss.report(c, if c == 0 { 0.5 } else { 1.9 });
        }
        let mut rng = StdRng::seed_from_u64(2);
        let mut hits = [0usize; 10];
        for _ in 0..300 {
            for c in dss.select(&mut rng) {
                hits[c] += 1;
            }
            // Re-assert difficulty (select() mutates ages).
            for c in 0..10 {
                dss.report(c, if c == 0 { 0.5 } else { 1.9 });
            }
        }
        let mean_rest = hits[1..].iter().sum::<usize>() as f64 / 9.0;
        assert!(
            hits[0] as f64 > 1.5 * mean_rest,
            "hits[0]={} vs mean rest {mean_rest}",
            hits[0]
        );
    }

    #[test]
    fn zero_total_weight_falls_back_to_uniform_selection() {
        // Force every weight to zero: difficulty 0^1 = 0 and age 0^2 = 0.
        let mut dss = Dss::new(8, 2);
        dss.difficulty = vec![0.0; 8];
        dss.age = vec![0.0; 8];
        let mut rng = StdRng::seed_from_u64(7);
        let mut hits = vec![0usize; 8];
        for _ in 0..400 {
            let s = dss.select(&mut rng);
            assert_eq!(s.len(), 2);
            for c in s {
                hits[c] += 1;
            }
            // Keep the degenerate state (select() resets ages).
            dss.age = vec![0.0; 8];
        }
        // Without the guard the draw always lands on the last remaining
        // case, so early cases would never be picked.
        assert!(
            hits.iter().all(|&h| h > 0),
            "uniform fallback must reach every case: {hits:?}"
        );
        let (min, max) = (hits.iter().min().unwrap(), hits.iter().max().unwrap());
        assert!(max - min < 80, "roughly uniform: {hits:?}");
    }

    #[test]
    fn aging_prevents_starvation() {
        let mut dss = Dss::new(6, 2);
        for c in 0..6 {
            dss.report(c, if c < 2 { 0.2 } else { 1.9 });
        }
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = vec![false; 6];
        for _ in 0..60 {
            for c in dss.select(&mut rng) {
                seen[c] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "all cases eventually selected: {seen:?}"
        );
    }
}
