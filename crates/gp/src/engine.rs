//! The evolutionary search engine (paper §3–4, Table 2).

use crate::dss::Dss;
use crate::expr::{Expr, Kind};
use crate::features::FeatureSet;
use crate::gen::random_expr;
use crate::ops::{crossover, mutate};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::sync::Mutex;

/// Supplies fitness: the **speedup over the baseline heuristic** of the
/// program compiled with `expr` as the priority function, per training case
/// (benchmark). Implementations compile and simulate, so calls are costly —
/// the engine memoizes per `(expr, case)`.
pub trait Evaluator: Sync {
    /// Number of training cases (benchmarks).
    fn num_cases(&self) -> usize;
    /// Speedup of `expr` over the baseline on `case` (1.0 = parity).
    fn eval_case(&self, expr: &Expr, case: usize) -> f64;
}

/// Search parameters (paper Table 2).
#[derive(Clone, Debug)]
pub struct GpParams {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Fraction of the population replaced each generation.
    pub replace_frac: f64,
    /// Probability an offspring is mutated.
    pub mutation_rate: f64,
    /// Tournament size.
    pub tournament: usize,
    /// Maximum genome height.
    pub max_depth: usize,
    /// Initial ramped-grow height range.
    pub init_depth: (usize, usize),
    /// Genome sort to evolve.
    pub kind: Kind,
    /// RNG seed (the whole run is deterministic given the evaluator is).
    pub seed: u64,
    /// Worker threads for fitness evaluation.
    pub threads: usize,
    /// Fitness difference regarded as a tie (parsimony applies then).
    pub fitness_epsilon: f64,
    /// Dynamic-subset size (`None` evaluates every case every generation).
    pub subset_size: Option<usize>,
    /// Guarantee the best expression survives each generation (paper
    /// Table 2: "Best expression is guaranteed survival"). Disable only for
    /// ablation studies.
    pub elitism: bool,
}

impl GpParams {
    /// The paper's Table 2 settings: 400 expressions, 50 generations, 22 %
    /// replacement, 5 % mutation, tournament 7, elitism of one.
    pub fn paper() -> Self {
        GpParams {
            population: 400,
            generations: 50,
            replace_frac: 0.22,
            mutation_rate: 0.05,
            tournament: 7,
            max_depth: 12,
            init_depth: (2, 6),
            kind: Kind::Real,
            seed: 0x5EED,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            fitness_epsilon: 1e-6,
            subset_size: None,
            elitism: true,
        }
    }

    /// Laptop-scale settings used by the tests and the figure harness.
    pub fn quick() -> Self {
        GpParams {
            population: 40,
            generations: 10,
            ..GpParams::paper()
        }
    }
}

/// One generation's telemetry (drives the paper's Figs. 5/10/14).
#[derive(Clone, Debug)]
pub struct GenLog {
    /// Generation index (0-based).
    pub generation: usize,
    /// Best fitness this generation (mean speedup on this generation's
    /// subset).
    pub best_fitness: f64,
    /// Population mean fitness.
    pub mean_fitness: f64,
    /// Size (node count) of the best expression.
    pub best_size: usize,
    /// The training-case subset evaluated this generation.
    pub subset: Vec<usize>,
}

/// Result of an evolution run.
#[derive(Clone, Debug)]
pub struct EvolutionResult {
    /// Best expression, judged on the *full* training set at the end.
    pub best: Expr,
    /// Its mean speedup on the full training set.
    pub best_fitness: f64,
    /// Per-generation telemetry.
    pub log: Vec<GenLog>,
    /// Number of uncached `(expr, case)` fitness evaluations performed.
    pub evaluations: u64,
}

/// An evolution run: wraps GP around an [`Evaluator`].
pub struct Evolution<'a, E: Evaluator> {
    params: GpParams,
    features: &'a FeatureSet,
    evaluator: &'a E,
    seeds: Vec<Expr>,
}

struct Memo {
    cache: Mutex<HashMap<(String, usize), f64>>,
    misses: Mutex<u64>,
}

impl Memo {
    fn new() -> Self {
        Memo {
            cache: Mutex::new(HashMap::new()),
            misses: Mutex::new(0),
        }
    }

    fn get_or_eval<E: Evaluator>(&self, ev: &E, expr: &Expr, key: &str, case: usize) -> f64 {
        if let Some(v) = self.cache.lock().unwrap().get(&(key.to_string(), case)) {
            return *v;
        }
        let v = ev.eval_case(expr, case);
        *self.misses.lock().unwrap() += 1;
        self.cache
            .lock()
            .unwrap()
            .insert((key.to_string(), case), v);
        v
    }
}

impl<'a, E: Evaluator> Evolution<'a, E> {
    /// Create a run over `features` with fitness from `evaluator`.
    pub fn new(params: GpParams, features: &'a FeatureSet, evaluator: &'a E) -> Self {
        Evolution {
            params,
            features,
            evaluator,
            seeds: Vec::new(),
        }
    }

    /// Seed the initial population (paper §4: "we seed the initial
    /// population with the compiler writer's best guess").
    pub fn with_seeds(mut self, seeds: Vec<Expr>) -> Self {
        self.seeds = seeds;
        self
    }

    fn mean_fitness(&self, memo: &Memo, expr: &Expr, subset: &[usize]) -> f64 {
        if subset.is_empty() {
            return 1.0;
        }
        // Malformed genomes (wrong sort, out-of-range features, non-finite
        // constants, certain zero divisions) score the worst possible
        // fitness without spending a compile-and-simulate evaluation.
        if crate::lint::reject(expr, self.params.kind, self.features).is_err() {
            return 0.0;
        }
        let key = expr.key();
        let sum: f64 = subset
            .iter()
            .map(|&c| memo.get_or_eval(self.evaluator, expr, &key, c))
            .sum();
        sum / subset.len() as f64
    }

    fn evaluate_all(&self, memo: &Memo, pop: &[Expr], subset: &[usize]) -> Vec<f64> {
        let threads = self.params.threads.max(1);
        if threads == 1 || pop.len() < 4 {
            return pop
                .iter()
                .map(|e| self.mean_fitness(memo, e, subset))
                .collect();
        }
        let mut fits = vec![0.0f64; pop.len()];
        let chunk = pop.len().div_ceil(threads);
        std::thread::scope(|s| {
            for (ci, (exprs, out)) in pop.chunks(chunk).zip(fits.chunks_mut(chunk)).enumerate() {
                let _ = ci;
                s.spawn(move || {
                    for (e, f) in exprs.iter().zip(out.iter_mut()) {
                        *f = self.mean_fitness(memo, e, subset);
                    }
                });
            }
        });
        fits
    }

    /// Tournament of `k` with parsimony: highest fitness wins; ties go to
    /// the smaller expression (paper §3).
    fn tournament(&self, rng: &mut StdRng, pop: &[Expr], fits: &[f64]) -> usize {
        let k = self.params.tournament.max(1);
        let mut best = rng.random_range(0..pop.len());
        for _ in 1..k {
            let c = rng.random_range(0..pop.len());
            if better(
                fits[c],
                pop[c].size(),
                fits[best],
                pop[best].size(),
                self.params.fitness_epsilon,
            ) {
                best = c;
            }
        }
        best
    }

    /// Run the evolution.
    pub fn run(&self) -> EvolutionResult {
        let p = &self.params;
        let mut rng = StdRng::seed_from_u64(p.seed);
        let memo = Memo::new();
        let ncases = self.evaluator.num_cases();

        // Initial population: seeds then ramped-grow randoms.
        let mut pop: Vec<Expr> = self.seeds.iter().take(p.population).cloned().collect();
        while pop.len() < p.population {
            pop.push(random_expr(
                &mut rng,
                self.features,
                p.kind,
                p.init_depth.0,
                p.init_depth.1,
            ));
        }

        let mut dss = p
            .subset_size
            .filter(|&s| s < ncases)
            .map(|s| Dss::new(ncases, s));
        let all_cases: Vec<usize> = (0..ncases).collect();
        let mut log = Vec::with_capacity(p.generations);

        for generation in 0..p.generations {
            let subset = match &mut dss {
                Some(d) => d.select(&mut rng),
                None => all_cases.clone(),
            };
            let fits = self.evaluate_all(&memo, &pop, &subset);

            let best_idx = argbest(&fits, &pop, p.fitness_epsilon);
            log.push(GenLog {
                generation,
                best_fitness: fits[best_idx],
                mean_fitness: fits.iter().sum::<f64>() / fits.len().max(1) as f64,
                best_size: pop[best_idx].size(),
                subset: subset.clone(),
            });

            // Feed DSS with the best expression's per-case speedups.
            if let Some(d) = &mut dss {
                let key = pop[best_idx].key();
                for &c in &subset {
                    let s = memo.get_or_eval(self.evaluator, &pop[best_idx], &key, c);
                    d.report(c, s);
                }
            }

            if generation + 1 == p.generations {
                break;
            }

            // Breed: replace `replace_frac` of the population (elitism: the
            // best expression is never displaced).
            let k = ((p.replace_frac * p.population as f64).round() as usize)
                .clamp(1, p.population.saturating_sub(1));
            let mut offspring = Vec::with_capacity(k);
            for _ in 0..k {
                let a = self.tournament(&mut rng, &pop, &fits);
                let b = self.tournament(&mut rng, &pop, &fits);
                let mut child = crossover(&mut rng, &pop[a], &pop[b], p.max_depth);
                if rng.random_bool(p.mutation_rate) {
                    child = mutate(&mut rng, &child, self.features, p.max_depth);
                }
                offspring.push(child);
            }
            for child in offspring {
                loop {
                    let slot = rng.random_range(0..pop.len());
                    if !p.elitism || slot != best_idx {
                        pop[slot] = child;
                        break;
                    }
                }
            }
        }

        // Final judgement on the full training set.
        let final_fits = self.evaluate_all(&memo, &pop, &all_cases);
        let best_idx = argbest(&final_fits, &pop, p.fitness_epsilon);
        let evaluations = *memo.misses.lock().unwrap();
        EvolutionResult {
            best: pop[best_idx].clone(),
            best_fitness: final_fits[best_idx],
            log,
            evaluations,
        }
    }
}

fn better(fa: f64, sa: usize, fb: f64, sb: usize, eps: f64) -> bool {
    if (fa - fb).abs() <= eps {
        sa < sb
    } else {
        fa > fb
    }
}

fn argbest(fits: &[f64], pop: &[Expr], eps: f64) -> usize {
    let mut best = 0;
    for i in 1..fits.len() {
        if better(fits[i], pop[i].size(), fits[best], pop[best].size(), eps) {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Env;
    use crate::parse::parse_expr;

    /// Symbolic-regression-style evaluator: fitness is closeness of the
    /// expression to `2x + 1` over sample points; each "case" weights a
    /// different sample range. Fast and deterministic — exercises the whole
    /// engine without a compiler in the loop.
    struct Regress;

    impl Evaluator for Regress {
        fn num_cases(&self) -> usize {
            3
        }

        fn eval_case(&self, expr: &Expr, case: usize) -> f64 {
            let lo = case as f64;
            let mut err = 0.0;
            for i in 0..10 {
                let x = lo + i as f64 * 0.3;
                let want = 2.0 * x + 1.0;
                let got = expr.eval_real(&Env {
                    reals: &[x],
                    bools: &[],
                });
                err += (want - got).abs();
            }
            // Map error to a "speedup"-like score: 2.0 at perfect fit.
            2.0 / (1.0 + err / 10.0)
        }
    }

    fn features() -> FeatureSet {
        let mut fs = FeatureSet::new();
        fs.add_real("x");
        fs
    }

    #[test]
    fn malformed_seed_is_rejected_without_an_evaluation() {
        // A kind-mismatched genome (Bool in a Real study) must score 0.0
        // straight from the lint gate — the evaluator must never see it.
        struct NoBools;
        impl Evaluator for NoBools {
            fn num_cases(&self) -> usize {
                1
            }
            fn eval_case(&self, expr: &Expr, _case: usize) -> f64 {
                assert!(
                    !matches!(expr, Expr::Bool(_)),
                    "lint-rejected genome reached the evaluator: {expr}"
                );
                1.5
            }
        }
        let fs = features();
        let bad = Expr::Bool(crate::expr::BExpr::Const(true));
        let good = parse_expr("(mul 2.0 x)", &fs).unwrap();
        let mut params = GpParams::quick();
        params.generations = 3;
        params.population = 10;
        params.seed = 11;
        params.threads = 1;
        let result = Evolution::new(params, &fs, &NoBools)
            .with_seeds(vec![bad, good])
            .run();
        assert!(matches!(result.best, Expr::Real(_)));
        assert!(result.best_fitness > 0.0);
    }

    #[test]
    fn evolution_improves_over_random_start() {
        let fs = features();
        let ev = Regress;
        let mut params = GpParams::quick();
        params.generations = 15;
        params.population = 60;
        params.seed = 3;
        params.threads = 2;
        let result = Evolution::new(params, &fs, &ev).run();
        let first = result.log.first().unwrap().best_fitness;
        let last = result.log.last().unwrap().best_fitness;
        assert!(last >= first, "{last} >= {first}");
        assert!(
            result.best_fitness > 1.0,
            "found something decent: {}",
            result.best_fitness
        );
        assert_eq!(result.log.len(), 15);
        assert!(result.evaluations > 0);
    }

    #[test]
    fn seed_guarantees_baseline_floor() {
        // Seeding with the exact solution: the engine can never return
        // anything worse (elitism + final full evaluation).
        let fs = features();
        let ev = Regress;
        let seed = parse_expr("(add (mul 2.0 x) 1.0)", &fs).unwrap();
        let perfect = (0..3).map(|c| ev.eval_case(&seed, c)).sum::<f64>() / 3.0;
        let mut params = GpParams::quick();
        params.generations = 5;
        params.population = 20;
        let result = Evolution::new(params, &fs, &ev)
            .with_seeds(vec![seed])
            .run();
        assert!(
            result.best_fitness >= perfect - 1e-9,
            "{} vs {perfect}",
            result.best_fitness
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let fs = features();
        let ev = Regress;
        let mut params = GpParams::quick();
        params.generations = 6;
        params.population = 24;
        params.threads = 1;
        let a = Evolution::new(params.clone(), &fs, &ev).run();
        let b = Evolution::new(params, &fs, &ev).run();
        assert_eq!(a.best.key(), b.best.key());
        assert_eq!(a.best_fitness, b.best_fitness);
    }

    #[test]
    fn dss_mode_selects_subsets() {
        let fs = features();
        let ev = Regress;
        let mut params = GpParams::quick();
        params.generations = 6;
        params.population = 20;
        params.subset_size = Some(2);
        let result = Evolution::new(params, &fs, &ev).run();
        assert!(result.log.iter().all(|g| g.subset.len() == 2));
    }

    #[test]
    fn elitism_off_still_produces_valid_results() {
        let fs = features();
        let ev = Regress;
        let mut params = GpParams::quick();
        params.generations = 6;
        params.population = 20;
        params.elitism = false;
        let r = Evolution::new(params, &fs, &ev).run();
        assert!(r.best_fitness.is_finite());
        assert_eq!(r.log.len(), 6);
    }

    #[test]
    fn parsimony_prefers_smaller_of_equal_fitness() {
        assert!(better(1.0, 3, 1.0, 9, 1e-6));
        assert!(!better(1.0, 9, 1.0, 3, 1e-6));
        assert!(better(1.5, 9, 1.0, 3, 1e-6));
    }
}
