//! The evolutionary search engine (paper §3–4, Table 2).

use crate::checkpoint::{fingerprint, Checkpoint, CheckpointError, DssState};
use crate::dss::Dss;
use crate::eval::{EvalError, EvalErrorKind, EvalOutcome, QuarantineRecord};
use crate::expr::{Expr, Kind};
use crate::features::FeatureSet;
use crate::gen::random_expr;
use crate::ops::{crossover, mutate};
use crate::service::{self, Containment};
use crate::store::FitnessStore;
use metaopt_trace::json::Value;
use metaopt_trace::metrics::{Counter, Histogram, MetricsRegistry};
use metaopt_trace::Tracer;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Fitness assigned to a genome whose evaluation failed on any case in the
/// generation's subset (and to lint-rejected genomes): the worst possible
/// score, so quarantined genomes lose every tournament against any genome
/// with a real speedup, but the run itself keeps going.
pub const PENALTY_FITNESS: f64 = 0.0;

/// Supplies fitness: the **speedup over the baseline heuristic** of the
/// program compiled with `expr` as the priority function, per training case
/// (benchmark). Implementations compile and simulate, so calls are costly —
/// the engine memoizes per `(expr, case)`.
///
/// Failure contract: a genome that breaks the compiler, exhausts a budget,
/// or miscompiles must return [`EvalOutcome::Failed`], not panic — the run
/// quarantines it and continues. Panics that do escape are nevertheless
/// caught at the evaluation boundary and converted to
/// [`crate::eval::EvalErrorKind::Panic`] failures.
pub trait Evaluator: Sync {
    /// Number of training cases (benchmarks).
    fn num_cases(&self) -> usize;
    /// Outcome for `expr` on `case`: a speedup score (1.0 = parity) or a
    /// classified failure.
    fn eval_case(&self, expr: &Expr, case: usize) -> EvalOutcome;
    /// [`Evaluator::eval_case`] with a retry-attempt index (0 = first try).
    /// The engine calls this; the default ignores `attempt`, which is right
    /// for deterministic evaluators. Implementations whose transient
    /// failures depend on the attempt (fault injectors, evaluators talking
    /// to real hosts) override it.
    fn eval_case_attempt(&self, expr: &Expr, case: usize, attempt: u32) -> EvalOutcome {
        let _ = attempt;
        self.eval_case(expr, case)
    }
}

/// Search parameters (paper Table 2).
#[derive(Clone, Debug)]
pub struct GpParams {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Fraction of the population replaced each generation.
    pub replace_frac: f64,
    /// Probability an offspring is mutated.
    pub mutation_rate: f64,
    /// Tournament size.
    pub tournament: usize,
    /// Maximum genome height.
    pub max_depth: usize,
    /// Initial ramped-grow height range.
    pub init_depth: (usize, usize),
    /// Genome sort to evolve.
    pub kind: Kind,
    /// RNG seed (the whole run is deterministic given the evaluator is).
    pub seed: u64,
    /// Worker threads for fitness evaluation.
    pub threads: usize,
    /// Fitness difference regarded as a tie (parsimony applies then).
    pub fitness_epsilon: f64,
    /// Dynamic-subset size (`None` evaluates every case every generation).
    pub subset_size: Option<usize>,
    /// Guarantee the best expression survives each generation (paper
    /// Table 2: "Best expression is guaranteed survival"). Disable only for
    /// ablation studies.
    pub elitism: bool,
    /// How many times a *transient* evaluation failure (see
    /// [`crate::eval::EvalErrorKind::is_transient`]) is retried before the
    /// pair is quarantined. Deterministic failures never retry. Part of the
    /// checkpoint fingerprint: a different retry budget can change which
    /// pairs quarantine, hence every fitness downstream.
    pub retries: u32,
}

impl GpParams {
    /// The paper's Table 2 settings: 400 expressions, 50 generations, 22 %
    /// replacement, 5 % mutation, tournament 7, elitism of one.
    pub fn paper() -> Self {
        GpParams {
            population: 400,
            generations: 50,
            replace_frac: 0.22,
            mutation_rate: 0.05,
            tournament: 7,
            max_depth: 12,
            init_depth: (2, 6),
            kind: Kind::Real,
            seed: 0x5EED,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            fitness_epsilon: 1e-6,
            subset_size: None,
            elitism: true,
            retries: 2,
        }
    }

    /// Laptop-scale settings used by the tests and the figure harness.
    pub fn quick() -> Self {
        GpParams {
            population: 40,
            generations: 10,
            ..GpParams::paper()
        }
    }
}

/// One generation's telemetry (drives the paper's Figs. 5/10/14).
#[derive(Clone, Debug, PartialEq)]
pub struct GenLog {
    /// Generation index (0-based).
    pub generation: usize,
    /// Best fitness this generation (mean speedup on this generation's
    /// subset).
    pub best_fitness: f64,
    /// Population mean fitness.
    pub mean_fitness: f64,
    /// Size (node count) of the best expression.
    pub best_size: usize,
    /// The training-case subset evaluated this generation.
    pub subset: Vec<usize>,
}

/// Result of an evolution run.
///
/// Accounting invariant: `evaluations == successes + failures` (every
/// uncached evaluation is exactly one of the two). In a fresh (non-resumed)
/// run `quarantined.len() == failures`, because memoization evaluates each
/// `(genome, case)` pair at most once. A resumed run re-evaluates pairs the
/// killed run had cached (the memo cache is deliberately not persisted), so
/// its counters can exceed the deduplicated ledger.
#[derive(Clone, Debug)]
pub struct EvolutionResult {
    /// Best expression, judged on the *full* training set at the end.
    pub best: Expr,
    /// Its mean speedup on the full training set.
    pub best_fitness: f64,
    /// Per-generation telemetry.
    pub log: Vec<GenLog>,
    /// Number of uncached `(expr, case)` fitness evaluations performed.
    pub evaluations: u64,
    /// Uncached evaluations that produced a score.
    pub successes: u64,
    /// Uncached evaluations that failed (and were quarantined).
    pub failures: u64,
    /// The quarantine ledger: one record per distinct failed
    /// `(genome, case)` pair, with the classified error and diagnostics.
    pub quarantined: Vec<QuarantineRecord>,
    /// Memo-cache hits: `(expr, case)` lookups answered without an
    /// evaluation. Deterministic for a fixed configuration regardless of
    /// thread count — every lookup counts as exactly one of
    /// `evaluations`/`cache_hits`, and the set of evaluated pairs is
    /// thread-schedule independent (the memo's insert is an entry guard:
    /// a thread that loses an evaluation race records a hit, not an
    /// evaluation). Not carried across a resume (the cache itself is not
    /// persisted).
    pub cache_hits: u64,
    /// Evaluations answered by the *persistent* fitness store (see
    /// [`Evolution::with_eval_cache`]) instead of a live compile-and-
    /// simulate. A warm hit still counts as one of `evaluations` (and one
    /// of `successes` — only scores are persisted), so a warm run's
    /// counters, ledger, and result are identical to the cold run that
    /// populated the store, with `warm_hits` recording how much work the
    /// store saved. Zero when no store is configured.
    pub warm_hits: u64,
    /// The Pareto front of non-dominated `(plan, expr)` genomes, populated
    /// only by co-evolution ([`crate::coevo::CoEvolution`]); always empty
    /// for scalar single-plan runs, which select on one fitness value.
    pub front: Vec<crate::pareto::ParetoPoint>,
}

/// An evolution run: wraps GP around an [`Evaluator`].
pub struct Evolution<'a, E: Evaluator> {
    params: GpParams,
    features: &'a FeatureSet,
    evaluator: &'a E,
    seeds: Vec<Expr>,
    checkpoint_path: Option<PathBuf>,
    resume: Option<Checkpoint>,
    config_tag: String,
    tracer: Tracer,
    eval_cache: Option<PathBuf>,
}

#[derive(Clone, Copy)]
struct Counters {
    evaluations: u64,
    successes: u64,
    failures: u64,
}

struct Ledger {
    records: Vec<QuarantineRecord>,
    seen: HashSet<(String, usize)>,
}

/// Number of independent lock shards in the fitness memo. Worker threads
/// hash each `(genome, case)` key onto a shard, so concurrent lookups of
/// different pairs rarely contend on the same mutex.
const MEMO_SHARDS: usize = 16;

/// Deterministic FNV-1a — used only to spread keys across shards, so it
/// needs no cross-process stability guarantees, but having them anyway
/// keeps shard occupancy reproducible.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Per-shard memo map: genome key → outcomes for the cases seen so far.
/// Keyed by the genome string alone (cases nest inside) so the hot-path
/// lookup can borrow the caller's `&str` — no per-probe allocation; a
/// `String` is built only when inserting a genuinely new genome.
type ShardMap = HashMap<String, Vec<(usize, EvalOutcome)>>;

/// Deterministic backoff before retrying a transient failure, derived from
/// the pair identity and attempt index so retried runs trace identical
/// `backoff_ns` values on every host and thread schedule. The real sleep
/// is capped well below the nominal value — the determinism contract is
/// about the *traced* schedule, not wall time.
pub(crate) fn backoff_ns(key: &str, case: usize, attempt: u32) -> u64 {
    let h = fnv1a(key)
        ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (u64::from(attempt) + 1).wrapping_mul(0xA076_1D64_78BD_642F);
    // Exponential ladder (64 µs, 128 µs, 256 µs, …) plus deterministic
    // jitter of up to one base step.
    let base = 1u64 << (16 + attempt.min(8));
    base + h % base
}

/// Hard cap on how long a retry actually sleeps (1 ms): backoff exists to
/// let a transient host condition clear, not to stall the search.
const MAX_BACKOFF_SLEEP_NS: u64 = 1_000_000;

/// Cached handles onto the live [`MetricsRegistry`], registered once at
/// memo construction so the evaluation hot path records lock-free. These
/// mirror (never replace) the memo's own atomic counters: results and
/// traces are derived from the memo, metrics only feed observers.
struct MemoMetrics {
    evaluations: Arc<Counter>,
    successes: Arc<Counter>,
    failures: Arc<Counter>,
    cache_hits: Arc<Counter>,
    warm_hits: Arc<Counter>,
    retries: Arc<Counter>,
    timeouts: Arc<Counter>,
    eval_latency: Arc<Histogram>,
}

impl MemoMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        MemoMetrics {
            evaluations: registry.counter("metaopt_evaluations_total"),
            successes: registry.counter("metaopt_eval_success_total"),
            failures: registry.counter("metaopt_eval_failure_total"),
            cache_hits: registry.counter("metaopt_cache_hits_total"),
            warm_hits: registry.counter("metaopt_warm_hits_total"),
            retries: registry.counter("metaopt_retries_total"),
            timeouts: registry.counter("metaopt_timeouts_total"),
            eval_latency: registry.histogram("metaopt_eval_latency_ns"),
        }
    }
}

struct Memo {
    shards: Vec<Mutex<ShardMap>>,
    evaluations: AtomicU64,
    successes: AtomicU64,
    failures: AtomicU64,
    cache_hits: AtomicU64,
    warm_hits: AtomicU64,
    ledger: Mutex<Ledger>,
    /// Persistent fitness store; `None` runs in-memory only.
    store: Option<FitnessStore>,
    /// Transient-failure retry budget (from [`GpParams::retries`]).
    retries: u32,
    /// Live metrics mirror; `None` when the run has no registry attached.
    metrics: Option<MemoMetrics>,
}

impl Memo {
    fn new(store: Option<FitnessStore>, retries: u32, registry: Option<&MetricsRegistry>) -> Self {
        Memo {
            shards: (0..MEMO_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            evaluations: AtomicU64::new(0),
            successes: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            ledger: Mutex::new(Ledger {
                records: Vec::new(),
                seen: HashSet::new(),
            }),
            store,
            retries,
            metrics: registry.map(MemoMetrics::new),
        }
    }

    /// Rebuild accounting state from a checkpoint. The fitness cache starts
    /// empty — deterministic evaluators recompute identical outcomes — but
    /// the ledger's seen-set is restored so re-observed failures don't
    /// produce duplicate records.
    fn resumed(
        ck: &Checkpoint,
        store: Option<FitnessStore>,
        retries: u32,
        registry: Option<&MetricsRegistry>,
    ) -> Self {
        let seen = ck
            .quarantined
            .iter()
            .map(|r| (r.genome.clone(), r.case))
            .collect();
        let memo = Memo::new(store, retries, registry);
        memo.evaluations.store(ck.evaluations, Ordering::Relaxed);
        memo.successes.store(ck.successes, Ordering::Relaxed);
        memo.failures.store(ck.failures, Ordering::Relaxed);
        *memo.ledger.lock().unwrap() = Ledger {
            records: ck.quarantined.clone(),
            seen,
        };
        memo
    }

    /// Shard index for a `(genome, case)` pair — also used to spread the
    /// evaluation service's job queues, so jobs for the same shard land on
    /// the same queue and their memo locks stay warm per worker.
    fn shard_index(key: &str, case: usize) -> usize {
        let h = fnv1a(key) ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h % MEMO_SHARDS as u64) as usize
    }

    fn shard(&self, key: &str, case: usize) -> &Mutex<ShardMap> {
        &self.shards[Self::shard_index(key, case)]
    }

    /// Borrow-only cache probe: no allocation on the hit path.
    fn probe(map: &ShardMap, key: &str, case: usize) -> Option<EvalOutcome> {
        map.get(key)?
            .iter()
            .find(|(c, _)| *c == case)
            .map(|(_, o)| o.clone())
    }

    /// Counter snapshot. Only consistent when no evaluation is in flight
    /// (the engine reads at generation boundaries, after worker threads
    /// have joined).
    fn counters(&self) -> Counters {
        Counters {
            evaluations: self.evaluations.load(Ordering::Relaxed),
            successes: self.successes.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
        }
    }

    fn hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    fn warm(&self) -> u64 {
        self.warm_hits.load(Ordering::Relaxed)
    }

    /// Quarantined pair count (schedule-independent at generation
    /// boundaries, like the other counters).
    fn quarantined_len(&self) -> u64 {
        self.ledger.lock().unwrap().records.len() as u64
    }

    /// The ledger in canonical `(genome, case)` order. Worker threads race
    /// to append records, so insertion order varies run to run; sorting on
    /// export makes ledgers comparable across runs, resumes, and CI
    /// artifacts.
    fn ledger_records(&self) -> Vec<QuarantineRecord> {
        let mut records = self.ledger.lock().unwrap().records.clone();
        records.sort_by(|a, b| (&a.genome, a.case).cmp(&(&b.genome, b.case)));
        records
    }

    fn cache_entries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap()
                    .values()
                    .map(|cases| cases.len() as u64)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Fetch a cached outcome or evaluate. The evaluator call is wrapped in
    /// `catch_unwind`: a panicking genome becomes a quarantined
    /// [`EvalOutcome::Failed`] instead of poisoning a worker thread and
    /// aborting the run.
    ///
    /// Resolution order for an uncached pair:
    /// 1. the persistent store (a warm hit counts as an evaluation — one of
    ///    `evaluations` *and* `successes` *and* `warm_hits` — so a warm
    ///    run's accounting matches the cold run that wrote the store);
    /// 2. the evaluator, with up to `retries` retried attempts when the
    ///    failure is transient; each retry sleeps a deterministic (traced)
    ///    backoff before the next attempt. Fresh scores are appended to the
    ///    store.
    ///
    /// Accounting invariant: every call bumps exactly one of
    /// `evaluations`/`cache_hits`. When two threads race to evaluate the
    /// same uncached pair, the insert is an entry guard — the loser
    /// discards its redundant result, adopts the winner's, and records a
    /// cache hit, so the counters (and the per-pair `eval`/`retry` trace
    /// spans, emitted only by the winner) are identical to a
    /// single-threaded run.
    fn get_or_eval<E: Evaluator>(
        &self,
        ev: &E,
        expr: &Expr,
        key: &str,
        case: usize,
        gen: usize,
        tracer: &Tracer,
    ) -> EvalOutcome {
        if let Some(v) = Self::probe(&self.shard(key, case).lock().unwrap(), key, case) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.cache_hits.inc();
            }
            return v;
        }
        let span = tracer.begin();
        let (outcome, warm, retried) = match self.store.as_ref().and_then(|s| s.lookup(key, case)) {
            Some(score) => (EvalOutcome::Score(score), true, Vec::new()),
            None => {
                let mut retried: Vec<(u32, EvalErrorKind, u64)> = Vec::new();
                let mut attempt = 0u32;
                let outcome = loop {
                    let o = match catch_unwind(AssertUnwindSafe(|| {
                        ev.eval_case_attempt(expr, case, attempt)
                    })) {
                        Ok(o) => o,
                        Err(payload) => EvalOutcome::Failed(EvalError::from_panic(&*payload)),
                    };
                    match &o {
                        EvalOutcome::Failed(err)
                            if err.kind.is_transient() && attempt < self.retries =>
                        {
                            let ns = backoff_ns(key, case, attempt);
                            retried.push((attempt, err.kind, ns));
                            std::thread::sleep(std::time::Duration::from_nanos(
                                ns.min(MAX_BACKOFF_SLEEP_NS),
                            ));
                            attempt += 1;
                        }
                        _ => break o,
                    }
                };
                (outcome, false, retried)
            }
        };
        {
            let mut shard = self.shard(key, case).lock().unwrap();
            let cases = shard.entry(key.to_string()).or_default();
            if let Some((_, existing)) = cases.iter().find(|(c, _)| *c == case) {
                // Lost the race: another thread resolved this pair first.
                // Its outcome is canonical; this thread's work is dropped
                // and counted as a (late) cache hit.
                let existing = existing.clone();
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.cache_hits.inc();
                }
                return existing;
            }
            cases.push((case, outcome.clone()));
        }
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        if warm {
            self.warm_hits.fetch_add(1, Ordering::Relaxed);
        }
        match &outcome {
            EvalOutcome::Score(s) => {
                self.successes.fetch_add(1, Ordering::Relaxed);
                if !warm {
                    if let Some(store) = &self.store {
                        store.append(key, case, *s);
                    }
                }
            }
            EvalOutcome::Failed(err) => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                let mut led = self.ledger.lock().unwrap();
                if led.seen.insert((key.to_string(), case)) {
                    led.records.push(QuarantineRecord {
                        genome: key.to_string(),
                        case,
                        error: err.clone(),
                    });
                }
            }
        }
        if let Some(m) = &self.metrics {
            m.evaluations.inc();
            if warm {
                m.warm_hits.inc();
            }
            match &outcome {
                EvalOutcome::Score(_) => m.successes.inc(),
                EvalOutcome::Failed(_) => m.failures.inc(),
            }
            m.retries.add(retried.len() as u64);
            m.eval_latency.record(span.dur_ns());
        }
        if tracer.enabled() {
            for (attempt, kind, ns) in &retried {
                tracer.emit(
                    "retry",
                    [
                        ("gen", Value::UInt(gen as u64)),
                        ("genome", Value::str(key)),
                        ("case", Value::UInt(case as u64)),
                        ("attempt", Value::UInt(u64::from(*attempt))),
                        ("kind", Value::str(kind.label())),
                        ("backoff_ns", Value::UInt(*ns)),
                    ],
                );
            }
            let mut attrs = vec![
                ("gen", Value::UInt(gen as u64)),
                ("genome", Value::str(key)),
                ("case", Value::UInt(case as u64)),
            ];
            match &outcome {
                EvalOutcome::Score(s) => {
                    attrs.push(("outcome", Value::str(metaopt_trace::schema::OUTCOME_SCORE)));
                    attrs.push(("score", Value::Num(*s)));
                }
                EvalOutcome::Failed(err) => {
                    attrs.push(("outcome", Value::str(err.kind.label())));
                }
            }
            if warm {
                attrs.push(("warm", Value::Bool(true)));
            }
            attrs.push(("dur_ns", Value::UInt(span.dur_ns())));
            tracer.emit("eval", attrs);
        }
        outcome
    }

    /// Complete a `(genome, case)` pair the evaluation service had to
    /// finish on a worker's behalf (worker crash or wall-clock stall): a
    /// quarantined [`EvalErrorKind::Timeout`] failure, inserted through the
    /// same entry guard as a real result. If a real outcome won the race —
    /// the stalled worker finished after all — it stays canonical and this
    /// containment is a no-op. This path never fires in a healthy run; it
    /// exists so a wedged host cannot hang the search.
    fn complete_contained(
        &self,
        key: &str,
        case: usize,
        gen: usize,
        why: Containment,
        tracer: &Tracer,
    ) {
        let (message, wall_ns) = match why {
            Containment::WorkerCrash => (
                "evaluation worker crashed; job completed by the supervisor".to_string(),
                0,
            ),
            Containment::Stalled { wall_ns } => (
                format!(
                    "evaluation stalled past the wall-clock watchdog ({} ms)",
                    wall_ns / 1_000_000
                ),
                wall_ns,
            ),
        };
        let err = EvalError::new(EvalErrorKind::Timeout, message);
        {
            let mut shard = self.shard(key, case).lock().unwrap();
            let cases = shard.entry(key.to_string()).or_default();
            if cases.iter().any(|(c, _)| *c == case) {
                return;
            }
            cases.push((case, EvalOutcome::Failed(err.clone())));
        }
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        self.failures.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.evaluations.inc();
            m.failures.inc();
            if matches!(why, Containment::Stalled { .. }) {
                m.timeouts.inc();
            }
        }
        {
            let mut led = self.ledger.lock().unwrap();
            if led.seen.insert((key.to_string(), case)) {
                led.records.push(QuarantineRecord {
                    genome: key.to_string(),
                    case,
                    error: err.clone(),
                });
            }
        }
        if tracer.enabled() {
            if let Containment::Stalled { .. } = why {
                tracer.emit(
                    "timeout",
                    [
                        ("genome", Value::str(key)),
                        ("case", Value::UInt(case as u64)),
                        ("wall_ns", Value::UInt(wall_ns)),
                    ],
                );
            }
            tracer.emit(
                "eval",
                [
                    ("gen", Value::UInt(gen as u64)),
                    ("genome", Value::str(key)),
                    ("case", Value::UInt(case as u64)),
                    ("outcome", Value::str(err.kind.label())),
                    ("dur_ns", Value::UInt(wall_ns)),
                ],
            );
        }
    }
}

/// One generation's evaluation wave, shared read-only with the service's
/// workers. The population snapshot is cloned in (waves outlive no
/// generation, but the borrow checker cannot see that across the service's
/// long-lived threads); scores land in atomic slots indexed
/// `genome * cases.len() + case_slot`.
struct Wave {
    pop: Vec<Expr>,
    /// Canonical key per genome; `None` for lint-rejected genomes, which
    /// never reach the evaluator.
    keys: Vec<Option<String>>,
    cases: Vec<usize>,
    gen: usize,
    /// Raw `f64` bits of each `(genome, case_slot)` score.
    scores: Vec<AtomicU64>,
    /// Set when any case of the genome failed (penalty fitness).
    failed: Vec<AtomicBool>,
}

impl<'a, E: Evaluator> Evolution<'a, E> {
    /// Create a run over `features` with fitness from `evaluator`.
    pub fn new(params: GpParams, features: &'a FeatureSet, evaluator: &'a E) -> Self {
        Evolution {
            params,
            features,
            evaluator,
            seeds: Vec::new(),
            checkpoint_path: None,
            resume: None,
            config_tag: String::new(),
            tracer: Tracer::disabled(),
            eval_cache: None,
        }
    }

    /// Back the fitness memo with a crash-safe persistent store at `path`
    /// (see [`crate::store::FitnessStore`]). Scores persist across runs
    /// keyed on the exact genome and the full configuration fingerprint: a
    /// rerun under an identical configuration answers evaluations from the
    /// store ("warm hits") and produces a bit-identical
    /// [`EvolutionResult`]; a store written under any other configuration
    /// is ignored. An unreadable or corrupted store degrades to in-memory
    /// operation — it never fails the run.
    pub fn with_eval_cache(mut self, path: impl Into<PathBuf>) -> Self {
        self.eval_cache = Some(path.into());
        self
    }

    /// Emit `run-trace.v1` events (evolution/generation/eval/checkpoint
    /// spans) into `tracer`. The default is [`Tracer::disabled`], which
    /// costs one branch per would-be event and leaves results bit-identical
    /// to a build without tracing.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Tag the run with an evaluator-configuration description (e.g. the
    /// compiler's pipeline plan) that becomes part of the checkpoint
    /// fingerprint: resuming under a different configuration — which would
    /// silently change every fitness value — is rejected like any other
    /// parameter mismatch.
    pub fn with_config_tag(mut self, tag: impl Into<String>) -> Self {
        self.config_tag = tag.into();
        self
    }

    /// Seed the initial population (paper §4: "we seed the initial
    /// population with the compiler writer's best guess").
    pub fn with_seeds(mut self, seeds: Vec<Expr>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Write a resumable checkpoint to `path` after every generation's
    /// breeding step (atomically: temp file + rename).
    pub fn with_checkpoint_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Resume from a previously saved checkpoint instead of initializing a
    /// fresh population. The checkpoint's parameter fingerprint must match
    /// this run's (all params except `generations` and `threads`); with the
    /// same deterministic evaluator, a resumed run reproduces the
    /// uninterrupted run exactly.
    pub fn resume_from(mut self, checkpoint: Checkpoint) -> Self {
        self.resume = Some(checkpoint);
        self
    }

    fn mean_fitness(&self, memo: &Memo, expr: &Expr, subset: &[usize], gen: usize) -> f64 {
        if subset.is_empty() {
            return 1.0;
        }
        // Malformed genomes (wrong sort, out-of-range features, non-finite
        // constants, certain zero divisions) score the worst possible
        // fitness without spending a compile-and-simulate evaluation.
        if crate::lint::reject(expr, self.params.kind, self.features).is_err() {
            return PENALTY_FITNESS;
        }
        // Every case is evaluated even after a failure: the quarantine
        // ledger then carries the genome's complete per-case failure
        // profile, and the memo cache stays aligned with fresh runs after
        // a resume.
        let key = expr.key();
        let mut sum = 0.0;
        let mut failed = false;
        for &c in subset {
            match memo.get_or_eval(self.evaluator, expr, &key, c, gen, &self.tracer) {
                EvalOutcome::Score(s) => sum += s,
                EvalOutcome::Failed(_) => failed = true,
            }
        }
        if failed {
            PENALTY_FITNESS
        } else {
            sum / subset.len() as f64
        }
    }

    /// Population fitness for one generation. With a single thread (or a
    /// tiny population, or no service running) the serial path evaluates
    /// in-place — this is what the single-threaded golden trace pins. With
    /// the service, each lint-passing `(genome, case)` pair becomes one
    /// job on the shard-affine queues; the calling thread blocks on the
    /// wave and then aggregates scores in serial case order, so the float
    /// sums are bit-identical to the serial path.
    fn evaluate_all(
        &self,
        memo: &Memo,
        pop: &[Expr],
        subset: &[usize],
        gen: usize,
        svc: Option<&service::State<Wave, (u32, u32)>>,
    ) -> Vec<f64> {
        let threads = self.params.threads.max(1);
        let svc = match svc {
            Some(svc) if threads > 1 && pop.len() >= 4 && !subset.is_empty() => svc,
            _ => {
                return pop
                    .iter()
                    .map(|e| self.mean_fitness(memo, e, subset, gen))
                    .collect();
            }
        };
        let keys: Vec<Option<String>> = pop
            .iter()
            .map(|e| {
                crate::lint::reject(e, self.params.kind, self.features)
                    .ok()
                    .map(|()| e.key())
            })
            .collect();
        let wave = Arc::new(Wave {
            pop: pop.to_vec(),
            keys,
            cases: subset.to_vec(),
            gen,
            scores: (0..pop.len() * subset.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            failed: (0..pop.len()).map(|_| AtomicBool::new(false)).collect(),
        });
        let mut jobs = Vec::with_capacity(pop.len() * subset.len());
        for (g, key) in wave.keys.iter().enumerate() {
            let Some(key) = key else { continue };
            for (ci, &case) in wave.cases.iter().enumerate() {
                jobs.push((Memo::shard_index(key, case), (g as u32, ci as u32)));
            }
        }
        svc.submit(wave.clone(), jobs);
        (0..pop.len())
            .map(|g| {
                if wave.keys[g].is_none() || wave.failed[g].load(Ordering::SeqCst) {
                    return PENALTY_FITNESS;
                }
                let n = wave.cases.len();
                let sum: f64 = (0..n)
                    .map(|ci| f64::from_bits(wave.scores[g * n + ci].load(Ordering::SeqCst)))
                    .sum();
                sum / n as f64
            })
            .collect()
    }

    /// Tournament of `k` with parsimony: highest fitness wins; ties go to
    /// the smaller expression (paper §3).
    fn tournament(&self, rng: &mut StdRng, pop: &[Expr], fits: &[f64]) -> usize {
        let k = self.params.tournament.max(1);
        let mut best = rng.random_range(0..pop.len());
        for _ in 1..k {
            let c = rng.random_range(0..pop.len());
            if better(
                fits[c],
                pop[c].size(),
                fits[best],
                pop[best].size(),
                self.params.fitness_epsilon,
            ) {
                best = c;
            }
        }
        best
    }

    /// Run the evolution, panicking on checkpoint/resume failures.
    ///
    /// Fitness-evaluation failures never panic — they are quarantined and
    /// the search continues (see [`Evolution::try_run`]). The only panics
    /// here are checkpoint I/O errors or a parameter-mismatched resume,
    /// which have no sensible in-run recovery; callers using
    /// checkpoint/resume should prefer [`Evolution::try_run`] and report
    /// the error.
    pub fn run(&self) -> EvolutionResult {
        self.try_run()
            .unwrap_or_else(|e| panic!("evolution run failed: {e}"))
    }

    /// Run the evolution, surfacing checkpoint/resume errors.
    pub fn try_run(&self) -> Result<EvolutionResult, CheckpointError> {
        let p = &self.params;
        let fp = fingerprint(p, &self.config_tag);
        let ncases = self.evaluator.num_cases();
        let all_cases: Vec<usize> = (0..ncases).collect();

        // Open (and, if needed, recover) the persistent fitness store
        // before anything evaluates. The fingerprint gate means a store
        // from any other configuration degrades to in-memory operation.
        let store = self
            .eval_cache
            .as_ref()
            .map(|path| FitnessStore::open(path, &fp, &self.tracer));

        let mut rng;
        let mut pop: Vec<Expr>;
        let mut dss;
        let mut log;
        let start_generation;
        let memo;

        if let Some(ck) = &self.resume {
            ck.validate(&fp)?;
            rng = StdRng::from_state(ck.rng_state);
            pop = Vec::with_capacity(ck.population.len());
            for genome in &ck.population {
                let expr = crate::parse::parse_expr(genome, self.features).map_err(|e| {
                    CheckpointError::Parse {
                        line: 0,
                        message: format!("unparseable population genome {genome:?}: {e}"),
                    }
                })?;
                pop.push(expr);
            }
            if pop.len() != p.population {
                return Err(CheckpointError::Parse {
                    line: 0,
                    message: format!(
                        "checkpoint has {} genomes, params want {}",
                        pop.len(),
                        p.population
                    ),
                });
            }
            dss = match &ck.dss {
                Some(st) => Some(
                    Dss::restore(st.subset_size, st.difficulty.clone(), st.age.clone())
                        .filter(|d| d.num_cases() == ncases)
                        .ok_or_else(|| CheckpointError::Parse {
                            line: 0,
                            message: format!(
                                "DSS state covers {} cases, evaluator has {ncases}",
                                st.difficulty.len()
                            ),
                        })?,
                ),
                None => None,
            };
            log = ck.log.clone();
            start_generation = ck.next_generation;
            memo = Memo::resumed(ck, store, p.retries, self.tracer.metrics());
        } else {
            rng = StdRng::seed_from_u64(p.seed);
            memo = Memo::new(store, p.retries, self.tracer.metrics());

            // Initial population: seeds then ramped-grow randoms.
            pop = self.seeds.iter().take(p.population).cloned().collect();
            while pop.len() < p.population {
                pop.push(random_expr(
                    &mut rng,
                    self.features,
                    p.kind,
                    p.init_depth.0,
                    p.init_depth.1,
                ));
            }

            dss = p
                .subset_size
                .filter(|&s| s < ncases)
                .map(|s| Dss::new(ncases, s));
            log = Vec::with_capacity(p.generations);
            start_generation = 0;
        }

        // The supervised evaluation service: one pool of workers for the
        // whole run (waves per generation), supervised for crashes and
        // stalls. Single-threaded (and tiny-population) configurations
        // never start it — they keep the inline-serial path whose exact
        // event order the golden trace pins. The state and both closures
        // live outside the thread scope so workers can borrow them.
        let svc_state: Option<service::State<Wave, (u32, u32)>> =
            (p.threads.max(1) > 1 && p.population >= 4).then(|| {
                service::State::new(p.threads.max(1), MEMO_SHARDS)
                    .with_metrics(self.tracer.metrics())
            });
        let exec = |wave: &Wave, (g, ci): (u32, u32)| {
            let (g, ci) = (g as usize, ci as usize);
            let key = wave.keys[g]
                .as_ref()
                .expect("only lint-passed genomes are enqueued");
            let case = wave.cases[ci];
            match memo.get_or_eval(
                self.evaluator,
                &wave.pop[g],
                key,
                case,
                wave.gen,
                &self.tracer,
            ) {
                EvalOutcome::Score(s) => {
                    wave.scores[g * wave.cases.len() + ci].store(s.to_bits(), Ordering::SeqCst);
                }
                EvalOutcome::Failed(_) => {
                    wave.failed[g].store(true, Ordering::SeqCst);
                }
            }
        };
        let contain = |wave: &Wave, (g, ci): (u32, u32), why: Containment| {
            let (g, ci) = (g as usize, ci as usize);
            if let Some(key) = wave.keys[g].as_ref() {
                memo.complete_contained(key, wave.cases[ci], wave.gen, why, &self.tracer);
            }
            wave.failed[g].store(true, Ordering::SeqCst);
        };

        std::thread::scope(|scope| {
            if let Some(st) = &svc_state {
                service::start(scope, st, &exec, &contain, &self.tracer);
            }
            let svc = svc_state.as_ref();
            let run = (|| {
                let run_span = self.tracer.begin();
                if self.tracer.enabled() {
                    self.tracer.emit(
                        "evolution-start",
                        [
                            ("population", Value::UInt(p.population as u64)),
                            ("generations", Value::UInt(p.generations as u64)),
                            ("start_gen", Value::UInt(start_generation as u64)),
                            ("threads", Value::UInt(p.threads as u64)),
                            ("resumed", Value::Bool(self.resume.is_some())),
                        ],
                    );
                }
                if let Some(m) = self.tracer.metrics() {
                    m.gauge("metaopt_population").set(p.population as u64);
                    m.gauge("metaopt_generations").set(p.generations as u64);
                    m.gauge("metaopt_threads").set(p.threads.max(1) as u64);
                }
                // Monotonic metrics-snapshot sequence number: one snapshot
                // per generation boundary plus a final one after the
                // full-set judgement. Deterministic (no wall time).
                let mut metrics_seq = 0u64;

                for generation in start_generation..p.generations {
                    let gen_span = self.tracer.begin();
                    let evals_before = memo.counters().evaluations;
                    let hits_before = memo.hits();
                    let subset = match &mut dss {
                        Some(d) => d.select(&mut rng),
                        None => all_cases.clone(),
                    };
                    let fits = self.evaluate_all(&memo, &pop, &subset, generation, svc);

                    let best_idx = argbest(&fits, &pop, p.fitness_epsilon);
                    log.push(GenLog {
                        generation,
                        best_fitness: fits[best_idx],
                        mean_fitness: fits.iter().sum::<f64>() / fits.len().max(1) as f64,
                        best_size: pop[best_idx].size(),
                        subset: subset.clone(),
                    });

                    // Feed DSS with the best expression's per-case speedups; a
                    // quarantined case reports the worst score, so DSS keeps
                    // re-selecting it until the population stops failing there.
                    if let Some(d) = &mut dss {
                        let key = pop[best_idx].key();
                        for &c in &subset {
                            let s = memo
                                .get_or_eval(
                                    self.evaluator,
                                    &pop[best_idx],
                                    &key,
                                    c,
                                    generation,
                                    &self.tracer,
                                )
                                .score()
                                .unwrap_or(PENALTY_FITNESS);
                            d.report(c, s);
                        }
                    }

                    if self.tracer.enabled() {
                        let gl = log.last().expect("just pushed");
                        self.tracer.emit(
                            "generation",
                            [
                                ("gen", Value::UInt(generation as u64)),
                                (
                                    "subset",
                                    Value::Arr(
                                        subset.iter().map(|&c| Value::UInt(c as u64)).collect(),
                                    ),
                                ),
                                (
                                    "evals",
                                    Value::UInt(memo.counters().evaluations - evals_before),
                                ),
                                ("cache_hits", Value::UInt(memo.hits() - hits_before)),
                                ("best_fitness", Value::Num(gl.best_fitness)),
                                ("mean_fitness", Value::Num(gl.mean_fitness)),
                                ("best_size", Value::UInt(gl.best_size as u64)),
                                ("dur_ns", Value::UInt(gen_span.dur_ns())),
                            ],
                        );
                    }
                    if let Some(m) = self.tracer.metrics() {
                        m.gauge("metaopt_generation").set(generation as u64);
                        m.gauge("metaopt_quarantined").set(memo.quarantined_len());
                        m.histogram("metaopt_gen_wall_ns").record(gen_span.dur_ns());
                    }
                    self.emit_metrics_snapshot(&memo, &mut metrics_seq, generation);

                    if generation + 1 == p.generations {
                        break;
                    }

                    // Breed: replace `replace_frac` of the population (elitism: the
                    // best expression is never displaced).
                    let k = ((p.replace_frac * p.population as f64).round() as usize)
                        .clamp(1, p.population.saturating_sub(1));
                    let mut offspring = Vec::with_capacity(k);
                    for _ in 0..k {
                        let a = self.tournament(&mut rng, &pop, &fits);
                        let b = self.tournament(&mut rng, &pop, &fits);
                        let mut child = crossover(&mut rng, &pop[a], &pop[b], p.max_depth);
                        if rng.random_bool(p.mutation_rate) {
                            child = mutate(&mut rng, &child, self.features, p.max_depth);
                        }
                        offspring.push(child);
                    }
                    for child in offspring {
                        loop {
                            let slot = rng.random_range(0..pop.len());
                            if !p.elitism || slot != best_idx {
                                pop[slot] = child;
                                break;
                            }
                        }
                    }

                    // Snapshot at the generation boundary: everything the next
                    // generation's RNG draws and fitness comparisons depend on is
                    // now settled.
                    if let Some(path) = &self.checkpoint_path {
                        let ck_span = self.tracer.begin();
                        self.save_checkpoint(
                            path,
                            &fp,
                            generation + 1,
                            &rng,
                            &pop,
                            &dss,
                            &log,
                            &memo,
                        )?;
                        if self.tracer.enabled() {
                            self.tracer.emit(
                                "checkpoint",
                                [
                                    ("gen", Value::UInt((generation + 1) as u64)),
                                    ("dur_ns", Value::UInt(ck_span.dur_ns())),
                                ],
                            );
                        }
                    }
                }

                // Final judgement on the full training set (attributed to the
                // one-past-the-end generation index in the trace).
                let final_fits = self.evaluate_all(&memo, &pop, &all_cases, p.generations, svc);
                if let Some(m) = self.tracer.metrics() {
                    m.gauge("metaopt_quarantined").set(memo.quarantined_len());
                }
                self.emit_metrics_snapshot(&memo, &mut metrics_seq, p.generations);
                let best_idx = argbest(&final_fits, &pop, p.fitness_epsilon);
                let counters = memo.counters();
                let result = EvolutionResult {
                    best: pop[best_idx].clone(),
                    best_fitness: final_fits[best_idx],
                    log,
                    evaluations: counters.evaluations,
                    successes: counters.successes,
                    failures: counters.failures,
                    quarantined: memo.ledger_records(),
                    cache_hits: memo.hits(),
                    warm_hits: memo.warm(),
                    front: Vec::new(),
                };
                if self.tracer.enabled() {
                    self.tracer.emit(
                        "evolution-end",
                        [
                            ("evaluations", Value::UInt(result.evaluations)),
                            ("successes", Value::UInt(result.successes)),
                            ("failures", Value::UInt(result.failures)),
                            ("quarantined", Value::UInt(result.quarantined.len() as u64)),
                            ("best_fitness", Value::Num(result.best_fitness)),
                            ("best", Value::str(result.best.key())),
                            ("dur_ns", Value::UInt(run_span.dur_ns())),
                        ],
                    );
                    self.tracer.flush();
                }
                Ok(result)
            })();
            if let Some(st) = &svc_state {
                st.shutdown();
            }
            run
        })
    }

    /// Emit one `metrics-snapshot` event: a monotonic `seq` (never wall
    /// time), the deterministic engine `counters` read from the memo at the
    /// generation boundary (schedule-independent by the entry-guard
    /// invariant), and the full registry dump under `runtime` (latency
    /// histograms, service gauges — stripped by `strip_timing` because
    /// they are wall-clock- and schedule-dependent). Requires both a trace
    /// sink and a metrics registry; otherwise a no-op.
    fn emit_metrics_snapshot(&self, memo: &Memo, seq: &mut u64, gen: usize) {
        let Some(registry) = self.tracer.metrics() else {
            return;
        };
        if !self.tracer.enabled() {
            return;
        }
        let counters = memo.counters();
        self.tracer.emit(
            "metrics-snapshot",
            [
                ("seq", Value::UInt(*seq)),
                ("gen", Value::UInt(gen as u64)),
                (
                    "counters",
                    Value::Obj(vec![
                        ("evaluations".to_string(), Value::UInt(counters.evaluations)),
                        ("successes".to_string(), Value::UInt(counters.successes)),
                        ("failures".to_string(), Value::UInt(counters.failures)),
                        ("cache_hits".to_string(), Value::UInt(memo.hits())),
                        ("warm_hits".to_string(), Value::UInt(memo.warm())),
                        (
                            "quarantined".to_string(),
                            Value::UInt(memo.quarantined_len()),
                        ),
                    ]),
                ),
                ("runtime", registry.snapshot_value()),
            ],
        );
        *seq += 1;
    }

    #[allow(clippy::too_many_arguments)]
    fn save_checkpoint(
        &self,
        path: &Path,
        fp: &str,
        next_generation: usize,
        rng: &StdRng,
        pop: &[Expr],
        dss: &Option<Dss>,
        log: &[GenLog],
        memo: &Memo,
    ) -> Result<(), CheckpointError> {
        let counters = memo.counters();
        let ck = Checkpoint {
            fingerprint: fp.to_string(),
            next_generation,
            rng_state: rng.state(),
            // Serialize via `key()` (full-precision constants): `Display`
            // rounds to four decimals, which would corrupt genomes across a
            // resume.
            population: pop.iter().map(|e| e.key()).collect(),
            plans: None,
            dss: dss.as_ref().map(|d| {
                let (difficulty, age) = d.state();
                DssState {
                    subset_size: d.subset_size(),
                    difficulty,
                    age,
                }
            }),
            log: log.to_vec(),
            evaluations: counters.evaluations,
            successes: counters.successes,
            failures: counters.failures,
            quarantined: memo.ledger_records(),
            memo_entries: memo.cache_entries(),
        };
        ck.save(path)
    }
}

fn better(fa: f64, sa: usize, fb: f64, sb: usize, eps: f64) -> bool {
    if (fa - fb).abs() <= eps {
        sa < sb
    } else {
        fa > fb
    }
}

fn argbest(fits: &[f64], pop: &[Expr], eps: f64) -> usize {
    let mut best = 0;
    for i in 1..fits.len() {
        if better(fits[i], pop[i].size(), fits[best], pop[best].size(), eps) {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Env;
    use crate::parse::parse_expr;

    /// Symbolic-regression-style evaluator: fitness is closeness of the
    /// expression to `2x + 1` over sample points; each "case" weights a
    /// different sample range. Fast and deterministic — exercises the whole
    /// engine without a compiler in the loop.
    struct Regress;

    impl Evaluator for Regress {
        fn num_cases(&self) -> usize {
            3
        }

        fn eval_case(&self, expr: &Expr, case: usize) -> EvalOutcome {
            let lo = case as f64;
            let mut err = 0.0;
            for i in 0..10 {
                let x = lo + i as f64 * 0.3;
                let want = 2.0 * x + 1.0;
                let got = expr.eval_real(&Env {
                    reals: &[x],
                    bools: &[],
                });
                err += (want - got).abs();
            }
            // Map error to a "speedup"-like score: 2.0 at perfect fit.
            EvalOutcome::Score(2.0 / (1.0 + err / 10.0))
        }
    }

    fn features() -> FeatureSet {
        let mut fs = FeatureSet::new();
        fs.add_real("x");
        fs
    }

    #[test]
    fn malformed_seed_is_rejected_without_an_evaluation() {
        // A kind-mismatched genome (Bool in a Real study) must score 0.0
        // straight from the lint gate — the evaluator must never see it.
        struct NoBools;
        impl Evaluator for NoBools {
            fn num_cases(&self) -> usize {
                1
            }
            fn eval_case(&self, expr: &Expr, _case: usize) -> EvalOutcome {
                assert!(
                    !matches!(expr, Expr::Bool(_)),
                    "lint-rejected genome reached the evaluator: {expr}"
                );
                EvalOutcome::Score(1.5)
            }
        }
        let fs = features();
        let bad = Expr::Bool(crate::expr::BExpr::Const(true));
        let good = parse_expr("(mul 2.0 x)", &fs).unwrap();
        let mut params = GpParams::quick();
        params.generations = 3;
        params.population = 10;
        params.seed = 11;
        params.threads = 1;
        let result = Evolution::new(params, &fs, &NoBools)
            .with_seeds(vec![bad, good])
            .run();
        assert!(matches!(result.best, Expr::Real(_)));
        assert!(result.best_fitness > 0.0);
    }

    #[test]
    fn evolution_improves_over_random_start() {
        let fs = features();
        let ev = Regress;
        let mut params = GpParams::quick();
        params.generations = 15;
        params.population = 60;
        params.seed = 3;
        params.threads = 2;
        let result = Evolution::new(params, &fs, &ev).run();
        let first = result.log.first().unwrap().best_fitness;
        let last = result.log.last().unwrap().best_fitness;
        assert!(last >= first, "{last} >= {first}");
        assert!(
            result.best_fitness > 1.0,
            "found something decent: {}",
            result.best_fitness
        );
        assert_eq!(result.log.len(), 15);
        assert!(result.evaluations > 0);
    }

    #[test]
    fn seed_guarantees_baseline_floor() {
        // Seeding with the exact solution: the engine can never return
        // anything worse (elitism + final full evaluation).
        let fs = features();
        let ev = Regress;
        let seed = parse_expr("(add (mul 2.0 x) 1.0)", &fs).unwrap();
        let perfect = (0..3)
            .map(|c| ev.eval_case(&seed, c).score().unwrap())
            .sum::<f64>()
            / 3.0;
        let mut params = GpParams::quick();
        params.generations = 5;
        params.population = 20;
        let result = Evolution::new(params, &fs, &ev)
            .with_seeds(vec![seed])
            .run();
        assert!(
            result.best_fitness >= perfect - 1e-9,
            "{} vs {perfect}",
            result.best_fitness
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let fs = features();
        let ev = Regress;
        let mut params = GpParams::quick();
        params.generations = 6;
        params.population = 24;
        params.threads = 1;
        let a = Evolution::new(params.clone(), &fs, &ev).run();
        let b = Evolution::new(params, &fs, &ev).run();
        assert_eq!(a.best.key(), b.best.key());
        assert_eq!(a.best_fitness, b.best_fitness);
    }

    #[test]
    fn dss_mode_selects_subsets() {
        let fs = features();
        let ev = Regress;
        let mut params = GpParams::quick();
        params.generations = 6;
        params.population = 20;
        params.subset_size = Some(2);
        let result = Evolution::new(params, &fs, &ev).run();
        assert!(result.log.iter().all(|g| g.subset.len() == 2));
    }

    #[test]
    fn elitism_off_still_produces_valid_results() {
        let fs = features();
        let ev = Regress;
        let mut params = GpParams::quick();
        params.generations = 6;
        params.population = 20;
        params.elitism = false;
        let r = Evolution::new(params, &fs, &ev).run();
        assert!(r.best_fitness.is_finite());
        assert_eq!(r.log.len(), 6);
    }

    #[test]
    fn parsimony_prefers_smaller_of_equal_fitness() {
        assert!(better(1.0, 3, 1.0, 9, 1e-6));
        assert!(!better(1.0, 9, 1.0, 3, 1e-6));
        assert!(better(1.5, 9, 1.0, 3, 1e-6));
    }

    use crate::eval::{EvalError, EvalErrorKind};

    /// Deterministic FNV-1a hash, stable across runs and platforms.
    fn fnv(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h
    }

    /// `Regress`, except a deterministic slice of the genome space fails —
    /// some with structured errors, some by panicking. The genome whose key
    /// equals `safe` (the perfect seed in the tests below) never fails.
    struct Flaky {
        safe: String,
    }

    impl Flaky {
        fn new(fs: &FeatureSet) -> Self {
            Flaky {
                safe: parse_expr("(add (mul 2.0 x) 1.0)", fs).unwrap().key(),
            }
        }
    }

    impl Evaluator for Flaky {
        fn num_cases(&self) -> usize {
            3
        }

        fn eval_case(&self, expr: &Expr, case: usize) -> EvalOutcome {
            let key = expr.key();
            if key != self.safe {
                let h = fnv(&format!("{key}#{case}"));
                match h % 10 {
                    0 | 1 => {
                        return EvalOutcome::Failed(EvalError::new(
                            EvalErrorKind::Budget,
                            format!("synthetic budget blowout on case {case}"),
                        ))
                    }
                    2 => panic!("synthetic evaluator panic on case {case}"),
                    _ => {}
                }
            }
            Regress.eval_case(expr, case)
        }
    }

    #[test]
    fn failures_are_quarantined_and_accounted() {
        let fs = features();
        let mut params = GpParams::quick();
        params.generations = 6;
        params.population = 30;
        params.seed = 5;
        params.threads = 2;
        let ev = Flaky::new(&fs);
        let result = Evolution::new(params, &fs, &ev)
            .with_seeds(vec![parse_expr("(add (mul 2.0 x) 1.0)", &fs).unwrap()])
            .run();

        assert_eq!(result.log.len(), 6, "every generation completed");
        assert_eq!(result.evaluations, result.successes + result.failures);
        assert!(result.failures > 0, "the flaky slice must have been hit");
        // Fresh run: memoization evaluates each pair once, so the deduped
        // ledger covers every failure.
        assert_eq!(result.quarantined.len() as u64, result.failures);
        // Every record reproduces: the evaluator really fails that pair.
        for r in &result.quarantined {
            let h = fnv(&format!("{}#{}", r.genome, r.case));
            assert!(h % 10 <= 2, "ledger record not a synthetic failure: {r}");
            let expected_kind = if h % 10 == 2 {
                EvalErrorKind::Panic
            } else {
                EvalErrorKind::Budget
            };
            assert_eq!(r.error.kind, expected_kind, "{r}");
        }
        // Panic-class failures were caught, classified, and carry the
        // payload message.
        assert!(result
            .quarantined
            .iter()
            .any(|r| r.error.kind == EvalErrorKind::Panic
                && r.error.message.contains("synthetic evaluator panic")));
        // The winner is never a quarantined genome (the seed is clean and
        // scores ~2.0; penalty fitness is 0.0).
        assert!(!result
            .quarantined
            .iter()
            .any(|r| r.genome == result.best.key()));
        assert!(result.best_fitness > 1.0);
    }

    #[test]
    fn flaky_runs_are_deterministic() {
        let fs = features();
        let mut params = GpParams::quick();
        params.generations = 5;
        params.population = 24;
        params.seed = 8;
        params.threads = 2;
        let ev = Flaky::new(&fs);
        let a = Evolution::new(params.clone(), &fs, &ev).run();
        let b = Evolution::new(params, &fs, &ev).run();
        assert_eq!(a.best.key(), b.best.key());
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.quarantined, b.quarantined);
    }

    fn temp_checkpoint(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("metaopt-gp-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("checkpoint.txt")
    }

    #[test]
    fn resume_reproduces_uninterrupted_run() {
        let fs = features();
        let mut short = GpParams::quick();
        short.generations = 3;
        short.population = 16;
        short.seed = 99;
        short.threads = 1;
        short.subset_size = Some(2); // exercise DSS state round-tripping
        let mut full = short.clone();
        full.generations = 8;

        let ev = Flaky::new(&fs);
        // Phase 1: a "killed" run — only 3 of 8 generations happen.
        let path = temp_checkpoint("resume");
        Evolution::new(short, &fs, &ev)
            .with_checkpoint_file(&path)
            .try_run()
            .unwrap();

        // Phase 2: resume from its last checkpoint with the full horizon.
        let ck = Checkpoint::load(&path).unwrap();
        let resumed = Evolution::new(full.clone(), &fs, &ev)
            .resume_from(ck)
            .try_run()
            .unwrap();

        let straight = Evolution::new(full, &fs, &ev).run();
        assert_eq!(resumed.best.key(), straight.best.key());
        assert_eq!(resumed.best_fitness, straight.best_fitness);
        assert_eq!(resumed.log.len(), straight.log.len());
        for (a, b) in resumed.log.iter().zip(&straight.log) {
            assert_eq!(a, b, "per-generation telemetry must match");
        }
        // The deduped ledgers agree even though the resumed run re-evaluates
        // pairs the killed run had cached.
        assert_eq!(resumed.quarantined, straight.quarantined);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_cache_counters_match_serial_run() {
        // The memo is sharded across MEMO_SHARDS locks and its counters are
        // atomics with an entry-guard on insert: a threaded run must report
        // exactly the counters (and ledger) of the serial run, because both
        // count the same set of distinct evaluated (genome, case) pairs.
        let fs = features();
        let ev = Flaky::new(&fs);
        let mut params = GpParams::quick();
        params.generations = 6;
        params.population = 32;
        params.seed = 21;
        params.subset_size = Some(2);
        params.threads = 1;
        let serial = Evolution::new(params.clone(), &fs, &ev).run();
        for threads in [2, 4, 8] {
            params.threads = threads;
            let t = Evolution::new(params.clone(), &fs, &ev).run();
            assert_eq!(t.evaluations, serial.evaluations, "threads={threads}");
            assert_eq!(t.successes, serial.successes, "threads={threads}");
            assert_eq!(t.failures, serial.failures, "threads={threads}");
            assert_eq!(t.cache_hits, serial.cache_hits, "threads={threads}");
            assert_eq!(t.quarantined, serial.quarantined, "threads={threads}");
            assert_eq!(t.best.key(), serial.best.key(), "threads={threads}");
        }
    }

    #[test]
    fn trace_events_cover_the_run() {
        let fs = features();
        let ev = Flaky::new(&fs);
        let mut params = GpParams::quick();
        params.generations = 3;
        params.population = 16;
        params.seed = 7;
        params.threads = 1;
        let tracer = Tracer::in_memory();
        let path = temp_checkpoint("trace-events");
        let result = Evolution::new(params, &fs, &ev)
            .with_tracer(tracer.clone())
            .with_checkpoint_file(&path)
            .try_run()
            .unwrap();
        let lines = tracer.lines().unwrap();
        let text = lines.join("\n");
        let summary = metaopt_trace::schema::validate_trace(&text).unwrap();
        let count = |ty: &str| {
            summary
                .by_type
                .iter()
                .find(|(t, _)| t == ty)
                .map_or(0, |(_, n)| *n)
        };
        assert_eq!(count("evolution-start"), 1);
        assert_eq!(count("evolution-end"), 1);
        assert_eq!(count("generation"), 3);
        // Checkpoints happen at every generation boundary except the last.
        assert_eq!(count("checkpoint"), 2);
        // One eval event per uncached evaluation, no more, no less.
        assert_eq!(count("eval"), result.evaluations as usize);
        // Generation events account for every evaluation up to the final
        // full-set judgement, whose evals carry gen == params.generations.
        let evals_in_gens: u64 = lines
            .iter()
            .filter_map(|l| {
                let v = metaopt_trace::json::parse(l).ok()?;
                (v.get("type")?.as_str()? == "generation")
                    .then(|| v.get("evals").unwrap().as_u64().unwrap())
            })
            .sum();
        assert!(evals_in_gens <= result.evaluations);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disabled_tracer_leaves_results_identical() {
        let fs = features();
        let ev = Flaky::new(&fs);
        let mut params = GpParams::quick();
        params.generations = 4;
        params.population = 20;
        params.seed = 13;
        params.threads = 2;
        let plain = Evolution::new(params.clone(), &fs, &ev).run();
        let traced = Evolution::new(params.clone(), &fs, &ev)
            .with_tracer(Tracer::in_memory())
            .run();
        // A live metrics registry is derived state only: attaching one (and
        // streaming per-generation snapshots) perturbs nothing either.
        let metered = Evolution::new(params, &fs, &ev)
            .with_tracer(Tracer::in_memory().with_metrics(MetricsRegistry::new()))
            .run();
        for (label, other) in [("traced", &traced), ("metered", &metered)] {
            assert_eq!(plain.best.key(), other.best.key(), "{label}");
            assert_eq!(plain.best_fitness, other.best_fitness, "{label}");
            assert_eq!(plain.log, other.log, "{label}");
            assert_eq!(plain.evaluations, other.evaluations, "{label}");
            assert_eq!(plain.quarantined, other.quarantined, "{label}");
        }
    }

    #[test]
    fn metrics_registry_mirrors_result_counters() {
        let fs = features();
        let ev = Flaky::new(&fs);
        let mut params = GpParams::quick();
        params.generations = 3;
        params.population = 16;
        params.seed = 7;
        params.threads = 2;
        let registry = MetricsRegistry::new();
        let tracer = Tracer::in_memory().with_metrics(registry.clone());
        let result = Evolution::new(params.clone(), &fs, &ev)
            .with_tracer(tracer.clone())
            .run();

        // The hot-path atomics agree with the engine's own accounting.
        assert_eq!(
            registry.counter("metaopt_evaluations_total").get(),
            result.evaluations
        );
        assert_eq!(
            registry.counter("metaopt_eval_success_total").get(),
            result.successes
        );
        assert_eq!(
            registry.counter("metaopt_eval_failure_total").get(),
            result.failures
        );
        assert_eq!(
            registry.counter("metaopt_cache_hits_total").get(),
            result.cache_hits
        );
        assert_eq!(
            registry.histogram("metaopt_eval_latency_ns").count(),
            result.evaluations
        );
        assert_eq!(
            registry.gauge("metaopt_quarantined").get(),
            result.quarantined.len() as u64
        );
        assert_eq!(registry.gauge("metaopt_population").get(), 16);
        assert_eq!(registry.gauge("metaopt_threads").get(), 2);

        // One snapshot per generation plus the final full-set snapshot,
        // and every line passes strict validation (validate_trace above
        // covers them in other tests; here check the count and ordering).
        let snaps: Vec<String> = tracer
            .lines()
            .unwrap()
            .iter()
            .filter(|l| l.contains("\"metrics-snapshot\""))
            .cloned()
            .collect();
        assert_eq!(snaps.len(), params.generations + 1);
        for (seq, line) in snaps.iter().enumerate() {
            assert!(line.contains(&format!("\"seq\":{seq}")), "{line}");
        }
    }

    /// `Regress`, except a deterministic slice of `(genome, case)` pairs
    /// fails with a *transient* timeout on attempts below `clears_at`.
    /// With `retries >= clears_at` every pair eventually scores; with
    /// fewer retries the slice quarantines as `Timeout`.
    struct Transient {
        clears_at: u32,
    }

    impl Evaluator for Transient {
        fn num_cases(&self) -> usize {
            3
        }

        fn eval_case(&self, expr: &Expr, case: usize) -> EvalOutcome {
            self.eval_case_attempt(expr, case, 0)
        }

        fn eval_case_attempt(&self, expr: &Expr, case: usize, attempt: u32) -> EvalOutcome {
            let h = fnv(&format!("{}#{case}", expr.key()));
            if h.is_multiple_of(4) && attempt < self.clears_at {
                return EvalOutcome::Failed(EvalError::new(
                    EvalErrorKind::Timeout,
                    format!("synthetic transient timeout, attempt {attempt}"),
                ));
            }
            Regress.eval_case(expr, case)
        }
    }

    #[test]
    fn transient_timeouts_are_retried_to_success() {
        let fs = features();
        let mut params = GpParams::quick();
        params.generations = 4;
        params.population = 20;
        params.seed = 17;
        params.threads = 2;
        params.retries = 2;
        let tracer = Tracer::in_memory();
        let result = Evolution::new(params.clone(), &fs, &Transient { clears_at: 2 })
            .with_tracer(tracer.clone())
            .run();
        // Every transient pair cleared within the retry budget: nothing
        // quarantines, and the run matches a never-failing evaluator's.
        assert_eq!(result.failures, 0, "{:?}", result.quarantined);
        let clean = Evolution::new(params, &fs, &Regress).run();
        assert_eq!(result.best.key(), clean.best.key());
        assert_eq!(result.best_fitness, clean.best_fitness);
        // Retry events were traced, all timeout-kind, attempts 0 then 1
        // for each retried pair.
        let lines = tracer.lines().unwrap();
        let retries: Vec<_> = lines
            .iter()
            .filter_map(|l| {
                let v = metaopt_trace::json::parse(l).ok()?;
                (v.get("type")?.as_str()? == "retry").then_some(v)
            })
            .collect();
        assert!(!retries.is_empty(), "expected traced retries");
        let mut per_pair: HashMap<String, Vec<u64>> = HashMap::new();
        for r in &retries {
            assert_eq!(r.get("kind").unwrap().as_str().unwrap(), "timeout");
            assert!(r.get("backoff_ns").unwrap().as_u64().unwrap() > 0);
            let pair = format!(
                "{}#{}",
                r.get("genome").unwrap().as_str().unwrap(),
                r.get("case").unwrap().as_u64().unwrap()
            );
            per_pair
                .entry(pair)
                .or_default()
                .push(r.get("attempt").unwrap().as_u64().unwrap());
        }
        for (pair, attempts) in &per_pair {
            assert_eq!(attempts, &vec![0, 1], "attempts for {pair}");
        }
    }

    #[test]
    fn exhausted_retries_quarantine_as_timeout() {
        let fs = features();
        let mut params = GpParams::quick();
        params.generations = 3;
        params.population = 16;
        params.seed = 17;
        params.threads = 2;
        params.retries = 1; // clears_at = 2 ⇒ the slice never clears
        let result = Evolution::new(params, &fs, &Transient { clears_at: 2 }).run();
        assert!(result.failures > 0, "transient slice must have been hit");
        assert_eq!(result.evaluations, result.successes + result.failures);
        for r in &result.quarantined {
            assert_eq!(r.error.kind, EvalErrorKind::Timeout, "{r}");
        }
    }

    #[test]
    fn retried_runs_are_deterministic_across_threads() {
        let fs = features();
        let mut params = GpParams::quick();
        params.generations = 4;
        params.population = 24;
        params.seed = 23;
        params.retries = 2;
        params.threads = 1;
        let serial = Evolution::new(params.clone(), &fs, &Transient { clears_at: 3 }).run();
        for threads in [2, 4] {
            params.threads = threads;
            let t = Evolution::new(params.clone(), &fs, &Transient { clears_at: 3 }).run();
            assert_eq!(t.evaluations, serial.evaluations, "threads={threads}");
            assert_eq!(t.failures, serial.failures, "threads={threads}");
            assert_eq!(t.cache_hits, serial.cache_hits, "threads={threads}");
            assert_eq!(t.quarantined, serial.quarantined, "threads={threads}");
            assert_eq!(t.best.key(), serial.best.key(), "threads={threads}");
        }
    }

    fn temp_store(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("metaopt-gp-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("fitness.cache")
    }

    #[test]
    fn warm_cache_run_reproduces_cold_run() {
        let fs = features();
        let ev = Flaky::new(&fs);
        let mut params = GpParams::quick();
        params.generations = 5;
        params.population = 24;
        params.seed = 31;
        params.threads = 2;
        params.subset_size = Some(2);
        let path = temp_store("warm");
        std::fs::remove_file(&path).ok();

        let cold = Evolution::new(params.clone(), &fs, &ev)
            .with_eval_cache(&path)
            .run();
        assert_eq!(cold.warm_hits, 0, "first run has nothing to be warm from");

        let tracer = Tracer::in_memory();
        let warm = Evolution::new(params.clone(), &fs, &ev)
            .with_eval_cache(&path)
            .with_tracer(tracer.clone())
            .run();
        // Identical results and accounting — the store only substitutes
        // *where* scores come from, never what they are. Failures are not
        // persisted, so failed pairs re-evaluate (and re-fail identically).
        assert_eq!(warm.best.key(), cold.best.key());
        assert_eq!(warm.best_fitness, cold.best_fitness);
        assert_eq!(warm.log, cold.log);
        assert_eq!(warm.evaluations, cold.evaluations);
        assert_eq!(warm.successes, cold.successes);
        assert_eq!(warm.failures, cold.failures);
        assert_eq!(warm.cache_hits, cold.cache_hits);
        assert_eq!(warm.quarantined, cold.quarantined);
        assert_eq!(
            warm.warm_hits, cold.successes,
            "every scored pair should come from the store"
        );
        // Warm evals are marked in the trace.
        let warm_evals = tracer
            .lines()
            .unwrap()
            .iter()
            .filter(|l| l.contains("\"type\":\"eval\"") && l.contains("\"warm\":true"))
            .count() as u64;
        assert_eq!(warm_evals, warm.warm_hits);

        // Corrupt the tail: the next run recovers (dropping the damaged
        // record) and still reproduces the cold run bit-for-bit.
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            let len = f.metadata().unwrap().len();
            f.seek(SeekFrom::Start(len - 3)).unwrap();
            f.write_all(&[0xFF]).unwrap();
        }
        let recovered = Evolution::new(params, &fs, &ev)
            .with_eval_cache(&path)
            .run();
        assert_eq!(recovered.best.key(), cold.best.key());
        assert_eq!(recovered.best_fitness, cold.best_fitness);
        assert_eq!(recovered.evaluations, cold.evaluations);
        assert!(
            recovered.warm_hits >= cold.successes - 1,
            "at most the damaged record re-evaluates: {} vs {}",
            recovered.warm_hits,
            cold.successes
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn eval_cache_is_fingerprint_scoped() {
        // A store written under one configuration must not leak scores
        // into a run under another: the second run degrades to cold.
        let fs = features();
        let ev = Regress;
        let mut params = GpParams::quick();
        params.generations = 3;
        params.population = 16;
        params.seed = 41;
        params.threads = 1;
        let path = temp_store("fp-scope");
        std::fs::remove_file(&path).ok();
        Evolution::new(params.clone(), &fs, &ev)
            .with_eval_cache(&path)
            .run();
        let mut other = params;
        other.seed ^= 0x1000;
        let fresh = Evolution::new(other, &fs, &ev).with_eval_cache(&path).run();
        assert_eq!(fresh.warm_hits, 0, "foreign-fingerprint store was used");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_refuses_mismatched_params() {
        let fs = features();
        let mut params = GpParams::quick();
        params.generations = 2;
        params.population = 10;
        params.threads = 1;
        let path = temp_checkpoint("mismatch");
        Evolution::new(params.clone(), &fs, &Regress)
            .with_checkpoint_file(&path)
            .try_run()
            .unwrap();
        let ck = Checkpoint::load(&path).unwrap();
        let mut other = params;
        other.seed ^= 0xFF;
        let err = Evolution::new(other, &fs, &Regress)
            .resume_from(ck)
            .try_run()
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }));
        std::fs::remove_file(&path).ok();
    }
}
