//! Structured fitness-evaluation outcomes and the quarantine ledger.
//!
//! A GP search spends days evaluating thousands of `(genome, case)` pairs;
//! a single failed compile or runaway simulation must degrade to a penalty
//! fitness, never abort the run. This module defines the failure taxonomy
//! threaded from the compiler, interpreter, and simulator up into the
//! engine ([`EvalError`]), the evaluator's return channel ([`EvalOutcome`]),
//! and the per-failure diagnostics record the engine accumulates
//! ([`QuarantineRecord`]).

use std::fmt;

/// Classification of a failed fitness evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EvalErrorKind {
    /// The compiler rejected the program compiled under this genome
    /// (inlining, register allocation, or final machine-code verification).
    Compile,
    /// The inter-pass IR invariant checker flagged a broken invariant.
    IrCheck,
    /// Semantic validation (translation validators or abstract
    /// interpretation) proved a pass miscompiled under this genome.
    Validation,
    /// An interpreter step budget or simulator instruction/cycle budget was
    /// exhausted (probable pathological genome).
    Budget,
    /// The compiled program's result diverged from the interpreter's ground
    /// truth — a compiler bug exposed by this genome.
    WrongAnswer,
    /// The simulator faulted (out-of-bounds access, malformed machine code).
    Sim,
    /// The evaluator panicked; the panic was caught at the evaluation
    /// boundary and converted into this error.
    Panic,
    /// The evaluation exceeded an operational wall-clock deadline (a stuck
    /// worker timed out by the supervisor, or an injected timeout fault).
    /// Unlike [`EvalErrorKind::Budget`] — the *deterministic* cooperative
    /// deadline — a timeout reflects host-side conditions and is the one
    /// transient class: the engine retries it before quarantining.
    Timeout,
}

impl EvalErrorKind {
    /// Stable lowercase label (used in ledgers, checkpoints, and the CLI).
    pub fn label(self) -> &'static str {
        match self {
            EvalErrorKind::Compile => "compile",
            EvalErrorKind::IrCheck => "ir-check",
            EvalErrorKind::Validation => "validation",
            EvalErrorKind::Budget => "budget",
            EvalErrorKind::WrongAnswer => "wrong-answer",
            EvalErrorKind::Sim => "sim",
            EvalErrorKind::Panic => "panic",
            EvalErrorKind::Timeout => "timeout",
        }
    }

    /// Parse a [`EvalErrorKind::label`] back (checkpoint deserialization).
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "compile" => EvalErrorKind::Compile,
            "ir-check" => EvalErrorKind::IrCheck,
            "validation" => EvalErrorKind::Validation,
            "budget" => EvalErrorKind::Budget,
            "wrong-answer" => EvalErrorKind::WrongAnswer,
            "sim" => EvalErrorKind::Sim,
            "panic" => EvalErrorKind::Panic,
            "timeout" => EvalErrorKind::Timeout,
            _ => return None,
        })
    }

    /// All kinds, for summary tables.
    pub const ALL: [EvalErrorKind; 8] = [
        EvalErrorKind::Compile,
        EvalErrorKind::IrCheck,
        EvalErrorKind::Validation,
        EvalErrorKind::Budget,
        EvalErrorKind::WrongAnswer,
        EvalErrorKind::Sim,
        EvalErrorKind::Panic,
        EvalErrorKind::Timeout,
    ];

    /// True for failure classes worth retrying: the failure reflects
    /// transient host-side conditions rather than a deterministic property
    /// of the `(genome, case)` pair. Everything deterministic — compiles,
    /// validation, budgets, wrong answers, panics — quarantines immediately,
    /// because an identical retry would fail identically.
    pub fn is_transient(self) -> bool {
        matches!(self, EvalErrorKind::Timeout)
    }
}

/// A classified fitness-evaluation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalError {
    /// Failure class.
    pub kind: EvalErrorKind,
    /// Human-readable diagnostics (benchmark name, pass, addresses, …).
    pub message: String,
    /// True when the failure was forced by a deterministic fault injector
    /// rather than arising organically.
    pub injected: bool,
}

impl EvalError {
    /// A new (organic) evaluation error.
    pub fn new(kind: EvalErrorKind, message: impl Into<String>) -> Self {
        EvalError {
            kind,
            message: message.into(),
            injected: false,
        }
    }

    /// An error forced by a fault injector.
    pub fn injected(kind: EvalErrorKind, message: impl Into<String>) -> Self {
        EvalError {
            kind,
            message: message.into(),
            injected: true,
        }
    }

    /// Convert a caught panic payload into an [`EvalErrorKind::Panic`]
    /// error, extracting the panic message when it is a string.
    pub fn from_panic(payload: &(dyn std::any::Any + Send)) -> Self {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        EvalError::new(EvalErrorKind::Panic, msg)
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.injected {
            write!(
                f,
                "{} fault (injected): {}",
                self.kind.label(),
                self.message
            )
        } else {
            write!(f, "{} fault: {}", self.kind.label(), self.message)
        }
    }
}

impl std::error::Error for EvalError {}

/// Result of one `(genome, case)` fitness evaluation: a speedup score, or a
/// classified failure that quarantines the genome for this case.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalOutcome {
    /// Successful evaluation (speedup over the baseline; 1.0 = parity).
    Score(f64),
    /// Classified failure; the engine assigns a penalty fitness.
    Failed(EvalError),
}

impl EvalOutcome {
    /// The score, if the evaluation succeeded.
    pub fn score(&self) -> Option<f64> {
        match self {
            EvalOutcome::Score(s) => Some(*s),
            EvalOutcome::Failed(_) => None,
        }
    }

    /// True when the evaluation failed.
    pub fn is_failed(&self) -> bool {
        matches!(self, EvalOutcome::Failed(_))
    }
}

impl From<Result<f64, EvalError>> for EvalOutcome {
    fn from(r: Result<f64, EvalError>) -> Self {
        match r {
            Ok(s) => EvalOutcome::Score(s),
            Err(e) => EvalOutcome::Failed(e),
        }
    }
}

/// One quarantined `(genome, case)` evaluation: full diagnostics for the
/// post-mortem ledger surfaced in `EvolutionResult` and the CLI.
#[derive(Clone, Debug, PartialEq)]
pub struct QuarantineRecord {
    /// The genome, printed in its canonical re-parseable form.
    pub genome: String,
    /// Training-case index the failure occurred on.
    pub case: usize,
    /// The classified failure.
    pub error: EvalError,
}

impl QuarantineRecord {
    /// One-line ledger form: `case<TAB>kind<TAB>injected<TAB>message<TAB>genome`
    /// with tabs/newlines/backslashes escaped inside fields.
    pub fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}",
            self.case,
            self.error.kind.label(),
            if self.error.injected {
                "injected"
            } else {
                "organic"
            },
            escape(&self.error.message),
            escape(&self.genome),
        )
    }

    /// Parse a [`QuarantineRecord::to_line`] line.
    pub fn from_line(line: &str) -> Option<Self> {
        let mut it = line.split('\t');
        let case = it.next()?.parse().ok()?;
        let kind = EvalErrorKind::from_label(it.next()?)?;
        let injected = match it.next()? {
            "injected" => true,
            "organic" => false,
            _ => return None,
        };
        let message = unescape(it.next()?)?;
        let genome = unescape(it.next()?)?;
        if it.next().is_some() {
            return None;
        }
        Some(QuarantineRecord {
            genome,
            case,
            error: EvalError {
                kind,
                message,
                injected,
            },
        })
    }
}

impl fmt::Display for QuarantineRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "case {}: {} [{}]", self.case, self.error, self.genome)
    }
}

/// Escape a field for tab-separated serialization.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Invert [`escape`]; `None` on a malformed escape.
pub(crate) fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_round_trip() {
        for k in EvalErrorKind::ALL {
            assert_eq!(EvalErrorKind::from_label(k.label()), Some(k));
        }
        assert_eq!(EvalErrorKind::from_label("nonsense"), None);
    }

    #[test]
    fn only_timeouts_are_transient() {
        for k in EvalErrorKind::ALL {
            assert_eq!(k.is_transient(), k == EvalErrorKind::Timeout, "{k:?}");
        }
    }

    #[test]
    fn ledger_line_round_trips_hostile_strings() {
        let r = QuarantineRecord {
            genome: "(add r0 1.0)".to_string(),
            case: 7,
            error: EvalError::injected(
                EvalErrorKind::WrongAnswer,
                "diverged\ton unepic\nexpected 3 \\ got 4",
            ),
        };
        let line = r.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(QuarantineRecord::from_line(&line), Some(r));
    }

    #[test]
    fn malformed_ledger_lines_are_rejected() {
        assert_eq!(QuarantineRecord::from_line(""), None);
        assert_eq!(
            QuarantineRecord::from_line("x\tcompile\torganic\tm\tg"),
            None
        );
        assert_eq!(QuarantineRecord::from_line("1\tnope\torganic\tm\tg"), None);
        assert_eq!(
            QuarantineRecord::from_line("1\tcompile\torganic\tbad\\escape\tg"),
            None
        );
        assert_eq!(
            QuarantineRecord::from_line("1\tcompile\torganic\tm\tg\textra"),
            None
        );
    }

    #[test]
    fn panic_payload_extraction() {
        let payload = std::panic::catch_unwind(|| panic!("boom {}", 42)).unwrap_err();
        let e = EvalError::from_panic(&*payload);
        assert_eq!(e.kind, EvalErrorKind::Panic);
        assert_eq!(e.message, "boom 42");
        assert!(!e.injected);

        let payload = std::panic::catch_unwind(|| panic!("static message")).unwrap_err();
        assert_eq!(EvalError::from_panic(&*payload).message, "static message");
    }
}
