//! Strongly-typed GP expression trees (paper Table 1).
//!
//! Two node sorts — real-valued [`RExpr`] and Boolean-valued [`BExpr`] —
//! mirror the paper's primitive table exactly, plus a protected `div`
//! (needed to express the paper's own Fig. 8 winner, and standard GP
//! practice). Evaluation is **total**: division by ~zero yields 1, square
//! roots take `|x|`, and every arithmetic result is clamped to a large
//! finite range so no NaN or infinity can propagate into the compiler.

use std::fmt;

/// Node sort.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Kind {
    /// Real-valued node.
    Real,
    /// Boolean-valued node.
    Bool,
}

/// Feature bindings for one evaluation: values indexed by the
/// [`FeatureSet`](crate::features::FeatureSet) that the expression was built
/// against.
#[derive(Clone, Copy, Debug)]
pub struct Env<'a> {
    /// Real-valued feature values.
    pub reals: &'a [f64],
    /// Boolean feature values.
    pub bools: &'a [bool],
}

/// Clamp range keeping all arithmetic finite.
const LIMIT: f64 = 1e18;

#[inline]
fn sane(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else {
        x.clamp(-LIMIT, LIMIT)
    }
}

/// Real-valued expression (paper Table 1, upper half, plus protected `div`).
#[derive(Clone, PartialEq, Debug)]
pub enum RExpr {
    /// `a + b`
    Add(Box<RExpr>, Box<RExpr>),
    /// `a - b`
    Sub(Box<RExpr>, Box<RExpr>),
    /// `a * b`
    Mul(Box<RExpr>, Box<RExpr>),
    /// Protected division: `a / b`, or `1` when `|b|` is tiny.
    Div(Box<RExpr>, Box<RExpr>),
    /// `sqrt(|a|)`
    Sqrt(Box<RExpr>),
    /// `if c { a } else { b }`
    Tern(Box<BExpr>, Box<RExpr>, Box<RExpr>),
    /// Conditional multiply: `if c { a * b } else { b }`
    Cmul(Box<BExpr>, Box<RExpr>, Box<RExpr>),
    /// Real constant (`rconst`).
    Const(f64),
    /// Real feature terminal (index into the feature set).
    Feat(u16),
}

/// Boolean-valued expression (paper Table 1, lower half).
#[derive(Clone, PartialEq, Debug)]
pub enum BExpr {
    /// `a && b`
    And(Box<BExpr>, Box<BExpr>),
    /// `a || b`
    Or(Box<BExpr>, Box<BExpr>),
    /// `!a`
    Not(Box<BExpr>),
    /// `a < b`
    Lt(Box<RExpr>, Box<RExpr>),
    /// `a > b`
    Gt(Box<RExpr>, Box<RExpr>),
    /// `a == b` (exact)
    Eq(Box<RExpr>, Box<RExpr>),
    /// Boolean constant (`bconst`).
    Const(bool),
    /// Boolean feature terminal (`barg`).
    Feat(u16),
}

impl RExpr {
    /// Evaluate under `env`. Total: never NaN/∞.
    pub fn eval(&self, env: &Env<'_>) -> f64 {
        match self {
            RExpr::Add(a, b) => sane(a.eval(env) + b.eval(env)),
            RExpr::Sub(a, b) => sane(a.eval(env) - b.eval(env)),
            RExpr::Mul(a, b) => sane(a.eval(env) * b.eval(env)),
            RExpr::Div(a, b) => {
                let d = b.eval(env);
                if d.abs() < 1e-9 {
                    1.0
                } else {
                    sane(a.eval(env) / d)
                }
            }
            RExpr::Sqrt(a) => sane(a.eval(env).abs().sqrt()),
            RExpr::Tern(c, a, b) => {
                if c.eval(env) {
                    a.eval(env)
                } else {
                    b.eval(env)
                }
            }
            RExpr::Cmul(c, a, b) => {
                if c.eval(env) {
                    sane(a.eval(env) * b.eval(env))
                } else {
                    b.eval(env)
                }
            }
            RExpr::Const(k) => *k,
            RExpr::Feat(i) => env.reals.get(*i as usize).copied().unwrap_or(0.0),
        }
    }

    /// Number of nodes (both sorts).
    pub fn size(&self) -> usize {
        match self {
            RExpr::Add(a, b) | RExpr::Sub(a, b) | RExpr::Mul(a, b) | RExpr::Div(a, b) => {
                1 + a.size() + b.size()
            }
            RExpr::Sqrt(a) => 1 + a.size(),
            RExpr::Tern(c, a, b) | RExpr::Cmul(c, a, b) => 1 + c.size() + a.size() + b.size(),
            RExpr::Const(_) | RExpr::Feat(_) => 1,
        }
    }

    /// Tree height (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            RExpr::Add(a, b) | RExpr::Sub(a, b) | RExpr::Mul(a, b) | RExpr::Div(a, b) => {
                1 + a.depth().max(b.depth())
            }
            RExpr::Sqrt(a) => 1 + a.depth(),
            RExpr::Tern(c, a, b) | RExpr::Cmul(c, a, b) => {
                1 + c.depth().max(a.depth()).max(b.depth())
            }
            RExpr::Const(_) | RExpr::Feat(_) => 1,
        }
    }
}

impl BExpr {
    /// Evaluate under `env`.
    pub fn eval(&self, env: &Env<'_>) -> bool {
        match self {
            BExpr::And(a, b) => a.eval(env) && b.eval(env),
            BExpr::Or(a, b) => a.eval(env) || b.eval(env),
            BExpr::Not(a) => !a.eval(env),
            BExpr::Lt(a, b) => a.eval(env) < b.eval(env),
            BExpr::Gt(a, b) => a.eval(env) > b.eval(env),
            BExpr::Eq(a, b) => a.eval(env) == b.eval(env),
            BExpr::Const(k) => *k,
            BExpr::Feat(i) => env.bools.get(*i as usize).copied().unwrap_or(false),
        }
    }

    /// Number of nodes (both sorts).
    pub fn size(&self) -> usize {
        match self {
            BExpr::And(a, b) | BExpr::Or(a, b) => 1 + a.size() + b.size(),
            BExpr::Not(a) => 1 + a.size(),
            BExpr::Lt(a, b) | BExpr::Gt(a, b) | BExpr::Eq(a, b) => 1 + a.size() + b.size(),
            BExpr::Const(_) | BExpr::Feat(_) => 1,
        }
    }

    /// Tree height (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            BExpr::And(a, b) | BExpr::Or(a, b) => 1 + a.depth().max(b.depth()),
            BExpr::Not(a) => 1 + a.depth(),
            BExpr::Lt(a, b) | BExpr::Gt(a, b) | BExpr::Eq(a, b) => 1 + a.depth().max(b.depth()),
            BExpr::Const(_) | BExpr::Feat(_) => 1,
        }
    }
}

/// A genome: a typed expression tree of either sort. Hyperblock formation
/// and register allocation evolve `Real` genomes; data prefetching evolves
/// `Bool` genomes (paper §7.1).
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Real-valued priority function.
    Real(RExpr),
    /// Boolean-valued priority function.
    Bool(BExpr),
}

impl Expr {
    /// The genome's sort.
    pub fn kind(&self) -> Kind {
        match self {
            Expr::Real(_) => Kind::Real,
            Expr::Bool(_) => Kind::Bool,
        }
    }

    /// Evaluate a real genome (a Boolean genome yields 1.0/0.0).
    pub fn eval_real(&self, env: &Env<'_>) -> f64 {
        match self {
            Expr::Real(r) => r.eval(env),
            Expr::Bool(b) => {
                if b.eval(env) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Evaluate a Boolean genome (a real genome is true iff positive).
    pub fn eval_bool(&self, env: &Env<'_>) -> bool {
        match self {
            Expr::Bool(b) => b.eval(env),
            Expr::Real(r) => r.eval(env) > 0.0,
        }
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        match self {
            Expr::Real(r) => r.size(),
            Expr::Bool(b) => b.size(),
        }
    }

    /// Tree height.
    pub fn depth(&self) -> usize {
        match self {
            Expr::Real(r) => r.depth(),
            Expr::Bool(b) => b.depth(),
        }
    }

    /// Canonical string key (stable across runs) used for fitness
    /// memoization, quarantine ledgers, and checkpoint serialization.
    ///
    /// Unlike [`Display`](fmt::Display) (which rounds real constants to four
    /// decimals for readability), the key prints constants with full
    /// round-trip precision, so two genomes share a key **iff** they are the
    /// same tree, and `crate::parse::parse_expr` reconstructs the exact
    /// genome from it.
    pub fn key(&self) -> String {
        let mut out = String::with_capacity(self.size() * 8);
        match self {
            Expr::Real(r) => write_r(r, true, &mut out),
            Expr::Bool(b) => write_b(b, true, &mut out),
        }
        out
    }
}

// ---- preorder node addressing (for crossover/mutation) ----

/// Kind and depth of every node in preorder; used by depth-fair crossover.
pub fn node_info(e: &Expr) -> Vec<(Kind, u16)> {
    let mut out = Vec::with_capacity(e.size());
    match e {
        Expr::Real(r) => walk_r(r, 0, &mut out),
        Expr::Bool(b) => walk_b(b, 0, &mut out),
    }
    out
}

fn walk_r(e: &RExpr, d: u16, out: &mut Vec<(Kind, u16)>) {
    out.push((Kind::Real, d));
    match e {
        RExpr::Add(a, b) | RExpr::Sub(a, b) | RExpr::Mul(a, b) | RExpr::Div(a, b) => {
            walk_r(a, d + 1, out);
            walk_r(b, d + 1, out);
        }
        RExpr::Sqrt(a) => walk_r(a, d + 1, out),
        RExpr::Tern(c, a, b) | RExpr::Cmul(c, a, b) => {
            walk_b(c, d + 1, out);
            walk_r(a, d + 1, out);
            walk_r(b, d + 1, out);
        }
        RExpr::Const(_) | RExpr::Feat(_) => {}
    }
}

fn walk_b(e: &BExpr, d: u16, out: &mut Vec<(Kind, u16)>) {
    out.push((Kind::Bool, d));
    match e {
        BExpr::And(a, b) | BExpr::Or(a, b) => {
            walk_b(a, d + 1, out);
            walk_b(b, d + 1, out);
        }
        BExpr::Not(a) => walk_b(a, d + 1, out),
        BExpr::Lt(a, b) | BExpr::Gt(a, b) | BExpr::Eq(a, b) => {
            walk_r(a, d + 1, out);
            walk_r(b, d + 1, out);
        }
        BExpr::Const(_) | BExpr::Feat(_) => {}
    }
}

/// Clone the subtree rooted at preorder index `ix`.
pub fn subtree(e: &Expr, ix: usize) -> Option<Expr> {
    let mut n = ix;
    match e {
        Expr::Real(r) => get_r(r, &mut n),
        Expr::Bool(b) => get_b(b, &mut n),
    }
}

fn get_r(e: &RExpr, n: &mut usize) -> Option<Expr> {
    if *n == 0 {
        return Some(Expr::Real(e.clone()));
    }
    *n -= 1;
    match e {
        RExpr::Add(a, b) | RExpr::Sub(a, b) | RExpr::Mul(a, b) | RExpr::Div(a, b) => {
            get_r(a, n).or_else(|| get_r(b, n))
        }
        RExpr::Sqrt(a) => get_r(a, n),
        RExpr::Tern(c, a, b) | RExpr::Cmul(c, a, b) => {
            get_b(c, n).or_else(|| get_r(a, n)).or_else(|| get_r(b, n))
        }
        RExpr::Const(_) | RExpr::Feat(_) => None,
    }
}

fn get_b(e: &BExpr, n: &mut usize) -> Option<Expr> {
    if *n == 0 {
        return Some(Expr::Bool(e.clone()));
    }
    *n -= 1;
    match e {
        BExpr::And(a, b) | BExpr::Or(a, b) => get_b(a, n).or_else(|| get_b(b, n)),
        BExpr::Not(a) => get_b(a, n),
        BExpr::Lt(a, b) | BExpr::Gt(a, b) | BExpr::Eq(a, b) => get_r(a, n).or_else(|| get_r(b, n)),
        BExpr::Const(_) | BExpr::Feat(_) => None,
    }
}

/// Rebuild `e` with the subtree at preorder index `ix` replaced by `new`.
/// Returns `None` if `ix` is out of range or the sorts do not match.
pub fn with_replaced(e: &Expr, ix: usize, new: &Expr) -> Option<Expr> {
    let mut n = ix;
    match e {
        Expr::Real(r) => rep_r(r, &mut n, new).map(Expr::Real),
        Expr::Bool(b) => rep_b(b, &mut n, new).map(Expr::Bool),
    }
}

fn rep_r(e: &RExpr, n: &mut usize, new: &Expr) -> Option<RExpr> {
    if *n == 0 {
        return match new {
            Expr::Real(r) => Some(r.clone()),
            Expr::Bool(_) => None,
        };
    }
    *n -= 1;
    macro_rules! two {
        ($ctor:path, $a:expr, $b:expr) => {{
            if let Some(na) = rep_r($a, n, new) {
                return Some($ctor(Box::new(na), $b.clone()));
            }
            rep_r($b, n, new).map(|nb| $ctor($a.clone(), Box::new(nb)))
        }};
    }
    match e {
        RExpr::Add(a, b) => two!(RExpr::Add, a, b),
        RExpr::Sub(a, b) => two!(RExpr::Sub, a, b),
        RExpr::Mul(a, b) => two!(RExpr::Mul, a, b),
        RExpr::Div(a, b) => two!(RExpr::Div, a, b),
        RExpr::Sqrt(a) => rep_r(a, n, new).map(|na| RExpr::Sqrt(Box::new(na))),
        RExpr::Tern(c, a, b) => {
            if let Some(nc) = rep_b(c, n, new) {
                return Some(RExpr::Tern(Box::new(nc), a.clone(), b.clone()));
            }
            if let Some(na) = rep_r(a, n, new) {
                return Some(RExpr::Tern(c.clone(), Box::new(na), b.clone()));
            }
            rep_r(b, n, new).map(|nb| RExpr::Tern(c.clone(), a.clone(), Box::new(nb)))
        }
        RExpr::Cmul(c, a, b) => {
            if let Some(nc) = rep_b(c, n, new) {
                return Some(RExpr::Cmul(Box::new(nc), a.clone(), b.clone()));
            }
            if let Some(na) = rep_r(a, n, new) {
                return Some(RExpr::Cmul(c.clone(), Box::new(na), b.clone()));
            }
            rep_r(b, n, new).map(|nb| RExpr::Cmul(c.clone(), a.clone(), Box::new(nb)))
        }
        RExpr::Const(_) | RExpr::Feat(_) => None,
    }
}

fn rep_b(e: &BExpr, n: &mut usize, new: &Expr) -> Option<BExpr> {
    if *n == 0 {
        return match new {
            Expr::Bool(b) => Some(b.clone()),
            Expr::Real(_) => None,
        };
    }
    *n -= 1;
    match e {
        BExpr::And(a, b) => {
            if let Some(na) = rep_b(a, n, new) {
                return Some(BExpr::And(Box::new(na), b.clone()));
            }
            rep_b(b, n, new).map(|nb| BExpr::And(a.clone(), Box::new(nb)))
        }
        BExpr::Or(a, b) => {
            if let Some(na) = rep_b(a, n, new) {
                return Some(BExpr::Or(Box::new(na), b.clone()));
            }
            rep_b(b, n, new).map(|nb| BExpr::Or(a.clone(), Box::new(nb)))
        }
        BExpr::Not(a) => rep_b(a, n, new).map(|na| BExpr::Not(Box::new(na))),
        BExpr::Lt(a, b) => {
            if let Some(na) = rep_r(a, n, new) {
                return Some(BExpr::Lt(Box::new(na), b.clone()));
            }
            rep_r(b, n, new).map(|nb| BExpr::Lt(a.clone(), Box::new(nb)))
        }
        BExpr::Gt(a, b) => {
            if let Some(na) = rep_r(a, n, new) {
                return Some(BExpr::Gt(Box::new(na), b.clone()));
            }
            rep_r(b, n, new).map(|nb| BExpr::Gt(a.clone(), Box::new(nb)))
        }
        BExpr::Eq(a, b) => {
            if let Some(na) = rep_r(a, n, new) {
                return Some(BExpr::Eq(Box::new(na), b.clone()));
            }
            rep_r(b, n, new).map(|nb| BExpr::Eq(a.clone(), Box::new(nb)))
        }
        BExpr::Const(_) | BExpr::Feat(_) => None,
    }
}

// ---- printing (Table 1 S-expression syntax) ----

// Single recursive writer behind both printers. `exact: false` is the
// human-facing Display (constants rounded to four decimals); `exact: true`
// backs `Expr::key` (full round-trip precision — lossless through
// `crate::parse::parse_expr`, as checkpoint/resume requires).
fn write_r(e: &RExpr, exact: bool, out: &mut String) {
    use std::fmt::Write;
    match e {
        RExpr::Add(a, b) => bin_r(out, "add", a, b, exact),
        RExpr::Sub(a, b) => bin_r(out, "sub", a, b, exact),
        RExpr::Mul(a, b) => bin_r(out, "mul", a, b, exact),
        RExpr::Div(a, b) => bin_r(out, "div", a, b, exact),
        RExpr::Sqrt(a) => {
            out.push_str("(sqrt ");
            write_r(a, exact, out);
            out.push(')');
        }
        RExpr::Tern(c, a, b) => tern_r(out, "tern", c, a, b, exact),
        RExpr::Cmul(c, a, b) => tern_r(out, "cmul", c, a, b, exact),
        RExpr::Const(k) => {
            if exact {
                let _ = write!(out, "(rconst {k})");
            } else {
                let _ = write!(out, "(rconst {k:.4})");
            }
        }
        RExpr::Feat(i) => {
            let _ = write!(out, "r{i}");
        }
    }
}

fn bin_r(out: &mut String, op: &str, a: &RExpr, b: &RExpr, exact: bool) {
    out.push('(');
    out.push_str(op);
    out.push(' ');
    write_r(a, exact, out);
    out.push(' ');
    write_r(b, exact, out);
    out.push(')');
}

fn tern_r(out: &mut String, op: &str, c: &BExpr, a: &RExpr, b: &RExpr, exact: bool) {
    out.push('(');
    out.push_str(op);
    out.push(' ');
    write_b(c, exact, out);
    out.push(' ');
    write_r(a, exact, out);
    out.push(' ');
    write_r(b, exact, out);
    out.push(')');
}

fn write_b(e: &BExpr, exact: bool, out: &mut String) {
    use std::fmt::Write;
    let bin = |op: &str, a: &BExpr, b: &BExpr, out: &mut String| {
        out.push('(');
        out.push_str(op);
        out.push(' ');
        write_b(a, exact, out);
        out.push(' ');
        write_b(b, exact, out);
        out.push(')');
    };
    let cmp = |op: &str, a: &RExpr, b: &RExpr, out: &mut String| {
        out.push('(');
        out.push_str(op);
        out.push(' ');
        write_r(a, exact, out);
        out.push(' ');
        write_r(b, exact, out);
        out.push(')');
    };
    match e {
        BExpr::And(a, b) => bin("and", a, b, out),
        BExpr::Or(a, b) => bin("or", a, b, out),
        BExpr::Not(a) => {
            out.push_str("(not ");
            write_b(a, exact, out);
            out.push(')');
        }
        BExpr::Lt(a, b) => cmp("lt", a, b, out),
        BExpr::Gt(a, b) => cmp("gt", a, b, out),
        BExpr::Eq(a, b) => cmp("eq", a, b, out),
        BExpr::Const(k) => {
            let _ = write!(out, "(bconst {k})");
        }
        BExpr::Feat(i) => {
            let _ = write!(out, "b{i}");
        }
    }
}

impl fmt::Display for RExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_r(self, false, &mut out);
        f.write_str(&out)
    }
}

impl fmt::Display for BExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_b(self, false, &mut out);
        f.write_str(&out)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Real(r) => write!(f, "{r}"),
            Expr::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// Pretty-print an expression with feature *names* substituted for indices
/// (used to report evolved priority functions, as in the paper's Fig. 8).
pub fn display_named(e: &Expr, fs: &crate::features::FeatureSet) -> String {
    let raw = e.to_string();
    // Replace whole-token rN / bN occurrences.
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.split_inclusive([' ', ')', '(']);
    for tok in &mut chars {
        let (body, tail) = match tok.char_indices().last() {
            Some((i, c)) if c == ' ' || c == ')' || c == '(' => (&tok[..i], &tok[i..]),
            _ => (tok, ""),
        };
        let replaced = parse_feat_token(body, fs).unwrap_or_else(|| body.to_string());
        out.push_str(&replaced);
        out.push_str(tail);
    }
    out
}

fn parse_feat_token(tok: &str, fs: &crate::features::FeatureSet) -> Option<String> {
    if let Some(rest) = tok.strip_prefix('r') {
        if let Ok(i) = rest.parse::<usize>() {
            return fs.real_name(i).map(|s| s.to_string());
        }
    }
    if let Some(rest) = tok.strip_prefix('b') {
        if let Ok(i) = rest.parse::<usize>() {
            return fs.bool_name(i).map(|s| s.to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env<'a>(reals: &'a [f64], bools: &'a [bool]) -> Env<'a> {
        Env { reals, bools }
    }

    #[test]
    fn arithmetic_eval() {
        let e = RExpr::Add(
            Box::new(RExpr::Mul(
                Box::new(RExpr::Feat(0)),
                Box::new(RExpr::Const(2.0)),
            )),
            Box::new(RExpr::Const(1.0)),
        );
        assert_eq!(e.eval(&env(&[3.0], &[])), 7.0);
    }

    #[test]
    fn protected_division() {
        let e = RExpr::Div(Box::new(RExpr::Const(5.0)), Box::new(RExpr::Const(0.0)));
        assert_eq!(e.eval(&env(&[], &[])), 1.0);
    }

    #[test]
    fn sqrt_of_negative_is_total() {
        let e = RExpr::Sqrt(Box::new(RExpr::Const(-4.0)));
        assert_eq!(e.eval(&env(&[], &[])), 2.0);
    }

    #[test]
    fn overflow_is_clamped() {
        let mut e = RExpr::Const(1e300);
        for _ in 0..4 {
            e = RExpr::Mul(Box::new(e.clone()), Box::new(e));
        }
        let v = e.eval(&env(&[], &[]));
        assert!(v.is_finite());
    }

    #[test]
    fn cmul_semantics() {
        // (cmul c a b): c ? a*b : b  — the paper's conditional multiply.
        let mk = |c| {
            RExpr::Cmul(
                Box::new(BExpr::Const(c)),
                Box::new(RExpr::Const(3.0)),
                Box::new(RExpr::Const(4.0)),
            )
        };
        assert_eq!(mk(true).eval(&env(&[], &[])), 12.0);
        assert_eq!(mk(false).eval(&env(&[], &[])), 4.0);
    }

    #[test]
    fn bool_ops() {
        let e = BExpr::And(
            Box::new(BExpr::Not(Box::new(BExpr::Feat(0)))),
            Box::new(BExpr::Lt(
                Box::new(RExpr::Feat(0)),
                Box::new(RExpr::Const(1.0)),
            )),
        );
        assert!(e.eval(&env(&[0.5], &[false])));
        assert!(!e.eval(&env(&[0.5], &[true])));
        assert!(!e.eval(&env(&[2.0], &[false])));
    }

    #[test]
    fn missing_feature_defaults() {
        assert_eq!(RExpr::Feat(9).eval(&env(&[], &[])), 0.0);
        assert!(!BExpr::Feat(9).eval(&env(&[], &[])));
    }

    #[test]
    fn size_and_depth() {
        let e = Expr::Real(RExpr::Tern(
            Box::new(BExpr::Const(true)),
            Box::new(RExpr::Const(1.0)),
            Box::new(RExpr::Add(
                Box::new(RExpr::Const(2.0)),
                Box::new(RExpr::Const(3.0)),
            )),
        ));
        assert_eq!(e.size(), 6);
        assert_eq!(e.depth(), 3);
    }

    #[test]
    fn node_addressing_round_trips() {
        let e = Expr::Real(RExpr::Cmul(
            Box::new(BExpr::Not(Box::new(BExpr::Feat(0)))),
            Box::new(RExpr::Feat(1)),
            Box::new(RExpr::Const(0.25)),
        ));
        let info = node_info(&e);
        assert_eq!(info.len(), e.size());
        assert_eq!(info[0], (Kind::Real, 0));
        assert_eq!(info[1], (Kind::Bool, 1));
        assert_eq!(info[2], (Kind::Bool, 2));
        // Every node is extractable and self-replacement is identity.
        for (ix, ni) in info.iter().enumerate() {
            let sub = subtree(&e, ix).expect("in range");
            assert_eq!(sub.kind(), ni.0);
            let back = with_replaced(&e, ix, &sub).expect("kinds match");
            assert_eq!(back, e);
        }
        assert!(subtree(&e, info.len()).is_none());
    }

    #[test]
    fn replacement_changes_subtree() {
        let e = Expr::Real(RExpr::Add(
            Box::new(RExpr::Const(1.0)),
            Box::new(RExpr::Const(2.0)),
        ));
        let r = with_replaced(&e, 2, &Expr::Real(RExpr::Const(9.0))).unwrap();
        assert_eq!(r.eval_real(&env(&[], &[])), 10.0);
        // Kind mismatch rejected.
        assert!(with_replaced(&e, 1, &Expr::Bool(BExpr::Const(true))).is_none());
    }

    #[test]
    fn display_round_trip_syntax() {
        let e = Expr::Real(RExpr::Cmul(
            Box::new(BExpr::Const(true)),
            Box::new(RExpr::Feat(0)),
            Box::new(RExpr::Const(0.5)),
        ));
        assert_eq!(e.to_string(), "(cmul (bconst true) r0 (rconst 0.5000))");
        assert_eq!(e.key(), "(cmul (bconst true) r0 (rconst 0.5))");
    }

    #[test]
    fn key_preserves_full_constant_precision() {
        // Display rounds constants for readability; key() must not — a
        // checkpointed population parses back to the exact same genomes.
        let k = 0.123456789012345_f64;
        let e = Expr::Real(RExpr::Add(
            Box::new(RExpr::Const(k)),
            Box::new(RExpr::Feat(0)),
        ));
        let mut fs = crate::features::FeatureSet::new();
        fs.add_real("x");
        let parsed = crate::parse::parse_expr(&e.key(), &fs).unwrap();
        match &parsed {
            Expr::Real(RExpr::Add(a, _)) => match **a {
                RExpr::Const(v) => assert_eq!(v.to_bits(), k.to_bits()),
                ref other => panic!("unexpected lhs {other:?}"),
            },
            other => panic!("unexpected parse {other:?}"),
        }
        assert_eq!(parsed.key(), e.key());
        // The pretty form really is rounded (distinct trees may share it).
        assert_eq!(e.to_string(), "(add (rconst 0.1235) r0)");
    }

    #[test]
    fn display_named_substitutes() {
        let mut fs = crate::features::FeatureSet::new();
        fs.add_real("exec_ratio");
        fs.add_bool("mem_hazard");
        let e = Expr::Real(RExpr::Cmul(
            Box::new(BExpr::Feat(0)),
            Box::new(RExpr::Feat(0)),
            Box::new(RExpr::Const(1.0)),
        ));
        let s = display_named(&e, &fs);
        assert!(s.contains("exec_ratio"), "{s}");
        assert!(s.contains("mem_hazard"), "{s}");
    }
}
