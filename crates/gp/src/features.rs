//! Named feature sets.
//!
//! The compiler writer chooses the measurable program characteristics a
//! priority function may consult (paper §5.1 / Table 4); expressions refer
//! to them by index, and the [`FeatureSet`] maps between names and indices.

use std::fmt;

/// An ordered collection of real- and Boolean-valued feature names.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FeatureSet {
    reals: Vec<String>,
    bools: Vec<String>,
}

impl FeatureSet {
    /// An empty feature set.
    pub fn new() -> Self {
        FeatureSet::default()
    }

    /// Register a real-valued feature; returns its index.
    ///
    /// # Panics
    /// Panics if the name is already registered (in either sort).
    pub fn add_real(&mut self, name: impl Into<String>) -> u16 {
        let name = name.into();
        assert!(
            self.real_index(&name).is_none() && self.bool_index(&name).is_none(),
            "duplicate feature name {name}"
        );
        self.reals.push(name);
        (self.reals.len() - 1) as u16
    }

    /// Register a Boolean feature; returns its index.
    ///
    /// # Panics
    /// Panics if the name is already registered (in either sort).
    pub fn add_bool(&mut self, name: impl Into<String>) -> u16 {
        let name = name.into();
        assert!(
            self.real_index(&name).is_none() && self.bool_index(&name).is_none(),
            "duplicate feature name {name}"
        );
        self.bools.push(name);
        (self.bools.len() - 1) as u16
    }

    /// Index of a real feature by name.
    pub fn real_index(&self, name: &str) -> Option<u16> {
        self.reals.iter().position(|n| n == name).map(|i| i as u16)
    }

    /// Index of a Boolean feature by name.
    pub fn bool_index(&self, name: &str) -> Option<u16> {
        self.bools.iter().position(|n| n == name).map(|i| i as u16)
    }

    /// Name of the real feature at `i`.
    pub fn real_name(&self, i: usize) -> Option<&str> {
        self.reals.get(i).map(|s| s.as_str())
    }

    /// Name of the Boolean feature at `i`.
    pub fn bool_name(&self, i: usize) -> Option<&str> {
        self.bools.get(i).map(|s| s.as_str())
    }

    /// Number of real features.
    pub fn num_reals(&self) -> usize {
        self.reals.len()
    }

    /// Number of Boolean features.
    pub fn num_bools(&self) -> usize {
        self.bools.len()
    }

    /// All real feature names in index order.
    pub fn real_names(&self) -> &[String] {
        &self.reals
    }

    /// All Boolean feature names in index order.
    pub fn bool_names(&self) -> &[String] {
        &self.bools
    }
}

impl fmt::Display for FeatureSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reals: [{}], bools: [{}]",
            self.reals.join(", "),
            self.bools.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_stable() {
        let mut fs = FeatureSet::new();
        assert_eq!(fs.add_real("a"), 0);
        assert_eq!(fs.add_real("b"), 1);
        assert_eq!(fs.add_bool("c"), 0);
        assert_eq!(fs.real_index("b"), Some(1));
        assert_eq!(fs.bool_index("c"), Some(0));
        assert_eq!(fs.real_index("c"), None);
        assert_eq!(fs.real_name(0), Some("a"));
        assert_eq!((fs.num_reals(), fs.num_bools()), (2, 1));
    }

    #[test]
    #[should_panic(expected = "duplicate feature name")]
    fn duplicates_rejected_across_sorts() {
        let mut fs = FeatureSet::new();
        fs.add_real("x");
        fs.add_bool("x");
    }
}
