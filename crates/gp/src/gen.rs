//! Random genome generation (ramped grow, paper §4: "randomly grows
//! expressions of varying heights using the primitives in Table 1 and
//! features extracted by the compiler writer").

use crate::expr::{BExpr, Expr, Kind, RExpr};
use crate::features::FeatureSet;
use rand::{Rng, RngExt};

/// Draw a random real constant: a mix of small integers and unit-interval
/// values, which covers the constants that appear in hand-written priority
/// functions (0.25, 2.1, …).
pub fn random_const<R: Rng>(rng: &mut R) -> f64 {
    match rng.random_range(0..4u8) {
        0 => rng.random_range(0..11) as f64,
        1 => rng.random_range(-10..11) as f64 * 0.1,
        2 => rng.random::<f64>() * 2.0,
        _ => rng.random::<f64>(),
    }
}

/// Grow a random real expression of height at most `depth`.
pub fn random_real<R: Rng>(rng: &mut R, fs: &FeatureSet, depth: usize) -> RExpr {
    let leaf = depth <= 1 || rng.random_bool(0.25);
    if leaf {
        if fs.num_reals() > 0 && rng.random_bool(0.6) {
            RExpr::Feat(rng.random_range(0..fs.num_reals()) as u16)
        } else {
            RExpr::Const(random_const(rng))
        }
    } else {
        let d = depth - 1;
        match rng.random_range(0..7u8) {
            0 => RExpr::Add(
                Box::new(random_real(rng, fs, d)),
                Box::new(random_real(rng, fs, d)),
            ),
            1 => RExpr::Sub(
                Box::new(random_real(rng, fs, d)),
                Box::new(random_real(rng, fs, d)),
            ),
            2 => RExpr::Mul(
                Box::new(random_real(rng, fs, d)),
                Box::new(random_real(rng, fs, d)),
            ),
            3 => RExpr::Div(
                Box::new(random_real(rng, fs, d)),
                Box::new(random_real(rng, fs, d)),
            ),
            4 => RExpr::Sqrt(Box::new(random_real(rng, fs, d))),
            5 => RExpr::Tern(
                Box::new(random_bool_expr(rng, fs, d)),
                Box::new(random_real(rng, fs, d)),
                Box::new(random_real(rng, fs, d)),
            ),
            _ => RExpr::Cmul(
                Box::new(random_bool_expr(rng, fs, d)),
                Box::new(random_real(rng, fs, d)),
                Box::new(random_real(rng, fs, d)),
            ),
        }
    }
}

/// Grow a random Boolean expression of height at most `depth`.
pub fn random_bool_expr<R: Rng>(rng: &mut R, fs: &FeatureSet, depth: usize) -> BExpr {
    let leaf = depth <= 1 || rng.random_bool(0.2);
    if leaf {
        if fs.num_bools() > 0 && rng.random_bool(0.7) {
            BExpr::Feat(rng.random_range(0..fs.num_bools()) as u16)
        } else {
            BExpr::Const(rng.random_bool(0.5))
        }
    } else {
        let d = depth - 1;
        match rng.random_range(0..6u8) {
            0 => BExpr::And(
                Box::new(random_bool_expr(rng, fs, d)),
                Box::new(random_bool_expr(rng, fs, d)),
            ),
            1 => BExpr::Or(
                Box::new(random_bool_expr(rng, fs, d)),
                Box::new(random_bool_expr(rng, fs, d)),
            ),
            2 => BExpr::Not(Box::new(random_bool_expr(rng, fs, d))),
            3 => BExpr::Lt(
                Box::new(random_real(rng, fs, d)),
                Box::new(random_real(rng, fs, d)),
            ),
            4 => BExpr::Gt(
                Box::new(random_real(rng, fs, d)),
                Box::new(random_real(rng, fs, d)),
            ),
            _ => BExpr::Eq(
                Box::new(random_real(rng, fs, d)),
                Box::new(random_real(rng, fs, d)),
            ),
        }
    }
}

/// Grow a random genome of the requested sort with height in
/// `[min_depth, max_depth]` (ramped).
pub fn random_expr<R: Rng>(
    rng: &mut R,
    fs: &FeatureSet,
    kind: Kind,
    min_depth: usize,
    max_depth: usize,
) -> Expr {
    let depth = rng.random_range(min_depth..=max_depth.max(min_depth));
    match kind {
        Kind::Real => Expr::Real(random_real(rng, fs, depth)),
        Kind::Bool => Expr::Bool(random_bool_expr(rng, fs, depth)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fs() -> FeatureSet {
        let mut f = FeatureSet::new();
        f.add_real("x");
        f.add_real("y");
        f.add_bool("p");
        f
    }

    #[test]
    fn respects_depth_bound() {
        let fs = fs();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let e = random_expr(&mut rng, &fs, Kind::Real, 2, 5);
            assert!(e.depth() <= 5, "depth {} > 5", e.depth());
            assert!(e.size() >= 1);
        }
    }

    #[test]
    fn generates_requested_kind() {
        let fs = fs();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            random_expr(&mut rng, &fs, Kind::Real, 1, 4).kind(),
            Kind::Real
        );
        assert_eq!(
            random_expr(&mut rng, &fs, Kind::Bool, 1, 4).kind(),
            Kind::Bool
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let fs = fs();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            assert_eq!(
                random_expr(&mut a, &fs, Kind::Real, 2, 6),
                random_expr(&mut b, &fs, Kind::Real, 2, 6)
            );
        }
    }

    #[test]
    fn produces_varied_expressions() {
        let fs = fs();
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            seen.insert(random_expr(&mut rng, &fs, Kind::Real, 2, 6).key());
        }
        assert!(seen.len() > 30, "only {} distinct expressions", seen.len());
    }

    #[test]
    fn all_evals_total() {
        let fs = fs();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..300 {
            let e = random_expr(&mut rng, &fs, Kind::Real, 1, 8);
            let v = e.eval_real(&crate::expr::Env {
                reals: &[1e15, -3.5],
                bools: &[true],
            });
            assert!(v.is_finite());
        }
    }
}
