#![warn(missing_docs)]
//! # metaopt-gp
//!
//! A strongly-typed genetic-programming engine specialized for evolving
//! compiler **priority functions**, reproducing §3 of *Meta Optimization:
//! Improving Compiler Heuristics with Machine Learning* (PLDI 2003).
//!
//! Genomes are parse trees over exactly the primitives of the paper's
//! Table 1 — real-valued (`add sub mul div sqrt tern cmul rconst`) and
//! Boolean-valued (`and or not lt gt eq bconst barg`) functions plus named
//! feature terminals supplied by the compiler writer. The engine implements
//! the paper's Table 2 search: tournament selection of size 7 with parsimony
//! tie-breaking, depth-fair crossover (Kessler–Haynes), Banzhaf-style
//! mutation of ~5 % of offspring, 22 % generational replacement, elitism of
//! one, and memoized fitness evaluation, with Gathercole's **dynamic subset
//! selection** for multi-benchmark training.
//!
//! ```
//! use metaopt_gp::expr::Env;
//! use metaopt_gp::features::FeatureSet;
//! use metaopt_gp::parse::parse_expr;
//!
//! let mut fs = FeatureSet::new();
//! fs.add_real("exec_ratio");
//! fs.add_bool("mem_hazard");
//! let e = parse_expr("(cmul (not mem_hazard) (mul exec_ratio 2.0) 0.25)", &fs).unwrap();
//! let v = e.eval_real(&Env { reals: &[0.5], bools: &[false] });
//! assert!((v - 0.25).abs() < 1e-12);
//! ```

pub mod checkpoint;
pub mod coevo;
pub mod dss;
pub mod engine;
pub mod eval;
pub mod expr;
pub mod features;
pub mod gen;
pub mod lint;
pub mod ops;
pub mod pareto;
pub mod parse;
pub mod service;
pub mod simplify;
pub mod store;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use coevo::{CoEvolution, MultiEvaluator, PlanGenome, PlanSpace};
pub use engine::{Evaluator, Evolution, EvolutionResult, GenLog, GpParams, PENALTY_FITNESS};
pub use eval::{EvalError, EvalErrorKind, EvalOutcome, QuarantineRecord};
pub use expr::{BExpr, Env, Expr, Kind, RExpr};
pub use features::FeatureSet;
pub use lint::{Lint, LintLevel};
pub use store::{FitnessStore, StoreHealth};
