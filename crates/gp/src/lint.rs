//! Static analysis over GP genomes.
//!
//! The evaluator in [`expr`](crate::expr) is *total* — protected division,
//! NaN-to-zero clamping — so a malformed genome never crashes; it silently
//! computes something other than what its tree says. These lints surface
//! that class of genome before it costs a compile-and-simulate fitness
//! evaluation ([`reject`]) and annotate evolved winners for the compiler
//! writer ([`lint`]).
//!
//! Error-level rules (a genome with any of these is rejected):
//!
//! * `kind-mismatch` — the genome's sort differs from the study's;
//! * `unknown-feature` — a feature terminal indexes past the feature set,
//!   so it silently evaluates to `0.0`/`false`;
//! * `non-finite-constant` — a NaN/∞ constant, which the arithmetic
//!   clamps into unrelated values;
//! * `certain-zero-division` — a denominator that is provably zero, so the
//!   protected division *always* takes its fallback of `1`.
//!
//! Warning-level rules (suspicious but evaluable): `possibly-zero-denominator`,
//! `dead-branch`, `constant-subtree`. Info-level: `unused-feature`.

use crate::expr::{BExpr, Env, Expr, Kind, RExpr};
use crate::features::FeatureSet;
use std::fmt;

/// Lint severity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum LintLevel {
    /// Observation for the compiler writer; never affects fitness.
    Info,
    /// Suspicious construction that still evaluates meaningfully.
    Warning,
    /// Malformed genome: [`reject`] refuses it.
    Error,
}

impl LintLevel {
    /// Lowercase label (`info` / `warning` / `error`).
    pub fn label(self) -> &'static str {
        match self {
            LintLevel::Info => "info",
            LintLevel::Warning => "warning",
            LintLevel::Error => "error",
        }
    }
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Lint {
    /// Severity.
    pub level: LintLevel,
    /// Stable rule identifier (e.g. `kind-mismatch`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.level.label(), self.rule, self.message)
    }
}

/// Run every lint over `genome` as a candidate for a study expecting
/// `expected`-sorted genomes over `features`. Findings come in discovery
/// order (errors are not guaranteed first).
pub fn lint(genome: &Expr, expected: Kind, features: &FeatureSet) -> Vec<Lint> {
    let mut cx = Cx {
        features,
        lints: Vec::new(),
        used_reals: vec![false; features.num_reals()],
        used_bools: vec![false; features.num_bools()],
    };
    if genome.kind() != expected {
        cx.push(
            LintLevel::Error,
            "kind-mismatch",
            format!(
                "genome is {:?}-sorted but the study evolves {:?}-sorted priority functions \
                 (evaluation would coerce the result)",
                genome.kind(),
                expected
            ),
        );
    }
    match genome {
        Expr::Real(r) => cx.walk_real(r, false),
        Expr::Bool(b) => cx.walk_bool(b, false),
    }
    for (i, used) in cx.used_reals.iter().enumerate() {
        if !used {
            let name = cx.features.real_name(i).unwrap_or("?").to_string();
            cx.lints.push(Lint {
                level: LintLevel::Info,
                rule: "unused-feature",
                message: format!("real feature '{name}' is never read"),
            });
        }
    }
    for (i, used) in cx.used_bools.iter().enumerate() {
        if !used {
            let name = cx.features.bool_name(i).unwrap_or("?").to_string();
            cx.lints.push(Lint {
                level: LintLevel::Info,
                rule: "unused-feature",
                message: format!("bool feature '{name}' is never read"),
            });
        }
    }
    cx.lints
}

/// [`lint`], failing when any error-level finding exists. The GP engine
/// calls this before spending a fitness evaluation on a genome.
///
/// # Errors
/// Returns every finding (all severities) when at least one is an error.
pub fn reject(genome: &Expr, expected: Kind, features: &FeatureSet) -> Result<(), Vec<Lint>> {
    let lints = lint(genome, expected, features);
    if lints.iter().any(|l| l.level == LintLevel::Error) {
        Err(lints)
    } else {
        Ok(())
    }
}

struct Cx<'a> {
    features: &'a FeatureSet,
    lints: Vec<Lint>,
    used_reals: Vec<bool>,
    used_bools: Vec<bool>,
}

const EMPTY: Env<'static> = Env {
    reals: &[],
    bools: &[],
};

/// Does the subtree read any feature terminal?
fn has_features_real(e: &RExpr) -> bool {
    match e {
        RExpr::Add(a, b) | RExpr::Sub(a, b) | RExpr::Mul(a, b) | RExpr::Div(a, b) => {
            has_features_real(a) || has_features_real(b)
        }
        RExpr::Sqrt(a) => has_features_real(a),
        RExpr::Tern(c, a, b) | RExpr::Cmul(c, a, b) => {
            has_features_bool(c) || has_features_real(a) || has_features_real(b)
        }
        RExpr::Const(_) => false,
        RExpr::Feat(_) => true,
    }
}

fn has_features_bool(e: &BExpr) -> bool {
    match e {
        BExpr::And(a, b) | BExpr::Or(a, b) => has_features_bool(a) || has_features_bool(b),
        BExpr::Not(a) => has_features_bool(a),
        BExpr::Lt(a, b) | BExpr::Gt(a, b) | BExpr::Eq(a, b) => {
            has_features_real(a) || has_features_real(b)
        }
        BExpr::Const(_) => false,
        BExpr::Feat(_) => true,
    }
}

/// Constant-fold a feature-free subtree with the evaluator's own (total)
/// semantics; `None` when the subtree reads features.
fn const_real(e: &RExpr) -> Option<f64> {
    (!has_features_real(e)).then(|| e.eval(&EMPTY))
}

fn const_bool(e: &BExpr) -> Option<bool> {
    (!has_features_bool(e)).then(|| e.eval(&EMPTY))
}

/// Can the subtree evaluate to (near) zero? Syntactic witnesses only:
/// a near-zero constant or a subtraction (which can cancel). Used to flag
/// denominators where the protected-division fallback is plausibly live.
fn possibly_zero(e: &RExpr) -> bool {
    match e {
        RExpr::Const(k) => k.abs() < 1e-9,
        RExpr::Sub(_, _) => true,
        RExpr::Add(a, b) | RExpr::Mul(a, b) => possibly_zero(a) || possibly_zero(b),
        RExpr::Div(_, _) => false, // protected: yields 1 when the denominator dies
        RExpr::Sqrt(a) => possibly_zero(a),
        RExpr::Tern(_, a, b) | RExpr::Cmul(_, a, b) => possibly_zero(a) || possibly_zero(b),
        RExpr::Feat(_) => false,
    }
}

impl Cx<'_> {
    fn push(&mut self, level: LintLevel, rule: &'static str, message: String) {
        self.lints.push(Lint {
            level,
            rule,
            message,
        });
    }

    /// `in_const`: an enclosing subtree was already reported as constant —
    /// suppresses nested `constant-subtree` findings so only the maximal
    /// foldable subtree is flagged.
    fn walk_real(&mut self, e: &RExpr, in_const: bool) {
        let mut in_const = in_const;
        if !in_const && e.size() > 1 {
            if let Some(v) = const_real(e) {
                self.push(
                    LintLevel::Warning,
                    "constant-subtree",
                    format!(
                        "{}-node real subtree reads no features and always evaluates to {v}",
                        e.size()
                    ),
                );
                in_const = true;
            }
        }
        match e {
            RExpr::Add(a, b) | RExpr::Sub(a, b) | RExpr::Mul(a, b) => {
                self.walk_real(a, in_const);
                self.walk_real(b, in_const);
            }
            RExpr::Div(a, b) => {
                if matches!(&**b, RExpr::Sub(x, y) if x == y) {
                    self.push(
                        LintLevel::Error,
                        "certain-zero-division",
                        "denominator subtracts a subtree from itself: always zero, so the \
                         protected division always yields its fallback of 1"
                            .to_string(),
                    );
                } else if let Some(v) = const_real(b) {
                    if v.abs() < 1e-9 {
                        self.push(
                            LintLevel::Error,
                            "certain-zero-division",
                            format!(
                                "denominator is the constant {v}: the protected division \
                                 always yields its fallback of 1"
                            ),
                        );
                    }
                } else if possibly_zero(b) {
                    self.push(
                        LintLevel::Warning,
                        "possibly-zero-denominator",
                        "denominator can plausibly reach zero; the protected division \
                         silently yields 1 there"
                            .to_string(),
                    );
                }
                self.walk_real(a, in_const);
                self.walk_real(b, in_const);
            }
            RExpr::Sqrt(a) => self.walk_real(a, in_const),
            RExpr::Tern(c, a, b) | RExpr::Cmul(c, a, b) => {
                if let Some(cv) = const_bool(c) {
                    let dead = if cv { "else" } else { "then" };
                    self.push(
                        LintLevel::Warning,
                        "dead-branch",
                        format!("condition is constantly {cv}: the {dead} branch is dead code"),
                    );
                }
                self.walk_bool(c, in_const);
                self.walk_real(a, in_const);
                self.walk_real(b, in_const);
            }
            RExpr::Const(k) => {
                if !k.is_finite() {
                    self.push(
                        LintLevel::Error,
                        "non-finite-constant",
                        format!(
                            "real constant {k} is not finite; the evaluator clamps it into \
                             unrelated values"
                        ),
                    );
                }
            }
            RExpr::Feat(i) => {
                let i = *i as usize;
                if i >= self.features.num_reals() {
                    self.push(
                        LintLevel::Error,
                        "unknown-feature",
                        format!(
                            "real feature index {i} is out of range (feature set has {}); \
                             it silently evaluates to 0.0",
                            self.features.num_reals()
                        ),
                    );
                } else {
                    self.used_reals[i] = true;
                }
            }
        }
    }

    fn walk_bool(&mut self, e: &BExpr, in_const: bool) {
        let mut in_const = in_const;
        if !in_const && e.size() > 1 && const_bool(e).is_some() {
            let v = const_bool(e).unwrap();
            self.push(
                LintLevel::Warning,
                "constant-subtree",
                format!(
                    "{}-node bool subtree reads no features and always evaluates to {v}",
                    e.size()
                ),
            );
            in_const = true;
        }
        match e {
            BExpr::And(a, b) | BExpr::Or(a, b) => {
                self.walk_bool(a, in_const);
                self.walk_bool(b, in_const);
            }
            BExpr::Not(a) => self.walk_bool(a, in_const),
            BExpr::Lt(a, b) | BExpr::Gt(a, b) | BExpr::Eq(a, b) => {
                self.walk_real(a, in_const);
                self.walk_real(b, in_const);
            }
            BExpr::Const(_) => {}
            BExpr::Feat(i) => {
                let i = *i as usize;
                if i >= self.features.num_bools() {
                    self.push(
                        LintLevel::Error,
                        "unknown-feature",
                        format!(
                            "bool feature index {i} is out of range (feature set has {}); \
                             it silently evaluates to false",
                            self.features.num_bools()
                        ),
                    );
                } else {
                    self.used_bools[i] = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_expr;

    fn fs() -> FeatureSet {
        let mut fs = FeatureSet::new();
        fs.add_real("x");
        fs.add_real("y");
        fs.add_bool("p");
        fs
    }

    fn errors(lints: &[Lint]) -> Vec<&'static str> {
        lints
            .iter()
            .filter(|l| l.level == LintLevel::Error)
            .map(|l| l.rule)
            .collect()
    }

    #[test]
    fn clean_genome_has_no_errors_or_warnings() {
        let f = fs();
        let e = parse_expr("(mul x (div y 2.0))", &f).unwrap();
        let lints = lint(&e, Kind::Real, &f);
        assert!(
            lints.iter().all(|l| l.level == LintLevel::Info),
            "{lints:?}"
        );
        assert!(reject(&e, Kind::Real, &f).is_ok());
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let f = fs();
        let e = parse_expr("(barg p)", &f).unwrap(); // Bool genome
        let lints = reject(&e, Kind::Real, &f).unwrap_err();
        assert_eq!(errors(&lints), ["kind-mismatch"]);
        assert!(reject(&e, Kind::Bool, &f).is_ok());
    }

    #[test]
    fn non_finite_constant_is_rejected() {
        let f = fs();
        let e = Expr::Real(RExpr::Add(
            Box::new(RExpr::Feat(0)),
            Box::new(RExpr::Const(f64::NAN)),
        ));
        let lints = reject(&e, Kind::Real, &f).unwrap_err();
        assert_eq!(errors(&lints), ["non-finite-constant"]);
    }

    #[test]
    fn out_of_range_feature_is_rejected() {
        let f = fs();
        let e = Expr::Real(RExpr::Feat(7));
        let lints = reject(&e, Kind::Real, &f).unwrap_err();
        assert_eq!(errors(&lints), ["unknown-feature"]);
        let b = Expr::Bool(BExpr::Feat(9));
        assert!(reject(&b, Kind::Bool, &f).is_err());
    }

    #[test]
    fn certain_zero_division_is_rejected() {
        let f = fs();
        let by_const = parse_expr("(div x 0.0)", &f).unwrap();
        assert_eq!(
            errors(&reject(&by_const, Kind::Real, &f).unwrap_err()),
            ["certain-zero-division"]
        );
        let by_cancel = parse_expr("(div x (sub y y))", &f).unwrap();
        assert_eq!(
            errors(&reject(&by_cancel, Kind::Real, &f).unwrap_err()),
            ["certain-zero-division"]
        );
    }

    #[test]
    fn possibly_zero_denominator_warns() {
        let f = fs();
        let e = parse_expr("(div x (sub x y))", &f).unwrap();
        let lints = lint(&e, Kind::Real, &f);
        assert!(
            lints
                .iter()
                .any(|l| l.rule == "possibly-zero-denominator" && l.level == LintLevel::Warning),
            "{lints:?}"
        );
        assert!(reject(&e, Kind::Real, &f).is_ok(), "warnings never reject");
    }

    #[test]
    fn dead_branch_under_constant_condition_warns() {
        let f = fs();
        let e = parse_expr("(tern (bconst true) x y)", &f).unwrap();
        let lints = lint(&e, Kind::Real, &f);
        assert!(lints.iter().any(|l| l.rule == "dead-branch"), "{lints:?}");
    }

    #[test]
    fn maximal_constant_subtree_warns_once() {
        let f = fs();
        let e = parse_expr("(add x (mul 2.0 (add 1.0 3.0)))", &f).unwrap();
        let hits: Vec<_> = lint(&e, Kind::Real, &f)
            .into_iter()
            .filter(|l| l.rule == "constant-subtree")
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("8"), "{}", hits[0].message);
    }

    #[test]
    fn unused_features_are_reported_as_info() {
        let f = fs();
        let e = parse_expr("(mul x x)", &f).unwrap();
        let infos: Vec<_> = lint(&e, Kind::Real, &f)
            .into_iter()
            .filter(|l| l.rule == "unused-feature")
            .collect();
        assert_eq!(infos.len(), 2, "{infos:?}"); // y and p
        assert!(infos.iter().all(|l| l.level == LintLevel::Info));
    }

    #[test]
    fn renders_like_a_compiler_diagnostic() {
        let l = Lint {
            level: LintLevel::Error,
            rule: "kind-mismatch",
            message: "boom".into(),
        };
        assert_eq!(l.to_string(), "error[kind-mismatch]: boom");
    }
}
