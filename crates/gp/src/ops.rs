//! Genetic operators: depth-fair crossover and Banzhaf-style mutation.

use crate::expr::{node_info, subtree, with_replaced, BExpr, Expr, Kind, RExpr};
use crate::features::FeatureSet;
use crate::gen::{random_const, random_expr};
use rand::{Rng, RngExt};

/// Choose a node index **depth-fairly** (Kessler–Haynes): first pick a tree
/// level uniformly among the levels that contain a node of the wanted kind
/// (if any), then pick uniformly within that level. This avoids the >50 %
/// leaf bias of naive uniform node selection (paper §3, footnote 1).
pub fn pick_node_depth_fair<R: Rng>(rng: &mut R, e: &Expr, want: Option<Kind>) -> Option<usize> {
    let info = node_info(e);
    let mut levels: Vec<u16> = Vec::new();
    for (k, d) in &info {
        if want.is_none_or(|w| w == *k) && !levels.contains(d) {
            levels.push(*d);
        }
    }
    if levels.is_empty() {
        return None;
    }
    let level = levels[rng.random_range(0..levels.len())];
    let candidates: Vec<usize> = info
        .iter()
        .enumerate()
        .filter(|(_, (k, d))| *d == level && want.is_none_or(|w| w == *k))
        .map(|(i, _)| i)
        .collect();
    Some(candidates[rng.random_range(0..candidates.len())])
}

/// Depth-fair subtree crossover. Picks a crossover point in `a`, then a
/// same-sort donor subtree in `b`, and grafts the donor into `a`. Returns a
/// clone of `a` when no compatible point exists or the child would exceed
/// `max_depth`.
pub fn crossover<R: Rng>(rng: &mut R, a: &Expr, b: &Expr, max_depth: usize) -> Expr {
    for _ in 0..8 {
        let Some(ix) = pick_node_depth_fair(rng, a, None) else {
            break;
        };
        let kind = node_info(a)[ix].0;
        let Some(donor_ix) = pick_node_depth_fair(rng, b, Some(kind)) else {
            continue;
        };
        let donor = subtree(b, donor_ix).expect("donor index in range");
        let child = with_replaced(a, ix, &donor).expect("kinds match");
        if child.depth() <= max_depth {
            return child;
        }
    }
    a.clone()
}

/// Mutation operators from Banzhaf et al. (paper §3 cites \[2\] for these):
/// subtree replacement, operator point-mutation, and constant perturbation.
pub fn mutate<R: Rng>(rng: &mut R, e: &Expr, fs: &FeatureSet, max_depth: usize) -> Expr {
    match rng.random_range(0..3u8) {
        0 => mutate_subtree(rng, e, fs, max_depth),
        1 => mutate_point(rng, e),
        _ => mutate_constants(rng, e),
    }
}

/// Replace a depth-fairly chosen node with a freshly grown subtree.
pub fn mutate_subtree<R: Rng>(rng: &mut R, e: &Expr, fs: &FeatureSet, max_depth: usize) -> Expr {
    let Some(ix) = pick_node_depth_fair(rng, e, None) else {
        return e.clone();
    };
    let kind = node_info(e)[ix].0;
    for _ in 0..8 {
        let fresh = random_expr(rng, fs, kind, 1, 4);
        let child = with_replaced(e, ix, &fresh).expect("kinds match");
        if child.depth() <= max_depth {
            return child;
        }
    }
    e.clone()
}

/// Swap one operator for another of the same arity and sort.
pub fn mutate_point<R: Rng>(rng: &mut R, e: &Expr) -> Expr {
    let Some(ix) = pick_node_depth_fair(rng, e, None) else {
        return e.clone();
    };
    let Some(node) = subtree(e, ix) else {
        return e.clone();
    };
    let swapped = match node {
        Expr::Real(r) => Expr::Real(match r {
            RExpr::Add(a, b) | RExpr::Sub(a, b) | RExpr::Mul(a, b) | RExpr::Div(a, b) => {
                match rng.random_range(0..4u8) {
                    0 => RExpr::Add(a, b),
                    1 => RExpr::Sub(a, b),
                    2 => RExpr::Mul(a, b),
                    _ => RExpr::Div(a, b),
                }
            }
            RExpr::Tern(c, a, b) => RExpr::Cmul(c, a, b),
            RExpr::Cmul(c, a, b) => RExpr::Tern(c, a, b),
            RExpr::Const(k) => RExpr::Const(perturb(rng, k)),
            other => other,
        }),
        Expr::Bool(b) => Expr::Bool(match b {
            BExpr::And(x, y) => BExpr::Or(x, y),
            BExpr::Or(x, y) => BExpr::And(x, y),
            BExpr::Lt(x, y) | BExpr::Gt(x, y) | BExpr::Eq(x, y) => match rng.random_range(0..3u8) {
                0 => BExpr::Lt(x, y),
                1 => BExpr::Gt(x, y),
                _ => BExpr::Eq(x, y),
            },
            BExpr::Const(k) => BExpr::Const(!k),
            other => other,
        }),
    };
    with_replaced(e, ix, &swapped).unwrap_or_else(|| e.clone())
}

fn perturb<R: Rng>(rng: &mut R, k: f64) -> f64 {
    let scale = 1.0 + (rng.random::<f64>() - 0.5) * 0.4;
    let shifted = k * scale + (rng.random::<f64>() - 0.5) * 0.2;
    if shifted.is_finite() {
        shifted
    } else {
        random_const(rng)
    }
}

/// Jitter every real constant in the tree (Gaussian-ish scale + shift).
pub fn mutate_constants<R: Rng>(rng: &mut R, e: &Expr) -> Expr {
    fn go_r<R: Rng>(rng: &mut R, e: &RExpr) -> RExpr {
        match e {
            RExpr::Add(a, b) => RExpr::Add(Box::new(go_r(rng, a)), Box::new(go_r(rng, b))),
            RExpr::Sub(a, b) => RExpr::Sub(Box::new(go_r(rng, a)), Box::new(go_r(rng, b))),
            RExpr::Mul(a, b) => RExpr::Mul(Box::new(go_r(rng, a)), Box::new(go_r(rng, b))),
            RExpr::Div(a, b) => RExpr::Div(Box::new(go_r(rng, a)), Box::new(go_r(rng, b))),
            RExpr::Sqrt(a) => RExpr::Sqrt(Box::new(go_r(rng, a))),
            RExpr::Tern(c, a, b) => RExpr::Tern(
                Box::new(go_b(rng, c)),
                Box::new(go_r(rng, a)),
                Box::new(go_r(rng, b)),
            ),
            RExpr::Cmul(c, a, b) => RExpr::Cmul(
                Box::new(go_b(rng, c)),
                Box::new(go_r(rng, a)),
                Box::new(go_r(rng, b)),
            ),
            RExpr::Const(k) => RExpr::Const(perturb(rng, *k)),
            RExpr::Feat(i) => RExpr::Feat(*i),
        }
    }
    fn go_b<R: Rng>(rng: &mut R, e: &BExpr) -> BExpr {
        match e {
            BExpr::And(a, b) => BExpr::And(Box::new(go_b(rng, a)), Box::new(go_b(rng, b))),
            BExpr::Or(a, b) => BExpr::Or(Box::new(go_b(rng, a)), Box::new(go_b(rng, b))),
            BExpr::Not(a) => BExpr::Not(Box::new(go_b(rng, a))),
            BExpr::Lt(a, b) => BExpr::Lt(Box::new(go_r(rng, a)), Box::new(go_r(rng, b))),
            BExpr::Gt(a, b) => BExpr::Gt(Box::new(go_r(rng, a)), Box::new(go_r(rng, b))),
            BExpr::Eq(a, b) => BExpr::Eq(Box::new(go_r(rng, a)), Box::new(go_r(rng, b))),
            BExpr::Const(k) => BExpr::Const(*k),
            BExpr::Feat(i) => BExpr::Feat(*i),
        }
    }
    match e {
        Expr::Real(r) => Expr::Real(go_r(rng, r)),
        Expr::Bool(b) => Expr::Bool(go_b(rng, b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fs() -> FeatureSet {
        let mut f = FeatureSet::new();
        f.add_real("x");
        f.add_bool("p");
        f
    }

    fn sample(rng: &mut StdRng, fs: &FeatureSet) -> Expr {
        random_expr(rng, fs, Kind::Real, 3, 6)
    }

    #[test]
    fn crossover_preserves_sort_and_depth_bound() {
        let fs = fs();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let a = sample(&mut rng, &fs);
            let b = sample(&mut rng, &fs);
            let c = crossover(&mut rng, &a, &b, 10);
            assert_eq!(c.kind(), Kind::Real);
            assert!(c.depth() <= 10);
        }
    }

    #[test]
    fn crossover_usually_changes_the_tree() {
        let fs = fs();
        let mut rng = StdRng::seed_from_u64(5);
        let mut changed = 0;
        for _ in 0..100 {
            let a = sample(&mut rng, &fs);
            let b = sample(&mut rng, &fs);
            if crossover(&mut rng, &a, &b, 12) != a {
                changed += 1;
            }
        }
        assert!(changed > 60, "changed {changed}/100");
    }

    #[test]
    fn depth_fair_picks_internal_nodes_often() {
        // A comb-shaped tree where leaves vastly outnumber levels: naive
        // uniform picking hits leaves >50% of the time; depth-fair must not.
        let fs = fs();
        let mut rng = StdRng::seed_from_u64(2);
        let e = random_expr(&mut rng, &fs, Kind::Real, 6, 6);
        let info = node_info(&e);
        let mut internal_hits = 0;
        let trials = 500;
        for _ in 0..trials {
            let ix = pick_node_depth_fair(&mut rng, &e, None).unwrap();
            let is_leaf = subtree(&e, ix).unwrap().size() == 1;
            if !is_leaf {
                internal_hits += 1;
            }
        }
        let leaf_frac = info
            .iter()
            .enumerate()
            .filter(|(i, _)| subtree(&e, *i).unwrap().size() == 1)
            .count() as f64
            / info.len() as f64;
        // Depth-fair should select internal nodes more often than their
        // population share would suggest.
        assert!(
            internal_hits as f64 / trials as f64 > (1.0 - leaf_frac),
            "internal {internal_hits}/{trials}, leaf fraction {leaf_frac}"
        );
    }

    #[test]
    fn mutation_preserves_sort_and_totality() {
        let fs = fs();
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..200 {
            let a = sample(&mut rng, &fs);
            let m = mutate(&mut rng, &a, &fs, 12);
            assert_eq!(m.kind(), Kind::Real);
            assert!(m.depth() <= 12);
            let v = m.eval_real(&crate::expr::Env {
                reals: &[2.0],
                bools: &[true],
            });
            assert!(v.is_finite());
        }
    }

    #[test]
    fn constant_mutation_only_touches_constants() {
        let fs = fs();
        let mut rng = StdRng::seed_from_u64(1);
        let e = crate::parse::parse_expr("(add x (mul 2.0 x))", &fs).unwrap();
        let m = mutate_constants(&mut rng, &e);
        // Structure identical; the constant may differ.
        assert_eq!(m.size(), e.size());
        assert_eq!(m.depth(), e.depth());
        let stripped = |x: &Expr| {
            x.to_string()
                .replace(|c: char| c.is_ascii_digit() || c == '.' || c == '-', "")
        };
        assert_eq!(stripped(&m), stripped(&e));
    }

    #[test]
    fn bool_genomes_supported() {
        let fs = fs();
        let mut rng = StdRng::seed_from_u64(77);
        let a = random_expr(&mut rng, &fs, Kind::Bool, 3, 5);
        let b = random_expr(&mut rng, &fs, Kind::Bool, 3, 5);
        let c = crossover(&mut rng, &a, &b, 10);
        assert_eq!(c.kind(), Kind::Bool);
        let m = mutate(&mut rng, &c, &fs, 10);
        assert_eq!(m.kind(), Kind::Bool);
    }
}
