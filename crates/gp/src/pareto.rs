//! Deterministic multi-objective selection primitives: Pareto dominance,
//! non-dominated sorting, and crowding distance (NSGA-II), over integer
//! objective vectors that are **minimized**.
//!
//! Determinism contract: every function here is a pure function of its
//! inputs, all tie-breaks resolve by ascending population index, and
//! sorting is stable — so selection depends only on the objective values
//! and the order genomes are presented, never on thread scheduling or hash
//! iteration order. The hypervolume proxy is computed in saturating integer
//! arithmetic (no floating-point accumulation order to worry about).

/// Number of objectives in an objective vector: simulated cycles, code size
/// (static instructions), and the deterministic compile-cost proxy.
pub const NUM_OBJECTIVES: usize = 3;

/// Human-readable objective names, in vector order.
pub const OBJECTIVE_NAMES: [&str; NUM_OBJECTIVES] = ["cycles", "size", "compile"];

/// One point on a Pareto front: a `(plan, priority-function)` genome and
/// its summed objective vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParetoPoint {
    /// The pipeline plan, in canonical textual form.
    pub plan: String,
    /// The priority function, as its re-parseable [`crate::Expr::key`].
    pub expr: String,
    /// Summed objective vector (minimized): cycles, size, compile proxy.
    pub objectives: [u64; NUM_OBJECTIVES],
}

/// Does `a` dominate `b` under the objective `mask`? (No worse on every
/// enabled objective, strictly better on at least one; minimization.)
/// Objectives with `mask[k] == false` are ignored entirely.
pub fn dominates(
    a: &[u64; NUM_OBJECTIVES],
    b: &[u64; NUM_OBJECTIVES],
    mask: &[bool; NUM_OBJECTIVES],
) -> bool {
    let mut strictly = false;
    for k in 0..NUM_OBJECTIVES {
        if !mask[k] {
            continue;
        }
        if a[k] > b[k] {
            return false;
        }
        if a[k] < b[k] {
            strictly = true;
        }
    }
    strictly
}

/// Fast non-dominated sort: partition `0..objs.len()` into fronts, rank 0
/// first. Within a front, indices stay in ascending order.
pub fn non_dominated_sort(
    objs: &[[u64; NUM_OBJECTIVES]],
    mask: &[bool; NUM_OBJECTIVES],
) -> Vec<Vec<usize>> {
    let n = objs.len();
    // dominated_by[i]: how many points dominate i; dominating[i]: who i dominates.
    let mut dominated_by = vec![0usize; n];
    let mut dominating: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if dominates(&objs[i], &objs[j], mask) {
                dominating[i].push(j);
                dominated_by[j] += 1;
            } else if dominates(&objs[j], &objs[i], mask) {
                dominating[j].push(i);
                dominated_by[i] += 1;
            }
        }
    }
    let mut fronts = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominating[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        next.sort_unstable();
        fronts.push(std::mem::replace(&mut current, next));
    }
    fronts
}

/// NSGA-II crowding distance for the members of one front. Boundary points
/// (per-objective minimum and maximum) get `f64::INFINITY`; interior
/// points get the normalized side-length sum of their bounding cuboid.
/// The per-objective sort is stable by population index, so equal objective
/// values cannot reorder under different thread counts.
pub fn crowding_distance(
    front: &[usize],
    objs: &[[u64; NUM_OBJECTIVES]],
    mask: &[bool; NUM_OBJECTIVES],
) -> Vec<f64> {
    let m = front.len();
    let mut dist = vec![0.0f64; m];
    if m <= 2 {
        dist.fill(f64::INFINITY);
        return dist;
    }
    for k in 0..NUM_OBJECTIVES {
        if !mask[k] {
            continue;
        }
        // Positions into `front`, ordered by objective k then by index.
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&p| (objs[front[p]][k], front[p]));
        let lo = objs[front[order[0]]][k];
        let hi = objs[front[order[m - 1]]][k];
        dist[order[0]] = f64::INFINITY;
        dist[order[m - 1]] = f64::INFINITY;
        if hi == lo {
            continue;
        }
        let span = (hi - lo) as f64;
        for w in 1..m - 1 {
            let below = objs[front[order[w - 1]]][k];
            let above = objs[front[order[w + 1]]][k];
            dist[order[w]] += (above - below) as f64 / span;
        }
    }
    dist
}

/// Integer hypervolume proxy of a front: with the reference point one past
/// the front's own per-objective maximum, sum each point's dominated box
/// volume (over enabled objectives, saturating). Overlaps are counted per
/// point, so this is a proxy — monotone under adding a non-dominated point
/// or improving an existing one, which is all the report digest needs.
pub fn hypervolume_proxy(points: &[[u64; NUM_OBJECTIVES]], mask: &[bool; NUM_OBJECTIVES]) -> u64 {
    if points.is_empty() {
        return 0;
    }
    let mut reference = [0u64; NUM_OBJECTIVES];
    for k in 0..NUM_OBJECTIVES {
        reference[k] = points
            .iter()
            .map(|p| p[k])
            .max()
            .unwrap_or(0)
            .saturating_add(1);
    }
    let mut total = 0u64;
    for p in points {
        let mut vol = 1u64;
        for k in 0..NUM_OBJECTIVES {
            if mask[k] {
                vol = vol.saturating_mul(reference[k] - p[k]);
            }
        }
        total = total.saturating_add(vol);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [bool; NUM_OBJECTIVES] = [true; NUM_OBJECTIVES];

    #[test]
    fn dominance_is_strict_and_masked() {
        let a = [1, 5, 5];
        let b = [2, 5, 5];
        assert!(dominates(&a, &b, &ALL));
        assert!(!dominates(&b, &a, &ALL));
        assert!(!dominates(&a, &a, &ALL), "a point never dominates itself");
        // Masking out the only differing objective removes the dominance.
        assert!(!dominates(&a, &b, &[false, true, true]));
    }

    #[test]
    fn sort_layers_fronts_and_keeps_index_order() {
        // 0 and 1 trade off; 2 is dominated by 0; 3 is dominated by all.
        let objs = vec![[1, 9, 1], [9, 1, 1], [2, 9, 2], [9, 9, 9]];
        let fronts = non_dominated_sort(&objs, &ALL);
        assert_eq!(fronts, vec![vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn equal_points_are_mutually_non_dominated() {
        let objs = vec![[3, 3, 3], [3, 3, 3], [3, 3, 3]];
        let fronts = non_dominated_sort(&objs, &ALL);
        assert_eq!(fronts, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn crowding_rewards_boundary_and_isolation() {
        let objs = vec![[0, 10, 0], [5, 5, 0], [6, 4, 0], [10, 0, 0]];
        let front = vec![0, 1, 2, 3];
        let d = crowding_distance(&front, &objs, &ALL);
        assert_eq!(d[0], f64::INFINITY);
        assert_eq!(d[3], f64::INFINITY);
        // Interior distances are finite and ordered by isolation.
        assert!(d[1].is_finite() && d[2].is_finite());
        assert!(d[1] > 0.0 && d[2] > 0.0);
    }

    #[test]
    fn hypervolume_grows_with_front_quality() {
        let worse = vec![[5, 5, 5], [6, 4, 5]];
        let better = vec![[4, 5, 5], [6, 3, 5]];
        let hv_worse = hypervolume_proxy(&worse, &ALL);
        // Same shape, shifted toward the origin: reference point tracks the
        // front, so per-point improvements widen at least one box.
        let hv_better = hypervolume_proxy(&better, &ALL);
        assert!(hv_better >= hv_worse, "{hv_better} vs {hv_worse}");
        assert_eq!(hypervolume_proxy(&[], &ALL), 0);
    }
}
