//! S-expression parser for the Table 1 genome syntax.
//!
//! Accepts the exact forms from the paper —
//! `(add R R)`, `(sub R R)`, `(mul R R)`, `(div R R)`, `(sqrt R)`,
//! `(tern B R R)`, `(cmul B R R)`, `(rconst K)`,
//! `(and B B)`, `(or B B)`, `(not B)`, `(lt R R)`, `(gt R R)`, `(eq R R)`,
//! `(bconst true|false)`, `(barg name)` —
//! with two ergonomic sugars: a bare numeric literal is `(rconst K)` and a
//! bare identifier is a feature terminal looked up in the [`FeatureSet`].

use crate::expr::{BExpr, Expr, RExpr};
use crate::features::FeatureSet;
use std::fmt;

/// Parse failure with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expression parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        message: msg.into(),
    })
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Open,
    Close,
    Sym(String),
}

fn tokenize(src: &str) -> Vec<Tok> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in src.chars() {
        match c {
            '(' | ')' => {
                if !cur.is_empty() {
                    out.push(Tok::Sym(std::mem::take(&mut cur)));
                }
                out.push(if c == '(' { Tok::Open } else { Tok::Close });
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    out.push(Tok::Sym(std::mem::take(&mut cur)));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(Tok::Sym(cur));
    }
    out
}

struct Parser<'a> {
    toks: Vec<Tok>,
    pos: usize,
    fs: &'a FeatureSet,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t.ok_or_else(|| ParseError {
            message: "unexpected end of input".into(),
        })
    }

    fn expect_close(&mut self) -> Result<(), ParseError> {
        match self.next()? {
            Tok::Close => Ok(()),
            t => err(format!("expected ')', found {t:?}")),
        }
    }

    fn head(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Sym(s) => Ok(s),
            t => err(format!("expected operator symbol, found {t:?}")),
        }
    }

    fn real(&mut self) -> Result<RExpr, ParseError> {
        match self.peek() {
            Some(Tok::Open) => {
                self.pos += 1;
                let op = self.head()?;
                let e = match op.as_str() {
                    "add" => RExpr::Add(Box::new(self.real()?), Box::new(self.real()?)),
                    "sub" => RExpr::Sub(Box::new(self.real()?), Box::new(self.real()?)),
                    "mul" => RExpr::Mul(Box::new(self.real()?), Box::new(self.real()?)),
                    "div" => RExpr::Div(Box::new(self.real()?), Box::new(self.real()?)),
                    "sqrt" => RExpr::Sqrt(Box::new(self.real()?)),
                    "tern" => RExpr::Tern(
                        Box::new(self.boolean()?),
                        Box::new(self.real()?),
                        Box::new(self.real()?),
                    ),
                    "cmul" => RExpr::Cmul(
                        Box::new(self.boolean()?),
                        Box::new(self.real()?),
                        Box::new(self.real()?),
                    ),
                    "rconst" => match self.next()? {
                        Tok::Sym(s) => match s.parse::<f64>() {
                            Ok(k) => RExpr::Const(k),
                            Err(_) => return err(format!("bad real constant {s}")),
                        },
                        t => return err(format!("rconst expects a number, found {t:?}")),
                    },
                    other => return err(format!("unknown real operator {other}")),
                };
                self.expect_close()?;
                Ok(e)
            }
            Some(Tok::Sym(_)) => {
                let Tok::Sym(s) = self.next()? else {
                    unreachable!()
                };
                if let Ok(k) = s.parse::<f64>() {
                    return Ok(RExpr::Const(k));
                }
                if let Some(i) = self.fs.real_index(&s) {
                    return Ok(RExpr::Feat(i));
                }
                // Accept the printer's positional form `rN`.
                if let Some(i) = s.strip_prefix('r').and_then(|r| r.parse::<u16>().ok()) {
                    return Ok(RExpr::Feat(i));
                }
                err(format!("unknown real feature {s}"))
            }
            _ => err("expected real expression"),
        }
    }

    fn boolean(&mut self) -> Result<BExpr, ParseError> {
        match self.peek() {
            Some(Tok::Open) => {
                self.pos += 1;
                let op = self.head()?;
                let e = match op.as_str() {
                    "and" => BExpr::And(Box::new(self.boolean()?), Box::new(self.boolean()?)),
                    "or" => BExpr::Or(Box::new(self.boolean()?), Box::new(self.boolean()?)),
                    "not" => BExpr::Not(Box::new(self.boolean()?)),
                    "lt" => BExpr::Lt(Box::new(self.real()?), Box::new(self.real()?)),
                    "gt" => BExpr::Gt(Box::new(self.real()?), Box::new(self.real()?)),
                    "eq" => BExpr::Eq(Box::new(self.real()?), Box::new(self.real()?)),
                    "bconst" => match self.next()? {
                        Tok::Sym(s) if s == "true" => BExpr::Const(true),
                        Tok::Sym(s) if s == "false" => BExpr::Const(false),
                        t => return err(format!("bconst expects true/false, found {t:?}")),
                    },
                    "barg" => match self.next()? {
                        Tok::Sym(s) => match self.fs.bool_index(&s) {
                            Some(i) => BExpr::Feat(i),
                            None => return err(format!("unknown bool feature {s}")),
                        },
                        t => return err(format!("barg expects a name, found {t:?}")),
                    },
                    other => return err(format!("unknown bool operator {other}")),
                };
                self.expect_close()?;
                Ok(e)
            }
            Some(Tok::Sym(_)) => {
                let Tok::Sym(s) = self.next()? else {
                    unreachable!()
                };
                match s.as_str() {
                    "true" => return Ok(BExpr::Const(true)),
                    "false" => return Ok(BExpr::Const(false)),
                    _ => {}
                }
                if let Some(i) = self.fs.bool_index(&s) {
                    return Ok(BExpr::Feat(i));
                }
                // Accept the printer's positional form `bN`.
                if let Some(i) = s.strip_prefix('b').and_then(|r| r.parse::<u16>().ok()) {
                    return Ok(BExpr::Feat(i));
                }
                err(format!("unknown bool feature {s}"))
            }
            _ => err("expected bool expression"),
        }
    }

    fn finish(&mut self) -> Result<(), ParseError> {
        if self.pos != self.toks.len() {
            return err("trailing tokens after expression");
        }
        Ok(())
    }
}

/// Parse a real-valued expression.
///
/// # Errors
/// Returns a [`ParseError`] on malformed syntax or unknown features.
pub fn parse_real(src: &str, fs: &FeatureSet) -> Result<RExpr, ParseError> {
    let mut p = Parser {
        toks: tokenize(src),
        pos: 0,
        fs,
    };
    let e = p.real()?;
    p.finish()?;
    Ok(e)
}

/// Parse a Boolean-valued expression.
///
/// # Errors
/// Returns a [`ParseError`] on malformed syntax or unknown features.
pub fn parse_bool(src: &str, fs: &FeatureSet) -> Result<BExpr, ParseError> {
    let mut p = Parser {
        toks: tokenize(src),
        pos: 0,
        fs,
    };
    let e = p.boolean()?;
    p.finish()?;
    Ok(e)
}

/// Parse an expression of either sort: tries real first, then Boolean.
///
/// # Errors
/// Returns the real-parse error if both fail.
pub fn parse_expr(src: &str, fs: &FeatureSet) -> Result<Expr, ParseError> {
    match parse_real(src, fs) {
        Ok(r) => Ok(Expr::Real(r)),
        Err(e) => parse_bool(src, fs).map(Expr::Bool).map_err(|_| e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Env;

    fn fs() -> FeatureSet {
        let mut f = FeatureSet::new();
        f.add_real("exec_ratio");
        f.add_real("num_ops");
        f.add_bool("mem_hazard");
        f
    }

    #[test]
    fn parses_eq1_style_expression() {
        // priority = exec_ratio * h * (2.1 - d - o) with h via cmul
        let fs = fs();
        let e = parse_real(
            "(mul exec_ratio (cmul (barg mem_hazard) 0.25 (sub 2.1 num_ops)))",
            &fs,
        )
        .unwrap();
        let v = e.eval(&Env {
            reals: &[0.5, 1.0],
            bools: &[false],
        });
        assert!((v - 0.5 * 1.1).abs() < 1e-12, "{v}");
    }

    #[test]
    fn round_trips_through_display() {
        let fs = fs();
        let src = "(cmul (not (barg mem_hazard)) (div num_ops exec_ratio) (rconst 0.25))";
        let e = parse_real(src, &fs).unwrap();
        let printed = e.to_string();
        let re = parse_real(&printed, &fs).unwrap();
        assert_eq!(e, re);
    }

    #[test]
    fn bare_literals_and_features() {
        let fs = fs();
        let e = parse_real("(add 1.5 exec_ratio)", &fs).unwrap();
        assert_eq!(
            e.eval(&Env {
                reals: &[2.0, 0.0],
                bools: &[]
            }),
            3.5
        );
    }

    #[test]
    fn bool_expressions() {
        let fs = fs();
        let e = parse_bool("(and (gt num_ops 3) (not mem_hazard))", &fs).unwrap();
        assert!(e.eval(&Env {
            reals: &[0.0, 4.0],
            bools: &[false]
        }));
        assert!(!e.eval(&Env {
            reals: &[0.0, 2.0],
            bools: &[false]
        }));
    }

    #[test]
    fn errors_are_reported() {
        let fs = fs();
        assert!(parse_real("(add 1", &fs).is_err());
        assert!(parse_real("(frob 1 2)", &fs).is_err());
        assert!(parse_real("(add 1 unknown_feat)", &fs).is_err());
        assert!(parse_real("(add 1 2) extra", &fs).is_err());
        assert!(parse_bool("(lt 1)", &fs).is_err());
    }

    #[test]
    fn parse_expr_dispatches_on_sort() {
        let fs = fs();
        assert!(matches!(parse_expr("(add 1 2)", &fs), Ok(Expr::Real(_))));
        assert!(matches!(parse_expr("(lt 1 2)", &fs), Ok(Expr::Bool(_))));
    }
}
