//! Supervised evaluation service: a long-lived worker pool with failure
//! containment.
//!
//! [`crate::engine::Evolution`] used to spawn a fresh batch of scoped
//! threads for every generation's fitness wave. That shape has two
//! robustness holes: a worker that panics takes its sibling joins down with
//! it, and a worker that wedges (a stuck evaluator, a runaway host
//! syscall) hangs the whole run. This module replaces the per-wave spawn
//! with a *service*: workers are spawned once per run, pull `(genome,
//! case)` jobs from sharded work-stealing queues, and are watched by a
//! supervisor thread that respawns dead workers and — as a last resort —
//! completes jobs whose worker has stalled past a wall-clock deadline.
//!
//! # Containment layers, in order of preference
//!
//! 1. **Cooperative deadline** (primary): the simulator's cycle budget
//!    (`metaopt_ir::budget::EVAL_MAX_SIM_CYCLES`) bounds every evaluation
//!    deterministically — a pathological genome gets a budget fault, not a
//!    hang. Healthy runs never reach the layers below.
//! 2. **Panic isolation**: each job runs under `catch_unwind`; a panicking
//!    executor marks the job contained ([`Containment::WorkerCrash`]),
//!    completes it, and retires the worker thread cleanly so the scope
//!    join never propagates. The supervisor respawns the slot.
//! 3. **Wall-clock watchdog** (last resort): the supervisor steals the
//!    job of a worker that has been busy longer than
//!    [`Tuning::stall_timeout`] and completes it as
//!    [`Containment::Stalled`], so the wave — and the run — always
//!    finishes. The hung thread itself cannot be killed (Rust scoped
//!    threads have no kill switch); it is abandoned and its eventual
//!    result discarded by the memo's entry guard.
//!
//! The service is generic over the wave payload `W` (the engine uses a
//! snapshot of the population plus atomic score slots) and the job type
//! `J`, which keeps this module free of GP-specific types and lets the
//! unit tests drive it with toy payloads.
//!
//! # Determinism
//!
//! Work stealing makes job *order* schedule-dependent, but the engine's
//! memo entry guard already makes every counter and ledger outcome
//! schedule-independent, so the service preserves the engine's
//! threads-1-vs-N determinism contract. Supervision events
//! (`worker-restart`, `timeout`) only fire on genuine failures, never in a
//! healthy run.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::Scope;
use std::time::{Duration, Instant};

use metaopt_trace::json::Value;
use metaopt_trace::metrics::{Counter, Gauge, MetricsRegistry};
use metaopt_trace::Tracer;

/// Why the service completed a job on behalf of its worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Containment {
    /// The executor panicked; the panic was caught at the job boundary.
    WorkerCrash,
    /// The worker exceeded the wall-clock stall deadline; the supervisor
    /// stole the job. Carries the observed wall time in nanoseconds.
    Stalled {
        /// Wall-clock nanoseconds the job had been running when stolen.
        wall_ns: u64,
    },
}

/// Supervision timing knobs. Defaults are deliberately generous: in a
/// healthy run the cooperative cycle budget bounds every evaluation long
/// before the wall clock matters, so the watchdog should only ever fire on
/// a genuine host-side wedge. Tests shrink these to milliseconds.
#[derive(Clone, Copy, Debug)]
pub struct Tuning {
    /// How long a worker may stay on one job before the supervisor steals
    /// and force-completes it.
    pub stall_timeout: Duration,
    /// Supervisor polling cadence (heartbeat check + respawn scan).
    pub poll: Duration,
    /// How long an idle worker parks before re-scanning the queues.
    pub idle_park: Duration,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning {
            stall_timeout: Duration::from_secs(60),
            poll: Duration::from_millis(25),
            idle_park: Duration::from_millis(5),
        }
    }
}

/// Cached live-metrics handles for the service: queue pressure, worker
/// utilization, steal and restart counts. Purely observational — nothing
/// in the service reads these back, so scheduling stays unaffected.
struct ServiceMetrics {
    jobs: Arc<Counter>,
    steals: Arc<Counter>,
    restarts: Arc<Counter>,
    busy: Arc<Gauge>,
    /// One depth gauge per job queue (`metaopt_service_queue_depth{shard=N}`).
    depth: Vec<Arc<Gauge>>,
}

impl ServiceMetrics {
    fn new(registry: &MetricsRegistry, workers: usize, queues: usize) -> Self {
        registry
            .gauge("metaopt_service_workers")
            .set(workers as u64);
        ServiceMetrics {
            jobs: registry.counter("metaopt_service_jobs_total"),
            steals: registry.counter("metaopt_service_steals_total"),
            restarts: registry.counter("metaopt_service_restarts_total"),
            busy: registry.gauge("metaopt_service_workers_busy"),
            depth: (0..queues)
                .map(|q| {
                    registry.gauge_labeled("metaopt_service_queue_depth", "shard", &q.to_string())
                })
                .collect(),
        }
    }
}

/// Per-worker-slot supervision record. Slots are stable identities:
/// a respawned worker reuses the slot of the thread it replaces.
struct Slot<J> {
    /// False once the occupying thread has exited (panic or shutdown);
    /// the supervisor respawns any dead slot while the service is live.
    alive: AtomicBool,
    /// Milliseconds since service start at which the current job began;
    /// 0 when idle. The watchdog's staleness source.
    busy_since_ms: AtomicU64,
    /// The job the worker is currently executing. Completion ownership:
    /// whoever `take`s the job out (the worker on finish, or the
    /// supervisor on stall) completes it; the other side sees `None` and
    /// stands down. This is what prevents a stolen job from being
    /// completed twice.
    current: Mutex<Option<J>>,
    /// Cumulative respawns of this slot.
    restarts: AtomicU64,
}

/// Shared state of one evaluation service. Created *before* the run's
/// thread scope so worker threads (whose lifetime is bounded by the scope)
/// can borrow it.
pub struct State<W, J> {
    /// Sharded job queues; a worker prefers queue `slot % queues.len()`
    /// and steals from the others when its own is empty.
    queues: Vec<Mutex<VecDeque<J>>>,
    /// Payload shared by every job of the current wave.
    wave: Mutex<Option<Arc<W>>>,
    /// Jobs submitted but not yet completed in the current wave.
    pending: AtomicUsize,
    /// Signals workers that new work arrived (guards a wave epoch counter).
    work: (Mutex<u64>, Condvar),
    /// Signals the submitter that `pending` reached zero.
    done: (Mutex<()>, Condvar),
    /// Set once at end of run; workers and supervisor drain and exit.
    shutdown: AtomicBool,
    /// One record per worker slot.
    slots: Vec<Slot<J>>,
    /// Supervision timing.
    tuning: Tuning,
    /// Service epoch for millisecond timestamps.
    started: Instant,
    /// Live metrics mirror; `None` when the run has no registry attached.
    metrics: Option<ServiceMetrics>,
}

impl<W, J: Copy> State<W, J> {
    /// A service with `workers` worker slots and `queues` job queues,
    /// using default supervision timing.
    pub fn new(workers: usize, queues: usize) -> Self {
        State::with_tuning(workers, queues, Tuning::default())
    }

    /// A service with explicit supervision timing (tests use millisecond
    /// deadlines to exercise the watchdog without real minutes of wall
    /// clock).
    pub fn with_tuning(workers: usize, queues: usize, tuning: Tuning) -> Self {
        State {
            queues: (0..queues.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            wave: Mutex::new(None),
            pending: AtomicUsize::new(0),
            work: (Mutex::new(0), Condvar::new()),
            done: (Mutex::new(()), Condvar::new()),
            shutdown: AtomicBool::new(false),
            slots: (0..workers.max(1))
                .map(|_| Slot {
                    alive: AtomicBool::new(false),
                    busy_since_ms: AtomicU64::new(0),
                    current: Mutex::new(None),
                    restarts: AtomicU64::new(0),
                })
                .collect(),
            tuning,
            started: Instant::now(),
            metrics: None,
        }
    }

    /// Attach live metrics (queue depth, busy workers, steal/restart
    /// counters) to this service. A `None` registry is a no-op, so callers
    /// can pass [`Tracer::metrics`](metaopt_trace::Tracer::metrics)
    /// straight through.
    pub fn with_metrics(mut self, registry: Option<&MetricsRegistry>) -> Self {
        self.metrics =
            registry.map(|r| ServiceMetrics::new(r, self.slots.len(), self.queues.len()));
        self
    }

    /// Number of worker slots.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Total worker respawns across all slots so far.
    pub fn restarts(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.restarts.load(Ordering::Relaxed))
            .sum()
    }

    /// Milliseconds since the service was created (never 0, so 0 can mean
    /// "idle" in `busy_since_ms`).
    fn now_ms(&self) -> u64 {
        (self.started.elapsed().as_millis() as u64).max(1)
    }

    /// Run one wave: publish `wave`, enqueue each `(queue, job)` pair onto
    /// its queue, and block until every job has been completed (by a
    /// worker, or by the supervisor containing a failure). Queue indices
    /// are taken modulo the queue count.
    pub fn submit(&self, wave: Arc<W>, jobs: Vec<(usize, J)>) {
        if jobs.is_empty() {
            return;
        }
        *self.wave.lock().unwrap() = Some(wave);
        self.pending.store(jobs.len(), Ordering::SeqCst);
        for (q, job) in jobs {
            let ix = q % self.queues.len();
            let mut queue = self.queues[ix].lock().unwrap();
            queue.push_back(job);
            if let Some(m) = &self.metrics {
                m.depth[ix].set(queue.len() as u64);
            }
        }
        {
            let mut epoch = self.work.0.lock().unwrap();
            *epoch += 1;
            self.work.1.notify_all();
        }
        let mut guard = self.done.0.lock().unwrap();
        while self.pending.load(Ordering::SeqCst) > 0 {
            // Timed wait: completion can race the notify, and the
            // supervisor may complete the final job.
            let (g, _) = self
                .done
                .1
                .wait_timeout(guard, Duration::from_millis(20))
                .unwrap();
            guard = g;
        }
    }

    /// Mark the run over. Workers and the supervisor observe the flag and
    /// exit; the caller's thread scope then joins them.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.work.1.notify_all();
    }

    /// Pop a job, preferring this slot's own queue, stealing otherwise.
    fn grab(&self, slot: usize) -> Option<J> {
        let n = self.queues.len();
        for i in 0..n {
            let ix = (slot + i) % n;
            let mut queue = self.queues[ix].lock().unwrap();
            if let Some(job) = queue.pop_front() {
                if let Some(m) = &self.metrics {
                    m.depth[ix].set(queue.len() as u64);
                    m.jobs.inc();
                    if i > 0 {
                        m.steals.inc();
                    }
                }
                return Some(job);
            }
        }
        None
    }

    /// Complete one job: decrement `pending` and wake the submitter when
    /// the wave is drained.
    fn job_done(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.done.0.lock().unwrap();
            self.done.1.notify_all();
        }
    }

    /// Record that `slot` started `job` (heartbeat + ownership).
    fn job_started(&self, slot: usize, job: J) {
        *self.slots[slot].current.lock().unwrap() = Some(job);
        self.slots[slot]
            .busy_since_ms
            .store(self.now_ms(), Ordering::SeqCst);
        if let Some(m) = &self.metrics {
            m.busy.inc();
        }
    }

    /// Try to reclaim completion ownership of `slot`'s current job.
    /// Returns the job if this caller owns completion, `None` if the other
    /// side (worker vs. supervisor) already took it.
    fn job_taken(&self, slot: usize) -> Option<J> {
        let job = self.slots[slot].current.lock().unwrap().take();
        self.slots[slot].busy_since_ms.store(0, Ordering::SeqCst);
        if job.is_some() {
            if let Some(m) = &self.metrics {
                m.busy.dec();
            }
        }
        job
    }
}

/// Start the service inside `scope`: spawn the initial workers plus the
/// supervisor. All closures and the state are borrowed for the scope's
/// `'env` lifetime, so they must be created before the scope.
///
/// * `exec(wave, job)` — evaluate one job. May panic; panics are contained.
/// * `contain(wave, job, why)` — record a job the service had to complete
///   on the executor's behalf (crash or stall). Must not panic.
pub fn start<'scope, 'env, W, J, E, C>(
    scope: &'scope Scope<'scope, 'env>,
    state: &'env State<W, J>,
    exec: &'env E,
    contain: &'env C,
    tracer: &'env Tracer,
) where
    W: Send + Sync,
    J: Copy + Send + 'static,
    E: Fn(&W, J) + Sync,
    C: Fn(&W, J, Containment) + Sync,
{
    for slot in 0..state.slots.len() {
        state.slots[slot].alive.store(true, Ordering::SeqCst);
        scope.spawn(move || worker(state, exec, contain, slot));
    }
    scope.spawn(move || supervise(scope, state, exec, contain, tracer));
}

/// Worker loop: pull jobs, execute under `catch_unwind`, heartbeat.
/// Exits (marking the slot dead) on shutdown or after containing a panic —
/// the supervisor respawns panicked slots.
fn worker<W, J, E, C>(state: &State<W, J>, exec: &E, contain: &C, slot: usize)
where
    W: Send + Sync,
    J: Copy + Send,
    E: Fn(&W, J) + Sync,
    C: Fn(&W, J, Containment) + Sync,
{
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            state.slots[slot].alive.store(false, Ordering::SeqCst);
            return;
        }
        let Some(job) = state.grab(slot) else {
            // Idle: park briefly on the work condvar, then rescan. The
            // timeout keeps shutdown latency bounded even if a notify is
            // missed.
            let guard = state.work.0.lock().unwrap();
            let _ = state
                .work
                .1
                .wait_timeout(guard, state.tuning.idle_park)
                .unwrap();
            continue;
        };
        let wave = state.wave.lock().unwrap().clone();
        let Some(wave) = wave else {
            // A job without a published wave cannot happen via `submit`;
            // tolerate it instead of unwrapping in a worker.
            state.job_done();
            continue;
        };
        state.job_started(slot, job);
        let result = catch_unwind(AssertUnwindSafe(|| exec(&wave, job)));
        let owned = state.job_taken(slot);
        if let Err(_panic) = result {
            if let Some(job) = owned {
                contain(&wave, job, Containment::WorkerCrash);
                state.job_done();
            }
            // Retire this thread cleanly so the scope join sees no panic;
            // the supervisor observes the dead slot and respawns it.
            state.slots[slot].alive.store(false, Ordering::SeqCst);
            return;
        }
        if owned.is_some() {
            state.job_done();
        }
        // else: the supervisor stole the job mid-run (stall) and already
        // completed it; this worker's result was discarded by the caller's
        // entry guard.
    }
}

/// Supervisor loop: respawn dead slots, steal jobs from stalled workers.
fn supervise<'scope, 'env, W, J, E, C>(
    scope: &'scope Scope<'scope, 'env>,
    state: &'env State<W, J>,
    exec: &'env E,
    contain: &'env C,
    tracer: &'env Tracer,
) where
    W: Send + Sync,
    J: Copy + Send + 'static,
    E: Fn(&W, J) + Sync,
    C: Fn(&W, J, Containment) + Sync,
{
    let stall_ms = state.tuning.stall_timeout.as_millis() as u64;
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(state.tuning.poll);
        for slot in 0..state.slots.len() {
            if !state.slots[slot].alive.load(Ordering::SeqCst) {
                if state.shutdown.load(Ordering::SeqCst) {
                    continue; // clean exit, not a death
                }
                let restarts = state.slots[slot].restarts.fetch_add(1, Ordering::SeqCst) + 1;
                state.slots[slot].alive.store(true, Ordering::SeqCst);
                if let Some(m) = &state.metrics {
                    m.restarts.inc();
                }
                if tracer.enabled() {
                    tracer.emit(
                        "worker-restart",
                        [
                            ("worker", Value::UInt(slot as u64)),
                            ("restarts", Value::UInt(restarts)),
                            ("reason", Value::str("worker thread died")),
                        ],
                    );
                }
                scope.spawn(move || worker(state, exec, contain, slot));
                continue;
            }
            let busy = state.slots[slot].busy_since_ms.load(Ordering::SeqCst);
            if busy != 0 && state.now_ms().saturating_sub(busy) > stall_ms {
                // Last-resort watchdog: reclaim completion ownership. If
                // the worker finished in the meantime, `job_taken` yields
                // None and we stand down.
                if let Some(job) = state.job_taken(slot) {
                    let wall_ns = state.now_ms().saturating_sub(busy) * 1_000_000;
                    let wave = state.wave.lock().unwrap().clone();
                    if let Some(wave) = wave {
                        contain(&wave, job, Containment::Stalled { wall_ns });
                    }
                    state.job_done();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_tuning() -> Tuning {
        Tuning {
            stall_timeout: Duration::from_millis(60),
            poll: Duration::from_millis(5),
            idle_park: Duration::from_millis(2),
        }
    }

    /// Toy wave: one atomic cell per job index.
    struct Cells {
        done: Vec<AtomicU64>,
    }

    fn run_wave<E, C>(workers: usize, jobs: usize, exec: E, contain: C) -> (Arc<Cells>, u64)
    where
        E: Fn(&Cells, usize) + Sync,
        C: Fn(&Cells, usize, Containment) + Sync,
    {
        let state = State::with_tuning(workers, 4, tiny_tuning());
        let tracer = Tracer::in_memory();
        let wave = Arc::new(Cells {
            done: (0..jobs).map(|_| AtomicU64::new(0)).collect(),
        });
        std::thread::scope(|s| {
            start(s, &state, &exec, &contain, &tracer);
            state.submit(wave.clone(), (0..jobs).map(|j| (j, j)).collect());
            state.shutdown();
        });
        let restarts = state.restarts();
        (wave, restarts)
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let (wave, restarts) = run_wave(
            3,
            64,
            |w: &Cells, j: usize| {
                w.done[j].fetch_add(1, Ordering::SeqCst);
            },
            |_w, _j, _why| panic!("no containment expected"),
        );
        for (j, cell) in wave.done.iter().enumerate() {
            assert_eq!(cell.load(Ordering::SeqCst), 1, "job {j}");
        }
        assert_eq!(restarts, 0);
    }

    #[test]
    fn multiple_waves_reuse_the_same_workers() {
        let state: State<Cells, usize> = State::with_tuning(2, 4, tiny_tuning());
        let tracer = Tracer::in_memory();
        let exec = |w: &Cells, j: usize| {
            w.done[j].fetch_add(1, Ordering::SeqCst);
        };
        let contain = |_w: &Cells, _j: usize, _why: Containment| {};
        std::thread::scope(|s| {
            start(s, &state, &exec, &contain, &tracer);
            for _ in 0..3 {
                let wave = Arc::new(Cells {
                    done: (0..10).map(|_| AtomicU64::new(0)).collect(),
                });
                state.submit(wave.clone(), (0..10).map(|j| (j, j)).collect());
                for cell in &wave.done {
                    assert_eq!(cell.load(Ordering::SeqCst), 1);
                }
            }
            state.shutdown();
        });
        assert_eq!(state.restarts(), 0);
    }

    #[test]
    fn panicking_jobs_are_contained_and_workers_respawned() {
        let contained = AtomicU64::new(0);
        let state: State<Cells, usize> = State::with_tuning(2, 4, tiny_tuning());
        let tracer = Tracer::in_memory();
        let wave = Arc::new(Cells {
            done: (0..20).map(|_| AtomicU64::new(0)).collect(),
        });
        let exec = |w: &Cells, j: usize| {
            if j.is_multiple_of(5) {
                panic!("job {j} exploded");
            }
            w.done[j].fetch_add(1, Ordering::SeqCst);
        };
        let contain = |w: &Cells, j: usize, why: Containment| {
            assert_eq!(why, Containment::WorkerCrash);
            w.done[j].fetch_add(100, Ordering::SeqCst);
            contained.fetch_add(1, Ordering::SeqCst);
        };
        std::thread::scope(|s| {
            start(s, &state, &exec, &contain, &tracer);
            state.submit(wave.clone(), (0..20).map(|j| (j, j)).collect());
            state.shutdown();
        });
        // Every panicking job (0,5,10,15) was contained; every other job ran.
        assert_eq!(contained.load(Ordering::SeqCst), 4);
        for (j, cell) in wave.done.iter().enumerate() {
            let want = if j.is_multiple_of(5) { 100 } else { 1 };
            assert_eq!(cell.load(Ordering::SeqCst), want, "job {j}");
        }
        // With 4 panics on 2 slots the supervisor had to respawn workers to
        // keep draining the wave.
        assert!(state.restarts() >= 1, "restarts = {}", state.restarts());
        let lines = tracer.lines().unwrap();
        assert!(
            lines.iter().any(|l| l.contains("\"worker-restart\"")),
            "expected a worker-restart event, got: {lines:?}"
        );
    }

    #[test]
    fn stalled_jobs_are_stolen_by_the_watchdog() {
        let state: State<Cells, usize> = State::with_tuning(2, 4, tiny_tuning());
        let tracer = Tracer::in_memory();
        let wave = Arc::new(Cells {
            done: (0..6).map(|_| AtomicU64::new(0)).collect(),
        });
        let exec = |w: &Cells, j: usize| {
            if j == 0 {
                // Wedge well past the 60 ms stall deadline. The sleep is
                // bounded, so the scope join still completes.
                std::thread::sleep(Duration::from_millis(400));
            }
            w.done[j].fetch_add(1, Ordering::SeqCst);
        };
        let contain = |w: &Cells, j: usize, why: Containment| {
            assert!(matches!(why, Containment::Stalled { wall_ns } if wall_ns > 0));
            w.done[j].fetch_add(100, Ordering::SeqCst);
        };
        std::thread::scope(|s| {
            start(s, &state, &exec, &contain, &tracer);
            let begun = Instant::now();
            state.submit(wave.clone(), (0..6).map(|j| (j, j)).collect());
            // The wave must complete without waiting out the 400 ms wedge.
            assert!(
                begun.elapsed() < Duration::from_millis(350),
                "submit blocked on the stalled worker"
            );
            state.shutdown();
        });
        // Job 0 was force-completed by the watchdog (the wedged worker's
        // own completion was disowned); the rest ran normally.
        assert_eq!(wave.done[0].load(Ordering::SeqCst), 101);
        for j in 1..6 {
            assert_eq!(wave.done[j].load(Ordering::SeqCst), 1, "job {j}");
        }
    }

    #[test]
    fn metrics_track_jobs_and_settle_idle() {
        let registry = MetricsRegistry::new();
        let state: State<Cells, usize> =
            State::with_tuning(3, 4, tiny_tuning()).with_metrics(Some(&registry));
        let tracer = Tracer::in_memory();
        let wave = Arc::new(Cells {
            done: (0..32).map(|_| AtomicU64::new(0)).collect(),
        });
        let exec = |w: &Cells, j: usize| {
            w.done[j].fetch_add(1, Ordering::SeqCst);
        };
        let contain = |_w: &Cells, _j: usize, _why: Containment| {};
        std::thread::scope(|s| {
            start(s, &state, &exec, &contain, &tracer);
            state.submit(wave.clone(), (0..32).map(|j| (j, j)).collect());
            state.shutdown();
        });
        assert_eq!(registry.counter("metaopt_service_jobs_total").get(), 32);
        assert_eq!(registry.gauge("metaopt_service_workers").get(), 3);
        assert_eq!(registry.gauge("metaopt_service_workers_busy").get(), 0);
        for q in 0..4 {
            assert_eq!(
                registry
                    .gauge_labeled("metaopt_service_queue_depth", "shard", &q.to_string())
                    .get(),
                0,
                "queue {q} should drain"
            );
        }
        assert_eq!(registry.counter("metaopt_service_restarts_total").get(), 0);
    }

    #[test]
    fn empty_wave_returns_immediately() {
        let state: State<Cells, usize> = State::with_tuning(1, 1, tiny_tuning());
        let tracer = Tracer::in_memory();
        let exec = |_w: &Cells, _j: usize| {};
        let contain = |_w: &Cells, _j: usize, _why: Containment| {};
        std::thread::scope(|s| {
            start(s, &state, &exec, &contain, &tracer);
            state.submit(Arc::new(Cells { done: Vec::new() }), Vec::new());
            state.shutdown();
        });
    }
}
