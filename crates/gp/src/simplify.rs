//! Expression simplification.
//!
//! The paper notes that reported winners were "hand simplified for ease of
//! discussion" and that evolved genomes carry *introns* — subexpressions
//! with no effect on the result (which are nonetheless useful during
//! evolution as crossover ballast, §5.4.3). This pass mechanizes the hand
//! simplification: constant folding, algebraic identities, and
//! branch-elimination on constant conditions. It never changes the
//! function's value on any input (checked by property tests).

use crate::expr::{BExpr, Expr, RExpr};

const EPS: f64 = 1e-12;

fn is_const(e: &RExpr, k: f64) -> bool {
    matches!(e, RExpr::Const(c) if (c - k).abs() < EPS)
}

/// Simplify a real-valued expression.
pub fn simplify_real(e: &RExpr) -> RExpr {
    use RExpr::*;
    match e {
        Add(a, b) => {
            let (a, b) = (simplify_real(a), simplify_real(b));
            match (&a, &b) {
                (Const(x), Const(y)) => Const(x + y),
                _ if is_const(&a, 0.0) => b,
                _ if is_const(&b, 0.0) => a,
                _ => Add(Box::new(a), Box::new(b)),
            }
        }
        Sub(a, b) => {
            let (a, b) = (simplify_real(a), simplify_real(b));
            match (&a, &b) {
                (Const(x), Const(y)) => Const(x - y),
                _ if is_const(&b, 0.0) => a,
                _ if a == b => Const(0.0),
                _ => Sub(Box::new(a), Box::new(b)),
            }
        }
        Mul(a, b) => {
            let (a, b) = (simplify_real(a), simplify_real(b));
            match (&a, &b) {
                (Const(x), Const(y)) => Const(x * y),
                _ if is_const(&a, 1.0) => b,
                _ if is_const(&b, 1.0) => a,
                // NOTE: x*0 cannot fold to 0 in general IEEE arithmetic, but
                // our evaluator clamps NaN to 0, so 0*x == 0 for every
                // representable input.
                _ if is_const(&a, 0.0) || is_const(&b, 0.0) => Const(0.0),
                _ => Mul(Box::new(a), Box::new(b)),
            }
        }
        Div(a, b) => {
            let (a, b) = (simplify_real(a), simplify_real(b));
            match (&a, &b) {
                // Protected division: /0 yields 1.
                (_, Const(y)) if y.abs() < 1e-9 => Const(1.0),
                (Const(x), Const(y)) => Const(x / y),
                _ if is_const(&b, 1.0) => a,
                _ => Div(Box::new(a), Box::new(b)),
            }
        }
        Sqrt(a) => {
            let a = simplify_real(a);
            match &a {
                Const(x) => Const(x.abs().sqrt()),
                _ => Sqrt(Box::new(a)),
            }
        }
        Tern(c, a, b) => {
            let c = simplify_bool(c);
            let (a, b) = (simplify_real(a), simplify_real(b));
            match &c {
                BExpr::Const(true) => a,
                BExpr::Const(false) => b,
                _ if a == b => a, // intron: both arms identical
                _ => Tern(Box::new(c), Box::new(a), Box::new(b)),
            }
        }
        Cmul(c, a, b) => {
            let c = simplify_bool(c);
            let (a, b) = (simplify_real(a), simplify_real(b));
            match &c {
                BExpr::Const(true) => simplify_real(&Mul(Box::new(a), Box::new(b))),
                BExpr::Const(false) => b,
                _ if is_const(&a, 1.0) => b, // 1*b == b on both arms
                _ => Cmul(Box::new(c), Box::new(a), Box::new(b)),
            }
        }
        Const(k) => Const(*k),
        Feat(i) => Feat(*i),
    }
}

/// Simplify a Boolean expression.
pub fn simplify_bool(e: &BExpr) -> BExpr {
    use BExpr::*;
    match e {
        And(a, b) => {
            let (a, b) = (simplify_bool(a), simplify_bool(b));
            match (&a, &b) {
                (Const(false), _) | (_, Const(false)) => Const(false),
                (Const(true), _) => b,
                (_, Const(true)) => a,
                _ if a == b => a,
                _ => And(Box::new(a), Box::new(b)),
            }
        }
        Or(a, b) => {
            let (a, b) = (simplify_bool(a), simplify_bool(b));
            match (&a, &b) {
                (Const(true), _) | (_, Const(true)) => Const(true),
                (Const(false), _) => b,
                (_, Const(false)) => a,
                _ if a == b => a,
                _ => Or(Box::new(a), Box::new(b)),
            }
        }
        Not(a) => {
            let a = simplify_bool(a);
            match a {
                Const(k) => Const(!k),
                Not(inner) => *inner,
                other => Not(Box::new(other)),
            }
        }
        Lt(a, b) => {
            let (a, b) = (simplify_real(a), simplify_real(b));
            match (&a, &b) {
                (RExpr::Const(x), RExpr::Const(y)) => Const(x < y),
                _ if a == b => Const(false),
                _ => Lt(Box::new(a), Box::new(b)),
            }
        }
        Gt(a, b) => {
            let (a, b) = (simplify_real(a), simplify_real(b));
            match (&a, &b) {
                (RExpr::Const(x), RExpr::Const(y)) => Const(x > y),
                _ if a == b => Const(false),
                _ => Gt(Box::new(a), Box::new(b)),
            }
        }
        Eq(a, b) => {
            let (a, b) = (simplify_real(a), simplify_real(b));
            match (&a, &b) {
                (RExpr::Const(x), RExpr::Const(y)) => Const(x == y),
                _ if a == b => Const(true),
                _ => Eq(Box::new(a), Box::new(b)),
            }
        }
        Const(k) => Const(*k),
        Feat(i) => Feat(*i),
    }
}

/// Simplify a genome to a fixpoint (at most a few passes in practice).
pub fn simplify(e: &Expr) -> Expr {
    let mut cur = e.clone();
    for _ in 0..8 {
        let next = match &cur {
            Expr::Real(r) => Expr::Real(simplify_real(r)),
            Expr::Bool(b) => Expr::Bool(simplify_bool(b)),
        };
        if next == cur {
            break;
        }
        cur = next;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Env;
    use crate::parse::parse_expr;
    use crate::FeatureSet;

    fn fs() -> FeatureSet {
        let mut f = FeatureSet::new();
        f.add_real("x");
        f.add_real("y");
        f.add_bool("p");
        f
    }

    fn simp(src: &str) -> String {
        simplify(&parse_expr(src, &fs()).unwrap()).to_string()
    }

    #[test]
    fn folds_constants() {
        assert_eq!(simp("(add 2.0 3.0)"), "(rconst 5.0000)");
        assert_eq!(simp("(mul (add 1.0 1.0) (sub 5.0 2.0))"), "(rconst 6.0000)");
        assert_eq!(simp("(sqrt 9.0)"), "(rconst 3.0000)");
    }

    #[test]
    fn applies_identities() {
        assert_eq!(simp("(add x 0.0)"), "r0");
        assert_eq!(simp("(mul x 1.0)"), "r0");
        assert_eq!(simp("(mul x 0.0)"), "(rconst 0.0000)");
        assert_eq!(simp("(div x 1.0)"), "r0");
        assert_eq!(simp("(sub x x)"), "(rconst 0.0000)");
    }

    #[test]
    fn removes_constant_branches() {
        assert_eq!(simp("(tern (bconst true) x y)"), "r0");
        assert_eq!(simp("(tern (lt 1.0 2.0) x y)"), "r0");
        assert_eq!(simp("(cmul (bconst false) x y)"), "r1");
        assert_eq!(simp("(tern (barg p) x x)"), "r0");
    }

    #[test]
    fn simplifies_boolean_structure() {
        assert_eq!(
            simp("(tern (and (barg p) (bconst true)) x y)"),
            "(tern b0 r0 r1)"
        );
        assert_eq!(simp("(tern (not (not (barg p))) x y)"), "(tern b0 r0 r1)");
        assert_eq!(simp("(tern (or (barg p) (bconst true)) x y)"), "r0");
    }

    #[test]
    fn protected_division_folds_correctly() {
        assert_eq!(simp("(div x 0.0)"), "(rconst 1.0000)");
    }

    #[test]
    fn semantics_preserved_on_random_expressions() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let f = fs();
        let mut rng = StdRng::seed_from_u64(1234);
        for _ in 0..500 {
            let e = crate::gen::random_expr(&mut rng, &f, crate::Kind::Real, 1, 7);
            let s = simplify(&e);
            assert!(s.size() <= e.size(), "simplify must not grow: {e} -> {s}");
            for trial in 0..8 {
                let reals = [trial as f64 * 1.7 - 3.0, 0.5 * trial as f64];
                let bools = [trial % 2 == 0];
                let env = Env {
                    reals: &reals,
                    bools: &bools,
                };
                let a = e.eval_real(&env);
                let b = s.eval_real(&env);
                assert!(
                    (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                    "{e} -> {s}: {a} vs {b}"
                );
            }
        }
    }
}
