//! Crash-safe persistent fitness store: the on-disk warm layer behind the
//! in-memory sharded memo.
//!
//! A GP run at paper scale performs tens of thousands of `(genome, case)`
//! evaluations, each costing up to 60 M simulated instructions; losing them
//! to a crash or a config change means recomputing them. The store persists
//! every *successful* score keyed on the exact `Expr::key` text plus the
//! checkpoint-v2 config fingerprint, so a re-run (or a resumed run) under
//! the same configuration serves those scores from disk instead of the
//! simulator. Failures are deliberately not persisted: permanent failures
//! are cheap to rediscover and transient ones should be retried fresh.
//!
//! # File format (`metaopt-fitness-cache v1`)
//!
//! ```text
//! metaopt-fitness-cache v1\n          (magic + version, line 1)
//! <config fingerprint>\n              (checkpoint-v2 fingerprint, line 2)
//! [len: u32 LE] [payload] [fnv1a(payload): u64 LE]     (repeated)
//! payload = case: u32 LE | score: f64 bits, u64 LE | key: UTF-8 bytes
//! ```
//!
//! Appends are serialized under a mutex and issued as a single `write_all`
//! of the complete record, so a crash can only ever leave a *truncated
//! tail*, never an interleaved one. On open, records are validated in
//! order; the first bad record (short read, absurd length, checksum
//! mismatch, malformed payload) truncates the file back to the last good
//! offset and the run continues with everything before it — the
//! "drop the bad tail" recovery contract. A file that fails *header*
//! validation (wrong magic, wrong version, foreign fingerprint, unreadable)
//! is never modified: the store degrades to in-memory-only for the run and
//! emits a traced warning, so a mis-pointed `--eval-cache` can never
//! destroy data or serve a wrong fitness.

use metaopt_trace::json::Value;
use metaopt_trace::Tracer;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Magic + version line (line 1 of the file).
pub const STORE_MAGIC: &str = "metaopt-fitness-cache v1";

/// Upper bound on a record payload: no genome key comes anywhere near this,
/// so a larger length prefix means the tail is garbage.
const MAX_PAYLOAD: usize = 1 << 20;

/// Minimum payload: case (4) + score (8) + at least one key byte.
const MIN_PAYLOAD: usize = 13;

/// Hook consulted on every append; when it returns `true` the record is
/// written with a corrupted checksum, simulating a torn write. Exists so
/// the fault injector's `CacheCorrupt` stage (and tests) can exercise the
/// recovery path deterministically.
pub type CorruptHook = Arc<dyn Fn(&str, usize) -> bool + Send + Sync>;

/// How the store came up when it was opened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreHealth {
    /// File opened cleanly (or was created fresh).
    Intact,
    /// A bad tail was detected and truncated away; everything before it
    /// was loaded.
    Recovered,
    /// The file was unusable (wrong magic/version, foreign fingerprint, or
    /// I/O error); the store is in-memory-only for this run.
    Degraded,
}

/// The persistent fitness store. All methods are `&self` and thread-safe:
/// lookups read an immutable map loaded at open, appends serialize under an
/// internal mutex. The store never panics and never returns an error to the
/// evaluation path — every failure mode degrades to "no persistence".
pub struct FitnessStore {
    loaded: HashMap<String, Vec<(usize, f64)>>,
    entries: u64,
    writer: Mutex<Option<File>>,
    health: StoreHealth,
    dropped_bytes: u64,
    appended: AtomicU64,
    corrupt_hook: Option<CorruptHook>,
    tracer: Tracer,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Outcome of parsing the byte image of an existing store file.
struct Parsed {
    loaded: HashMap<String, Vec<(usize, f64)>>,
    entries: u64,
    /// Offset of the first byte past the last valid record.
    good_offset: u64,
}

impl FitnessStore {
    /// Open (or create) the store at `path` for a run with the given config
    /// `fingerprint`. Infallible by design: any failure mode yields a
    /// degraded in-memory store with a traced `cache-recovered` warning
    /// (`mode: "degraded"`); a torn tail yields a recovered store
    /// (`mode: "recovered"`) with the tail truncated away.
    pub fn open(path: &Path, fingerprint: &str, tracer: &Tracer) -> FitnessStore {
        let (store, emit) = Self::open_inner(path, fingerprint, tracer);
        if let Some(mode) = emit {
            tracer.emit(
                "cache-recovered",
                [
                    ("mode", Value::Str(mode.to_string())),
                    ("entries", Value::UInt(store.entries)),
                    ("dropped_bytes", Value::UInt(store.dropped_bytes)),
                ],
            );
        }
        store
    }

    fn open_inner(
        path: &Path,
        fingerprint: &str,
        tracer: &Tracer,
    ) -> (FitnessStore, Option<&'static str>) {
        let header = format!("{STORE_MAGIC}\n{fingerprint}\n");
        let degraded = |tracer: &Tracer| {
            (
                FitnessStore {
                    loaded: HashMap::new(),
                    entries: 0,
                    writer: Mutex::new(None),
                    health: StoreHealth::Degraded,
                    dropped_bytes: 0,
                    appended: AtomicU64::new(0),
                    corrupt_hook: None,
                    tracer: tracer.clone(),
                },
                Some("degraded"),
            )
        };

        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(_) => return degraded(tracer),
        };

        // A missing file, an empty file, or a torn header (a strict prefix
        // of our own header — only possible from a crash during creation)
        // all mean "start fresh". Anything else that fails header
        // validation is not ours to touch: degrade without modifying it.
        let fresh = bytes.len() < header.len() && header.as_bytes().starts_with(&bytes);
        if !fresh && !bytes.starts_with(header.as_bytes()) {
            return degraded(tracer);
        }

        let (parsed, mut recovered) = if fresh {
            (
                Parsed {
                    loaded: HashMap::new(),
                    entries: 0,
                    good_offset: header.len() as u64,
                },
                !bytes.is_empty(),
            )
        } else {
            let p = Self::parse_records(&bytes, header.len());
            let rec = p.good_offset < bytes.len() as u64;
            (p, rec)
        };
        let dropped =
            (bytes.len() as u64).saturating_sub(parsed.good_offset.min(bytes.len() as u64));

        // Materialize the repaired file: rewrite a torn header, truncate a
        // bad tail, then reopen for appending.
        let file = (|| -> std::io::Result<File> {
            if fresh {
                let mut f = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(path)?;
                f.write_all(header.as_bytes())?;
                Ok(f)
            } else {
                let f = OpenOptions::new().read(true).write(true).open(path)?;
                if recovered {
                    f.set_len(parsed.good_offset)?;
                }
                Ok(f)
            }
        })();
        let mut file = match file {
            Ok(mut f) => {
                use std::io::Seek;
                match f.seek(std::io::SeekFrom::End(0)) {
                    Ok(_) => Some(f),
                    Err(_) => None,
                }
            }
            Err(_) => None,
        };
        if file.is_none() {
            // Loaded entries are still good — serve them read-only, but
            // report the store as degraded (no persistence this run).
            recovered = false;
        }
        let health = if file.is_none() {
            StoreHealth::Degraded
        } else if recovered {
            StoreHealth::Recovered
        } else {
            StoreHealth::Intact
        };
        let store = FitnessStore {
            entries: parsed.entries,
            loaded: parsed.loaded,
            writer: Mutex::new(file.take()),
            health,
            dropped_bytes: if health == StoreHealth::Recovered {
                dropped
            } else {
                0
            },
            appended: AtomicU64::new(0),
            corrupt_hook: None,
            tracer: tracer.clone(),
        };
        let emit = match health {
            StoreHealth::Intact => None,
            StoreHealth::Recovered => Some("recovered"),
            StoreHealth::Degraded => Some("degraded"),
        };
        (store, emit)
    }

    /// Validate records in `bytes` starting at `start`; stop at the first
    /// bad one. Later records for the same `(key, case)` win (duplicates
    /// arise from resumed runs re-evaluating pairs whose memo was lost).
    fn parse_records(bytes: &[u8], start: usize) -> Parsed {
        let mut loaded: HashMap<String, Vec<(usize, f64)>> = HashMap::new();
        let mut entries = 0u64;
        let mut off = start;
        loop {
            let rest = &bytes[off..];
            if rest.is_empty() {
                break;
            }
            if rest.len() < 4 {
                break; // torn length prefix
            }
            let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
            if !(MIN_PAYLOAD..=MAX_PAYLOAD).contains(&len) || rest.len() < 4 + len + 8 {
                break; // absurd length or torn payload/checksum
            }
            let payload = &rest[4..4 + len];
            let sum = u64::from_le_bytes(rest[4 + len..4 + len + 8].try_into().unwrap());
            if fnv1a(payload) != sum {
                break; // bit flip or torn write
            }
            let case = u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
            let score = f64::from_bits(u64::from_le_bytes(payload[4..12].try_into().unwrap()));
            let key = match std::str::from_utf8(&payload[12..]) {
                Ok(k) => k,
                Err(_) => break,
            };
            let cases = loaded.entry(key.to_string()).or_default();
            match cases.iter_mut().find(|(c, _)| *c == case) {
                Some(slot) => slot.1 = score,
                None => {
                    cases.push((case, score));
                    entries += 1;
                }
            }
            off += 4 + len + 8;
        }
        Parsed {
            loaded,
            entries,
            good_offset: off as u64,
        }
    }

    /// Install a corruption hook (fault injection / tests): appends for
    /// which the hook fires are written with a corrupted checksum,
    /// simulating a torn write that the next open must recover from.
    pub fn with_corrupt_hook(mut self, hook: CorruptHook) -> Self {
        self.corrupt_hook = Some(hook);
        self
    }

    /// Score persisted for `(key, case)` by an earlier run, if any. Borrows
    /// the key — no allocation on the hot path.
    pub fn lookup(&self, key: &str, case: usize) -> Option<f64> {
        self.loaded
            .get(key)
            .and_then(|cases| cases.iter().find(|(c, _)| *c == case))
            .map(|(_, s)| *s)
    }

    /// Append a successful score. Serialized under a mutex and written as
    /// one `write_all`; on I/O failure the store silently degrades to
    /// in-memory-only (with a traced warning) rather than surfacing an
    /// error into the evaluation path.
    pub fn append(&self, key: &str, case: usize, score: f64) {
        let mut payload = Vec::with_capacity(12 + key.len());
        payload.extend_from_slice(&(case as u32).to_le_bytes());
        payload.extend_from_slice(&score.to_bits().to_le_bytes());
        payload.extend_from_slice(key.as_bytes());
        let mut sum = fnv1a(&payload);
        if let Some(hook) = &self.corrupt_hook {
            if hook(key, case) {
                sum ^= 0xFF; // torn-write simulation: checksum won't verify
            }
        }
        let mut record = Vec::with_capacity(4 + payload.len() + 8);
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&payload);
        record.extend_from_slice(&sum.to_le_bytes());

        let mut guard = self.writer.lock().unwrap();
        if let Some(f) = guard.as_mut() {
            if f.write_all(&record).is_err() {
                *guard = None;
                self.tracer.emit(
                    "cache-recovered",
                    [
                        ("mode", Value::Str("degraded".to_string())),
                        ("entries", Value::UInt(self.entries)),
                        ("dropped_bytes", Value::UInt(0)),
                    ],
                );
            } else {
                self.appended.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of `(key, case)` entries loaded from disk at open.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Records appended (and durably written) by this run so far.
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Health classification from open time.
    pub fn health(&self) -> StoreHealth {
        self.health
    }

    /// Bytes dropped by truncated-tail recovery at open (0 unless
    /// [`StoreHealth::Recovered`]).
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_bytes
    }
}

impl std::fmt::Debug for FitnessStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FitnessStore")
            .field("entries", &self.entries)
            .field("health", &self.health)
            .field("dropped_bytes", &self.dropped_bytes)
            .field("appended", &self.appended.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    const FP: &str = "pop=8 seed=42 config=test";

    fn temp(name: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("metaopt-store-{}-{}.bin", name, std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn filled(path: &Path) -> Vec<(String, usize, f64)> {
        let rows = vec![
            ("(add x 1.0)".to_string(), 0, 1.25),
            ("(add x 1.0)".to_string(), 1, 0.75),
            ("(mul x x)".to_string(), 0, 2.0),
            ("(mul x x)".to_string(), 3, -4.5),
        ];
        let s = FitnessStore::open(path, FP, &Tracer::disabled());
        assert_eq!(s.health(), StoreHealth::Intact);
        for (k, c, v) in &rows {
            s.append(k, *c, *v);
        }
        assert_eq!(s.appended(), rows.len() as u64);
        rows
    }

    #[test]
    fn round_trips_scores_across_opens() {
        let path = temp("roundtrip");
        let rows = filled(&path);
        let s = FitnessStore::open(&path, FP, &Tracer::disabled());
        assert_eq!(s.health(), StoreHealth::Intact);
        assert_eq!(s.entries(), rows.len() as u64);
        for (k, c, v) in &rows {
            assert_eq!(s.lookup(k, *c), Some(*v), "{k} case {c}");
        }
        assert_eq!(s.lookup("(add x 1.0)", 9), None);
        assert_eq!(s.lookup("(unknown)", 0), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_tail_is_recovered_and_traced() {
        let path = temp("trunc");
        let rows = filled(&path);
        // Chop mid-record: the last record loses its checksum bytes.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let tracer = Tracer::in_memory();
        let s = FitnessStore::open(&path, FP, &tracer);
        assert_eq!(s.health(), StoreHealth::Recovered);
        assert_eq!(s.entries(), rows.len() as u64 - 1);
        assert!(s.dropped_bytes() > 0);
        // The dropped pair misses; everything before it is served.
        assert_eq!(s.lookup(&rows[3].0, rows[3].1), None);
        assert_eq!(s.lookup(&rows[0].0, rows[0].1), Some(rows[0].2));
        let lines = tracer.lines().unwrap();
        assert!(
            lines
                .iter()
                .any(|l| l.contains("cache-recovered") && l.contains("\"mode\":\"recovered\"")),
            "{lines:?}"
        );
        // The file was repaired in place: reopening is clean, and appends go
        // to the truncation point.
        s.append("(neg x)", 2, 9.0);
        drop(s);
        let s2 = FitnessStore::open(&path, FP, &Tracer::disabled());
        assert_eq!(s2.health(), StoreHealth::Intact);
        assert_eq!(s2.lookup("(neg x)", 2), Some(9.0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flipped_record_drops_the_tail_but_never_serves_it() {
        let path = temp("bitflip");
        let rows = filled(&path);
        // Flip one bit inside the *third* record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let header = format!("{STORE_MAGIC}\n{FP}\n").len();
        let mut off = header;
        for _ in 0..2 {
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            off += 4 + len + 8;
        }
        bytes[off + 8] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let tracer = Tracer::in_memory();
        let s = FitnessStore::open(&path, FP, &tracer);
        assert_eq!(s.health(), StoreHealth::Recovered);
        // Records before the flip survive; the flipped one and everything
        // after are gone — a corrupted score is never served.
        assert_eq!(s.entries(), 2);
        assert_eq!(s.lookup(&rows[0].0, rows[0].1), Some(rows[0].2));
        assert_eq!(s.lookup(&rows[2].0, rows[2].1), None);
        assert_eq!(s.lookup(&rows[3].0, rows[3].1), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_version_or_magic_degrades_without_touching_the_file() {
        for (name, contents) in [
            ("wrongver", format!("metaopt-fitness-cache v9\n{FP}\n")),
            (
                "notours",
                "some other file entirely\nwith two lines\n".to_string(),
            ),
            ("binary", "\u{1}\u{2}\u{3}garbage".to_string()),
        ] {
            let path = temp(name);
            std::fs::write(&path, &contents).unwrap();
            let tracer = Tracer::in_memory();
            let s = FitnessStore::open(&path, FP, &tracer);
            assert_eq!(s.health(), StoreHealth::Degraded, "{name}");
            assert_eq!(s.entries(), 0);
            // Appends are silently dropped; the foreign file is untouched.
            s.append("(add x 1.0)", 0, 1.0);
            assert_eq!(s.appended(), 0);
            assert_eq!(std::fs::read_to_string(&path).unwrap(), contents, "{name}");
            let lines = tracer.lines().unwrap();
            assert!(
                lines
                    .iter()
                    .any(|l| l.contains("cache-recovered") && l.contains("\"mode\":\"degraded\"")),
                "{name}: {lines:?}"
            );
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn foreign_fingerprint_degrades() {
        let path = temp("foreignfp");
        filled(&path);
        let s = FitnessStore::open(&path, "pop=8 seed=43 config=test", &Tracer::disabled());
        assert_eq!(s.health(), StoreHealth::Degraded);
        assert_eq!(s.lookup("(add x 1.0)", 0), None);
        // Re-open under the right fingerprint: still intact.
        let s2 = FitnessStore::open(&path, FP, &Tracer::disabled());
        assert_eq!(s2.health(), StoreHealth::Intact);
        assert_eq!(s2.lookup("(add x 1.0)", 0), Some(1.25));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_header_restarts_fresh() {
        let path = temp("tornheader");
        std::fs::write(&path, &STORE_MAGIC.as_bytes()[..10]).unwrap();
        let s = FitnessStore::open(&path, FP, &Tracer::disabled());
        assert_eq!(s.health(), StoreHealth::Recovered);
        s.append("(add x 1.0)", 0, 1.5);
        drop(s);
        let s2 = FitnessStore::open(&path, FP, &Tracer::disabled());
        assert_eq!(s2.health(), StoreHealth::Intact);
        assert_eq!(s2.lookup("(add x 1.0)", 0), Some(1.5));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unreadable_path_degrades() {
        let path = PathBuf::from("/nonexistent-dir/metaopt-cache.bin");
        let tracer = Tracer::in_memory();
        let s = FitnessStore::open(&path, FP, &tracer);
        assert_eq!(s.health(), StoreHealth::Degraded);
        s.append("(add x 1.0)", 0, 1.0); // must not panic
        assert!(tracer
            .lines()
            .unwrap()
            .iter()
            .any(|l| l.contains("\"mode\":\"degraded\"")));
    }

    #[test]
    fn corrupt_hook_produces_a_recoverable_tail() {
        let path = temp("hooked");
        let hooked = FitnessStore::open(&path, FP, &Tracer::disabled())
            .with_corrupt_hook(Arc::new(|key: &str, _case: usize| key.contains("mul")));
        hooked.append("(add x 1.0)", 0, 1.25);
        hooked.append("(mul x x)", 0, 2.0); // corrupted checksum
        hooked.append("(add x 2.0)", 0, 3.0); // after the corrupt record
        drop(hooked);
        let s = FitnessStore::open(&path, FP, &Tracer::disabled());
        // Drop-the-tail: the corrupt record and everything after it go.
        assert_eq!(s.health(), StoreHealth::Recovered);
        assert_eq!(s.lookup("(add x 1.0)", 0), Some(1.25));
        assert_eq!(s.lookup("(mul x x)", 0), None);
        assert_eq!(s.lookup("(add x 2.0)", 0), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_records_take_the_last_value() {
        let path = temp("dups");
        let s = FitnessStore::open(&path, FP, &Tracer::disabled());
        s.append("(add x 1.0)", 0, 1.0);
        s.append("(add x 1.0)", 0, 2.0);
        drop(s);
        let s2 = FitnessStore::open(&path, FP, &Tracer::disabled());
        assert_eq!(s2.entries(), 1);
        assert_eq!(s2.lookup("(add x 1.0)", 0), Some(2.0));
        let _ = std::fs::remove_file(&path);
    }
}
