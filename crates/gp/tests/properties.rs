//! Property-based tests of the GP genome machinery.

use metaopt_gp::expr::{node_info, subtree, with_replaced, Env, Expr};
use metaopt_gp::gen::random_expr;
use metaopt_gp::ops::{crossover, mutate};
use metaopt_gp::parse::parse_expr;
use metaopt_gp::{FeatureSet, Kind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn features() -> FeatureSet {
    let mut fs = FeatureSet::new();
    fs.add_real("alpha");
    fs.add_real("beta");
    fs.add_real("gamma");
    fs.add_bool("flag");
    fs.add_bool("other");
    fs
}

/// Random genomes via the library's own generator, driven by a proptest
/// seed — gives shrinkable coverage over the full primitive set.
fn arb_expr(kind: Kind) -> impl Strategy<Value = Expr> {
    (any::<u64>(), 1usize..8).prop_map(move |(seed, depth)| {
        let fs = features();
        let mut rng = StdRng::seed_from_u64(seed);
        random_expr(&mut rng, &fs, kind, 1, depth)
    })
}

proptest! {
    #[test]
    fn print_parse_round_trip_real(e in arb_expr(Kind::Real)) {
        let fs = features();
        let printed = e.to_string();
        let back = parse_expr(&printed, &fs).expect("printer output parses");
        prop_assert_eq!(back.to_string(), printed);
    }

    #[test]
    fn print_parse_round_trip_bool(e in arb_expr(Kind::Bool)) {
        let fs = features();
        let printed = e.to_string();
        let back = parse_expr(&printed, &fs).expect("printer output parses");
        prop_assert_eq!(back.to_string(), printed);
    }

    #[test]
    fn evaluation_is_total_and_finite(
        e in arb_expr(Kind::Real),
        reals in proptest::collection::vec(-1e12f64..1e12, 3),
        bools in proptest::collection::vec(any::<bool>(), 2),
    ) {
        let v = e.eval_real(&Env { reals: &reals, bools: &bools });
        prop_assert!(v.is_finite(), "{e} -> {v}");
    }

    #[test]
    fn node_addressing_is_consistent(e in arb_expr(Kind::Real)) {
        let info = node_info(&e);
        prop_assert_eq!(info.len(), e.size());
        for (ix, (kind, _)) in info.iter().enumerate() {
            let sub = subtree(&e, ix).expect("index in range");
            prop_assert_eq!(sub.kind(), *kind);
            // Self-replacement is the identity.
            let back = with_replaced(&e, ix, &sub).expect("kind matches");
            prop_assert_eq!(&back, &e);
        }
        prop_assert!(subtree(&e, info.len()).is_none());
    }

    #[test]
    fn crossover_respects_sort_and_depth(
        a in arb_expr(Kind::Real),
        b in arb_expr(Kind::Real),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let child = crossover(&mut rng, &a, &b, 12);
        prop_assert_eq!(child.kind(), Kind::Real);
        prop_assert!(child.depth() <= 12);
    }

    #[test]
    fn mutation_respects_sort_and_depth(e in arb_expr(Kind::Bool), seed in any::<u64>()) {
        let fs = features();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = mutate(&mut rng, &e, &fs, 12);
        prop_assert_eq!(m.kind(), Kind::Bool);
        prop_assert!(m.depth() <= 12);
    }

    #[test]
    fn key_is_injective_on_structure(a in arb_expr(Kind::Real), b in arb_expr(Kind::Real)) {
        // Equal keys imply equal trees (memoization soundness).
        if a.key() == b.key() {
            prop_assert_eq!(a, b);
        }
    }
}

mod quarantine {
    use super::*;
    use metaopt_gp::{
        EvalError, EvalErrorKind, EvalOutcome, Evaluator, Evolution, GpParams, PENALTY_FITNESS,
    };

    pub(crate) fn fnv(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h
    }

    /// Deterministic evaluator whose genome space fails at a configurable
    /// percentage: a `(genome, case)` pair fails iff its hash lands under
    /// the threshold, and otherwise scores a hash-derived pseudo-fitness.
    pub(crate) struct SometimesFails {
        /// Failure percentage, 0–100.
        pub(crate) threshold: u64,
    }

    impl Evaluator for SometimesFails {
        fn num_cases(&self) -> usize {
            3
        }

        fn eval_case(&self, expr: &Expr, case: usize) -> EvalOutcome {
            let h = fnv(&format!("{}#{case}", expr.key()));
            if h % 100 < self.threshold {
                return EvalOutcome::Failed(EvalError::new(
                    EvalErrorKind::Sim,
                    format!("synthetic fault on case {case}"),
                ));
            }
            EvalOutcome::Score(1.0 + ((h / 100) % 1000) as f64 / 1000.0)
        }
    }

    proptest! {
        // Each case runs a whole (small, cheap) evolution; keep the count
        // modest so the suite stays fast.
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// At any failure rate, the engine's accounting identity holds, the
        /// quarantine ledger records exactly the distinct failed pairs, and
        /// no quarantined genome ever wins through elitism.
        #[test]
        fn quarantine_accounting_holds_at_any_failure_rate(
            threshold_pct in 0usize..=60,
            seed in any::<u64>(),
        ) {
            let fs = features();
            let params = GpParams {
                population: 16,
                generations: 3,
                seed,
                threads: 2,
                ..GpParams::quick()
            };
            let threshold = threshold_pct as u64;
            let eval = SometimesFails { threshold };
            let r = Evolution::new(params, &fs, &eval).run();

            prop_assert_eq!(r.evaluations, r.successes + r.failures);
            prop_assert_eq!(r.quarantined.len() as u64, r.failures);
            let mut seen = std::collections::HashSet::new();
            for rec in &r.quarantined {
                prop_assert!(
                    seen.insert((rec.genome.clone(), rec.case)),
                    "ledger must not repeat a (genome, case) pair: {}", rec
                );
                // Every record reproduces: the evaluator really does fail
                // that pair, with the recorded error class.
                let h = fnv(&format!("{}#{}", rec.genome, rec.case));
                prop_assert!(h % 100 < threshold, "ledger record not reproducible: {}", rec);
                prop_assert_eq!(rec.error.kind, EvalErrorKind::Sim);
            }
            // A genome with any quarantined case carries the penalty
            // fitness, so it can only "win" when the whole population is
            // quarantined.
            if r.best_fitness > PENALTY_FITNESS {
                let best = r.best.key();
                prop_assert!(
                    !r.quarantined.iter().any(|rec| rec.genome == best),
                    "quarantined genome won with fitness {}", r.best_fitness
                );
            }
        }
    }
}

mod determinism {
    use super::quarantine::{fnv, SometimesFails};
    use super::*;
    use metaopt_gp::{EvalError, EvalErrorKind, EvalOutcome, Evaluator, Evolution, GpParams};
    use metaopt_trace::metrics::MetricsRegistry;
    use metaopt_trace::{strip_timing, Tracer};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// The metrics-snapshot stream of a finished run with timing and the
    /// schedule-dependent `runtime` registry dump stripped — everything
    /// that is *supposed* to be deterministic.
    fn stripped_snapshots(tracer: &Tracer) -> Vec<String> {
        tracer
            .lines()
            .unwrap()
            .iter()
            .filter(|l| l.contains("\"metrics-snapshot\""))
            .map(|l| strip_timing(l).unwrap())
            .collect()
    }

    /// A metrics tracer for one run: in-memory sink plus a fresh registry.
    fn metrics_tracer() -> Tracer {
        Tracer::in_memory().with_metrics(MetricsRegistry::new())
    }

    /// [`SometimesFails`] plus a transient layer: a hash-selected slice of
    /// `(genome, case)` pairs times out on early attempts and clears after
    /// one or two retries — exercising the retry loop, while the permanent
    /// `Sim` failures underneath keep exercising quarantine.
    struct FlakyTimeouts {
        permanent: SometimesFails,
        /// Percentage of pairs that are transiently flaky, 0–100.
        transient: u64,
    }

    impl Evaluator for FlakyTimeouts {
        fn num_cases(&self) -> usize {
            self.permanent.num_cases()
        }

        fn eval_case(&self, expr: &Expr, case: usize) -> EvalOutcome {
            self.eval_case_attempt(expr, case, 0)
        }

        fn eval_case_attempt(&self, expr: &Expr, case: usize, attempt: u32) -> EvalOutcome {
            let h = fnv(&format!("{}#{case}#t", expr.key()));
            if h % 100 < self.transient {
                // Clears at attempt 1 or 2 — always within the default
                // retry budget, so no timeout ever reaches the ledger.
                let clears_at = 1 + (h / 100) % 2;
                if u64::from(attempt) < clears_at {
                    return EvalOutcome::Failed(EvalError::new(
                        EvalErrorKind::Timeout,
                        format!("transient timeout on case {case} attempt {attempt}"),
                    ));
                }
            }
            self.permanent.eval_case(expr, case)
        }
    }

    proptest! {
        // Full-run determinism is the expensive property here: each case is
        // 2 × (a small evolution), so keep the case count modest.
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// `Evolution::evaluate_all` (and everything downstream of it) is
        /// thread-schedule independent: a run at `threads = 1` and the same
        /// run at `threads = N` produce the identical per-generation fitness
        /// telemetry, the identical winner, the identical quarantine ledger,
        /// and the identical memo counters — across random seeds, population
        /// sizes, and failure rates.
        #[test]
        fn evaluation_is_identical_across_thread_counts(
            seed in any::<u64>(),
            population in 8usize..=32,
            threads in 2usize..=8,
            threshold_pct in 0usize..=40,
        ) {
            let fs = features();
            let eval = SometimesFails { threshold: threshold_pct as u64 };
            let params = |threads| GpParams {
                population,
                generations: 4,
                subset_size: Some(2),
                seed,
                threads,
                ..GpParams::quick()
            };
            let serial_tracer = metrics_tracer();
            let threaded_tracer = metrics_tracer();
            let serial = Evolution::new(params(1), &fs, &eval)
                .with_tracer(serial_tracer.clone())
                .run();
            let threaded = Evolution::new(params(threads), &fs, &eval)
                .with_tracer(threaded_tracer.clone())
                .run();

            // Per-generation fitness vectors (best/mean are reductions of
            // the full population fitness vector) and DSS subsets.
            prop_assert_eq!(&serial.log, &threaded.log);
            // Final full-set judgement.
            prop_assert_eq!(serial.best.key(), threaded.best.key());
            prop_assert_eq!(serial.best_fitness, threaded.best_fitness);
            // The final ledger: same records, same (sorted) order.
            prop_assert_eq!(serial.quarantined.len(), threaded.quarantined.len());
            for (a, b) in serial.quarantined.iter().zip(&threaded.quarantined) {
                prop_assert_eq!(&a.genome, &b.genome);
                prop_assert_eq!(a.case, b.case);
                prop_assert_eq!(a.error.kind, b.error.kind);
            }
            // Memo accounting, including cache hits (the entry-guard makes
            // the set of evaluated pairs schedule-independent).
            prop_assert_eq!(serial.evaluations, threaded.evaluations);
            prop_assert_eq!(serial.successes, threaded.successes);
            prop_assert_eq!(serial.failures, threaded.failures);
            prop_assert_eq!(serial.cache_hits, threaded.cache_hits);
            // The stripped metrics-snapshot stream (one per generation plus
            // the final full-set snapshot) is schedule-independent too.
            let serial_snaps = stripped_snapshots(&serial_tracer);
            prop_assert_eq!(serial_snaps.len(), 5, "4 generations + final");
            prop_assert_eq!(serial_snaps, stripped_snapshots(&threaded_tracer));
        }

        /// The same property with the whole reliability stack engaged:
        /// transient timeouts retried under the supervised service, and a
        /// persistent fitness cache feeding a warm rerun. Serial, threaded
        /// cold-cache, and threaded warm-cache runs must all agree on every
        /// observable except the warm-hit counter.
        #[test]
        fn retried_and_cached_runs_are_identical_across_thread_counts(
            seed in any::<u64>(),
            population in 8usize..=24,
            threads in 2usize..=6,
            threshold_pct in 0usize..=30,
            transient_pct in 1usize..=40,
        ) {
            static UNIQ: AtomicU64 = AtomicU64::new(0);
            let cache = std::env::temp_dir().join(format!(
                "metaopt-prop-cache-{}-{}.bin",
                std::process::id(),
                UNIQ.fetch_add(1, Ordering::Relaxed),
            ));
            let _ = std::fs::remove_file(&cache);

            let fs = features();
            let eval = FlakyTimeouts {
                permanent: SometimesFails { threshold: threshold_pct as u64 },
                transient: transient_pct as u64,
            };
            let params = |threads| GpParams {
                population,
                generations: 3,
                subset_size: Some(2),
                seed,
                threads,
                retries: 2,
                ..GpParams::quick()
            };
            let serial_tracer = metrics_tracer();
            let cold_tracer = metrics_tracer();
            let warm_tracer = metrics_tracer();
            let serial = Evolution::new(params(1), &fs, &eval)
                .with_tracer(serial_tracer.clone())
                .run();
            let cold = Evolution::new(params(threads), &fs, &eval)
                .with_eval_cache(&cache)
                .with_tracer(cold_tracer.clone())
                .run();
            let warm = Evolution::new(params(threads), &fs, &eval)
                .with_eval_cache(&cache)
                .with_tracer(warm_tracer.clone())
                .run();
            let _ = std::fs::remove_file(&cache);

            // Transient timeouts always clear within the retry budget, so
            // the ledger holds only the permanent failures.
            for rec in &serial.quarantined {
                prop_assert_eq!(rec.error.kind, EvalErrorKind::Sim);
            }
            for (label, other) in [("cold", &cold), ("warm", &warm)] {
                prop_assert_eq!(&serial.log, &other.log, "{} log", label);
                prop_assert_eq!(serial.best.key(), other.best.key(), "{} best", label);
                prop_assert_eq!(serial.best_fitness, other.best_fitness, "{}", label);
                prop_assert_eq!(serial.evaluations, other.evaluations, "{}", label);
                prop_assert_eq!(serial.successes, other.successes, "{}", label);
                prop_assert_eq!(serial.failures, other.failures, "{}", label);
                prop_assert_eq!(serial.cache_hits, other.cache_hits, "{}", label);
                prop_assert_eq!(serial.quarantined.len(), other.quarantined.len(), "{}", label);
            }
            // The store answers every previously successful evaluation.
            prop_assert_eq!(cold.warm_hits, 0);
            prop_assert_eq!(warm.warm_hits, cold.successes);
            // Snapshot streams agree too; the warm run's snapshots differ
            // only in the warm_hits counter, which is the cache's job.
            let serial_snaps = stripped_snapshots(&serial_tracer);
            prop_assert_eq!(&serial_snaps, &stripped_snapshots(&cold_tracer));
            let neutral = |snaps: Vec<String>| -> Vec<String> {
                snaps.into_iter().map(|line| {
                    let key = "\"warm_hits\":";
                    let Some(ix) = line.find(key) else { return line };
                    let start = ix + key.len();
                    let end = line[start..]
                        .find(|c: char| !c.is_ascii_digit())
                        .map_or(line.len(), |d| start + d);
                    format!("{}0{}", &line[..start], &line[end..])
                }).collect()
            };
            prop_assert_eq!(
                neutral(serial_snaps),
                neutral(stripped_snapshots(&warm_tracer))
            );
        }
    }
}
