//! Property-based tests of the GP genome machinery.

use metaopt_gp::expr::{node_info, subtree, with_replaced, Env, Expr};
use metaopt_gp::gen::random_expr;
use metaopt_gp::ops::{crossover, mutate};
use metaopt_gp::parse::parse_expr;
use metaopt_gp::{FeatureSet, Kind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn features() -> FeatureSet {
    let mut fs = FeatureSet::new();
    fs.add_real("alpha");
    fs.add_real("beta");
    fs.add_real("gamma");
    fs.add_bool("flag");
    fs.add_bool("other");
    fs
}

/// Random genomes via the library's own generator, driven by a proptest
/// seed — gives shrinkable coverage over the full primitive set.
fn arb_expr(kind: Kind) -> impl Strategy<Value = Expr> {
    (any::<u64>(), 1usize..8).prop_map(move |(seed, depth)| {
        let fs = features();
        let mut rng = StdRng::seed_from_u64(seed);
        random_expr(&mut rng, &fs, kind, 1, depth)
    })
}

proptest! {
    #[test]
    fn print_parse_round_trip_real(e in arb_expr(Kind::Real)) {
        let fs = features();
        let printed = e.to_string();
        let back = parse_expr(&printed, &fs).expect("printer output parses");
        prop_assert_eq!(back.to_string(), printed);
    }

    #[test]
    fn print_parse_round_trip_bool(e in arb_expr(Kind::Bool)) {
        let fs = features();
        let printed = e.to_string();
        let back = parse_expr(&printed, &fs).expect("printer output parses");
        prop_assert_eq!(back.to_string(), printed);
    }

    #[test]
    fn evaluation_is_total_and_finite(
        e in arb_expr(Kind::Real),
        reals in proptest::collection::vec(-1e12f64..1e12, 3),
        bools in proptest::collection::vec(any::<bool>(), 2),
    ) {
        let v = e.eval_real(&Env { reals: &reals, bools: &bools });
        prop_assert!(v.is_finite(), "{e} -> {v}");
    }

    #[test]
    fn node_addressing_is_consistent(e in arb_expr(Kind::Real)) {
        let info = node_info(&e);
        prop_assert_eq!(info.len(), e.size());
        for (ix, (kind, _)) in info.iter().enumerate() {
            let sub = subtree(&e, ix).expect("index in range");
            prop_assert_eq!(sub.kind(), *kind);
            // Self-replacement is the identity.
            let back = with_replaced(&e, ix, &sub).expect("kind matches");
            prop_assert_eq!(&back, &e);
        }
        prop_assert!(subtree(&e, info.len()).is_none());
    }

    #[test]
    fn crossover_respects_sort_and_depth(
        a in arb_expr(Kind::Real),
        b in arb_expr(Kind::Real),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let child = crossover(&mut rng, &a, &b, 12);
        prop_assert_eq!(child.kind(), Kind::Real);
        prop_assert!(child.depth() <= 12);
    }

    #[test]
    fn mutation_respects_sort_and_depth(e in arb_expr(Kind::Bool), seed in any::<u64>()) {
        let fs = features();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = mutate(&mut rng, &e, &fs, 12);
        prop_assert_eq!(m.kind(), Kind::Bool);
        prop_assert!(m.depth() <= 12);
    }

    #[test]
    fn key_is_injective_on_structure(a in arb_expr(Kind::Real), b in arb_expr(Kind::Real)) {
        // Equal keys imply equal trees (memoization soundness).
        if a.key() == b.key() {
            prop_assert_eq!(a, b);
        }
    }
}
