//! Checkpoint/trace interplay: a resumed run's trace continues the killed
//! run's generation numbering, and memoization guarantees a trace never
//! re-emits an `eval` span for a cached `(genome, case)` pair.

use metaopt_gp::{
    Checkpoint, EvalError, EvalErrorKind, EvalOutcome, Evaluator, Evolution, Expr, FeatureSet,
    GpParams,
};
use metaopt_trace::json::{self, Value};
use metaopt_trace::{schema, Tracer};

fn features() -> FeatureSet {
    let mut fs = FeatureSet::new();
    fs.add_real("alpha");
    fs.add_real("beta");
    fs.add_bool("flag");
    fs
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Deterministic hash-driven evaluator with a ~10 % failure slice, so the
/// resumed trace carries both scored and quarantined eval events.
struct Hashed;

impl Evaluator for Hashed {
    fn num_cases(&self) -> usize {
        4
    }

    fn eval_case(&self, expr: &Expr, case: usize) -> EvalOutcome {
        let h = fnv(&format!("{}#{case}", expr.key()));
        if h % 100 < 10 {
            return EvalOutcome::Failed(EvalError::new(
                EvalErrorKind::Sim,
                format!("synthetic fault on case {case}"),
            ));
        }
        EvalOutcome::Score(1.0 + ((h / 100) % 1000) as f64 / 1000.0)
    }
}

fn parsed(lines: &[String]) -> Vec<Value> {
    lines.iter().map(|l| json::parse(l).unwrap()).collect()
}

fn events_of<'a>(events: &'a [Value], ty: &str) -> Vec<&'a Value> {
    events
        .iter()
        .filter(|v| v.get("type").and_then(Value::as_str) == Some(ty))
        .collect()
}

/// Every `eval` span in a single trace is for a distinct `(genome, case)`
/// pair: cached lookups must not re-emit.
fn assert_no_duplicate_eval_spans(events: &[Value]) {
    let mut seen = std::collections::HashSet::new();
    for e in events_of(events, "eval") {
        let genome = e.get("genome").unwrap().as_str().unwrap().to_string();
        let case = e.get("case").unwrap().as_u64().unwrap();
        assert!(
            seen.insert((genome.clone(), case)),
            "eval span re-emitted for cached pair ({genome}, {case})"
        );
    }
}

#[test]
fn resumed_trace_continues_numbering_and_never_replays_cached_evals() {
    let fs = features();
    let ev = Hashed;
    let mut short = GpParams::quick();
    short.generations = 3;
    short.population = 16;
    short.seed = 42;
    short.threads = 2;
    short.subset_size = Some(2);
    let mut full = short.clone();
    full.generations = 7;

    let dir = std::env::temp_dir().join(format!("metaopt-gp-trace-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("checkpoint.txt");

    // Phase 1: the "killed" run — 3 of 7 generations, its own trace.
    let killed_tracer = Tracer::in_memory();
    Evolution::new(short, &fs, &ev)
        .with_tracer(killed_tracer.clone())
        .with_checkpoint_file(&path)
        .try_run()
        .unwrap();
    let killed_lines = killed_tracer.lines().unwrap();
    schema::validate_trace(&killed_lines.join("\n")).unwrap();
    let killed = parsed(&killed_lines);
    let killed_gens: Vec<u64> = events_of(&killed, "generation")
        .iter()
        .map(|e| e.get("gen").unwrap().as_u64().unwrap())
        .collect();
    assert_eq!(killed_gens, vec![0, 1, 2]);
    assert_no_duplicate_eval_spans(&killed);

    // Phase 2: resume from the checkpoint with the full horizon and a fresh
    // trace sink.
    let ck = Checkpoint::load(&path).unwrap();
    let resume_point = ck.next_generation as u64;
    let prior_evaluations = ck.evaluations;
    // Checkpoints land at every generation boundary except the final one,
    // so a 3-generation run's last snapshot resumes at generation 2.
    assert_eq!(resume_point, 2);
    let resumed_tracer = Tracer::in_memory();
    let resumed = Evolution::new(full, &fs, &ev)
        .with_tracer(resumed_tracer.clone())
        .with_checkpoint_file(&path)
        .resume_from(ck)
        .try_run()
        .unwrap();
    let lines = resumed_tracer.lines().unwrap();
    schema::validate_trace(&lines.join("\n")).unwrap();
    let events = parsed(&lines);

    // The evolution-start event declares the resume and its starting point.
    let starts = events_of(&events, "evolution-start");
    assert_eq!(starts.len(), 1);
    assert_eq!(starts[0].get("resumed"), Some(&Value::Bool(true)));
    assert_eq!(
        starts[0].get("start_gen").unwrap().as_u64().unwrap(),
        resume_point
    );

    // Generation numbering continues where the killed run stopped — no
    // replayed generations 0..3, no gaps.
    let gens: Vec<u64> = events_of(&events, "generation")
        .iter()
        .map(|e| e.get("gen").unwrap().as_u64().unwrap())
        .collect();
    assert_eq!(gens, vec![2, 3, 4, 5, 6]);

    // Checkpoints keep landing at generation boundaries after the resume
    // (a checkpoint's `gen` names the generation the snapshot resumes at).
    let ck_gens: Vec<u64> = events_of(&events, "checkpoint")
        .iter()
        .map(|e| e.get("gen").unwrap().as_u64().unwrap())
        .collect();
    assert_eq!(ck_gens, vec![3, 4, 5, 6]);

    // Cached `(genome, case)` evals never re-emit a span: every eval event
    // is distinct, and the span count equals the resumed run's own uncached
    // evaluations (the counters carried over from the checkpoint produced
    // no spans in this trace).
    assert_no_duplicate_eval_spans(&events);
    let resumed_evals = events_of(&events, "eval").len() as u64;
    assert_eq!(resumed_evals, resumed.evaluations - prior_evaluations);
    assert_eq!(resumed.evaluations, resumed.successes + resumed.failures);

    std::fs::remove_file(&path).ok();
}
