//! Centralized execution-budget constants.
//!
//! Every bound on dynamic work — interpreter steps, simulator instructions —
//! lives here so the budgets the GP evaluation loop relies on cannot drift
//! apart (the seed repository carried a 500 M interpreter default, a 100 M
//! limit in the fitness pipeline, and a 20 M limit in the suite tests, with
//! no recorded relationship between them).
//!
//! # Rationale
//!
//! The ladder is anchored by [`KERNEL_STEP_CEILING`]: the benchmark suite's
//! own tests assert that every bundled kernel finishes in fewer interpreter
//! steps than this on both data sets, so the suite is the load-bearing proof
//! for every budget above it.
//!
//! * [`KERNEL_STEP_CEILING`] — 10 M: contract ceiling for bundled kernels
//!   (asserted by `metaopt-suite` tests; a kernel near it should be shrunk).
//! * [`KERNEL_VERIFY_MAX_STEPS`] — 20 M: 2× headroom over the ceiling, used
//!   wherever a *trusted* kernel is interpreted (suite self-tests, benchmark
//!   preparation, ground-truth runs). Exceeding it means the kernel or the
//!   interpreter regressed, not that the input was unlucky.
//! * [`EVAL_MAX_SIM_INSTS`] — 60 M: per-evaluation dynamic-instruction
//!   budget for simulating code compiled with a *genome-supplied* priority
//!   function. Evolved heuristics cannot change semantics (every pass is
//!   verified), but aggressive if-conversion can multiply nullified issue
//!   slots, so the budget is 6× the kernel ceiling; a genome that still
//!   exceeds it is quarantined with a budget fault instead of aborting the
//!   search.
//! * [`DEFAULT_MAX_STEPS`] — 500 M: generic backstop for *arbitrary*
//!   programs (REPL-style use, tests that build their own IR). Large enough
//!   to never interfere, small enough that an accidental infinite loop
//!   terminates. The interpreter's `RunConfig::default()` and the
//!   simulator's `MachineConfig` defaults both point here.
//!
//! Callers that want tighter bounds (unit tests of the step limiter itself)
//! still set explicit values; everything benchmark-shaped goes through these
//! constants.

/// Contract ceiling for bundled suite kernels: every benchmark must finish
/// under this many interpreter steps on both data sets (asserted by the
/// suite's tests).
pub const KERNEL_STEP_CEILING: u64 = 10_000_000;

/// Interpreter budget for trusted kernel runs: 2× [`KERNEL_STEP_CEILING`].
pub const KERNEL_VERIFY_MAX_STEPS: u64 = 2 * KERNEL_STEP_CEILING;

/// Per-evaluation simulator instruction budget for genome-compiled code:
/// 6× [`KERNEL_STEP_CEILING`] (predication can only multiply issue slots so
/// far; beyond this the genome is pathological and gets quarantined).
pub const EVAL_MAX_SIM_INSTS: u64 = 6 * KERNEL_STEP_CEILING;

/// Per-evaluation simulated-*cycle* budget for genome-compiled code: the
/// cooperative deadline the evaluation service relies on as its primary
/// hang bound. The instruction budget caps how much *work* a simulation
/// retires, but a low-IPC schedule (serialized stalls, saturated memory
/// queues) can burn many cycles per instruction; 4× the instruction budget
/// covers every legitimate kernel with an order of magnitude to spare
/// (suite kernels finish in well under 100 M cycles) while still bounding
/// the pathological case deterministically — the simulator checks it every
/// bundle and returns a budget fault instead of relying on a wall clock.
pub const EVAL_MAX_SIM_CYCLES: u64 = 4 * EVAL_MAX_SIM_INSTS;

/// Generic backstop for arbitrary (non-suite) programs; the interpreter and
/// simulator defaults.
pub const DEFAULT_MAX_STEPS: u64 = 500_000_000;

// The ladder ordering is part of the contract; break the build, not a test
// run, if an edit reorders it.
const _: () = {
    assert!(KERNEL_STEP_CEILING < KERNEL_VERIFY_MAX_STEPS);
    assert!(KERNEL_VERIFY_MAX_STEPS < EVAL_MAX_SIM_INSTS);
    assert!(EVAL_MAX_SIM_INSTS < EVAL_MAX_SIM_CYCLES);
    assert!(EVAL_MAX_SIM_CYCLES < DEFAULT_MAX_STEPS);
};
