//! Ergonomic construction of IR functions.
//!
//! [`FunctionBuilder`] keeps a current insertion block and offers one method
//! per opcode, allocating destination registers automatically. The
//! `metaopt-lang` frontend lowers MiniC through this interface, and tests
//! use it to build CFGs by hand.

use crate::inst::{Inst, Opcode, Width};
use crate::program::{Block, Function};
use crate::types::{BlockId, RegClass, VReg};

/// Incremental builder for a [`Function`].
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    cur: BlockId,
}

impl FunctionBuilder {
    /// Start building a function with the given name; the insertion point is
    /// the entry block.
    pub fn new(name: impl Into<String>) -> Self {
        let func = Function::new(name);
        let cur = func.entry;
        FunctionBuilder { func, cur }
    }

    /// Declare a parameter of the given class.
    pub fn param(&mut self, class: RegClass) -> VReg {
        let r = self.func.new_vreg(class);
        self.func.params.push(r);
        r
    }

    /// Allocate a fresh virtual register.
    pub fn new_vreg(&mut self, class: RegClass) -> VReg {
        self.func.new_vreg(class)
    }

    /// Create a new (empty, unconnected) block.
    pub fn new_block(&mut self) -> BlockId {
        self.func.new_block()
    }

    /// Move the insertion point.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// The current insertion block.
    pub fn current(&self) -> BlockId {
        self.cur
    }

    /// Append a raw instruction at the insertion point.
    pub fn push(&mut self, inst: Inst) {
        self.func.blocks[self.cur.index()].insts.push(inst);
    }

    /// Access the block being built.
    pub fn current_block(&self) -> &Block {
        self.func.block(self.cur)
    }

    /// Finish and return the function.
    pub fn finish(self) -> Function {
        self.func
    }

    fn emit(&mut self, op: Opcode, args: &[VReg]) -> VReg {
        let class = op.dst_class().expect("emit used with non-defining opcode");
        let d = self.func.new_vreg(class);
        self.push(Inst::new(op).dst(d).args(args));
        d
    }

    fn emit_imm(&mut self, op: Opcode, args: &[VReg], imm: i64) -> VReg {
        let class = op
            .dst_class()
            .expect("emit_imm used with non-defining opcode");
        let d = self.func.new_vreg(class);
        self.push(Inst::new(op).dst(d).args(args).imm(imm));
        d
    }

    // ---- integer ----

    /// `a + b`
    pub fn add(&mut self, a: VReg, b: VReg) -> VReg {
        self.emit(Opcode::Add, &[a, b])
    }
    /// `a - b`
    pub fn sub(&mut self, a: VReg, b: VReg) -> VReg {
        self.emit(Opcode::Sub, &[a, b])
    }
    /// `a * b`
    pub fn mul(&mut self, a: VReg, b: VReg) -> VReg {
        self.emit(Opcode::Mul, &[a, b])
    }
    /// `a / b`
    pub fn div(&mut self, a: VReg, b: VReg) -> VReg {
        self.emit(Opcode::Div, &[a, b])
    }
    /// `a % b`
    pub fn rem(&mut self, a: VReg, b: VReg) -> VReg {
        self.emit(Opcode::Rem, &[a, b])
    }
    /// `a & b`
    pub fn and(&mut self, a: VReg, b: VReg) -> VReg {
        self.emit(Opcode::And, &[a, b])
    }
    /// `a | b`
    pub fn or(&mut self, a: VReg, b: VReg) -> VReg {
        self.emit(Opcode::Or, &[a, b])
    }
    /// `a ^ b`
    pub fn xor(&mut self, a: VReg, b: VReg) -> VReg {
        self.emit(Opcode::Xor, &[a, b])
    }
    /// `a << b`
    pub fn shl(&mut self, a: VReg, b: VReg) -> VReg {
        self.emit(Opcode::Shl, &[a, b])
    }
    /// `a >> b`
    pub fn shr(&mut self, a: VReg, b: VReg) -> VReg {
        self.emit(Opcode::Shr, &[a, b])
    }
    /// `a + imm`
    pub fn addi(&mut self, a: VReg, imm: i64) -> VReg {
        self.emit_imm(Opcode::AddI, &[a], imm)
    }
    /// `a * imm`
    pub fn muli(&mut self, a: VReg, imm: i64) -> VReg {
        self.emit_imm(Opcode::MulI, &[a], imm)
    }
    /// integer constant
    pub fn movi(&mut self, imm: i64) -> VReg {
        self.emit_imm(Opcode::MovI, &[], imm)
    }
    /// register copy
    pub fn mov(&mut self, a: VReg) -> VReg {
        self.emit(Opcode::Mov, &[a])
    }
    /// `if p { a } else { b }`
    pub fn sel(&mut self, p: VReg, a: VReg, b: VReg) -> VReg {
        self.emit(Opcode::Sel, &[p, a, b])
    }

    // ---- comparisons ----

    /// `a == b`
    pub fn cmp_eq(&mut self, a: VReg, b: VReg) -> VReg {
        self.emit(Opcode::CmpEq, &[a, b])
    }
    /// `a != b`
    pub fn cmp_ne(&mut self, a: VReg, b: VReg) -> VReg {
        self.emit(Opcode::CmpNe, &[a, b])
    }
    /// `a < b`
    pub fn cmp_lt(&mut self, a: VReg, b: VReg) -> VReg {
        self.emit(Opcode::CmpLt, &[a, b])
    }
    /// `a <= b`
    pub fn cmp_le(&mut self, a: VReg, b: VReg) -> VReg {
        self.emit(Opcode::CmpLe, &[a, b])
    }
    /// `a < imm`
    pub fn cmp_lti(&mut self, a: VReg, imm: i64) -> VReg {
        self.emit_imm(Opcode::CmpLtI, &[a], imm)
    }
    /// `a == imm`
    pub fn cmp_eqi(&mut self, a: VReg, imm: i64) -> VReg {
        self.emit_imm(Opcode::CmpEqI, &[a], imm)
    }

    // ---- float ----

    /// `a + b`
    pub fn fadd(&mut self, a: VReg, b: VReg) -> VReg {
        self.emit(Opcode::FAdd, &[a, b])
    }
    /// `a - b`
    pub fn fsub(&mut self, a: VReg, b: VReg) -> VReg {
        self.emit(Opcode::FSub, &[a, b])
    }
    /// `a * b`
    pub fn fmul(&mut self, a: VReg, b: VReg) -> VReg {
        self.emit(Opcode::FMul, &[a, b])
    }
    /// `a / b`
    pub fn fdiv(&mut self, a: VReg, b: VReg) -> VReg {
        self.emit(Opcode::FDiv, &[a, b])
    }
    /// float constant
    pub fn fmovi(&mut self, v: f64) -> VReg {
        let d = self.func.new_vreg(RegClass::Float);
        self.push(Inst::new(Opcode::FMovI).dst(d).fimm(v));
        d
    }
    /// int → float
    pub fn i2f(&mut self, a: VReg) -> VReg {
        self.emit(Opcode::I2F, &[a])
    }
    /// float → int
    pub fn f2i(&mut self, a: VReg) -> VReg {
        self.emit(Opcode::F2I, &[a])
    }
    /// `a < b` (float)
    pub fn fcmp_lt(&mut self, a: VReg, b: VReg) -> VReg {
        self.emit(Opcode::FCmpLt, &[a, b])
    }

    // ---- memory ----

    /// 8-byte integer load from `addr + off`.
    pub fn ld8(&mut self, addr: VReg, off: i64) -> VReg {
        self.emit_imm(Opcode::Ld(Width::B8), &[addr], off)
    }
    /// 4-byte integer load from `addr + off`.
    pub fn ld4(&mut self, addr: VReg, off: i64) -> VReg {
        self.emit_imm(Opcode::Ld(Width::B4), &[addr], off)
    }
    /// 1-byte integer load from `addr + off`.
    pub fn ld1(&mut self, addr: VReg, off: i64) -> VReg {
        self.emit_imm(Opcode::Ld(Width::B1), &[addr], off)
    }
    /// 8-byte integer store of `val` to `addr + off`.
    pub fn st8(&mut self, addr: VReg, val: VReg, off: i64) {
        self.push(Inst::new(Opcode::St(Width::B8)).args(&[addr, val]).imm(off));
    }
    /// 4-byte integer store of `val` to `addr + off`.
    pub fn st4(&mut self, addr: VReg, val: VReg, off: i64) {
        self.push(Inst::new(Opcode::St(Width::B4)).args(&[addr, val]).imm(off));
    }
    /// 1-byte integer store of `val` to `addr + off`.
    pub fn st1(&mut self, addr: VReg, val: VReg, off: i64) {
        self.push(Inst::new(Opcode::St(Width::B1)).args(&[addr, val]).imm(off));
    }
    /// Float load from `addr + off`.
    pub fn fld(&mut self, addr: VReg, off: i64) -> VReg {
        self.emit_imm(Opcode::FLd, &[addr], off)
    }
    /// Float store of `val` to `addr + off`.
    pub fn fst(&mut self, addr: VReg, val: VReg, off: i64) {
        self.push(Inst::new(Opcode::FSt).args(&[addr, val]).imm(off));
    }
    /// Prefetch the cache line containing `addr + off`.
    pub fn prefetch(&mut self, addr: VReg, off: i64) {
        self.push(Inst::new(Opcode::Prefetch).args(&[addr]).imm(off));
    }

    // ---- control ----

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.push(Inst::new(Opcode::Br).target(target));
    }
    /// Conditional branch on predicate `p`; falls through when false.
    pub fn cbr(&mut self, p: VReg, target: BlockId) {
        self.push(Inst::new(Opcode::CBr).args(&[p]).target(target));
    }
    /// Two-way branch: to `on_true` if `p`, else to `on_false`.
    pub fn branch(&mut self, p: VReg, on_true: BlockId, on_false: BlockId) {
        self.cbr(p, on_true);
        self.br(on_false);
    }
    /// Return, optionally with a value.
    pub fn ret(&mut self, val: Option<VReg>) {
        let mut i = Inst::new(Opcode::Ret);
        if let Some(v) = val {
            i = i.args(&[v]);
        }
        self.push(i);
    }
    /// Call `callee` (by raw function index) with `args`; returns the result
    /// register.
    pub fn call(&mut self, callee: i64, args: &[VReg]) -> VReg {
        self.emit_imm(Opcode::Call, args, callee)
    }
    /// Opaque side-effecting call (hazard) with scratch-slot selector `site`.
    pub fn unsafe_call(&mut self, site: i64, arg: VReg) -> VReg {
        self.emit_imm(Opcode::UnsafeCall, &[arg], site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RegClass;

    #[test]
    fn builds_straight_line_code() {
        let mut fb = FunctionBuilder::new("f");
        let a = fb.movi(1);
        let b = fb.movi(2);
        let c = fb.add(a, b);
        fb.ret(Some(c));
        let f = fb.finish();
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.block(f.entry).insts.len(), 4);
        assert_eq!(f.class_of(c), RegClass::Int);
    }

    #[test]
    fn builds_diamond_cfg() {
        let mut fb = FunctionBuilder::new("f");
        let x = fb.param(RegClass::Int);
        let t = fb.new_block();
        let e = fb.new_block();
        let j = fb.new_block();
        let p = fb.cmp_lti(x, 0);
        fb.branch(p, t, e);
        fb.switch_to(t);
        fb.br(j);
        fb.switch_to(e);
        fb.br(j);
        fb.switch_to(j);
        fb.ret(None);
        let f = fb.finish();
        assert_eq!(f.successors(f.entry), vec![t, e]);
        assert_eq!(f.successors(t), vec![j]);
        assert_eq!(f.predecessors()[j.index()].len(), 2);
    }

    #[test]
    fn comparison_dst_is_pred_class() {
        let mut fb = FunctionBuilder::new("f");
        let a = fb.movi(1);
        let b = fb.movi(2);
        let p = fb.cmp_lt(a, b);
        fb.ret(None);
        let f = fb.finish();
        assert_eq!(f.class_of(p), RegClass::Pred);
    }
}
