//! A generic worklist dataflow solver over per-block bit-vector facts.
//!
//! Analyses describe themselves through [`Problem`]: a propagation
//! [`Direction`], a confluence [`Join`], a fact-domain size, and a per-block
//! transfer function. The solver walks the CFG with a deduplicating worklist
//! seeded in the direction's natural order (reverse postorder forward,
//! postorder backward), so acyclic regions converge in one sweep and loops in
//! a handful.
//!
//! Most classical analyses are *gen/kill* problems — the transfer function is
//! `out = gen ∪ (in − kill)` — and can be expressed with [`GenKill`] rather
//! than a hand-written [`Problem`] impl. [`crate::liveness`] (backward-may),
//! and the reaching-definitions, def-before-use and available-expressions
//! analyses in the `metaopt-analysis` crate (forward-may / forward-must) are
//! all instances over this solver.

use crate::program::Function;
use crate::util::BitSet;

/// Which way facts propagate along CFG edges.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Facts flow from predecessors into successors (e.g. reaching defs).
    Forward,
    /// Facts flow from successors into predecessors (e.g. liveness).
    Backward,
}

/// Confluence operator applied where CFG paths meet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Join {
    /// Union: the fact holds on *some* path ("may" analyses).
    May,
    /// Intersection: the fact holds on *every* path ("must" analyses).
    Must,
}

/// A dataflow analysis instance over one function's CFG.
pub trait Problem {
    /// Propagation direction.
    fn direction(&self) -> Direction;

    /// Confluence operator.
    fn join(&self) -> Join;

    /// Number of bits in the fact domain (defs, vregs, expressions, ...).
    fn domain_size(&self) -> usize;

    /// Fact at the boundary: function entry for forward problems, every
    /// exit block for backward ones. Defaults to the empty set.
    fn boundary(&self) -> BitSet {
        BitSet::new(self.domain_size())
    }

    /// Transfer function of block `b` (an index into `Function::blocks`),
    /// mapping the fact on the input side to the fact on the output side.
    fn transfer(&self, b: usize, input: &BitSet) -> BitSet;
}

/// Solved per-block facts, named by block side rather than by direction:
/// `entry[b]` always holds at the top of block `b` and `exit[b]` at the
/// bottom, for forward and backward problems alike.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Fact holding on entry to each block.
    pub entry: Vec<BitSet>,
    /// Fact holding on exit from each block.
    pub exit: Vec<BitSet>,
}

/// Run `problem` to fixpoint over `func`'s CFG.
///
/// Facts for blocks unreachable from the entry (or, backward, from which no
/// exit is reachable — they still feed their successors) are computed with
/// the same rules; only the worklist seeding order distinguishes them.
pub fn solve<P: Problem + ?Sized>(func: &Function, problem: &P) -> Solution {
    let nb = func.blocks.len();
    let n = problem.domain_size();
    let dir = problem.direction();
    let join = problem.join();
    let boundary = problem.boundary();
    assert_eq!(boundary.capacity(), n, "boundary fact has wrong capacity");

    // `flows_in[b]` lists blocks whose output-side facts join into `b`'s
    // input side; `flows_out[b]` lists the blocks to re-queue when `b`'s
    // output-side fact changes.
    let preds = func.predecessors();
    let succs: Vec<Vec<usize>> = (0..nb)
        .map(|b| {
            func.blocks[b]
                .successors()
                .into_iter()
                .map(|s| s.index())
                .collect()
        })
        .collect();
    let preds: Vec<Vec<usize>> = preds
        .into_iter()
        .map(|ps| ps.into_iter().map(|p| p.index()).collect())
        .collect();
    let (flows_in, flows_out) = match dir {
        Direction::Forward => (&preds, &succs),
        Direction::Backward => (&succs, &preds),
    };
    // A block sits on the boundary when nothing flows into it: the function
    // entry (forward) or an exit block (backward). Forward entry blocks that
    // *do* have predecessors (loops back to entry) still join the boundary
    // fact in addition to their predecessors' facts.
    let is_boundary = |b: usize| match dir {
        Direction::Forward => b == func.entry.index(),
        Direction::Backward => flows_in[b].is_empty(),
    };

    // Optimistic initialization: may-facts start at ⊥ (empty) and grow to
    // the least fixpoint; must-facts start at ⊤ (full) and shrink to the
    // greatest. Joining in neighbors here would poison must-problems with
    // the not-yet-computed (empty) facts of back-edge sources.
    let mut input = vec![BitSet::new(n); nb];
    let mut output = vec![BitSet::new(n); nb];
    for b in 0..nb {
        input[b] = if is_boundary(b) {
            boundary.clone()
        } else {
            match join {
                Join::May => BitSet::new(n),
                Join::Must => BitSet::full(n),
            }
        };
        output[b] = problem.transfer(b, &input[b]);
    }

    // Seed in the direction's natural order, then append blocks the RPO
    // missed (unreachable ones) so every block gets at least one visit.
    let rpo: Vec<usize> = func.reverse_postorder().iter().map(|b| b.index()).collect();
    let mut order: Vec<usize> = match dir {
        Direction::Forward => rpo,
        Direction::Backward => rpo.into_iter().rev().collect(),
    };
    let mut seen = vec![false; nb];
    for &b in &order {
        seen[b] = true;
    }
    order.extend((0..nb).filter(|&b| !seen[b]));

    let mut worklist: std::collections::VecDeque<usize> = order.into();
    let mut queued = vec![true; nb];
    while let Some(b) = worklist.pop_front() {
        queued[b] = false;
        let inb = join_inputs(b, flows_in, &output, join, &boundary, is_boundary(b), n);
        let outb = problem.transfer(b, &inb);
        input[b] = inb;
        if outb != output[b] {
            output[b] = outb;
            for &d in &flows_out[b] {
                if !queued[d] {
                    queued[d] = true;
                    worklist.push_back(d);
                }
            }
        }
    }

    match dir {
        Direction::Forward => Solution {
            entry: input,
            exit: output,
        },
        Direction::Backward => Solution {
            entry: output,
            exit: input,
        },
    }
}

fn join_inputs(
    b: usize,
    flows_in: &[Vec<usize>],
    output: &[BitSet],
    join: Join,
    boundary: &BitSet,
    at_boundary: bool,
    n: usize,
) -> BitSet {
    let mut acc = if at_boundary {
        boundary.clone()
    } else {
        match join {
            Join::May => BitSet::new(n),
            // Neutral element of intersection; refined by the first edge.
            Join::Must => BitSet::full(n),
        }
    };
    for &src in &flows_in[b] {
        match join {
            Join::May => {
                acc.union_with(&output[src]);
            }
            Join::Must => acc.intersect_with(&output[src]),
        }
    }
    acc
}

/// A gen/kill problem: `transfer(b, in) = gen[b] ∪ (in − kill[b])`.
///
/// Covers the classical bit-vector analyses; build the per-block `gen` and
/// `kill` sets and hand the struct straight to [`solve`].
#[derive(Clone, Debug)]
pub struct GenKill {
    /// Propagation direction.
    pub direction: Direction,
    /// Confluence operator.
    pub join: Join,
    /// Facts generated by each block.
    pub gen: Vec<BitSet>,
    /// Facts invalidated by each block.
    pub kill: Vec<BitSet>,
    /// Fact at the boundary block(s).
    pub boundary: BitSet,
}

impl GenKill {
    /// A problem over `nb` blocks and `n` domain bits with empty gen/kill
    /// sets and an empty boundary fact.
    pub fn new(direction: Direction, join: Join, nb: usize, n: usize) -> Self {
        GenKill {
            direction,
            join,
            gen: vec![BitSet::new(n); nb],
            kill: vec![BitSet::new(n); nb],
            boundary: BitSet::new(n),
        }
    }
}

impl Problem for GenKill {
    fn direction(&self) -> Direction {
        self.direction
    }

    fn join(&self) -> Join {
        self.join
    }

    fn domain_size(&self) -> usize {
        self.boundary.capacity()
    }

    fn boundary(&self) -> BitSet {
        self.boundary.clone()
    }

    fn transfer(&self, b: usize, input: &BitSet) -> BitSet {
        let mut out = input.clone();
        out.subtract(&self.kill[b]);
        out.union_with(&self.gen[b]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::RegClass;

    /// entry → hdr → {body → hdr, exit}: the diamond-free loop every
    /// analysis test here reuses.
    fn loop_cfg() -> Function {
        let mut fb = FunctionBuilder::new("loop");
        let n = fb.param(RegClass::Int);
        let hdr = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        let i = fb.movi(0);
        fb.br(hdr);
        fb.switch_to(hdr);
        let p = fb.cmp_lt(i, n);
        fb.branch(p, body, exit);
        fb.switch_to(body);
        fb.br(hdr);
        fb.switch_to(exit);
        fb.ret(Some(i));
        fb.finish()
    }

    use crate::program::Function;

    #[test]
    fn forward_may_propagates_around_loop() {
        let f = loop_cfg();
        let nb = f.blocks.len();
        // One artificial fact generated in the entry block: it must reach
        // every block, including around the back edge.
        let mut p = GenKill::new(Direction::Forward, Join::May, nb, 1);
        p.gen[f.entry.index()].insert(0);
        let sol = solve(&f, &p);
        for b in 0..nb {
            assert!(sol.exit[b].contains(0), "fact should reach block {b}");
        }
        assert!(!sol.entry[f.entry.index()].contains(0));
    }

    #[test]
    fn forward_must_kills_on_one_path() {
        let f = loop_cfg();
        let nb = f.blocks.len();
        // Fact generated in entry but killed in the loop body: at the header
        // join (entry path ∩ body path) it must die.
        let mut p = GenKill::new(Direction::Forward, Join::Must, nb, 1);
        p.gen[f.entry.index()].insert(0);
        let body = 2usize;
        p.kill[body].insert(0);
        let sol = solve(&f, &p);
        assert!(sol.exit[f.entry.index()].contains(0));
        assert!(
            !sol.entry[1].contains(0),
            "must-fact killed on the back edge survives at the header"
        );
        assert!(!sol.entry[3].contains(0), "exit inherits the killed fact");
    }

    #[test]
    fn backward_may_reaches_loop_entry() {
        let f = loop_cfg();
        let nb = f.blocks.len();
        // A fact used (generated backward) in the exit block flows backward
        // through the header to the function entry.
        let mut p = GenKill::new(Direction::Backward, Join::May, nb, 1);
        p.gen[3].insert(0);
        let sol = solve(&f, &p);
        assert!(sol.entry[f.entry.index()].contains(0));
        assert!(sol.entry[1].contains(0));
        assert!(sol.exit[2].contains(0), "loop body keeps the fact live");
    }

    #[test]
    fn boundary_fact_enters_at_entry_only() {
        let f = loop_cfg();
        let nb = f.blocks.len();
        let mut p = GenKill::new(Direction::Forward, Join::May, nb, 2);
        p.boundary = {
            let mut b = BitSet::new(2);
            b.insert(1);
            b
        };
        let sol = solve(&f, &p);
        assert!(sol.entry[f.entry.index()].contains(1));
        assert!(sol.entry[3].contains(1), "boundary fact flows everywhere");
    }

    #[test]
    fn must_join_over_empty_gen_is_stable() {
        // Degenerate single-block function: in = boundary, out = transfer(in).
        let mut fb = FunctionBuilder::new("one");
        let a = fb.movi(1);
        fb.ret(Some(a));
        let f = fb.finish();
        let p = GenKill::new(Direction::Forward, Join::Must, 1, 4);
        let sol = solve(&f, &p);
        assert!(sol.entry[0].is_empty());
        assert!(sol.exit[0].is_empty());
    }
}
