//! Dominator-tree computation (Cooper–Harvey–Kennedy iterative algorithm).

use crate::program::Function;
use crate::types::BlockId;

/// Dominator tree of a function's CFG.
///
/// Unreachable blocks have no immediate dominator and are reported as not
/// dominated by (and not dominating) anything except themselves.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator per block (`None` for the entry and unreachable
    /// blocks).
    pub idom: Vec<Option<BlockId>>,
    /// Reverse postorder over reachable blocks.
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo` (`usize::MAX` if unreachable).
    pub rpo_pos: Vec<usize>,
}

impl DomTree {
    /// Compute the dominator tree.
    pub fn compute(func: &Function) -> Self {
        let n = func.blocks.len();
        let rpo = func.reverse_postorder();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = i;
        }
        let preds = func.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[func.entry.index()] = Some(func.entry); // sentinel: entry's idom = itself

        let intersect = |idom: &[Option<BlockId>], rpo_pos: &[usize], a: BlockId, b: BlockId| {
            let (mut x, mut y) = (a, b);
            while x != y {
                while rpo_pos[x.index()] > rpo_pos[y.index()] {
                    x = idom[x.index()].expect("processed block has idom");
                }
                while rpo_pos[y.index()] > rpo_pos[x.index()] {
                    y = idom[y.index()].expect("processed block has idom");
                }
            }
            x
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_pos, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        idom[func.entry.index()] = None; // drop the sentinel
        DomTree { idom, rpo, rpo_pos }
    }

    /// Is `b` reachable from the entry?
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_pos[b.index()] != usize::MAX
    }

    /// Does `a` dominate `b`? (Reflexive: every block dominates itself.)
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return a == b;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) => cur = d,
                // `cur` is the entry (no idom) and was already compared to
                // `a` at the top of the loop.
                None => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::RegClass;

    /// Diamond: b0 -> {b1, b2} -> b3
    fn diamond() -> (Function, [BlockId; 4]) {
        let mut fb = FunctionBuilder::new("d");
        let x = fb.param(RegClass::Int);
        let b1 = fb.new_block();
        let b2 = fb.new_block();
        let b3 = fb.new_block();
        let p = fb.cmp_lti(x, 0);
        fb.branch(p, b1, b2);
        fb.switch_to(b1);
        fb.br(b3);
        fb.switch_to(b2);
        fb.br(b3);
        fb.switch_to(b3);
        fb.ret(None);
        let f = fb.finish();
        let e = f.entry;
        (f, [e, b1, b2, b3])
    }

    #[test]
    fn diamond_idoms() {
        let (f, [b0, b1, b2, b3]) = diamond();
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom[b0.index()], None);
        assert_eq!(dt.idom[b1.index()], Some(b0));
        assert_eq!(dt.idom[b2.index()], Some(b0));
        assert_eq!(dt.idom[b3.index()], Some(b0));
        assert!(dt.dominates(b0, b3));
        assert!(!dt.dominates(b1, b3));
        assert!(dt.dominates(b3, b3));
    }

    #[test]
    fn loop_header_dominates_body() {
        // b0 -> b1 (header) -> b2 (body) -> b1 ; b1 -> b3 (exit)
        let mut fb = FunctionBuilder::new("l");
        let x = fb.param(RegClass::Int);
        let b1 = fb.new_block();
        let b2 = fb.new_block();
        let b3 = fb.new_block();
        fb.br(b1);
        fb.switch_to(b1);
        let p = fb.cmp_lti(x, 10);
        fb.branch(p, b2, b3);
        fb.switch_to(b2);
        fb.br(b1);
        fb.switch_to(b3);
        fb.ret(None);
        let f = fb.finish();
        let dt = DomTree::compute(&f);
        assert!(dt.dominates(b1, b2));
        assert!(dt.dominates(b1, b3));
        assert!(!dt.dominates(b2, b3));
    }

    #[test]
    fn unreachable_blocks_flagged() {
        let mut fb = FunctionBuilder::new("u");
        let dead = fb.new_block();
        fb.ret(None);
        fb.switch_to(dead);
        fb.ret(None);
        let f = fb.finish();
        let dt = DomTree::compute(&f);
        assert!(!dt.is_reachable(dead));
        assert!(dt.is_reachable(f.entry));
    }
}
